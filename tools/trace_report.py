#!/usr/bin/env python
"""Latency-attribution and Chrome-trace reports over serving telemetry.

Runs one registered benchmark scenario (``benchmarks/bench_serving.py``
``SCENARIOS``) — or the built-in ``--quick`` fleet-of-disagg session
scenario — under ambient telemetry
(:func:`repro.serving.telemetry.recording`), then reports:

* the **phase-share table**: what fraction of total attributed seconds
  went to each of {queue, prefill, transfer_wait, wire, decode,
  preempt_recompute, decompress};
* the **top-N slowest requests** with their per-phase breakdown — each
  row's phases sum to its end-to-end latency, the conservation
  invariant ``tests/test_telemetry.py`` proves across topologies;
* with ``--export PATH``, the full run as Chrome trace event JSON
  (load in ``chrome://tracing`` or Perfetto: one thread per
  pool/replica/link, flow arrows following each request's KV across
  the disaggregated stages, counter series for KV occupancy and queue
  depths);
* with ``--validate``, a schema check over the exported trace —
  :func:`validate_chrome_trace` below, the same checks CI runs on the
  ``--quick`` artifact: known ``ph`` types only, monotone timestamps,
  matched B/E stall pairs per track, and every flow finish preceded by
  its matching start.

Usage::

    PYTHONPATH=src python tools/trace_report.py sessions_prefix_cache
    PYTHONPATH=src python tools/trace_report.py disagg_kvcomp --top 5
    PYTHONPATH=src python tools/trace_report.py --quick \\
        --export trace.json --validate

The telemetry itself is off by default and zero-cost when off; this
tool is the consumer side — see ``docs/adding-a-scenario.md`` Recipe 9
for wiring a custom consumer in code.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_serving  # noqa: E402

from repro.serving import telemetry  # noqa: E402
from repro.serving.costs import EngineCostModel  # noqa: E402
from repro.serving.fleet import FleetConfig, FleetCore  # noqa: E402
from repro.serving.prefixcache import PrefixCacheConfig  # noqa: E402
from repro.serving.scheduler import SchedulerLimits  # noqa: E402
from repro.serving.serve import DisaggConfig, ServingConfig  # noqa: E402
from repro.serving.trace import session_trace  # noqa: E402

#: Every ``ph`` value the exporter may legally emit (a subset of the
#: Chrome trace event format): complete spans, stall begin/end pairs,
#: flow start/finish, instants, counters, metadata.
VALID_PH = frozenset("XBEsfiCM")

#: Keys every event row must carry (metadata rows included).
REQUIRED_KEYS = ("ph", "pid", "tid", "ts", "name")


def validate_chrome_trace(data: object) -> list[str]:
    """Schema-check an exported trace; returns human-readable problems.

    An empty list means the trace is valid.  Checks, in order: the
    top-level shape, per-row required keys and ``ph`` membership,
    non-negative ``X`` durations, globally monotone timestamps in file
    order (metadata rows excepted — they pin ``ts=0`` up front),
    matched ``B``/``E`` stall nesting per ``(pid, tid)``, and flow
    pairing (every ``f`` preceded by an ``s`` with the same id, no
    dangling starts).
    """
    problems: list[str] = []
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return ["top level must be a dict with a 'traceEvents' list"]
    events = data["traceEvents"]
    last_ts = None
    stall_depth: dict[tuple, int] = {}
    flow_starts: set = set()
    flow_ends: set = set()
    for i, row in enumerate(events):
        if not isinstance(row, dict):
            problems.append(f"row {i}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in row]
        if missing:
            problems.append(f"row {i}: missing keys {missing}")
            continue
        ph = row["ph"]
        if ph not in VALID_PH:
            problems.append(f"row {i}: unknown ph {ph!r}")
            continue
        if ph == "M":
            continue
        ts = row["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"row {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"row {i}: ts {ts} rewinds past {last_ts} (not monotone)"
            )
        last_ts = ts
        key = (row["pid"], row["tid"])
        if ph == "X":
            if row.get("dur", -1.0) < 0:
                problems.append(f"row {i}: X event with bad dur")
        elif ph == "B":
            stall_depth[key] = stall_depth.get(key, 0) + 1
        elif ph == "E":
            depth = stall_depth.get(key, 0) - 1
            stall_depth[key] = depth
            if depth < 0:
                problems.append(f"row {i}: E without matching B on {key}")
        elif ph == "s":
            flow_starts.add(row.get("id"))
        elif ph == "f":
            if row.get("id") not in flow_starts:
                problems.append(
                    f"row {i}: flow finish id={row.get('id')!r} before"
                    " its start"
                )
            flow_ends.add(row.get("id"))
    for key, depth in stall_depth.items():
        if depth > 0:
            problems.append(f"{depth} unclosed B event(s) on track {key}")
    dangling = flow_starts - flow_ends
    if dangling:
        problems.append(
            f"{len(dangling)} flow start(s) never finished:"
            f" {sorted(dangling)[:5]}"
        )
    return problems


# ----------------------------------------------------------------------
# The --quick scenario: every telemetry surface in one small run
# ----------------------------------------------------------------------
#: Small enough for a CI docs job (a few seconds), rich enough to
#: exercise flows (disagg transfer), routing, sessions and the cache.
QUICK_N_SESSIONS = 40
QUICK_SESSION_RATE_RPS = 4.0
QUICK_SEED = 3


def _serve_quick():
    """Sessions through a 2-replica fleet of chunked disagg cells."""
    limits = SchedulerLimits(max_num_seqs=8, max_batched_tokens=4096)
    instance = ServingConfig(
        mode="disaggregated", prefill_mode="chunked", cost_bucket=64,
        limits=limits, disagg=DisaggConfig(prefill_mode="chunked"),
    )
    config = ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=64,
        limits=limits,
        fleet=FleetConfig(
            n_replicas=2, routing="session_affinity", instance=instance,
        ),
        prefix_cache=PrefixCacheConfig(hot_frac=0.5, codec="kvcomp"),
    )
    core = FleetCore(
        EngineCostModel(
            bench_serving._MODEL, bench_serving._GPU, bench_serving._BACKEND
        ),
        bench_serving._KV_SPEC, bench_serving._PLAN.kv_bytes, config,
    )
    return core.serve(session_trace(
        QUICK_N_SESSIONS, QUICK_SESSION_RATE_RPS, seed=QUICK_SEED
    ))


def print_phase_shares(recorder) -> None:
    """The phase-share table: share of attributed seconds per phase."""
    shares = recorder.phase_shares()
    print(f"  phase shares ({len(recorder.attributions)} requests):")
    for phase in telemetry.PHASES:
        share = shares[phase]
        bar = "#" * round(share * 40)
        print(f"    {phase:18s} {share:7.2%}  {bar}")


def print_slowest(recorder, top: int) -> None:
    """Top-N slowest requests with their per-phase attribution."""
    rows = recorder.slowest(top)
    if not rows:
        print("  no finished requests attributed")
        return
    header = "    {:>8s} {:>9s}".format("request", "e2e_s") + "".join(
        f" {p:>10s}" for p in telemetry.PHASES
    )
    print(f"  slowest {len(rows)} requests:")
    print(header)
    for attr in rows:
        cells = "".join(
            f" {attr.phase_seconds()[p]:10.4f}" for p in telemetry.PHASES
        )
        print(f"    {attr.request_id:>8d} {attr.e2e_s:9.3f}{cells}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="attribution + Chrome-trace report for one scenario"
    )
    parser.add_argument(
        "scenario", nargs="?", default=None,
        choices=sorted(bench_serving.SCENARIOS),
        help="registered benchmark scenario to trace",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the built-in small fleet-of-disagg session scenario"
        " instead of a registered one (the CI docs-job variant)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many slowest requests to tabulate (default 10)",
    )
    parser.add_argument(
        "--export", type=Path, default=None, metavar="PATH",
        help="write the run as Chrome trace event JSON",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-check the exported trace (requires --export)",
    )
    args = parser.parse_args(argv)
    if args.validate and args.export is None:
        parser.error("--validate requires --export")
    if args.quick:
        name, runner = "quick_fleet_disagg_sessions", _serve_quick
    elif args.scenario is not None:
        name, runner = args.scenario, bench_serving.SCENARIOS[args.scenario]
    else:
        parser.error("pick a scenario or pass --quick")

    start = time.perf_counter()
    with telemetry.recording() as handle:
        result = runner()
    wall = time.perf_counter() - start
    recorder = handle.recorder
    if recorder is None:
        print("FAIL: scenario recorded no telemetry", file=sys.stderr)
        return 1

    print(f"{name}: {result.n_requests} requests, wall={wall:.3f}s")
    print(
        f"  makespan={result.makespan_s:.3f}s"
        f" events={len(recorder.events):,d}"
        f" attributed={len(recorder.attributions):,d}"
    )
    print_phase_shares(recorder)
    print_slowest(recorder, args.top)

    if args.export is not None:
        recorder.write_chrome_trace(args.export)
        size_kb = args.export.stat().st_size / 1024
        print(f"  wrote {args.export} ({size_kb:,.0f} KiB)")
    if args.validate:
        problems = validate_chrome_trace(
            json.loads(args.export.read_text())
        )
        if problems:
            print("FAIL: exported trace is not schema-valid:",
                  file=sys.stderr)
            for line in problems[:20]:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("  trace schema ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
