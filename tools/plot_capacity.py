#!/usr/bin/env python
"""Render the committed capacity curves as QPS-vs-latency/goodput plots.

Reads a capacity-surface baseline — the committed
``benchmarks/BENCH_capacity_baseline.json`` by default, or the fleet
surface (``benchmarks/BENCH_fleet_baseline.json``) via ``--baseline``;
both carry the same shape — and renders one figure per workload
profile: offered rate on the x-axis against p95 TTFT, p95 ITL and
steady-state SLO goodput, one line per serving configuration, with the
measured knee marked per config.

matplotlib is an **optional** dependency of this repository (nothing in
the simulator or the test suite needs it): when it is missing, the tool
says so and exits cleanly instead of tracebacking.

Usage::

    python tools/plot_capacity.py                        # capacity baseline
    python tools/plot_capacity.py --baseline benchmarks/BENCH_fleet_baseline.json
    python tools/plot_capacity.py --out-dir /tmp/plots --profile chat
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DEFAULT_BASELINE = ROOT / "benchmarks" / "BENCH_capacity_baseline.json"
DEFAULT_OUT_DIR = ROOT / "benchmarks" / "plots"

#: (curve column, y label, log scale) per panel, left to right.
PANELS = (
    ("ttft_p95_s", "TTFT p95 (s)", True),
    ("itl_p95_s", "ITL p95 (s)", True),
    ("goodput_rps", "SLO goodput (req/s)", False),
)


def _load_matplotlib():
    """The optional-dependency guard: pyplot or None, never a traceback."""
    try:
        import matplotlib

        matplotlib.use("Agg")  # headless: files, not windows
        import matplotlib.pyplot as plt
    except ImportError:
        return None
    return plt


def plot_profile(plt, profile: str, configs: dict, out_path: Path) -> bool:
    """One figure for one profile; False when no config has a curve."""
    curves = {
        name: row for name, row in configs.items() if row.get("curve")
    }
    if not curves:
        return False
    fig, axes = plt.subplots(
        1, len(PANELS), figsize=(4.5 * len(PANELS), 3.6), sharex=True
    )
    for ax, (column, label, log) in zip(axes, PANELS):
        for name, row in curves.items():
            rates = [point["rate_rps"] for point in row["curve"]]
            values = [point[column] for point in row["curve"]]
            (line,) = ax.plot(rates, values, marker="o", label=name)
            knee = row.get("knee_rps")
            if knee:
                ax.axvline(
                    knee, color=line.get_color(), linestyle=":", alpha=0.6
                )
        if log:
            ax.set_yscale("log")
        if column == "goodput_rps":
            # The feasibility reference: goodput tracking offered rate.
            lo = min(p["rate_rps"] for r in curves.values()
                     for p in r["curve"])
            hi = max(p["rate_rps"] for r in curves.values()
                     for p in r["curve"])
            ax.plot([lo, hi], [lo, hi], color="grey", linestyle="--",
                    alpha=0.5, label="offered = goodput")
        ax.set_xlabel("offered rate (req/s)")
        ax.set_ylabel(label)
        ax.grid(True, alpha=0.3)
    axes[-1].legend(fontsize=8)
    fig.suptitle(f"{profile}: capacity curves (knees dotted)")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="capacity- or fleet-surface JSON to plot",
    )
    parser.add_argument("--out-dir", type=Path, default=DEFAULT_OUT_DIR)
    parser.add_argument(
        "--profile", action="append", default=None,
        help="plot only this profile (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    plt = _load_matplotlib()
    if plt is None:
        print(
            "matplotlib is not installed; plotting is optional —"
            " install it (pip install matplotlib) to render the curves",
            file=sys.stderr,
        )
        return 1
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}", file=sys.stderr)
        return 1

    report = json.loads(args.baseline.read_text())
    profiles = report["profiles"]
    selected = args.profile or sorted(profiles)
    unknown = [p for p in selected if p not in profiles]
    if unknown:
        print(
            f"unknown profile(s) {unknown}; baseline has"
            f" {sorted(profiles)}", file=sys.stderr,
        )
        return 1

    args.out_dir.mkdir(parents=True, exist_ok=True)
    stem = args.baseline.stem.lower()
    prefix = "fleet" if "fleet" in stem else "capacity"
    n_plotted = 0
    for profile in selected:
        out_path = args.out_dir / f"{prefix}_{profile}.png"
        if plot_profile(plt, profile, profiles[profile], out_path):
            print(f"wrote {out_path}")
            n_plotted += 1
        else:
            print(f"{profile}: no curves in baseline (gate-only row)")
    if n_plotted == 0:
        print("nothing plotted — baseline carries no curves", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
