#!/usr/bin/env python
"""Serving-benchmark regression gate.

Replays the deterministic serving scenarios from
``benchmarks/bench_serving.py`` (which doubles as a library), writes the
measured headline numbers to ``benchmarks/BENCH_serving.json`` and fails
if the *simulated* makespan or throughput of any scenario regresses more
than 10% against the checked-in baseline
(``benchmarks/BENCH_serving_baseline.json``).

The gated metrics are simulator outputs, not wall-clock — they are
bit-deterministic for a given code state, so any drift is a real
behaviour change (a cost-model edit, a scheduler reordering, a codec
ratio shift), never CI noise.  Wall time per scenario is recorded in the
report for humans but deliberately not gated.

Usage::

    python tools/bench_regression.py                  # gate against baseline
    python tools/bench_regression.py --update-baseline  # re-bless the numbers

CI runs the gate in the tests job (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_serving  # noqa: E402

#: Allowed relative regression before the gate fails.
TOLERANCE = 0.10

#: Deterministic serving scenarios: name -> zero-arg runner returning a
#: ContinuousResult.
SCENARIOS = {
    "colocated_exact": lambda: bench_serving._serve_once(0),
    "colocated_memoized": lambda: bench_serving._serve_once(
        bench_serving.CTX_BUCKET
    ),
    "disagg_raw": lambda: bench_serving._serve_mode("disaggregated", "none"),
    "disagg_kvcomp": lambda: bench_serving._serve_mode(
        "disaggregated", "kvcomp"
    ),
    "disagg_backpressure": lambda: bench_serving._serve_backpressure(True),
    "auto_codec": lambda: bench_serving._serve_auto("best_ratio"),
}

DEFAULT_BASELINE = ROOT / "benchmarks" / "BENCH_serving_baseline.json"
#: Per-run artifact lives next to the baseline, not in the repo root
#: (both paths are gitignored; only the baseline is committed).
DEFAULT_OUTPUT = ROOT / "benchmarks" / "BENCH_serving.json"


def measure() -> dict:
    """Run every scenario; returns {name: {metric: value}}."""
    out = {}
    for name, runner in SCENARIOS.items():
        start = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - start
        out[name] = {
            "makespan_s": result.makespan_s,
            "throughput_tok_s": result.throughput_tok_s,
            "wall_s": round(wall, 3),
        }
        print(
            f"  {name:20s} makespan={result.makespan_s:9.3f}s"
            f" tput={result.throughput_tok_s:9.1f} tok/s"
            f" wall={wall:6.3f}s"
        )
    return out


def compare(measured: dict, baseline: dict) -> list[str]:
    """Regressions beyond TOLERANCE, as human-readable failure lines."""
    failures = [
        f"{name}: scenario has no baseline entry — run"
        " --update-baseline and commit it"
        for name in measured if name not in baseline
    ]
    for name, base in baseline.items():
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: scenario missing from this run")
            continue
        # Makespan regresses by going up, throughput by going down.
        if got["makespan_s"] > base["makespan_s"] * (1 + TOLERANCE):
            failures.append(
                f"{name}: makespan {got['makespan_s']:.3f}s vs baseline"
                f" {base['makespan_s']:.3f}s"
                f" (+{got['makespan_s'] / base['makespan_s'] - 1:.1%})"
            )
        if got["throughput_tok_s"] < base["throughput_tok_s"] * (
            1 - TOLERANCE
        ):
            failures.append(
                f"{name}: throughput {got['throughput_tok_s']:.1f} vs"
                f" baseline {base['throughput_tok_s']:.1f} tok/s"
                f" ({got['throughput_tok_s'] / base['throughput_tok_s'] - 1:.1%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-bless the current numbers as the baseline",
    )
    args = parser.parse_args(argv)

    print("running serving benchmark scenarios...")
    measured = measure()
    args.output.write_text(json.dumps(measured, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.update_baseline:
        # Strip the machine-dependent wall_s so the committed baseline
        # is deterministic (only the gated simulator metrics remain).
        blessed = {
            name: {k: v for k, v in row.items() if k != "wall_s"}
            for name, row in measured.items()
        }
        args.baseline.write_text(json.dumps(blessed, indent=2) + "\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"FAIL: no baseline at {args.baseline}; run with"
            " --update-baseline and commit it", file=sys.stderr,
        )
        return 1

    baseline = json.loads(args.baseline.read_text())
    failures = compare(measured, baseline)
    if failures:
        print(
            f"FAIL: serving benchmark regressed >{TOLERANCE:.0%}:",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"ok: all scenarios within {TOLERANCE:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
