#!/usr/bin/env python
"""Serving-benchmark regression gate.

Replays the deterministic serving scenarios registered in
``benchmarks/bench_serving.py`` (``SCENARIOS`` — the module doubles as a
library), writes the measured numbers to
``benchmarks/BENCH_serving.json`` and fails against the checked-in
baseline (``benchmarks/BENCH_serving_baseline.json``) on either kind of
regression:

* **accuracy** — simulated makespan or token throughput drifting more
  than ``TOLERANCE`` (10%).  These are simulator outputs,
  bit-deterministic for a given code state, so any drift is a real
  behaviour change (a cost-model edit, a scheduler reordering, a codec
  ratio shift), never CI noise.
* **sim-throughput** — kernel events per wall second
  (``events_per_s``) dropping more than ``SIM_THROUGHPUT_TOLERANCE``
  (50%) below the baseline.  Unlike the accuracy metrics this one is
  wall-clock dependent: the committed baseline captures the machine it
  was blessed on, and the wide tolerance absorbs host noise while still
  catching the order-of-change a simulator-core regression produces (an
  accidental O(n) re-poll, a de-vectorized hot loop).

Each scenario must also finish inside ``WALL_BUDGET_S`` — the
large-trace scenarios (100k requests colocated, 20k disaggregated)
exist precisely to keep raw simulator speed from regressing below what
roadmap-scale studies need.

The serving mode additionally gates **telemetry overhead**: after the
baseline compare, the 20k-request disaggregated trace is replayed once
more under ambient telemetry
(:func:`repro.serving.telemetry.recording`), and its events/s must stay
within ``SIM_THROUGHPUT_TOLERANCE`` of the telemetry-off value measured
moments earlier in the same process — recording every span, transfer
and attribution may cost tens of percent, never the order-of-change of
a hot-loop slip.  Telemetry *off* needs no gate of its own: with no
recorder the instrumentation short-circuits to ``None`` checks, and
the bit-identical baseline metrics above already pin that path.

``wall_s`` and ``sim_s_per_wall_s`` (simulated seconds advanced per
wall second) are recorded in the per-run report for humans but not
gated directly and not committed in the baseline.

``--mode capacity`` gates the open-loop capacity surface instead: it
re-measures every workload profile × serving configuration knee via
``benchmarks/bench_capacity.py`` and fails when any knee drops more
than ``KNEE_TOLERANCE`` (10%) below the committed
``benchmarks/BENCH_capacity_baseline.json``.  Knees are simulated and
seeded, so — like the accuracy metrics — any drop is a real capacity
regression, never CI noise.  Capacity rows are additionally
speed-gated like the serving scenarios: each profile × config row's
``events_per_s`` (kernel events across the whole sweep for that row
per wall second) must stay within ``SIM_THROUGHPUT_TOLERANCE`` of the
baseline, and each row must finish inside ``WALL_BUDGET_S``.

``--mode fleet`` applies the identical gate to the scale-out surface
(``benchmarks/bench_fleet.py`` /
``benchmarks/BENCH_fleet_baseline.json``): per-profile knees for a
single replica vs a 4-replica fleet under round-robin and
least-KV-occupancy routing.

Usage::

    python tools/bench_regression.py                  # gate against baseline
    python tools/bench_regression.py --update-baseline  # re-bless the numbers
    python tools/bench_regression.py --mode capacity  # gate the knees
    python tools/bench_regression.py --mode fleet     # gate fleet scale-out

CI runs all three gates in the tests job (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_serving  # noqa: E402

#: Allowed relative regression of the simulated (accuracy) metrics.
TOLERANCE = 0.10

#: Allowed relative regression of events/s before the gate fails.  Wide
#: enough for host noise — shared CI runners have been measured
#: drifting ±40% on multi-second windows — while still catching a
#: simulator-core slip, which costs 2-10x (an accidental O(stages)
#: re-poll, a de-vectorized hot loop), not tens of percent.
SIM_THROUGHPUT_TOLERANCE = 0.50

#: Hard wall-clock ceiling per scenario (seconds).  The 100k-request
#: colocated trace runs in well under a quarter of this on the blessing
#: machine; hitting the ceiling means the simulator lost its speed, not
#: that the host had a bad moment.
WALL_BUDGET_S = 120.0

#: Allowed relative drop of any capacity knee (``--mode capacity``).
KNEE_TOLERANCE = 0.10

#: Deterministic serving scenarios, shared with the bench harness CLI.
SCENARIOS = bench_serving.SCENARIOS

DEFAULT_BASELINE = ROOT / "benchmarks" / "BENCH_serving_baseline.json"
#: Per-run artifact lives next to the baseline, not in the repo root
#: (both paths are gitignored; only the baseline is committed).
DEFAULT_OUTPUT = ROOT / "benchmarks" / "BENCH_serving.json"

CAPACITY_BASELINE = ROOT / "benchmarks" / "BENCH_capacity_baseline.json"
CAPACITY_OUTPUT = ROOT / "benchmarks" / "BENCH_capacity.json"

FLEET_BASELINE = ROOT / "benchmarks" / "BENCH_fleet_baseline.json"
FLEET_OUTPUT = ROOT / "benchmarks" / "BENCH_fleet.json"


def measure() -> dict:
    """Run every scenario; returns {name: {metric: value}}."""
    out = {}
    for name, runner in SCENARIOS.items():
        start = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - start
        events_per_s = result.n_steps / wall
        out[name] = {
            "makespan_s": result.makespan_s,
            "throughput_tok_s": result.throughput_tok_s,
            "n_steps": result.n_steps,
            "events_per_s": round(events_per_s, 1),
            "sim_s_per_wall_s": round(result.makespan_s / wall, 1),
            "wall_s": round(wall, 3),
        }
        print(
            f"  {name:22s} makespan={result.makespan_s:9.3f}s"
            f" tput={result.throughput_tok_s:9.1f} tok/s"
            f" events/s={events_per_s:9,.0f}"
            f" wall={wall:6.3f}s"
        )
    return out


def check_telemetry_overhead(measured: dict) -> list[str]:
    """Replay the 20k disagg trace recording; gate the events/s ratio.

    Compares against the telemetry-off ``large_trace_disagg`` row just
    measured in this process (same host, same cache warmth), so the
    check is a genuine overhead ratio, not a cross-machine number.
    """
    from repro.serving import telemetry

    base_eps = measured["large_trace_disagg"]["events_per_s"]
    start = time.perf_counter()
    with telemetry.recording() as handle:
        result = bench_serving.SCENARIOS["large_trace_disagg"]()
    wall = time.perf_counter() - start
    eps = result.n_steps / wall
    recorder = handle.recorder
    n_attr = len(recorder.attributions) if recorder is not None else 0
    print(
        f"  telemetry overhead: {eps:,.0f} events/s recording"
        f" vs {base_eps:,.0f} off"
        f" ({eps / base_eps - 1:+.1%}, {n_attr:,d} requests attributed)"
    )
    failures = []
    if recorder is None or n_attr != result.n_requests:
        failures.append(
            "telemetry run attributed"
            f" {n_attr:,d}/{result.n_requests:,d} requests"
        )
    if eps < base_eps * (1 - SIM_THROUGHPUT_TOLERANCE):
        failures.append(
            f"telemetry overhead: {eps:,.0f} events/s recording vs"
            f" {base_eps:,.0f} telemetry-off"
            f" ({eps / base_eps - 1:.1%}, tolerance"
            f" {SIM_THROUGHPUT_TOLERANCE:.0%})"
        )
    return failures


def compare(measured: dict, baseline: dict) -> list[str]:
    """Regressions beyond tolerance, as human-readable failure lines."""
    failures = [
        f"{name}: scenario has no baseline entry — run"
        " --update-baseline and commit it"
        for name in measured if name not in baseline
    ]
    for name, row in measured.items():
        if row["wall_s"] > WALL_BUDGET_S:
            failures.append(
                f"{name}: wall {row['wall_s']:.1f}s over the"
                f" {WALL_BUDGET_S:.0f}s budget"
            )
    for name, base in baseline.items():
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: scenario missing from this run")
            continue
        # Makespan regresses by going up, throughput by going down.
        if got["makespan_s"] > base["makespan_s"] * (1 + TOLERANCE):
            failures.append(
                f"{name}: makespan {got['makespan_s']:.3f}s vs baseline"
                f" {base['makespan_s']:.3f}s"
                f" (+{got['makespan_s'] / base['makespan_s'] - 1:.1%})"
            )
        if got["throughput_tok_s"] < base["throughput_tok_s"] * (
            1 - TOLERANCE
        ):
            failures.append(
                f"{name}: throughput {got['throughput_tok_s']:.1f} vs"
                f" baseline {base['throughput_tok_s']:.1f} tok/s"
                f" ({got['throughput_tok_s'] / base['throughput_tok_s'] - 1:.1%})"
            )
        # Sim-throughput: wall-clock, gated wide (see module docstring).
        # Older baselines predate the key — skip the gate until re-blessed.
        base_eps = base.get("events_per_s")
        if base_eps and got["events_per_s"] < base_eps * (
            1 - SIM_THROUGHPUT_TOLERANCE
        ):
            failures.append(
                f"{name}: sim-throughput {got['events_per_s']:,.0f}"
                f" events/s vs baseline {base_eps:,.0f}"
                f" ({got['events_per_s'] / base_eps - 1:.1%})"
            )
    return failures


def measure_capacity() -> dict:
    """Re-measure every profile × config knee (no curves — gate only)."""
    import bench_capacity

    return bench_capacity.measure_capacity(quick=False, curves=False)


def compare_capacity(
    measured: dict, baseline: dict, bench_name: str = "bench_capacity.py"
) -> list[str]:
    """Knee drops beyond KNEE_TOLERANCE, as failure lines.

    Knees may *rise* freely (that is the point of the work); only drops
    gate.  A profile × config pair present in the baseline but missing
    from the run — or vice versa — fails loudly rather than silently
    shrinking coverage.  Rows are also speed-gated: wall budget per
    row, and ``events_per_s`` within ``SIM_THROUGHPUT_TOLERANCE`` of
    the baseline (skipped for baselines that predate the key).
    """
    failures = []
    got_profiles = measured["profiles"]
    base_profiles = baseline["profiles"]
    for profile, configs in got_profiles.items():
        for config, got_row in configs.items():
            if base_profiles.get(profile, {}).get(config) is None:
                failures.append(
                    f"{profile}/{config}: no baseline entry — run"
                    f" {bench_name} --update-baseline and commit it"
                )
            if got_row.get("wall_s", 0.0) > WALL_BUDGET_S:
                failures.append(
                    f"{profile}/{config}: wall {got_row['wall_s']:.1f}s"
                    f" over the {WALL_BUDGET_S:.0f}s budget"
                )
    for profile, configs in base_profiles.items():
        for config, base_row in configs.items():
            got_row = got_profiles.get(profile, {}).get(config)
            if got_row is None:
                failures.append(
                    f"{profile}/{config}: missing from this run"
                )
                continue
            got_knee = got_row["knee_rps"]
            base_knee = base_row["knee_rps"]
            if got_knee < base_knee * (1 - KNEE_TOLERANCE):
                failures.append(
                    f"{profile}/{config}: knee {got_knee:.3f} rps vs"
                    f" baseline {base_knee:.3f} rps"
                    f" ({got_knee / base_knee - 1:.1%})"
                )
            base_eps = base_row.get("events_per_s")
            if base_eps and got_row.get("events_per_s", 0.0) < base_eps * (
                1 - SIM_THROUGHPUT_TOLERANCE
            ):
                failures.append(
                    f"{profile}/{config}: sim-throughput"
                    f" {got_row['events_per_s']:,.0f} events/s vs"
                    f" baseline {base_eps:,.0f}"
                    f" ({got_row['events_per_s'] / base_eps - 1:.1%})"
                )
    return failures


def _run_capacity_mode(args) -> int:
    """Shared driver for the surface gates (capacity and fleet modes)."""
    import bench_capacity

    if args.mode == "fleet":
        import bench_fleet

        print("running fleet capacity scenarios...")
        measured = bench_fleet.measure_fleet(quick=False, curves=False)
        bench_name = "bench_fleet.py"
    else:
        print("running open-loop capacity scenarios...")
        measured = measure_capacity()
        bench_name = "bench_capacity.py"
    args.output.write_text(json.dumps(measured, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.update_baseline:
        args.baseline.write_text(
            json.dumps(bench_capacity._strip_wall(measured), indent=2)
            + "\n"
        )
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"FAIL: no baseline at {args.baseline}; run with"
            " --update-baseline and commit it", file=sys.stderr,
        )
        return 1

    failures = compare_capacity(
        measured, json.loads(args.baseline.read_text()), bench_name
    )
    if failures:
        print(
            f"FAIL: {args.mode} surface regressed"
            f" (knee > {KNEE_TOLERANCE:.0%} drop, sim-throughput"
            f" > {SIM_THROUGHPUT_TOLERANCE:.0%} drop, or wall budget):",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"ok: all {args.mode} knees within {KNEE_TOLERANCE:.0%} and"
        f" sim-throughput within {SIM_THROUGHPUT_TOLERANCE:.0%} of the"
        " baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("serving", "capacity", "fleet"),
        default="serving",
        help="serving: scenario makespans/throughput;"
        " capacity: open-loop knees per profile x config;"
        " fleet: scale-out knees per routing policy",
    )
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-bless the current numbers as the baseline",
    )
    args = parser.parse_args(argv)

    if args.baseline is None:
        args.baseline = {
            "capacity": CAPACITY_BASELINE,
            "fleet": FLEET_BASELINE,
        }.get(args.mode, DEFAULT_BASELINE)
    if args.output is None:
        args.output = {
            "capacity": CAPACITY_OUTPUT,
            "fleet": FLEET_OUTPUT,
        }.get(args.mode, DEFAULT_OUTPUT)

    if args.mode in ("capacity", "fleet"):
        return _run_capacity_mode(args)

    print("running serving benchmark scenarios...")
    measured = measure()
    args.output.write_text(json.dumps(measured, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.update_baseline:
        # Strip the purely informational wall-clock columns; the
        # committed baseline carries only gated metrics (events_per_s
        # stays — it is the sim-throughput gate's reference point, and
        # machine-dependence is inherent to gating speed at all).
        blessed = {
            name: {
                k: v for k, v in row.items()
                if k not in ("wall_s", "sim_s_per_wall_s")
            }
            for name, row in measured.items()
        }
        args.baseline.write_text(json.dumps(blessed, indent=2) + "\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"FAIL: no baseline at {args.baseline}; run with"
            " --update-baseline and commit it", file=sys.stderr,
        )
        return 1

    baseline = json.loads(args.baseline.read_text())
    failures = compare(measured, baseline)
    failures += check_telemetry_overhead(measured)
    if failures:
        print(
            "FAIL: serving benchmark regressed"
            f" (accuracy >{TOLERANCE:.0%}, sim-throughput"
            f" >{SIM_THROUGHPUT_TOLERANCE:.0%}, or wall budget):",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"ok: all scenarios within {TOLERANCE:.0%} accuracy and"
        f" {SIM_THROUGHPUT_TOLERANCE:.0%} sim-throughput of the baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
