#!/usr/bin/env python3
"""Check intra-repo links in README.md and docs/*.md.

Every relative markdown link target must exist on disk (anchors are
stripped; external ``http(s)://`` and ``mailto:`` links are skipped).
Used two ways: as the CI docs job (``python tools/check_docs.py``) and as
a library from ``tests/test_docs.py`` so broken links also fail tier-1.

Exit code 0 when every link resolves, 1 otherwise (broken links are
listed one per line as ``file: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> list[Path]:
    """The documentation surface under link check."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def iter_links(path: Path):
    """Yield every link target in one markdown file."""
    for match in _LINK.finditer(path.read_text()):
        yield match.group(1)


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """All intra-repo link targets that do not resolve to a file."""
    broken = []
    for doc in doc_files(root):
        for target in iter_links(doc):
            if target.startswith(_SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure anchor into the same document
                continue
            if not (doc.parent / path).exists():
                broken.append((doc, target))
    return broken


def main() -> int:
    """CLI entry point; prints broken links and a summary line."""
    root = Path(__file__).resolve().parent.parent
    docs = doc_files(root)
    bad = broken_links(root)
    for doc, target in bad:
        print(f"{doc.relative_to(root)}: {target}")
    n_links = sum(1 for doc in docs for _ in iter_links(doc))
    print(
        f"checked {n_links} links in {len(docs)} file(s):"
        f" {len(bad)} broken"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
