"""Roofline model and the compute-intensity equations of §3.3.

The paper quantifies why decoupled decompression pipelines lose: staging the
decompressed weights in global memory adds ``MK (2/CR + 4)`` bytes of traffic
per GEMM, collapsing compute intensity (CI) by ~62% in decode shapes, while
the fused design *raises* CI above the uncompressed GEMM by shrinking the
weight-read term to ``2 MK / CR``.

All three CI expressions below are in FLOP per byte of DRAM traffic for the
BF16 GEMM ``Y[M,N] = W[M,K] @ X[K,N]`` (2 bytes per element, 2 FLOPs per
multiply-accumulate), matching equations (1)–(3).
"""

from __future__ import annotations

from .specs import GpuSpec

#: Average TCA-TBE compression ratio used in the paper's analysis (§3.1).
DEFAULT_CR = 1.51


def _check_shape(m: int, k: int, n: int) -> None:
    if min(m, k, n) <= 0:
        raise ValueError(f"GEMM dims must be positive, got {m}x{k}x{n}")


def ci_gemm(m: int, k: int, n: int) -> float:
    """Equation (1): CI of a standard BF16 GEMM (FLOP/byte).

    ``CI = 2MNK / 2(MK + KN + MN) = MNK / (MK + KN + MN)``.
    """
    _check_shape(m, k, n)
    return (m * n * k) / (m * k + k * n + m * n)


def ci_decoupled(m: int, k: int, n: int, cr: float = DEFAULT_CR) -> float:
    """Equation (2): CI of the decoupled decompress-then-GEMM pipeline.

    The weight matrix is read compressed (2MK/CR bytes), written decompressed
    (2MK), then read again by the GEMM (2MK) — hence the ``MK (2/CR + 4)``
    term.
    """
    _check_shape(m, k, n)
    if cr <= 0:
        raise ValueError(f"compression ratio must be positive, got {cr}")
    denom = m * k * (2.0 / cr + 4.0) + 2.0 * (k * n + m * n)
    return 2.0 * m * n * k / denom


def ci_zipserv(m: int, k: int, n: int, cr: float = DEFAULT_CR) -> float:
    """Equation (3): CI of the fused ZipGEMM kernel.

    Weights cross DRAM once, compressed: ``2MK/CR`` bytes.
    """
    _check_shape(m, k, n)
    if cr <= 0:
        raise ValueError(f"compression ratio must be positive, got {cr}")
    denom = m * k * 2.0 / cr + 2.0 * (k * n + m * n)
    return 2.0 * m * n * k / denom


def attainable_tflops(spec: GpuSpec, ci: float) -> float:
    """Roofline-attainable TFLOP/s at compute intensity ``ci``."""
    if ci <= 0:
        raise ValueError(f"compute intensity must be positive, got {ci}")
    return min(spec.tc_flops, ci * spec.dram_bytes_per_s) / 1e12


def roofline_time(spec: GpuSpec, flops: float, dram_bytes: float) -> float:
    """Lower-bound kernel time: max of compute roof and memory roof."""
    if flops < 0 or dram_bytes < 0:
        raise ValueError("flops and bytes must be non-negative")
    return max(flops / spec.tc_flops, dram_bytes / spec.dram_bytes_per_s)


def ci_degradation(m: int, k: int, n: int, cr: float = DEFAULT_CR) -> float:
    """Relative CI loss of the decoupled pipeline vs the plain GEMM.

    §3.3 reports ~62% for M = K = 4096 across decode batch sizes.
    """
    return 1.0 - ci_decoupled(m, k, n, cr) / ci_gemm(m, k, n)


def ci_gain(m: int, k: int, n: int, cr: float = DEFAULT_CR) -> float:
    """Relative CI gain of the fused kernel vs the plain GEMM (~+50%)."""
    return ci_zipserv(m, k, n, cr) / ci_gemm(m, k, n) - 1.0
