"""GPU architecture model.

The paper's kernels run on real Ada/Blackwell/Ampere/Hopper GPUs; this
package provides the simulated equivalents the reproduction is built on:

* :mod:`repro.gpu.specs` — device database (SM count, clocks, bandwidth,
  tensor-core throughput) for every GPU the paper evaluates;
* :mod:`repro.gpu.roofline` — the roofline model and the compute-intensity
  equations (1)–(3) of §3.3;
* :mod:`repro.gpu.instructions` — SASS-level instruction accounting
  (POPC/LOP3/IADD/...) used for the Figure-12 micro analysis;
* :mod:`repro.gpu.warp` — SIMT lockstep divergence simulation (why
  variable-length codecs underutilise warps, §3.2);
* :mod:`repro.gpu.memory` — DRAM/shared-memory traffic records and the
  shared-memory bank-conflict simulator;
* :mod:`repro.gpu.tensor_core` — ``mma.m16n8k16`` fragment layouts and a
  numerically faithful emulation.
"""

from .instructions import InstructionCounter, alu_cycles
from .memory import BankConflictReport, TrafficRecord, simulate_bank_conflicts
from .roofline import (
    ci_decoupled,
    ci_gemm,
    ci_zipserv,
    roofline_time,
    attainable_tflops,
)
from .specs import GPUS, GpuSpec, get_gpu
from .tensor_core import (
    a_fragment_lane_map,
    mma_m16n8k16,
    b_fragment_lane_map,
)
from .warp import DivergenceReport, simulate_lockstep

__all__ = [
    "GpuSpec",
    "GPUS",
    "get_gpu",
    "InstructionCounter",
    "alu_cycles",
    "TrafficRecord",
    "BankConflictReport",
    "simulate_bank_conflicts",
    "ci_gemm",
    "ci_decoupled",
    "ci_zipserv",
    "roofline_time",
    "attainable_tflops",
    "mma_m16n8k16",
    "a_fragment_lane_map",
    "b_fragment_lane_map",
    "DivergenceReport",
    "simulate_lockstep",
]
