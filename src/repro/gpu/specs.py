"""Device database for every GPU the paper evaluates (§6).

Numbers are public datasheet values.  Two calibration-flavoured fields are
the achieved-bandwidth fractions: ``dense_bw_frac`` (what a tuned cuBLAS
kernel streams on large tiles) and ``fused_bw_frac`` / ``decomp_bw_frac``
(what the TCA-TBE kernels reach thanks to coalesced, conflict-free access).
Baseline codec efficiencies live in :mod:`repro.analysis.calibration`.

The paper's "A100" platform is taken to be the 40 GB PCIe part (1555 GB/s);
the H800 is the SXM part (HBM3, restricted NVLink).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnknownSpecError


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    marketing_name: str
    arch: str
    compute_capability: str
    sm_count: int
    clock_ghz: float
    tc_tflops_bf16: float
    dram_gbps: float
    vram_gb: float
    l2_mb: float
    shared_kb_per_sm: float
    memory_kind: str
    dense_bw_frac: float
    fused_bw_frac: float
    decomp_bw_frac: float
    interconnect_gbps: float
    launch_overhead_us: float = 3.0

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.clock_ghz <= 0:
            raise ValueError(f"invalid SM/clock for {self.name}")
        for frac in (self.dense_bw_frac, self.fused_bw_frac,
                     self.decomp_bw_frac):
            if not 0.0 < frac <= 1.0:
                raise ValueError(
                    f"bandwidth fraction out of (0, 1] for {self.name}"
                )

    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.clock_ghz * 1e9

    @property
    def tc_flops(self) -> float:
        """Peak dense BF16 tensor-core FLOP/s (FP32 accumulate)."""
        return self.tc_tflops_bf16 * 1e12

    @property
    def dram_bytes_per_s(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.dram_gbps * 1e9

    @property
    def sm_cycles_per_s(self) -> float:
        """Aggregate SM-cycles per second (SM count x clock)."""
        return self.sm_count * self.clock_hz

    @property
    def vram_bytes(self) -> float:
        """Device memory capacity in bytes (decimal GB, as marketed)."""
        return self.vram_gb * 1e9

    @property
    def is_datacenter(self) -> bool:
        """True for training-oriented HBM parts (A100/H800)."""
        return self.memory_kind.startswith("HBM")

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point in FLOP/byte (compute roof / memory roof)."""
        return self.tc_flops / self.dram_bytes_per_s


GPUS: dict[str, GpuSpec] = {
    spec.name: spec
    for spec in [
        GpuSpec(
            name="rtx4090",
            marketing_name="NVIDIA GeForce RTX 4090",
            arch="Ada Lovelace",
            compute_capability="8.9",
            sm_count=128,
            clock_ghz=2.52,
            tc_tflops_bf16=165.2,
            dram_gbps=1008.0,
            vram_gb=24.0,
            l2_mb=72.0,
            shared_kb_per_sm=100.0,
            memory_kind="GDDR6X",
            dense_bw_frac=0.86,
            fused_bw_frac=0.85,
            decomp_bw_frac=0.88,
            interconnect_gbps=25.0,  # PCIe 4.0 x16 effective
        ),
        GpuSpec(
            name="l40s",
            marketing_name="NVIDIA L40S",
            arch="Ada Lovelace",
            compute_capability="8.9",
            sm_count=142,
            clock_ghz=2.52,
            tc_tflops_bf16=181.0,
            dram_gbps=864.0,
            vram_gb=48.0,
            l2_mb=96.0,
            shared_kb_per_sm=100.0,
            memory_kind="GDDR6",
            dense_bw_frac=0.86,
            fused_bw_frac=0.85,
            decomp_bw_frac=0.88,
            interconnect_gbps=25.0,  # PCIe 4.0 x16 effective
        ),
        GpuSpec(
            name="rtx5090",
            marketing_name="NVIDIA GeForce RTX 5090",
            arch="Blackwell",
            compute_capability="12.0",
            sm_count=170,
            clock_ghz=2.41,
            tc_tflops_bf16=209.5,
            dram_gbps=1792.0,
            vram_gb=32.0,
            l2_mb=96.0,
            shared_kb_per_sm=100.0,
            memory_kind="GDDR7",
            dense_bw_frac=0.86,
            fused_bw_frac=0.85,
            decomp_bw_frac=0.88,
            interconnect_gbps=50.0,  # PCIe 5.0 x16 effective
        ),
        GpuSpec(
            name="a100",
            marketing_name="NVIDIA A100 40GB PCIe",
            arch="Ampere",
            compute_capability="8.0",
            sm_count=108,
            clock_ghz=1.41,
            tc_tflops_bf16=312.0,
            dram_gbps=1555.0,
            vram_gb=40.0,
            l2_mb=40.0,
            shared_kb_per_sm=164.0,
            memory_kind="HBM2e",
            dense_bw_frac=0.80,
            fused_bw_frac=0.80,
            decomp_bw_frac=0.84,
            interconnect_gbps=300.0,  # NVLink 3
        ),
        GpuSpec(
            name="h800",
            marketing_name="NVIDIA H800 SXM",
            arch="Hopper",
            compute_capability="9.0",
            sm_count=132,
            clock_ghz=1.98,
            tc_tflops_bf16=989.0,
            dram_gbps=3350.0,
            vram_gb=80.0,
            l2_mb=50.0,
            shared_kb_per_sm=228.0,
            memory_kind="HBM3",
            dense_bw_frac=0.75,
            fused_bw_frac=0.75,
            decomp_bw_frac=0.80,
            interconnect_gbps=200.0,  # restricted NVLink
        ),
    ]
}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by registry name (case-insensitive)."""
    key = name.lower()
    if key not in GPUS:
        raise UnknownSpecError("gpu", name, list(GPUS))
    return GPUS[key]
