"""Tensor Core ``mma.sync.m16n8k16`` emulation and fragment layouts (§2.3).

The warp-level instruction computes ``D[16,8] = A[16,16] @ B[16,8] + C[16,8]``
with BF16 operands and FP32 accumulation, operands distributed over 32 lanes.
TCA-TBE's whole layout is derived from the A-fragment ownership map: lane
``t`` holds the ``.bf16x2`` pair at row-major positions ``2t`` and ``2t + 1``
of each 8x8 quadrant, and the four quadrants are registers Ra0..Ra3 in
column-major order.  The maps here let tests verify that the format's tile
order feeds ``mma`` without any runtime coordinate transformation — the
property §4.2 claims.
"""

from __future__ import annotations

import numpy as np

from ..bf16 import bf16_to_f32
from ..errors import ShapeError

#: mma.m16n8k16 operand dims.
MMA_M, MMA_N, MMA_K = 16, 8, 16

WARP_SIZE = 32


def a_fragment_lane_map() -> np.ndarray:
    """Ownership map of the A operand (16x16): ``(32, 4, 2, 2)``.

    ``map[lane, reg, half] = (row, col)`` where ``reg`` enumerates Ra0..Ra3
    (quadrants in column-major order: (0,0), (1,0), (0,1), (1,1) of the 2x2
    8x8 grid) and ``half`` selects the low/high element of the ``.bf16x2``
    register.
    """
    out = np.zeros((WARP_SIZE, 4, 2, 2), dtype=np.int64)
    quadrants = [(0, 0), (1, 0), (0, 1), (1, 1)]  # (row block, col block)
    for lane in range(WARP_SIZE):
        for reg, (qr, qc) in enumerate(quadrants):
            for half in range(2):
                pos = 2 * lane + half  # row-major position in the 8x8 tile
                row = qr * 8 + pos // 8
                col = qc * 8 + pos % 8
                out[lane, reg, half] = (row, col)
    return out


def b_fragment_lane_map() -> np.ndarray:
    """Ownership map of the B operand (16x8): ``(32, 2, 2, 2)``.

    ``map[lane, reg, half] = (row, col)``; B is consumed column-major (the
    k dimension runs along rows), each lane holding a ``.bf16x2`` per 8x8
    half.
    """
    out = np.zeros((WARP_SIZE, 2, 2, 2), dtype=np.int64)
    for lane in range(WARP_SIZE):
        for reg in range(2):
            for half in range(2):
                pos = 2 * lane + half
                row = reg * 8 + pos % 8
                col = pos // 8
                out[lane, reg, half] = (row, col)
    return out


def mma_m16n8k16(
    a_bits: np.ndarray, b_bits: np.ndarray, c_acc: np.ndarray
) -> np.ndarray:
    """Emulate one ``mma.sync.m16n8k16``: D = A @ B + C.

    Parameters
    ----------
    a_bits, b_bits:
        BF16 bit patterns (uint16) of shape (16, 16) and (16, 8).
    c_acc:
        FP32 accumulator, shape (16, 8).

    Inputs are decoded exactly (BF16 -> FP32 is value-preserving) and the
    multiply-accumulate runs in FP32, matching tensor-core numerics up to
    accumulation order; the functional kernels use *this* routine for both
    the dense and fused paths so comparisons are deterministic.
    """
    if a_bits.shape != (MMA_M, MMA_K):
        raise ShapeError(f"A must be {MMA_M}x{MMA_K}, got {a_bits.shape}")
    if b_bits.shape != (MMA_K, MMA_N):
        raise ShapeError(f"B must be {MMA_K}x{MMA_N}, got {b_bits.shape}")
    if c_acc.shape != (MMA_M, MMA_N) or c_acc.dtype != np.float32:
        raise ShapeError("C must be a float32 16x8 accumulator")
    a = bf16_to_f32(a_bits)
    b = bf16_to_f32(b_bits)
    return (a @ b + c_acc).astype(np.float32)


def gather_a_fragment(tile16: np.ndarray) -> np.ndarray:
    """Distribute a 16x16 BF16 tile into per-lane A registers.

    Returns ``(32, 4, 2)`` uint16: for each lane, Ra0..Ra3 register halves.
    Together with :func:`scatter_a_fragment` this validates that ownership
    round-trips losslessly.
    """
    if tile16.shape != (MMA_M, MMA_K) or tile16.dtype != np.uint16:
        raise ShapeError("tile must be a 16x16 uint16 array")
    fmap = a_fragment_lane_map()
    return tile16[fmap[..., 0], fmap[..., 1]]


def scatter_a_fragment(regs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`gather_a_fragment`."""
    if regs.shape != (WARP_SIZE, 4, 2) or regs.dtype != np.uint16:
        raise ShapeError("regs must be (32, 4, 2) uint16")
    fmap = a_fragment_lane_map()
    out = np.zeros((MMA_M, MMA_K), dtype=np.uint16)
    out[fmap[..., 0], fmap[..., 1]] = regs
    return out
