"""SIMT lockstep divergence simulation (§3.2).

A warp executes in lockstep: when lanes decode symbols of different cost
(variable-length Huffman codes, data-dependent renormalisation), every lane
waits for the slowest.  Given per-symbol costs, :func:`simulate_lockstep`
computes the warp-serialised execution time and the resulting SIMT
efficiency — the mechanism behind the paper's observation that DietGPU and
DFloat11 reach only 43.7% / 76.5% of peak bandwidth while fixed-length
TCA-TBE decoding is fully uniform (efficiency 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WARP_SIZE = 32


@dataclass(frozen=True)
class DivergenceReport:
    """Lockstep simulation outcome."""

    total_work: float
    lockstep_time: float
    n_iterations: int

    @property
    def efficiency(self) -> float:
        """Useful work / (lanes x lockstep time); 1.0 means no divergence."""
        if self.lockstep_time == 0:
            return 1.0
        return self.total_work / (WARP_SIZE * self.lockstep_time)

    @property
    def slowdown(self) -> float:
        """Lockstep time relative to perfectly balanced execution."""
        if self.total_work == 0:
            return 1.0
        return self.lockstep_time / (self.total_work / WARP_SIZE)


def simulate_lockstep(
    costs: np.ndarray, lanes: int = WARP_SIZE
) -> DivergenceReport:
    """Simulate a warp decoding symbols with per-symbol ``costs``.

    Symbols are dealt round-robin to ``lanes`` threads (symbol ``i`` to lane
    ``i % lanes``), the layout interleaved GPU decoders use.  In iteration
    ``t`` every lane processes its ``t``-th symbol and the warp advances at
    the pace of the slowest lane.
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    if costs.size == 0:
        return DivergenceReport(0.0, 0.0, 0)
    if (costs < 0).any():
        raise ValueError("symbol costs must be non-negative")
    n_iter = -(-costs.size // lanes)
    padded = np.zeros(n_iter * lanes, dtype=np.float64)
    padded[: costs.size] = costs
    table = padded.reshape(n_iter, lanes)
    lockstep = float(table.max(axis=1).sum())
    return DivergenceReport(
        total_work=float(costs.sum()),
        lockstep_time=lockstep,
        n_iterations=n_iter,
    )


def huffman_divergence(symbol_lengths: np.ndarray) -> DivergenceReport:
    """Divergence of a Huffman decode loop.

    The per-symbol step cost of the three-stage loop (peek, LUT, pointer
    advance) grows with the code length: longer codes need extra shifted
    loads once the local bit buffer drains.  We charge one unit plus one per
    8 bits of code, a first-order model of the refill cadence.
    """
    lengths = np.asarray(symbol_lengths, dtype=np.float64)
    costs = 1.0 + lengths / 8.0
    return simulate_lockstep(costs)
