"""SASS-level instruction accounting.

Figure 12(a) of the paper profiles the fused kernel with Nsight Compute and
reports the integer/logic instruction mix (LOP3, IADD, POPC, ...) that pays
for on-the-fly decoding.  Our warp-level reference decoder counts the same
categories while executing Algorithm 2, and the performance model converts
the counts to cycles with per-category throughputs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Instructions-per-cycle-per-SM for the integer/logic pipe of an Ada-class
#: SM (128 INT32 lanes shared with FP32, i.e. 4 warps x 32 lanes).  The
#: relative weights matter more than the absolute scale: POPC and funnel
#: shifts issue on the same uniform datapath as LOP3/IADD on modern parts.
DEFAULT_THROUGHPUT: dict[str, float] = {
    "LOP3": 128.0,   # 3-input logic op
    "IADD": 128.0,   # integer add / sub
    "POPC": 64.0,    # population count (half-rate)
    "SHF": 64.0,     # funnel shift (half-rate)
    "IMAD": 128.0,   # integer multiply-add (used for address math)
    "PRMT": 64.0,    # byte permute (BF16 reassembly)
    "LDS": 32.0,     # shared-memory load (issue slot, conflicts modelled
                     # separately)
    "MOV": 128.0,
}


@dataclass
class InstructionCounter:
    """Accumulates per-category instruction counts.

    Categories follow NVIDIA SASS mnemonics so the Figure-12 output can be
    read against an NCU profile.
    """

    counts: Counter = field(default_factory=Counter)

    def add(self, opcode: str, n: int = 1) -> None:
        """Record ``n`` executions of ``opcode``."""
        if n < 0:
            raise ValueError("instruction count must be non-negative")
        self.counts[opcode] += n

    def merge(self, other: "InstructionCounter") -> None:
        """Fold another counter's totals into this one."""
        self.counts.update(other.counts)

    def scaled(self, factor: float) -> dict[str, float]:
        """Counts multiplied by ``factor`` (e.g. tiles per kernel launch)."""
        return {op: c * factor for op, c in self.counts.items()}

    @property
    def total(self) -> int:
        """Total instructions across categories."""
        return int(sum(self.counts.values()))

    def as_dict(self) -> dict[str, int]:
        """Plain dict snapshot, sorted by descending count."""
        return dict(
            sorted(self.counts.items(), key=lambda kv: -kv[1])
        )


def alu_cycles(
    counts: dict[str, float],
    throughput: dict[str, float] | None = None,
) -> float:
    """Convert instruction counts to SM-cycles on the integer pipe.

    ``counts`` are per-SM instruction totals (already divided across SMs by
    the caller); unknown opcodes fall back to LOP3-rate.
    """
    table = throughput or DEFAULT_THROUGHPUT
    default = table["LOP3"]
    cycles = 0.0
    for op, n in counts.items():
        cycles += n / table.get(op, default)
    return cycles
