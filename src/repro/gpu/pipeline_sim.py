"""Discrete-event simulation of ZipGEMM's two-level software pipeline.

§4.3.3 / Figure 10: the fused kernel overlaps three engines per CTA —

* the **copy** engine (``cp.async`` global->shared transfers), double-
  buffered at tile granularity;
* the **ALU** pipe (shared->register decode of TCA-TBE slices);
* the **tensor-core** pipe (``mma`` on the previous slice).

This module executes that schedule event by event: tile ``t+1``'s copy can
start once a shared-memory buffer frees, slice ``s+1``'s decode runs while
slice ``s``'s mma executes, and the inter-tile barrier sits after the last
decode but before the last mma of a tile.  The simulation yields the busy
time of each engine and the end-to-end cycle count, letting tests verify the
claim behind the analytic model: with enough slices, throughput is bound by
``max(copy, decode, mma)`` per slice — decompression latency is *hidden*,
not paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass
class PipelineEvent:
    """One executed stage instance (for timeline inspection)."""

    stage: str
    tile: int
    slice_index: int
    start: float
    end: float


@dataclass
class PipelineReport:
    """Outcome of a pipeline simulation."""

    total_cycles: float
    copy_busy: float
    decode_busy: float
    mma_busy: float
    n_tiles: int
    slices_per_tile: int
    events: list[PipelineEvent] = field(default_factory=list)

    @property
    def bottleneck_bound(self) -> float:
        """Steady-state lower bound: slowest engine, fully pipelined."""
        return max(self.copy_busy, self.decode_busy, self.mma_busy)

    @property
    def overlap_efficiency(self) -> float:
        """bound / achieved — 1.0 means perfect latency hiding."""
        if self.total_cycles == 0:
            return 1.0
        return self.bottleneck_bound / self.total_cycles

    @property
    def mma_utilisation(self) -> float:
        """Fraction of the run the tensor-core pipe is busy."""
        if self.total_cycles == 0:
            return 0.0
        return self.mma_busy / self.total_cycles


def simulate_zipgemm_pipeline(
    n_tiles: int,
    slices_per_tile: int,
    copy_cycles_per_tile: float,
    decode_cycles_per_slice: float,
    mma_cycles_per_slice: float,
    n_buffers: int = 2,
    keep_events: bool = False,
) -> PipelineReport:
    """Run the two-level pipeline schedule and account engine time.

    Parameters
    ----------
    n_tiles:
        K-dimension tiles processed by the CTA (the main loop trips).
    slices_per_tile:
        16-wide K slices per tile (§4.3.3: "computation is sliced along K").
    copy_cycles_per_tile / decode_cycles_per_slice / mma_cycles_per_slice:
        Engine costs in cycles.
    n_buffers:
        Shared-memory buffers; 2 = the kernel's double buffering, 1 is the
        non-pipelined ablation.
    """
    if n_tiles <= 0 or slices_per_tile <= 0:
        raise ConfigError("pipeline needs at least one tile and slice")
    if n_buffers < 1:
        raise ConfigError("need at least one shared-memory buffer")
    if min(copy_cycles_per_tile, decode_cycles_per_slice,
           mma_cycles_per_slice) < 0:
        raise ConfigError("stage costs must be non-negative")

    copy_free = 0.0     # the async-copy engine
    decode_free = 0.0   # the integer/ALU pipe
    mma_free = 0.0      # the tensor-core pipe
    # Time each tile's shared buffer is released (= its last decode done).
    release = [0.0] * n_tiles
    copy_done = [0.0] * n_tiles
    events: list[PipelineEvent] = []

    for tile in range(n_tiles):
        # Copy waits for the engine and for a free buffer slot.
        gate = release[tile - n_buffers] if tile >= n_buffers else 0.0
        start = max(copy_free, gate)
        copy_free = start + copy_cycles_per_tile
        copy_done[tile] = copy_free
        if keep_events:
            events.append(
                PipelineEvent("copy", tile, -1, start, copy_free)
            )

        last_decode_end = 0.0
        for s in range(slices_per_tile):
            d_start = max(decode_free, copy_done[tile])
            d_end = d_start + decode_cycles_per_slice
            decode_free = d_end
            last_decode_end = d_end
            if keep_events:
                events.append(PipelineEvent("decode", tile, s, d_start, d_end))

            m_start = max(mma_free, d_end)
            m_end = m_start + mma_cycles_per_slice
            mma_free = m_end
            if keep_events:
                events.append(PipelineEvent("mma", tile, s, m_start, m_end))
        release[tile] = last_decode_end

    return PipelineReport(
        total_cycles=mma_free,
        copy_busy=n_tiles * copy_cycles_per_tile,
        decode_busy=n_tiles * slices_per_tile * decode_cycles_per_slice,
        mma_busy=n_tiles * slices_per_tile * mma_cycles_per_slice,
        n_tiles=n_tiles,
        slices_per_tile=slices_per_tile,
        events=events,
    )


def zipgemm_cta_pipeline(
    spec,
    k_extent: int,
    n_cols: int,
    compressed_fraction: float,
    decode_cycles_per_element: float,
    n_buffers: int = 2,
) -> PipelineReport:
    """Pipeline simulation with costs derived from a device spec.

    Models one CTA processing a 64-row BlockTile over ``k_extent`` of K with
    ``n_cols`` output columns: per 64-deep tile, the copy engine moves the
    compressed bytes at the CTA's DRAM-bandwidth share, the ALU pipe decodes
    64x16 slices at the measured per-element cycle cost, and the tensor-core
    pipe executes the slice mma.
    """
    if k_extent % 64:
        raise ConfigError("K extent must be a multiple of the 64-tile")
    n_tiles = k_extent // 64
    slices = 4  # 64 deep / 16 per mma slice

    # Per-CTA bandwidth share, in bytes per SM-clock cycle.
    bytes_per_cycle = (
        spec.dram_bytes_per_s * spec.fused_bw_frac
        / spec.sm_count / spec.clock_hz
    )
    tile_bytes = 64 * 64 * 2 * compressed_fraction
    copy_cycles = tile_bytes / bytes_per_cycle

    # Decode cost of one 64x16 slice on this CTA's SM (the per-element cycle
    # figure is already normalised to one SM's issue width).
    elements_per_slice = 64 * 16
    decode_cycles = elements_per_slice * decode_cycles_per_element

    # Slice mma: 64x16 weights x n_cols activations on one SM's tensor cores.
    flops = 2.0 * 64 * 16 * n_cols
    tc_flops_per_sm_cycle = spec.tc_flops / spec.sm_count / spec.clock_hz
    mma_cycles = flops / (tc_flops_per_sm_cycle * 0.8)

    return simulate_zipgemm_pipeline(
        n_tiles=n_tiles,
        slices_per_tile=slices,
        copy_cycles_per_tile=copy_cycles,
        decode_cycles_per_slice=decode_cycles,
        mma_cycles_per_slice=mma_cycles,
        n_buffers=n_buffers,
    )
