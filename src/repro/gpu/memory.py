"""Memory-system accounting: traffic records and bank-conflict simulation.

Figure 12(c) contrasts TCA-TBE's shared-memory behaviour (conflict-free
64-bit loads) with DietGPU's table gathers (millions of conflicts).  Rather
than asserting that, :func:`simulate_bank_conflicts` replays the actual warp
access patterns against the 32-bank shared-memory model and counts replays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Shared memory banks on all modelled architectures.
N_BANKS = 32

#: Bank word width in bytes.
BANK_WIDTH = 4


@dataclass
class TrafficRecord:
    """Byte counters for one kernel execution (model-level, not measured)."""

    dram_read: float = 0.0
    dram_write: float = 0.0
    shared_read: float = 0.0
    shared_write: float = 0.0

    @property
    def dram_total(self) -> float:
        """Total DRAM traffic in bytes."""
        return self.dram_read + self.dram_write

    def add(self, other: "TrafficRecord") -> "TrafficRecord":
        """Accumulate another record into this one (returns self)."""
        self.dram_read += other.dram_read
        self.dram_write += other.dram_write
        self.shared_read += other.shared_read
        self.shared_write += other.shared_write
        return self

    def scaled(self, factor: float) -> "TrafficRecord":
        """A copy with every counter multiplied by ``factor``."""
        return TrafficRecord(
            dram_read=self.dram_read * factor,
            dram_write=self.dram_write * factor,
            shared_read=self.shared_read * factor,
            shared_write=self.shared_write * factor,
        )


@dataclass
class BankConflictReport:
    """Result of replaying warp accesses against the bank model."""

    n_requests: int = 0
    n_cycles: int = 0
    n_conflict_cycles: int = 0
    worst_degree: int = 1

    @property
    def conflict_rate(self) -> float:
        """Extra replay cycles per warp request."""
        if self.n_requests == 0:
            return 0.0
        return self.n_conflict_cycles / self.n_requests

    def merge(self, other: "BankConflictReport") -> None:
        """Accumulate another report."""
        self.n_requests += other.n_requests
        self.n_cycles += other.n_cycles
        self.n_conflict_cycles += other.n_conflict_cycles
        self.worst_degree = max(self.worst_degree, other.worst_degree)


def simulate_bank_conflicts(addresses: np.ndarray) -> BankConflictReport:
    """Replay warp byte-address patterns against 32 x 4 B shared banks.

    Parameters
    ----------
    addresses:
        ``(n_warps, 32)`` byte addresses, one row per warp-wide request.
        Lanes that hit the *same 4-byte word* broadcast (no conflict); lanes
        hitting *different words in the same bank* serialise.

    Returns
    -------
    :class:`BankConflictReport` with total cycles (= replays) and conflict
    cycles (= cycles beyond the ideal one per request).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 2 or addresses.shape[1] != N_BANKS:
        raise ValueError(
            f"addresses must be (n_warps, {N_BANKS}), got {addresses.shape}"
        )
    report = BankConflictReport()
    words = addresses // BANK_WIDTH
    banks = words % N_BANKS
    for row_words, row_banks in zip(words, banks):
        # Distinct words per bank determine the serialisation degree.
        degree = 1
        for bank in np.unique(row_banks):
            distinct = np.unique(row_words[row_banks == bank]).size
            degree = max(degree, int(distinct))
        report.n_requests += 1
        report.n_cycles += degree
        report.n_conflict_cycles += degree - 1
        report.worst_degree = max(report.worst_degree, degree)
    return report


def tcatbe_decode_addresses(n_tiles: int, seed: int = 0) -> np.ndarray:
    """Warp access pattern of the TCA-TBE decompressor, per tile.

    Per FragTile a warp issues: three 64-bit bitmap loads (every lane reads
    one of two consecutive words — broadcast within a half-warp), then one
    byte load per element from the packed segments, which are *contiguous*
    (lane ``i`` reads byte ``base + popc_prefix(i)``), so consecutive lanes
    touch consecutive bytes: 32 lanes cover at most 8 distinct words spread
    over 8 banks — conflict-free.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for tile in range(n_tiles):
        base = int(rng.integers(0, 1024)) * 16
        for word in range(2):  # two 4-byte halves of each 64-bit bitmap
            rows.append(np.full(N_BANKS, base + word * 4))
        # Contiguous byte gather: lane i reads base + i (dense prefix).
        rows.append(base + 64 + np.arange(N_BANKS))
        rows.append(base + 64 + 32 + np.arange(N_BANKS))
    return np.asarray(rows)


def lut_gather_addresses(
    n_requests: int, table_bytes: int, seed: int = 0
) -> np.ndarray:
    """Warp access pattern of an entropy-codec LUT decoder (DietGPU-style).

    Each lane independently indexes a symbol/alias table at a
    data-dependent position — uniformly random addresses over the table,
    which is the access pattern that generates multi-way bank conflicts.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, max(table_bytes // BANK_WIDTH, 1), size=(n_requests, N_BANKS)
    ) * BANK_WIDTH
