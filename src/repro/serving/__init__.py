"""LLM serving substrate (the vLLM-equivalent the paper integrates into).

Provides everything the end-to-end experiments need: a model zoo with the
real layer shapes of the paper's models, synthetic weight statistics, a paged
KV-cache manager, request scheduling, tensor parallelism, a GPU memory
planner, and the step-level inference engine that turns kernel profiles into
end-to-end latency/throughput.
"""

from .backends import BACKENDS, BackendConfig, get_backend
from .engine import (
    ContinuousResult,
    InferenceEngine,
    ServeResult,
    StepBreakdown,
)
from .kvcache import KVCacheSpec, PagedKVCache
from .memory_plan import MemoryPlan, plan_memory
from .models import MODELS, LayerShape, ModelSpec, get_model
from .parallel import TensorParallelLayout, allreduce_time, shard_layer
from .scheduler import (
    ContinuousBatchScheduler,
    Request,
    RequestState,
    SchedulerLimits,
    StaticBatchScheduler,
)
from .weights import (
    estimate_layer_compression,
    layer_sigma,
    materialize_layer,
    model_compression_report,
)

__all__ = [
    "ModelSpec",
    "LayerShape",
    "MODELS",
    "get_model",
    "BackendConfig",
    "BACKENDS",
    "get_backend",
    "PagedKVCache",
    "KVCacheSpec",
    "MemoryPlan",
    "plan_memory",
    "Request",
    "RequestState",
    "StaticBatchScheduler",
    "ContinuousBatchScheduler",
    "TensorParallelLayout",
    "shard_layer",
    "allreduce_time",
    "InferenceEngine",
    "ServeResult",
    "StepBreakdown",
    "ContinuousResult",
    "SchedulerLimits",
    "layer_sigma",
    "estimate_layer_compression",
    "materialize_layer",
    "model_compression_report",
]
