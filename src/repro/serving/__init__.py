"""LLM serving substrate (the vLLM-equivalent the paper integrates into).

The serving simulator is organised as three decoupled layers plus shared
substrate:

* **cost layer** — :mod:`repro.serving.costs`: :class:`StepCostModel`
  implementations turning kernel profiles into per-step time
  (:class:`EngineCostModel`), with :class:`MemoizedStepCostModel` bucketing
  decode contexts so long traces stop recomputing near-identical steps;
* **scheduling layer** — :mod:`repro.serving.scheduler`: FCFS / priority /
  aging-priority / shortest-job-first policies, chunked-prefill planning
  under ``max_batched_tokens``, and recompute preemption when KV fills;
* **serving core + metrics** — :mod:`repro.serving.serve` drives the
  event-driven clock loop; :mod:`repro.serving.metrics` reports TTFT/TPOT,
  interpolated latency percentiles and SLO goodput.

On top of the layers sit two serving topologies, selected by
``ServingConfig.mode`` and both driven by the shared event kernel
(:mod:`repro.serving.kernel` — :class:`EventKernel` over pluggable
:class:`Stage` objects): the colocated :class:`ServingCore` and the
disaggregated :class:`DisaggregatedCore`
(:mod:`repro.serving.disagg` — prefill pool → KV-transfer link → decode
pool, with optional decode→prefill backpressure, per-replica links,
chunked pool prefill and transfer/prefill overlap via
:class:`DisaggConfig`).  Compression is a first-class property across
the stack: the
``weight_codec`` / ``kv_codec`` / ``transfer_codec`` slots of
:class:`ServingConfig` each accept any codec registered in the unified
registry (:mod:`repro.compression`), in any combination — or
``"auto"``, resolved at config time by a hardware-aware codec policy
(``codec_policy=``) over measured calibration ratios
(``calibration=``; see :mod:`repro.compression.calibrate` and
:mod:`repro.compression.policy`).

Shared substrate: a model zoo with the real layer shapes of the paper's
models, synthetic weight statistics, a paged KV-cache manager, tensor
parallelism, a GPU memory planner, workload-trace generators, and the
:class:`InferenceEngine` facade that wires everything together per
(model, gpu, backend) triple.

The repository-level walkthrough of this architecture — including the
disaggregated data path diagram — lives in ``docs/ARCHITECTURE.md``; the
recipes for adding a scheduler policy or a serving mode live in
``docs/adding-a-scenario.md``.
"""

from .backends import BACKENDS, BackendConfig, get_backend
from .costs import (
    EngineCostModel,
    MemoizedStepCostModel,
    StepBreakdown,
    StepCostModel,
)
from .disagg import (
    ChunkedPrefillPoolStage,
    DecodePoolStage,
    DisaggregatedCore,
    PrefillPoolStage,
    TransferLinkStage,
    resolve_transfer_ratio,
)
from .engine import (
    ContinuousResult,
    InferenceEngine,
    ServeResult,
)
from .fleet import (
    AutoscalerConfig,
    AutoscalerStage,
    FleetConfig,
    FleetCore,
    ScaleEvent,
)
from .kvcache import CompressedKVCacheSpec, KVCacheSpec, PagedKVCache
from .memory_plan import MemoryPlan, plan_memory
from .metrics import (
    LatencySummary,
    PoolStats,
    ReplicaStats,
    RequestTiming,
    ServingMetrics,
    SLOTarget,
    TransferRecord,
    TransferStats,
    collect_timings,
    percentile,
)
from .models import MODELS, LayerShape, ModelSpec, get_model
from .openloop import (
    KneeResult,
    OpenLoopResult,
    find_knee,
    goodput_feasible,
    open_loop_arrivals,
    run_open_loop,
)
from .parallel import TensorParallelLayout, allreduce_time, shard_layer
from .prefixcache import (
    PrefixCache,
    PrefixCacheConfig,
    PrefixCacheStats,
    cold_hit_seconds_per_token,
)
from .profiles import (
    PROFILES,
    SessionProfile,
    WorkloadProfile,
    WorkloadStream,
    get_profile,
    list_profiles,
    register_profile,
)
from .scheduler import (
    POLICIES,
    AgingPriorityPolicy,
    ContinuousBatchScheduler,
    FCFSPolicy,
    PriorityPolicy,
    Request,
    RequestState,
    SchedulerLimits,
    SchedulerPolicy,
    SJFPolicy,
    StaticBatchScheduler,
    StepPlan,
    get_policy,
)
from .kernel import EventKernel, Stage
from .router import (
    ROUTING_POLICIES,
    LeastKVOccupancyPolicy,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    RouterConfig,
    RouterStage,
    RoutingPolicy,
    SessionAffinityPolicy,
    get_routing_policy,
    list_routing_policies,
    register_routing_policy,
)
from .serve import (
    AUTO_CODEC,
    BackpressureConfig,
    ColocatedStage,
    DisaggConfig,
    ServingConfig,
    ServingCore,
    build_prefix_cache,
)
from .telemetry import (
    PHASES,
    MetricsRegistry,
    RequestAttribution,
    TelemetryConfig,
    TraceEvent,
    TraceRecorder,
    build_recorder,
    recording,
)
from .trace import (
    DEFAULT_SESSION_OUTPUTS,
    DEFAULT_SESSION_USER_TURNS,
    LengthDistribution,
    TenantSpec,
    closed_loop_trace,
    multi_tenant_trace,
    poisson_trace,
    session_trace,
    total_tokens,
)
from .weights import (
    estimate_layer_compression,
    layer_sigma,
    materialize_layer,
    model_compression_report,
)

__all__ = [
    "ModelSpec",
    "LayerShape",
    "MODELS",
    "get_model",
    "BackendConfig",
    "BACKENDS",
    "get_backend",
    "PagedKVCache",
    "KVCacheSpec",
    "CompressedKVCacheSpec",
    "MemoryPlan",
    "plan_memory",
    "Request",
    "RequestState",
    "StaticBatchScheduler",
    "ContinuousBatchScheduler",
    "SchedulerPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "AgingPriorityPolicy",
    "SJFPolicy",
    "POLICIES",
    "get_policy",
    "StepPlan",
    "TensorParallelLayout",
    "shard_layer",
    "allreduce_time",
    "InferenceEngine",
    "ServeResult",
    "StepBreakdown",
    "StepCostModel",
    "EngineCostModel",
    "MemoizedStepCostModel",
    "ContinuousResult",
    "SchedulerLimits",
    "AUTO_CODEC",
    "ServingConfig",
    "ServingCore",
    "Stage",
    "EventKernel",
    "ColocatedStage",
    "DisaggConfig",
    "BackpressureConfig",
    "DisaggregatedCore",
    "PrefillPoolStage",
    "ChunkedPrefillPoolStage",
    "TransferLinkStage",
    "DecodePoolStage",
    "resolve_transfer_ratio",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "LeastKVOccupancyPolicy",
    "SessionAffinityPolicy",
    "ROUTING_POLICIES",
    "register_routing_policy",
    "get_routing_policy",
    "list_routing_policies",
    "RouterConfig",
    "RouterStage",
    "PrefixCache",
    "PrefixCacheConfig",
    "PrefixCacheStats",
    "cold_hit_seconds_per_token",
    "build_prefix_cache",
    "FleetConfig",
    "FleetCore",
    "AutoscalerConfig",
    "AutoscalerStage",
    "ScaleEvent",
    "ReplicaStats",
    "PHASES",
    "TelemetryConfig",
    "TraceEvent",
    "TraceRecorder",
    "RequestAttribution",
    "MetricsRegistry",
    "build_recorder",
    "recording",
    "SLOTarget",
    "LatencySummary",
    "PoolStats",
    "RequestTiming",
    "ServingMetrics",
    "TransferRecord",
    "TransferStats",
    "collect_timings",
    "percentile",
    "LengthDistribution",
    "TenantSpec",
    "poisson_trace",
    "multi_tenant_trace",
    "session_trace",
    "DEFAULT_SESSION_USER_TURNS",
    "DEFAULT_SESSION_OUTPUTS",
    "closed_loop_trace",
    "total_tokens",
    "WorkloadStream",
    "WorkloadProfile",
    "SessionProfile",
    "PROFILES",
    "register_profile",
    "get_profile",
    "list_profiles",
    "open_loop_arrivals",
    "OpenLoopResult",
    "run_open_loop",
    "goodput_feasible",
    "KneeResult",
    "find_knee",
    "layer_sigma",
    "estimate_layer_compression",
    "materialize_layer",
    "model_compression_report",
]
