"""LLM serving substrate (the vLLM-equivalent the paper integrates into).

The serving simulator is organised as three decoupled layers plus shared
substrate:

* **cost layer** — :mod:`repro.serving.costs`: :class:`StepCostModel`
  implementations turning kernel profiles into per-step time
  (:class:`EngineCostModel`), with :class:`MemoizedStepCostModel` bucketing
  decode contexts so long traces stop recomputing near-identical steps;
* **scheduling layer** — :mod:`repro.serving.scheduler`: FCFS / priority /
  shortest-job-first policies, chunked-prefill planning under
  ``max_batched_tokens``, and recompute preemption when KV fills;
* **serving core + metrics** — :mod:`repro.serving.serve` drives the
  event-driven clock loop; :mod:`repro.serving.metrics` reports TTFT/TPOT,
  interpolated latency percentiles and SLO goodput.

Shared substrate: a model zoo with the real layer shapes of the paper's
models, synthetic weight statistics, a paged KV-cache manager, tensor
parallelism, a GPU memory planner, workload-trace generators, and the
:class:`InferenceEngine` facade that wires everything together per
(model, gpu, backend) triple.
"""

from .backends import BACKENDS, BackendConfig, get_backend
from .costs import (
    EngineCostModel,
    MemoizedStepCostModel,
    StepBreakdown,
    StepCostModel,
)
from .engine import (
    ContinuousResult,
    InferenceEngine,
    ServeResult,
)
from .kvcache import KVCacheSpec, PagedKVCache
from .memory_plan import MemoryPlan, plan_memory
from .metrics import (
    LatencySummary,
    RequestTiming,
    ServingMetrics,
    SLOTarget,
    collect_timings,
    percentile,
)
from .models import MODELS, LayerShape, ModelSpec, get_model
from .parallel import TensorParallelLayout, allreduce_time, shard_layer
from .scheduler import (
    POLICIES,
    ContinuousBatchScheduler,
    FCFSPolicy,
    PriorityPolicy,
    Request,
    RequestState,
    SchedulerLimits,
    SchedulerPolicy,
    SJFPolicy,
    StaticBatchScheduler,
    StepPlan,
    get_policy,
)
from .serve import ServingConfig, ServingCore
from .weights import (
    estimate_layer_compression,
    layer_sigma,
    materialize_layer,
    model_compression_report,
)

__all__ = [
    "ModelSpec",
    "LayerShape",
    "MODELS",
    "get_model",
    "BackendConfig",
    "BACKENDS",
    "get_backend",
    "PagedKVCache",
    "KVCacheSpec",
    "MemoryPlan",
    "plan_memory",
    "Request",
    "RequestState",
    "StaticBatchScheduler",
    "ContinuousBatchScheduler",
    "SchedulerPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "SJFPolicy",
    "POLICIES",
    "get_policy",
    "StepPlan",
    "TensorParallelLayout",
    "shard_layer",
    "allreduce_time",
    "InferenceEngine",
    "ServeResult",
    "StepBreakdown",
    "StepCostModel",
    "EngineCostModel",
    "MemoizedStepCostModel",
    "ContinuousResult",
    "SchedulerLimits",
    "ServingConfig",
    "ServingCore",
    "SLOTarget",
    "LatencySummary",
    "RequestTiming",
    "ServingMetrics",
    "collect_timings",
    "percentile",
    "layer_sigma",
    "estimate_layer_compression",
    "materialize_layer",
    "model_compression_report",
]
