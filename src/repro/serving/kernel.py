"""The event-driven simulation kernel shared by every serving topology.

Before this module existed the repository had two hand-rolled clock
loops: :class:`~repro.serving.serve.ServingCore` drove one colocated
engine, and :class:`~repro.serving.disagg.DisaggregatedCore` simulated
its prefill pool, transfer link and decode pool *in sequence* — legal
only because nothing fed back from decode to prefill.  Backpressure,
per-replica links and chunked prefill inside the prefill pool all break
that one-way assumption, so the loops were unified here instead: one
kernel, pluggable **stages**, requests flowing through explicit stage
queues.

A :class:`Stage` owns a piece of the pipeline (an engine pool, a
transfer link) and exposes exactly two verbs:

* :meth:`Stage.next_event_time` — when this stage can next do work
  (``None`` when it has nothing runnable and nothing scheduled — e.g.
  idle, or stalled on another stage's state);
* :meth:`Stage.advance` — perform the work due at ``now``.

:class:`EventKernel` interleaves them: each iteration it takes the
minimum next-event time across stages and advances, **in stage order**,
every stage whose event is due.  Stage order is upstream→downstream
(prefill, link, decode), so a hand-off produced at time ``t`` is visible
to the next stage within the same instant — exactly the causality the
old sequential simulation got for free by running stages to completion
one after another.  Reverse-direction coupling (decode→prefill
backpressure) needs no special casing: a stalled upstream stage returns
``None`` and is simply re-polled after every downstream event, so it
wakes the moment the watermark clears.

Event extraction is **heap-driven with lazy invalidation** rather than
an every-iteration re-poll of all stages.  The kernel caches each
stage's last reported event time in a min-heap and only re-polls a
stage when its cached entry could be stale:

* the stage was just advanced (its own state changed);
* the stage called :meth:`Stage.notify` — or another stage called it on
  the stage's behalf — after an external state change (a hand-off
  delivered into its queue);
* the stage's cached answer is ``None`` — an idle or stalled stage is
  re-polled every iteration, because "nothing runnable" can be flipped
  by *any* other stage's progress (a backpressure watermark clearing,
  a flag armed cross-stage) without an explicit notification.

The ``None`` rule keeps the pre-heap wake-up semantics intact for
stages written before :meth:`Stage.notify` existed; ``notify`` is what
makes the heap profitable, by sparing busy stages the re-poll when
nothing about them changed.  Stale heap entries are skipped on pop via
per-stage generation counters (lazy deletion), never searched for.

Invariants (tested in ``tests/test_kernel.py``):

* **time is monotone** — the kernel clamps stage-reported times to its
  own clock, so a stage waking from a stall can never rewind the run;
* **progress** — a stage advanced at its own event time must either do
  work or move its internal clock; the kernel raises
  :class:`~repro.errors.SchedulingError` instead of spinning if the
  pipeline stops making progress at one instant;
* **no silent exits** — after the loop drains, every stage's
  :meth:`Stage.finish` hook runs; stages still holding requests raise
  there (:class:`~repro.errors.CapacityError`), so a backpressure
  deadlock or an unservable request can never be dropped;
* **bit-compatibility** — with exact costs (``cost_bucket=0``),
  backpressure off, a shared link and whole-prompt pool prefill, the
  interleaved schedule reproduces the old sequential simulation's floats
  bit-exactly (the stages perform the same float operations in the same
  order; the kernel only re-orders *between* stages, which the one-way
  data flow makes commutative).  Under bucketed costs a decode stage's
  fast-forward window is additionally capped at the upstream stages'
  next event (the interleaved kernel cannot see hand-offs that have not
  been scheduled yet), which may split a window the sequential
  simulation took whole — token counts are unchanged; step counts and
  stamps agree to within the one-step boundary shifts float
  accumulation can introduce (the same approximation contract bucketed
  costs already had versus stepwise execution).
"""

from __future__ import annotations

import heapq

from ..errors import SchedulingError

__all__ = ["Stage", "EventKernel"]

#: Advancing this many consecutive kernel iterations without the clock
#: moving means a stage is reporting events it never retires — a stage
#: bug, not a workload property (same-instant cascades are bounded by
#: the number of queued work items).
_MAX_STALLED_ITERATIONS = 1_000_000


class Stage:
    """One pipeline stage of an event-driven serving simulation.

    Subclasses own their internal clocks and queues; the kernel only
    ever asks *when* they next have something to do and tells them to
    do it.  Contract:

    * :meth:`next_event_time` must be side-effect-free and may be
      called any number of times between advances;
    * returned times must not decrease except after an external state
      change (another stage delivering work, or a backpressure
      watermark clearing) — the kernel clamps such wake-ups to its own
      monotone clock;
    * :meth:`advance` called at the stage's own event time must make
      progress: commit work, or move the stage's internal clock
      strictly forward;
    * a stage that mutates *another* stage's queues mid-advance (a
      hand-off) must call :meth:`notify` on the receiving stage, so the
      kernel re-polls it — unless the receiver was idle (its last
      report was ``None``), in which case the kernel re-polls it
      anyway.  Calling :meth:`notify` when in doubt is always safe; it
      costs one extra poll, never correctness.
    """

    #: Human-readable stage name (used in error messages and stats).
    name = "stage"

    def notify(self) -> None:
        """Mark this stage's cached next-event time stale.

        Called (by the stage itself or by a peer delivering work into
        it) after an external state change that may move the stage's
        next event *earlier*.  Outside a running kernel this is a
        no-op, so stages may call it unconditionally.
        """
        kernel = getattr(self, "_kernel", None)
        if kernel is not None:
            kernel.invalidate(self)

    def next_event_time(self) -> float | None:
        """When this stage can next do work (``None`` = nothing runnable)."""
        raise NotImplementedError

    def advance(self, now: float) -> None:
        """Perform the work due at ``now``."""
        raise NotImplementedError

    def finish(self) -> None:
        """Post-run invariant hook: raise if work was left behind.

        Called once by :meth:`EventKernel.run` after every stage has
        reported ``None``.  The default accepts a clean exit; stages
        holding undeliverable requests (a prompt that can never fit, a
        watermark that can never clear) override this to raise
        :class:`~repro.errors.CapacityError` instead of letting the
        run end looking successful.
        """


class EventKernel:
    """Interleaves a list of stages into one event-driven simulation.

    ``stages`` must be listed upstream→downstream: at each instant the
    kernel advances due stages in list order, so same-instant hand-offs
    flow forward through the pipeline, while feedback (backpressure)
    takes effect on the next kernel iteration at the same instant.
    """

    def __init__(self, stages: list[Stage], recorder=None):
        if not stages:
            raise SchedulingError("EventKernel needs at least one stage")
        self.stages = list(stages)
        #: Optional :class:`~repro.serving.telemetry.TraceRecorder`;
        #: the kernel reports loop-level counters (iterations, stage
        #: advances) into its metrics registry after :meth:`run` — once
        #: per run, never inside the hot loop.
        self.recorder = recorder
        #: The kernel's monotone clock: the latest instant processed.
        self.now = 0.0
        # Lazy-invalidation heap state, live only while run() executes.
        self._index: dict[int, int] = {}   # id(stage) -> stage index
        self._dirty: set[int] = set()      # stage indices needing re-poll

    def invalidate(self, stage: Stage) -> None:
        """Mark ``stage``'s cached next-event time stale (see notify)."""
        idx = self._index.get(id(stage))
        if idx is not None:
            self._dirty.add(idx)

    def run(self, until: float | None = None) -> float:
        """Drive all stages until none reports an event; returns the clock.

        Each iteration: refresh the cached event times of dirty and
        idle stages, take the earliest cached event from the heap,
        clamp it to the monotone clock (a stage waking from a
        backpressure stall may report a stale time), then advance every
        stage whose event is due at that instant, in stage order.  When
        the loop drains, every stage's :meth:`Stage.finish` hook runs.

        ``until`` is a hard simulation deadline: the kernel stops
        *before* the first event scheduled strictly past it, leaving
        unfinished work in the stages (an overloaded open-loop run must
        terminate with its backlog counted, not simulated forever).  A
        deadline stop skips the :meth:`Stage.finish` invariant hooks —
        leftover work is the expected outcome, and the caller accounts
        it; a run that drains *before* the deadline still runs them.
        An event *at* ``until`` is processed (its advance may carry a
        stage's internal clock past the deadline — the last step is
        committed whole, never split).  ``until=None`` (default) is the
        historical run-to-completion behaviour, bit-identical.

        Heap entries are ``(time, generation, stage_index)``; a stage's
        generation bumps on every re-poll, so entries whose generation
        no longer matches are skipped on pop instead of being removed
        eagerly (lazy deletion).
        """
        n = len(self.stages)
        cached: list[float | None] = [None] * n
        gen = [0] * n
        heap: list[tuple[float, int, int]] = []
        self._index = {id(s): i for i, s in enumerate(self.stages)}
        self._dirty = set(range(n))
        for stage in self.stages:
            stage._kernel = self
        try:
            stalled_iterations = 0
            timed_out = False
            n_iterations = 0
            n_advances = 0
            while True:
                n_iterations += 1
                # Re-poll stages whose cache is stale (dirty) or whose
                # last answer was None (idle/stalled stages can be woken
                # by any other stage's progress, with no notification).
                for i in range(n):
                    if i in self._dirty or cached[i] is None:
                        t = self.stages[i].next_event_time()
                        cached[i] = t
                        gen[i] += 1
                        if t is not None:
                            heapq.heappush(heap, (t, gen[i], i))
                self._dirty.clear()
                # Pop stale generations until the heap head is live.
                while heap and heap[0][1] != gen[heap[0][2]]:
                    heapq.heappop(heap)
                if not heap:
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    timed_out = True
                    break
                if t > self.now:
                    self.now = t
                    stalled_iterations = 0
                else:
                    stalled_iterations += 1
                    if stalled_iterations > _MAX_STALLED_ITERATIONS:
                        raise SchedulingError(
                            "event kernel stopped making progress at"
                            f" t={self.now!r} (stages:"
                            f" {[s.name for s in self.stages]})"
                        )
                # Snapshot due stages before advancing any: an advance
                # may notify peers, and those re-polls belong to the
                # *next* iteration (matching the pre-heap semantics of
                # polling everything up front).
                due = [
                    i for i in range(n)
                    if cached[i] is not None and cached[i] <= self.now
                ]
                for i in due:
                    self.stages[i].advance(self.now)
                    self._dirty.add(i)
                n_advances += len(due)
            if not timed_out:
                for stage in self.stages:
                    stage.finish()
            if self.recorder is not None:
                metrics = self.recorder.metrics
                metrics.count("kernel/iterations", n_iterations)
                metrics.count("kernel/advances", n_advances)
                metrics.gauge("kernel/now", self.now, self.now)
        finally:
            for stage in self.stages:
                stage._kernel = None
            self._index = {}
            self._dirty = set()
        return self.now
