"""The event-driven simulation kernel shared by every serving topology.

Before this module existed the repository had two hand-rolled clock
loops: :class:`~repro.serving.serve.ServingCore` drove one colocated
engine, and :class:`~repro.serving.disagg.DisaggregatedCore` simulated
its prefill pool, transfer link and decode pool *in sequence* — legal
only because nothing fed back from decode to prefill.  Backpressure,
per-replica links and chunked prefill inside the prefill pool all break
that one-way assumption, so the loops were unified here instead: one
kernel, pluggable **stages**, requests flowing through explicit stage
queues.

A :class:`Stage` owns a piece of the pipeline (an engine pool, a
transfer link) and exposes exactly two verbs:

* :meth:`Stage.next_event_time` — when this stage can next do work
  (``None`` when it has nothing runnable and nothing scheduled — e.g.
  idle, or stalled on another stage's state);
* :meth:`Stage.advance` — perform the work due at ``now``.

:class:`EventKernel` interleaves them: each iteration it takes the
minimum next-event time across stages and advances, **in stage order**,
every stage whose event is due.  Stage order is upstream→downstream
(prefill, link, decode), so a hand-off produced at time ``t`` is visible
to the next stage within the same instant — exactly the causality the
old sequential simulation got for free by running stages to completion
one after another.  Reverse-direction coupling (decode→prefill
backpressure) needs no special casing: a stalled upstream stage returns
``None`` and is simply re-polled after every downstream event, so it
wakes the moment the watermark clears.

Invariants (tested in ``tests/test_kernel.py``):

* **time is monotone** — the kernel clamps stage-reported times to its
  own clock, so a stage waking from a stall can never rewind the run;
* **progress** — a stage advanced at its own event time must either do
  work or move its internal clock; the kernel raises
  :class:`~repro.errors.SchedulingError` instead of spinning if the
  pipeline stops making progress at one instant;
* **no silent exits** — after the loop drains, every stage's
  :meth:`Stage.finish` hook runs; stages still holding requests raise
  there (:class:`~repro.errors.CapacityError`), so a backpressure
  deadlock or an unservable request can never be dropped;
* **bit-compatibility** — with exact costs (``cost_bucket=0``),
  backpressure off, a shared link and whole-prompt pool prefill, the
  interleaved schedule reproduces the old sequential simulation's floats
  bit-exactly (the stages perform the same float operations in the same
  order; the kernel only re-orders *between* stages, which the one-way
  data flow makes commutative).  Under bucketed costs a decode stage's
  fast-forward window is additionally capped at the upstream stages'
  next event (the interleaved kernel cannot see hand-offs that have not
  been scheduled yet), which may split a window the sequential
  simulation took whole — token counts are unchanged; step counts and
  stamps agree to within the one-step boundary shifts float
  accumulation can introduce (the same approximation contract bucketed
  costs already had versus stepwise execution).
"""

from __future__ import annotations

from ..errors import SchedulingError

__all__ = ["Stage", "EventKernel"]

#: Advancing this many consecutive kernel iterations without the clock
#: moving means a stage is reporting events it never retires — a stage
#: bug, not a workload property (same-instant cascades are bounded by
#: the number of queued work items).
_MAX_STALLED_ITERATIONS = 1_000_000


class Stage:
    """One pipeline stage of an event-driven serving simulation.

    Subclasses own their internal clocks and queues; the kernel only
    ever asks *when* they next have something to do and tells them to
    do it.  Contract:

    * :meth:`next_event_time` must be side-effect-free and may be
      called any number of times between advances;
    * returned times must not decrease except after an external state
      change (another stage delivering work, or a backpressure
      watermark clearing) — the kernel clamps such wake-ups to its own
      monotone clock;
    * :meth:`advance` called at the stage's own event time must make
      progress: commit work, or move the stage's internal clock
      strictly forward.
    """

    #: Human-readable stage name (used in error messages and stats).
    name = "stage"

    def next_event_time(self) -> float | None:
        """When this stage can next do work (``None`` = nothing runnable)."""
        raise NotImplementedError

    def advance(self, now: float) -> None:
        """Perform the work due at ``now``."""
        raise NotImplementedError

    def finish(self) -> None:
        """Post-run invariant hook: raise if work was left behind.

        Called once by :meth:`EventKernel.run` after every stage has
        reported ``None``.  The default accepts a clean exit; stages
        holding undeliverable requests (a prompt that can never fit, a
        watermark that can never clear) override this to raise
        :class:`~repro.errors.CapacityError` instead of letting the
        run end looking successful.
        """


class EventKernel:
    """Interleaves a list of stages into one event-driven simulation.

    ``stages`` must be listed upstream→downstream: at each instant the
    kernel advances due stages in list order, so same-instant hand-offs
    flow forward through the pipeline, while feedback (backpressure)
    takes effect on the next kernel iteration at the same instant.
    """

    def __init__(self, stages: list[Stage]):
        if not stages:
            raise SchedulingError("EventKernel needs at least one stage")
        self.stages = list(stages)
        #: The kernel's monotone clock: the latest instant processed.
        self.now = 0.0

    def run(self) -> float:
        """Drive all stages until none reports an event; returns the clock.

        Each iteration: find the earliest next event across stages,
        clamp it to the monotone clock (a stage waking from a
        backpressure stall may report a stale time), then advance every
        stage whose event is due at that instant, in stage order.  When
        the loop drains, every stage's :meth:`Stage.finish` hook runs.
        """
        stalled_iterations = 0
        while True:
            due = [s.next_event_time() for s in self.stages]
            times = [t for t in due if t is not None]
            if not times:
                break
            t = min(times)
            if t > self.now:
                self.now = t
                stalled_iterations = 0
            else:
                stalled_iterations += 1
                if stalled_iterations > _MAX_STALLED_ITERATIONS:
                    raise SchedulingError(
                        "event kernel stopped making progress at"
                        f" t={self.now!r} (stages:"
                        f" {[s.name for s in self.stages]})"
                    )
            for stage, stage_t in zip(self.stages, due):
                if stage_t is not None and stage_t <= self.now:
                    stage.advance(self.now)
        for stage in self.stages:
            stage.finish()
        return self.now
