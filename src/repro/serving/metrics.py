"""Serving metrics: interpolated percentiles, TTFT/TPOT, SLO goodput.

The **metrics layer** of the serving architecture.  The serving core hands
this module the finished requests plus the simulated makespan; it produces
the numbers a production operator actually watches:

* **latency percentiles** — linearly interpolated p50/p90/p95/p99 (the
  seed's ``latencies[len // 2]`` was a biased p50 for even counts);
* **TTFT** — time to first token, ``first_token_s - arrival_s``;
* **TPOT** — time per output token after the first,
  ``(finish_s - first_token_s) / (n_tokens - 1)``;
* **SLO goodput** — requests per second that met *both* the TTFT and TPOT
  targets, the metric under which freed KV memory (§6.5) becomes visible
  as admissible concurrency rather than raw throughput;
* **disaggregation accounting** — :class:`PoolStats` (per-pool busy time
  and utilization) and :class:`TransferStats` (per-transfer wire time and
  link queueing delay, total bytes moved, link utilization) for the
  two-pool mode of :mod:`repro.serving.disagg`, where compressed KV
  transfer (the SplitZip effect) must be visible next to TTFT/TPOT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError


def percentile(values: list[float], q: float) -> float:
    """Linearly interpolated percentile (numpy's default method).

    ``q`` is in percent (0-100).  Raises on an empty input rather than
    inventing a number.
    """
    if not values:
        raise ConfigError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile q must be in [0, 100], got {q}")
    xs = sorted(values)
    rank = (len(xs) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return xs[lo]
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


@dataclass(frozen=True)
class LatencySummary:
    """Interpolated distribution summary of one latency-like metric."""

    n: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p90_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencySummary":
        """Summarise a sample; an empty sample yields the zero summary.

        Non-finite values (the NaN stamps of partial timings — requests
        cut off by a deadline before finishing) are filtered out rather
        than poisoning the percentiles; a cohort with *only* non-finite
        values therefore also yields the zero summary (``n == 0``), so
        an overloaded window with zero finished requests summarises
        cleanly instead of raising.
        """
        values = [v for v in values if math.isfinite(v)]
        if not values:
            return cls()
        return cls(
            n=len(values),
            mean_s=sum(values) / len(values),
            p50_s=percentile(values, 50),
            p90_s=percentile(values, 90),
            p95_s=percentile(values, 95),
            p99_s=percentile(values, 99),
            max_s=max(values),
        )


@dataclass(frozen=True)
class SLOTarget:
    """Per-request service-level objective (chat-interactive defaults)."""

    ttft_s: float = 1.0
    tpot_s: float = 0.1

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ConfigError("SLO targets must be positive")


@dataclass(frozen=True)
class RequestTiming:
    """Timing of one request, derived from its lifecycle stamps.

    ``finish_s=None`` marks a **partial** timing — the request produced
    its first token but was cut off (by an open-loop ``deadline_s``)
    before finishing.  Its TTFT is real; its TPOT and end-to-end latency
    are ``nan`` (filtered by :meth:`LatencySummary.from_values`), and it
    never meets an SLO (``nan`` comparisons are False).
    """

    request_id: int
    arrival_s: float
    first_token_s: float
    finish_s: float | None
    n_tokens: int
    tenant: str = "default"
    priority: int = 0

    @property
    def finished(self) -> bool:
        """Whether the request ran to completion (has a finish stamp)."""
        return self.finish_s is not None

    @property
    def ttft_s(self) -> float:
        """Time to first token."""
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token after the first (nan if partial)."""
        if self.finish_s is None:
            return math.nan
        if self.n_tokens <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.n_tokens - 1)

    @property
    def e2e_s(self) -> float:
        """End-to-end request latency (nan if partial)."""
        if self.finish_s is None:
            return math.nan
        return self.finish_s - self.arrival_s

    def meets(self, slo: SLOTarget) -> bool:
        """Whether this request met both SLO targets.

        A partial timing never meets (its ``nan`` TPOT compares False),
        so deadline-cut requests count as SLO violations, not free
        passes.
        """
        return self.ttft_s <= slo.ttft_s and self.tpot_s <= slo.tpot_s


def collect_timings(
    finished, include_partial: bool = False,
) -> list[RequestTiming]:
    """Extract :class:`RequestTiming` rows from request objects.

    Requests missing a ``first_token_s`` stamp are always dropped (they
    never produced output).  Requests with a first token but no
    ``finish_s`` are dropped by default (the historical contract for
    finished sets); with ``include_partial=True`` they become partial
    timings (``finish_s=None``) — the deadline-cut cohort of an
    open-loop overload run, whose TTFTs are real measurements.
    """
    rows = []
    for req in finished:
        if req.first_token_s is None:
            continue
        if req.finish_s is None and not include_partial:
            continue
        rows.append(RequestTiming(
            request_id=req.request_id,
            arrival_s=req.arrival_s,
            first_token_s=req.first_token_s,
            finish_s=req.finish_s,
            n_tokens=req.generated,
            tenant=getattr(req, "tenant", "default"),
            priority=getattr(req, "priority", 0),
        ))
    return rows


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate serving metrics over one trace run."""

    latency: LatencySummary = field(default_factory=LatencySummary)
    ttft: LatencySummary = field(default_factory=LatencySummary)
    tpot: LatencySummary = field(default_factory=LatencySummary)
    slo: SLOTarget = field(default_factory=SLOTarget)
    slo_attainment: float = 0.0
    goodput_rps: float = 0.0
    goodput_tok_s: float = 0.0
    #: How many timings entered the aggregation (finished + partial);
    #: the denominator behind ``slo_attainment``.  ``latency.n`` can be
    #: smaller — partial timings carry no finite e2e latency.
    n_timings: int = 0

    @property
    def slo_violation_rate(self) -> float:
        """Fraction of timed requests that violated the SLO (0 if none)."""
        return 1.0 - self.slo_attainment if self.n_timings else 0.0

    @classmethod
    def from_timings(
        cls,
        timings: list[RequestTiming],
        makespan_s: float,
        slo: SLOTarget | None = None,
    ) -> "ServingMetrics":
        """Aggregate a run; empty ``timings`` yields the zero metrics.

        Partial timings (``finish_s=None``) are legal inputs: their
        ``nan`` latencies are filtered out of the summaries by
        :meth:`LatencySummary.from_values`, they count in the
        ``slo_attainment`` denominator, and they never reach the goodput
        numerator — an all-partial overloaded window therefore reports
        real TTFTs, zero latency samples, zero attainment, finite
        everything.
        """
        slo = slo or SLOTarget()
        if not timings:
            return cls(slo=slo)
        good = [t for t in timings if t.meets(slo)]
        span = max(makespan_s, 1e-12)
        return cls(
            latency=LatencySummary.from_values([t.e2e_s for t in timings]),
            ttft=LatencySummary.from_values([t.ttft_s for t in timings]),
            tpot=LatencySummary.from_values(
                [t.tpot_s for t in timings if t.n_tokens > 1]
            ),
            slo=slo,
            slo_attainment=len(good) / len(timings),
            goodput_rps=len(good) / span,
            goodput_tok_s=sum(t.n_tokens for t in good) / span,
            n_timings=len(timings),
        )


@dataclass(frozen=True)
class PoolStats:
    """Aggregate utilization of one replica pool (disaggregated mode).

    ``busy_s`` sums every replica's active compute time; ``utilization``
    normalises it by ``n_replicas * makespan``, so a pool of two replicas
    each busy half the run reports 0.5.  ``stall_s`` is the time the
    pool's admission was held back by decode→prefill backpressure
    (prefill pool only; 0 without a watermark), and ``peak_kv_frac`` is
    the highest KV-block occupancy the pool observed (decode pool only —
    the quantity a backpressure watermark bounds).
    """

    name: str
    n_replicas: int
    busy_s: float
    utilization: float
    n_steps: int
    stall_s: float = 0.0
    peak_kv_frac: float = 0.0

    @classmethod
    def from_busy(
        cls,
        name: str,
        busy: list[float],
        makespan_s: float,
        n_steps: int,
        stall_s: float = 0.0,
        peak_kv_frac: float = 0.0,
    ) -> "PoolStats":
        """Build from per-replica busy seconds over one run."""
        span = max(makespan_s, 1e-12)
        return cls(
            name=name,
            n_replicas=len(busy),
            busy_s=sum(busy),
            utilization=sum(busy) / (max(len(busy), 1) * span),
            n_steps=n_steps,
            stall_s=stall_s,
            peak_kv_frac=peak_kv_frac,
        )


@dataclass(frozen=True)
class TransferRecord:
    """One KV hand-off over the prefill→decode link."""

    request_id: int
    nbytes: float
    #: When the KV became ready to ship (prefill completed).
    ready_s: float
    #: When the link started serving it (>= ready_s under FIFO queueing).
    start_s: float
    #: When the last byte landed on the decode replica.
    done_s: float
    #: Which link channel carried it (always 0 on the shared FIFO; the
    #: target replica's index under ``link_topology="per_replica"``).
    link: int = 0

    @property
    def wire_s(self) -> float:
        """Time on the wire (serialisation + link latency)."""
        return self.done_s - self.start_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting for the link behind earlier transfers."""
        return self.start_s - self.ready_s


@dataclass(frozen=True)
class TransferStats:
    """The KV-transfer stage of one disaggregated run.

    ``compression_ratio`` is the transfer codec's ratio (1.0 when KV ships
    raw); ``total_bytes`` is post-compression wire bytes.  ``time`` and
    ``queue`` summarise per-transfer wire time and link queueing delay —
    the two numbers a bandwidth-constrained link inflates and a compressed
    codec (SplitZip-style) deflates.  ``n_links`` is 1 for the shared
    FIFO channel and ``decode_replicas`` for the per-replica topology
    (``link_utilization`` normalises over all channels);
    ``peak_queue_depth`` is the most hand-offs ever waiting for a
    channel at once — the quantity a ``max_link_queue`` backpressure
    watermark bounds.
    """

    n_transfers: int
    total_bytes: float
    compression_ratio: float
    link_utilization: float
    time: LatencySummary = field(default_factory=LatencySummary)
    queue: LatencySummary = field(default_factory=LatencySummary)
    records: tuple[TransferRecord, ...] = ()
    n_links: int = 1
    peak_queue_depth: int = 0

    @classmethod
    def from_records(
        cls,
        records: list[TransferRecord],
        makespan_s: float,
        compression_ratio: float,
        n_links: int = 1,
        peak_queue_depth: int = 0,
    ) -> "TransferStats":
        """Summarise a run's transfer records."""
        span = max(makespan_s, 1e-12)
        return cls(
            n_transfers=len(records),
            total_bytes=sum(r.nbytes for r in records),
            compression_ratio=compression_ratio,
            link_utilization=sum(r.wire_s for r in records)
            / (max(n_links, 1) * span),
            time=LatencySummary.from_values([r.wire_s for r in records]),
            queue=LatencySummary.from_values([r.queue_s for r in records]),
            records=tuple(records),
            n_links=n_links,
            peak_queue_depth=peak_queue_depth,
        )


@dataclass(frozen=True)
class ReplicaStats:
    """Per-instance breakdown of one fleet run (``mode="fleet"``).

    One row per replica, active or not: how many requests the router
    sent it (``n_routed``), how many it finished, and its engine pools'
    utilization (one ``PoolStats`` for a colocated replica; prefill +
    decode, plus ``transfer``, for a disaggregated one).  Conservation
    holds per replica — ``n_routed == n_finished + n_unfinished`` — and
    across the fleet: the per-replica finished counts sum to the
    result's ``n_requests`` (tested in ``tests/test_fleet.py``).
    """

    index: int
    mode: str
    n_routed: int
    n_finished: int
    n_unfinished: int
    pools: tuple[PoolStats, ...] = ()
    #: KV-transfer accounting (disaggregated replicas only).
    transfer: TransferStats | None = None


@dataclass
class ContinuousResult:
    """Outcome of a continuous-batching trace run.

    The first eight fields are the seed-era summary (kept for
    compatibility); ``metrics`` carries the full TTFT/TPOT/percentile/SLO
    picture and the remaining fields describe how the run was scheduled.

    ``n_requests`` counts *finished* requests.  A deadline-bounded run
    (open-loop overload) additionally reports ``n_unfinished`` (offered
    but cut off by ``deadline_s``) and ``n_rejected`` (refused at
    admission); conservation holds by construction:
    ``n_requests + n_unfinished + n_rejected == n_offered``.
    """

    makespan_s: float
    tokens_generated: int
    throughput_tok_s: float
    n_requests: int
    n_steps: int
    peak_running: int
    latency_p50_s: float
    latency_max_s: float
    metrics: ServingMetrics = field(default_factory=ServingMetrics)
    timings: list[RequestTiming] = field(default_factory=list)
    n_preemptions: int = 0
    policy: str = "fcfs"
    prefill_mode: str = "group"
    #: ``"colocated"`` (one engine does both phases) or ``"disaggregated"``
    #: (prefill pool → KV-transfer link → decode pool).
    mode: str = "colocated"
    #: Per-pool utilization; empty in colocated mode.
    pools: tuple[PoolStats, ...] = ()
    #: KV-transfer accounting; ``None`` in colocated mode.
    transfer: TransferStats | None = None
    #: Requests still in flight (or never started) when the run's
    #: ``deadline_s`` cut it off; 0 on run-to-completion traces.
    n_unfinished: int = 0
    #: Requests refused at admission (none of the current admission
    #: paths reject — the slot exists so conservation is checkable).
    n_rejected: int = 0
    #: The hard simulation deadline the run was bounded by, if any.
    deadline_s: float | None = None
    #: Per-replica breakdown (``mode="fleet"`` only; empty otherwise).
    replicas: tuple[ReplicaStats, ...] = ()
    #: Prefix-cache counters
    #: (:class:`~repro.serving.prefixcache.PrefixCacheStats`; summed
    #: across replicas in fleet mode).  ``None`` when no cache was
    #: configured.
    prefix_cache: object = None
    #: Autoscaler decisions (:class:`~repro.serving.fleet.ScaleEvent`
    #: tuples; ``mode="fleet"`` with an autoscaler only, else empty).
    scale_events: tuple = ()
    #: The run's :class:`~repro.serving.telemetry.TraceRecorder` when
    #: telemetry was enabled; ``None`` otherwise (the default).
    telemetry: object = None

    @property
    def routing_histogram(self) -> tuple[int, ...]:
        """Requests routed per replica, in index order (fleet runs)."""
        return tuple(r.n_routed for r in self.replicas)

    @property
    def n_offered(self) -> int:
        """Total requests submitted to the run (finished or not)."""
        return self.n_requests + self.n_unfinished + self.n_rejected

    @property
    def unfinished_rate(self) -> float:
        """Fraction of offered requests cut off unfinished (0 if none)."""
        offered = self.n_offered
        return self.n_unfinished / offered if offered else 0.0

    def window_metrics(
        self,
        start_s: float,
        end_s: float,
        slo: SLOTarget | None = None,
    ) -> ServingMetrics:
        """Metrics over the requests that *arrived* in ``[start_s, end_s)``.

        The steady-state window of an open-loop run: warmup and cooldown
        cohorts are excluded by arrival stamp (the standard open-loop
        convention — a request belongs to the window that offered it,
        wherever its tokens land), and the goodput denominator is the
        window length, so goodput_rps is directly comparable to the
        offered rate.  Partial timings inside the window count as SLO
        violations; an empty window yields the zero metrics.
        """
        if not end_s > start_s:
            raise ConfigError(
                f"window needs end_s > start_s, got [{start_s}, {end_s})"
            )
        rows = [
            t for t in self.timings if start_s <= t.arrival_s < end_s
        ]
        return ServingMetrics.from_timings(
            rows, end_s - start_s, slo or self.metrics.slo
        )

    def pool(self, name: str) -> PoolStats:
        """The named pool's stats (disaggregated runs only)."""
        for stats in self.pools:
            if stats.name == name:
                return stats
        raise ConfigError(
            f"no pool {name!r} in this result"
            f" (mode={self.mode!r}, pools={[p.name for p in self.pools]})"
        )

    def tenant_timings(self, tenant: str) -> list[RequestTiming]:
        """Timings of one tenant's requests (multi-tenant traces)."""
        return [t for t in self.timings if t.tenant == tenant]

    @classmethod
    def from_run(
        cls,
        finished,
        makespan_s: float,
        n_steps: int,
        peak_running: int,
        slo: SLOTarget | None = None,
        n_preemptions: int = 0,
        policy: str = "fcfs",
        prefill_mode: str = "group",
        mode: str = "colocated",
        pools: tuple[PoolStats, ...] = (),
        transfer: TransferStats | None = None,
        unfinished=(),
        n_rejected: int = 0,
        deadline_s: float | None = None,
        replicas: tuple["ReplicaStats", ...] = (),
        prefix_cache=None,
        scale_events: tuple = (),
        telemetry=None,
    ) -> "ContinuousResult":
        """Build the result from the finished set (guards the empty case).

        ``unfinished`` carries the requests a ``deadline_s`` cut off:
        those that produced a first token contribute partial timings
        (real TTFT, nan TPOT/e2e, never SLO-good) and their generated
        tokens count toward throughput — the work was done, even if the
        request was not.  Default arguments keep run-to-completion
        results bit-identical.
        """
        timings = collect_timings(finished)
        timings += collect_timings(unfinished, include_partial=True)
        metrics = ServingMetrics.from_timings(timings, makespan_s, slo)
        tokens = sum(r.generated for r in finished)
        tokens += sum(r.generated for r in unfinished)
        return cls(
            makespan_s=makespan_s,
            tokens_generated=tokens,
            throughput_tok_s=tokens / makespan_s if makespan_s > 0 else 0.0,
            n_requests=len(finished),
            n_steps=n_steps,
            peak_running=peak_running,
            latency_p50_s=metrics.latency.p50_s,
            latency_max_s=metrics.latency.max_s,
            metrics=metrics,
            timings=timings,
            n_preemptions=n_preemptions,
            policy=policy,
            prefill_mode=prefill_mode,
            mode=mode,
            pools=pools,
            transfer=transfer,
            n_unfinished=len(unfinished),
            n_rejected=n_rejected,
            deadline_s=deadline_s,
            replicas=replicas,
            prefix_cache=prefix_cache,
            scale_events=scale_events,
            telemetry=telemetry,
        )
