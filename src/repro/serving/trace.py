"""Synthetic workload traces for continuous-batching experiments.

Serving benchmarks beyond fixed batches need request traces; this module
generates them with the usual shape assumptions: Poisson arrivals and
log-normal prompt/output lengths (heavy-tailed, like real chat traffic).
Everything is seeded for reproducibility.

Three generators: :func:`poisson_trace` (one homogeneous stream),
:func:`multi_tenant_trace` (several streams with per-tenant arrival rates,
length mixes and priorities — the priority scheduler's natural workload)
and :func:`session_trace` (multi-turn sessions with a shared system
prompt, growing history and think-time gaps — the prefix-cache
workload).  All take an explicit ``start_at`` time origin instead of
silently rewriting the first arrival.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .scheduler import Request


@dataclass(frozen=True)
class LengthDistribution:
    """Clipped log-normal token-length distribution."""

    mean: float
    cv: float  # coefficient of variation (std / mean)
    minimum: int
    maximum: int

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.cv < 0:
            raise ConfigError("length distribution needs mean > 0, cv >= 0")
        if not 1 <= self.minimum <= self.maximum:
            raise ConfigError("invalid length bounds")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        if self.cv == 0:
            values = np.full(n, self.mean)
        else:
            # Parameterise the log-normal by its arithmetic mean and CV.
            sigma2 = np.log(1.0 + self.cv**2)
            mu = np.log(self.mean) - sigma2 / 2.0
            values = rng.lognormal(mu, np.sqrt(sigma2), size=n)
        return np.clip(np.rint(values), self.minimum, self.maximum).astype(int)


#: Chat-like defaults: medium prompts, shorter heavy-tailed outputs.
DEFAULT_PROMPTS = LengthDistribution(mean=256, cv=0.8, minimum=16, maximum=2048)
DEFAULT_OUTPUTS = LengthDistribution(mean=192, cv=1.0, minimum=8, maximum=1024)


def _poisson_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    start_at: float | None,
) -> np.ndarray:
    """Cumulative exponential gaps, optionally re-anchored to ``start_at``.

    ``start_at=None`` keeps the raw process (the first request arrives one
    exponential gap after time zero); a number shifts the whole stream so
    the first arrival lands exactly there, preserving every gap.
    """
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=n))
    if start_at is not None:
        arrivals += start_at - arrivals[0]
    return arrivals


def poisson_trace(
    n_requests: int,
    rate_rps: float,
    prompts: LengthDistribution = DEFAULT_PROMPTS,
    outputs: LengthDistribution = DEFAULT_OUTPUTS,
    seed: int = 0,
    start_at: float | None = 0.0,
) -> list[Request]:
    """Generate ``n_requests`` with Poisson arrivals at ``rate_rps``.

    ``start_at`` is the explicit time origin: the whole arrival stream is
    shifted so the first request arrives at that instant (default 0.0),
    preserving every inter-arrival gap.  Note this differs from the seed's
    hidden ``arrivals[0] = 0.0`` rewrite, which collapsed only the first
    gap and left later arrivals in place — same-seed traces therefore have
    slightly earlier absolute arrivals than the seed's.  Pass ``None`` to
    keep the unshifted Poisson process.
    """
    if n_requests <= 0:
        raise ConfigError("need at least one request")
    if rate_rps <= 0:
        raise ConfigError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = _poisson_arrivals(n_requests, rate_rps, rng, start_at)
    prompt_lens = prompts.sample(n_requests, rng)
    output_lens = outputs.sample(n_requests, rng)
    return [
        Request(
            request_id=i,
            prompt_len=int(prompt_lens[i]),
            max_new_tokens=int(output_lens[i]),
            arrival_s=float(arrivals[i]),
        )
        for i in range(n_requests)
    ]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic: arrival rate, length mix, priority."""

    rate_rps: float
    n_requests: int
    prompts: LengthDistribution = DEFAULT_PROMPTS
    outputs: LengthDistribution = DEFAULT_OUTPUTS
    priority: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigError("tenant arrival rate must be positive")
        if self.n_requests <= 0:
            raise ConfigError("tenant needs at least one request")


#: An interactive chat tenant plus a bulk batch tenant — the canonical
#: priority-scheduling scenario (short urgent vs long background work).
DEFAULT_TENANTS: dict[str, TenantSpec] = {
    "chat": TenantSpec(
        rate_rps=8.0,
        n_requests=32,
        prompts=LengthDistribution(mean=128, cv=0.6, minimum=16, maximum=512),
        outputs=LengthDistribution(mean=96, cv=0.8, minimum=8, maximum=384),
        priority=1,
    ),
    "batch": TenantSpec(
        rate_rps=2.0,
        n_requests=8,
        prompts=LengthDistribution(mean=768, cv=0.5, minimum=128,
                                   maximum=2048),
        outputs=LengthDistribution(mean=384, cv=0.6, minimum=64,
                                   maximum=1024),
        priority=0,
    ),
}


def multi_tenant_trace(
    tenants: dict[str, TenantSpec] | None = None,
    seed: int = 0,
    start_at: float | None = 0.0,
) -> list[Request]:
    """Merge per-tenant Poisson streams into one trace.

    Each tenant gets its own arrival process and length distributions; the
    merged trace is sorted by arrival time and re-numbered, with every
    request tagged with its tenant name and priority (what the priority
    scheduler keys on).  ``start_at`` anchors the earliest arrival across
    all tenants (``None`` keeps the raw processes).
    """
    tenants = tenants if tenants is not None else DEFAULT_TENANTS
    if not tenants:
        raise ConfigError("need at least one tenant")
    rng = np.random.default_rng(seed)
    drafts: list[tuple[float, str, int, int, TenantSpec]] = []
    for name in sorted(tenants):
        spec = tenants[name]
        arrivals = _poisson_arrivals(
            spec.n_requests, spec.rate_rps, rng, start_at=None
        )
        prompt_lens = spec.prompts.sample(spec.n_requests, rng)
        output_lens = spec.outputs.sample(spec.n_requests, rng)
        for i in range(spec.n_requests):
            drafts.append((
                float(arrivals[i]), name, int(prompt_lens[i]),
                int(output_lens[i]), spec,
            ))
    drafts.sort(key=lambda d: d[0])
    shift = start_at - drafts[0][0] if start_at is not None else 0.0
    return [
        Request(
            request_id=i,
            prompt_len=prompt,
            max_new_tokens=output,
            arrival_s=arrival + shift,
            tenant=name,
            priority=spec.priority,
        )
        for i, (arrival, name, prompt, output, spec) in enumerate(drafts)
    ]


#: Session defaults: short user turns, medium answers — history does the
#: growing, so per-turn drafts stay small.
DEFAULT_SESSION_USER_TURNS = LengthDistribution(
    mean=64, cv=0.6, minimum=8, maximum=256
)
DEFAULT_SESSION_OUTPUTS = LengthDistribution(
    mean=128, cv=0.7, minimum=16, maximum=384
)


def session_trace(
    n_sessions: int,
    session_rate_rps: float,
    mean_turns: float = 4.0,
    max_turns: int = 16,
    system_prompt_len: int = 256,
    user_turns: LengthDistribution = DEFAULT_SESSION_USER_TURNS,
    outputs: LengthDistribution = DEFAULT_SESSION_OUTPUTS,
    think_time_s: float = 2.0,
    seed: int = 0,
    start_at: float | None = 0.0,
) -> list[Request]:
    """Generate a multi-turn session trace (prefix-reuse workload).

    Sessions open as a Poisson process at ``session_rate_rps``.  Each
    session draws a geometric turn count (mean ``mean_turns``, capped at
    ``max_turns``); its first prompt is the shared system prompt plus a
    user turn, and every later turn's prompt is the **whole previous
    context** (prompt + generated answer) plus a fresh user turn —
    conversation history grows monotonically.  Turns are spaced by
    exponential think-time gaps (mean ``think_time_s``) from the
    previous turn's *arrival* (open-loop stamps are fixed up front, so
    gaps cannot depend on simulated completions).

    Every request carries ``session_id`` and ``prefix_tokens`` — the
    leading tokens shared with the previous turn, i.e. what a prefix
    cache can skip.  First turns have ``prefix_tokens=0``.

    Deterministic per seed: one RNG, sessions drawn in index order
    (turn count, user lengths, output lengths, think gaps), merged by
    arrival stamp and renumbered, with ``start_at`` anchoring the
    earliest arrival like the other generators.
    """
    if n_sessions <= 0:
        raise ConfigError("need at least one session")
    if session_rate_rps <= 0:
        raise ConfigError("session arrival rate must be positive")
    if mean_turns < 1.0:
        raise ConfigError("mean_turns must be >= 1")
    if max_turns < 1:
        raise ConfigError("max_turns must be >= 1")
    if system_prompt_len < 0:
        raise ConfigError("system_prompt_len must be >= 0")
    if think_time_s < 0:
        raise ConfigError("think_time_s must be >= 0")
    rng = np.random.default_rng(seed)
    starts = _poisson_arrivals(
        n_sessions, session_rate_rps, rng, start_at=None
    )
    drafts: list[tuple[float, int, int, int, int, int]] = []
    for sid in range(n_sessions):
        n_turns = min(int(rng.geometric(1.0 / mean_turns)), max_turns)
        user_lens = user_turns.sample(n_turns, rng)
        output_lens = outputs.sample(n_turns, rng)
        gaps = (
            rng.exponential(think_time_s, size=n_turns - 1)
            if n_turns > 1 and think_time_s > 0
            else np.zeros(max(n_turns - 1, 0))
        )
        arrival = float(starts[sid])
        context = 0
        for turn in range(n_turns):
            if turn:
                arrival += float(gaps[turn - 1])
            prefix = context
            prompt = (
                (context if context else system_prompt_len)
                + int(user_lens[turn])
            )
            drafts.append((
                arrival, sid, turn, prompt, int(output_lens[turn]),
                prefix,
            ))
            context = prompt + int(output_lens[turn])
    drafts.sort(key=lambda d: (d[0], d[1], d[2]))
    shift = start_at - drafts[0][0] if start_at is not None else 0.0
    return [
        Request(
            request_id=i,
            prompt_len=prompt,
            max_new_tokens=output,
            arrival_s=arrival + shift,
            session_id=sid,
            prefix_tokens=prefix,
        )
        for i, (arrival, sid, turn, prompt, output, prefix)
        in enumerate(drafts)
    ]


def closed_loop_trace(
    n_requests: int,
    prompt_len: int,
    output_len: int,
) -> list[Request]:
    """All requests present at time zero (offline / batch inference)."""
    if n_requests <= 0:
        raise ConfigError("need at least one request")
    return [
        Request(i, prompt_len=prompt_len, max_new_tokens=output_len)
        for i in range(n_requests)
    ]


def total_tokens(trace: list[Request]) -> int:
    """Output tokens the trace will produce when fully served."""
    return sum(r.max_new_tokens for r in trace)
