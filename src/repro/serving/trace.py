"""Synthetic workload traces for continuous-batching experiments.

Serving benchmarks beyond fixed batches need request traces; this module
generates them with the usual shape assumptions: Poisson arrivals and
log-normal prompt/output lengths (heavy-tailed, like real chat traffic).
Everything is seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .scheduler import Request


@dataclass(frozen=True)
class LengthDistribution:
    """Clipped log-normal token-length distribution."""

    mean: float
    cv: float  # coefficient of variation (std / mean)
    minimum: int
    maximum: int

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.cv < 0:
            raise ConfigError("length distribution needs mean > 0, cv >= 0")
        if not 1 <= self.minimum <= self.maximum:
            raise ConfigError("invalid length bounds")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        if self.cv == 0:
            values = np.full(n, self.mean)
        else:
            # Parameterise the log-normal by its arithmetic mean and CV.
            sigma2 = np.log(1.0 + self.cv**2)
            mu = np.log(self.mean) - sigma2 / 2.0
            values = rng.lognormal(mu, np.sqrt(sigma2), size=n)
        return np.clip(np.rint(values), self.minimum, self.maximum).astype(int)


#: Chat-like defaults: medium prompts, shorter heavy-tailed outputs.
DEFAULT_PROMPTS = LengthDistribution(mean=256, cv=0.8, minimum=16, maximum=2048)
DEFAULT_OUTPUTS = LengthDistribution(mean=192, cv=1.0, minimum=8, maximum=1024)


def poisson_trace(
    n_requests: int,
    rate_rps: float,
    prompts: LengthDistribution = DEFAULT_PROMPTS,
    outputs: LengthDistribution = DEFAULT_OUTPUTS,
    seed: int = 0,
) -> list[Request]:
    """Generate ``n_requests`` with Poisson arrivals at ``rate_rps``."""
    if n_requests <= 0:
        raise ConfigError("need at least one request")
    if rate_rps <= 0:
        raise ConfigError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    arrivals[0] = 0.0  # the first request opens the trace
    prompt_lens = prompts.sample(n_requests, rng)
    output_lens = outputs.sample(n_requests, rng)
    return [
        Request(
            request_id=i,
            prompt_len=int(prompt_lens[i]),
            max_new_tokens=int(output_lens[i]),
            arrival_s=float(arrivals[i]),
        )
        for i in range(n_requests)
    ]


def closed_loop_trace(
    n_requests: int,
    prompt_len: int,
    output_len: int,
) -> list[Request]:
    """All requests present at time zero (offline / batch inference)."""
    if n_requests <= 0:
        raise ConfigError("need at least one request")
    return [
        Request(i, prompt_len=prompt_len, max_new_tokens=output_len)
        for i in range(n_requests)
    ]


def total_tokens(trace: list[Request]) -> int:
    """Output tokens the trace will produce when fully served."""
    return sum(r.max_new_tokens for r in trace)
