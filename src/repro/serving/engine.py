"""The inference engine: turns kernel profiles into end-to-end serving time.

Simulates the serving loop the paper benchmarks (§6.5): one prefill pass
over the prompts, then ``output_len`` decode steps, each composed of

* **linear layers** — per backend: plain cuBLAS (vLLM/Transformers),
  stage-aware TCA-TBE execution (ZipServ, §4.4), or decompress-before-every-
  use (DFloat11);
* **attention** — paged or eager, with the KV context growing every step;
* **collectives** — two ring all-reduces per block under tensor parallelism;
* **framework overhead** — per-kernel dispatch gaps plus a fixed per-step
  cost.

KV capacity is enforced through the real block allocator: when a batch's
final context does not fit in the post-weights KV budget, the engine falls
back to wave execution (vLLM's recompute-preemption, first-order), which is
exactly how weight compression turns into throughput at long contexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityError, ConfigError
from ..gpu.specs import GpuSpec
from ..kernels.attention import (
    eager_attention_decode,
    eager_attention_prefill,
    flash_attention_prefill,
    paged_attention_decode,
)
from ..kernels.gemm import cublas_gemm
from ..kernels.pipeline import decoupled_pipeline, stage_aware_linear
from ..utils import ceil_div
from .backends import BackendConfig
from .kvcache import KVCacheSpec, PagedKVCache
from .memory_plan import DEFAULT_GPU_MEM_UTIL, MemoryPlan, plan_memory
from .models import ModelSpec
from .parallel import allreduce_time, shard_layer
from .scheduler import (
    ContinuousBatchScheduler,
    Request,
    SchedulerLimits,
    StaticBatchScheduler,
)
from .weights import estimate_layer_compression, layer_sigma


@dataclass
class StepBreakdown:
    """Time composition of one engine step (seconds)."""

    linear_s: float = 0.0
    attention_s: float = 0.0
    comm_s: float = 0.0
    other_s: float = 0.0
    dispatch_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Wall time of the step."""
        return (
            self.linear_s + self.attention_s + self.comm_s
            + self.other_s + self.dispatch_s
        )

    def scaled(self, factor: float) -> "StepBreakdown":
        """Component-wise scaling (used for averaging)."""
        return StepBreakdown(
            linear_s=self.linear_s * factor,
            attention_s=self.attention_s * factor,
            comm_s=self.comm_s * factor,
            other_s=self.other_s * factor,
            dispatch_s=self.dispatch_s * factor,
        )

    def add(self, other: "StepBreakdown") -> None:
        """Accumulate another breakdown."""
        self.linear_s += other.linear_s
        self.attention_s += other.attention_s
        self.comm_s += other.comm_s
        self.other_s += other.other_s
        self.dispatch_s += other.dispatch_s


@dataclass
class ServeResult:
    """Outcome of one benchmark run (fixed batch, fixed lengths)."""

    model: str
    gpu: str
    backend: str
    tensor_parallel: int
    batch_size: int
    prompt_len: int
    output_len: int
    prefill_s: float
    decode_s: float
    avg_step: StepBreakdown
    memory: MemoryPlan
    effective_batch: int
    n_waves: int
    details: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        """End-to-end request latency (full output sequence)."""
        return self.prefill_s + self.decode_s

    @property
    def latency_s(self) -> float:
        """Alias for the paper's latency metric."""
        return self.total_s

    @property
    def throughput_tok_s(self) -> float:
        """Output tokens per second across the batch."""
        return self.batch_size * self.output_len / self.total_s


@dataclass
class ContinuousResult:
    """Outcome of a continuous-batching trace run."""

    makespan_s: float
    tokens_generated: int
    throughput_tok_s: float
    n_requests: int
    n_steps: int
    peak_running: int
    latency_p50_s: float
    latency_max_s: float


class InferenceEngine:
    """Step-level serving simulator for one (model, gpu, backend) triple."""

    def __init__(
        self,
        model: ModelSpec,
        gpu: GpuSpec,
        backend: BackendConfig,
        tensor_parallel: int = 1,
        gpu_mem_util: float = DEFAULT_GPU_MEM_UTIL,
        pipeline_parallel: int = 1,
        kv_compression_ratio: float = 1.0,
    ):
        """``kv_compression_ratio > 1`` enables the §7 KV-cache extension:
        blocks are stored Vector-TBE-compressed, multiplying token capacity
        and shrinking the attention kernel's DRAM traffic."""
        if tensor_parallel > 1 and not backend.supports_tensor_parallel:
            raise ConfigError(
                f"backend {backend.name!r} does not support tensor"
                " parallelism (use pipeline_parallel for device-map"
                " sharding)"
            )
        if kv_compression_ratio < 1.0:
            raise ConfigError("kv_compression_ratio must be >= 1")
        self.model = model
        self.gpu = gpu
        self.backend = backend
        self.tp = tensor_parallel
        self.pp = pipeline_parallel
        self.kv_ratio = float(kv_compression_ratio)
        self.plan = plan_memory(
            model, gpu, backend.weight_scheme, tensor_parallel,
            gpu_mem_util, pipeline_parallel=pipeline_parallel,
        )
        self.kv_spec = KVCacheSpec.for_model(
            model, tensor_parallel, pipeline_parallel
        )
        if self.kv_ratio > 1.0:
            # Same bytes, more tokens: capacity scales with the ratio.
            from dataclasses import replace

            extra = int(self.plan.kv_bytes // (
                self.kv_spec.bytes_per_token / self.kv_ratio
            ))
            self.plan = replace(self.plan, kv_tokens=extra)
        self._linear_cache: dict[tuple, tuple[float, int, float]] = {}

    # ------------------------------------------------------------------
    # Component models
    # ------------------------------------------------------------------
    def linear_time(self, n_tokens: int) -> tuple[float, int, float]:
        """(kernel seconds, op count, all-reduce seconds) for one pass."""
        key = (n_tokens,)
        if key in self._linear_cache:
            return self._linear_cache[key]
        total = 0.0
        comm = 0.0
        ops = 0
        for layer in self.model.linear_layers():
            layout = shard_layer(layer, self.tp)
            sigma = layer_sigma(layer.kind, layout.m, layout.k)
            if self.backend.linear_mode == "cublas":
                profile = cublas_gemm(self.gpu, layout.m, layout.k, n_tokens)
            elif self.backend.linear_mode == "stage_aware":
                comp = estimate_layer_compression(
                    layout.m, layout.k, sigma, "tcatbe"
                )
                profile = stage_aware_linear(
                    self.gpu, layout.m, layout.k, n_tokens, comp
                )
            else:  # decoupled_per_use (DFloat11)
                comp = estimate_layer_compression(
                    layout.m, layout.k, sigma, "dfloat11"
                )
                profile = decoupled_pipeline(
                    self.gpu, layout.m, layout.k, n_tokens, "dfloat11", comp
                )
            layer_time = profile.time_s + self.backend.per_layer_sync_s
            total += layer_time * layer.count
            ops += layer.count
            if layout.needs_allreduce:
                nbytes = 2.0 * n_tokens * self.model.hidden
                comm += allreduce_time(self.gpu, nbytes, self.tp) * layer.count
        result = (total / self.backend.e2e_bw_derate, ops, comm)
        self._linear_cache[key] = result
        return result

    def attention_time(self, batch: int, ctx: int, phase: str) -> float:
        """Per-step attention across all layers (one TP shard)."""
        heads = max(1, self.model.n_heads // self.tp)
        kv_heads = self.kv_spec.kv_heads
        if phase == "decode":
            if self.kv_ratio > 1.0 and self.backend.attention == "paged":
                from ..extensions.kvcomp import (
                    paged_attention_decode_compressed,
                )

                profile = paged_attention_decode_compressed(
                    self.gpu, batch, ctx, heads, kv_heads,
                    self.model.head_dim, ratio=self.kv_ratio,
                )
                return profile.time_s * self.model.n_layers
            fn = (
                paged_attention_decode
                if self.backend.attention == "paged"
                else eager_attention_decode
            )
            profile = fn(self.gpu, batch, ctx, heads, kv_heads,
                         self.model.head_dim)
        else:
            fn = (
                flash_attention_prefill
                if self.backend.attention == "paged"
                else eager_attention_prefill
            )
            profile = fn(self.gpu, batch, ctx, heads, kv_heads,
                         self.model.head_dim)
        return profile.time_s * self.model.n_layers

    def elementwise_time(self, n_tokens: int) -> float:
        """Norms, RoPE, activation and residual traffic per pass."""
        h = self.model.hidden
        inter = self.model.intermediate
        per_layer = (
            2 * (4.0 * n_tokens * h)          # two RMSNorms (read+write)
            + 2.0 * n_tokens * (self.model.q_dim + self.model.kv_dim) * 2
            + 6.0 * n_tokens * inter           # SiLU-mul over gate/up
            + 2 * (6.0 * n_tokens * h)         # two residual adds
        )
        total_bytes = per_layer * self.model.n_layers / self.tp
        total_bytes += 4.0 * n_tokens * h      # embedding + final norm
        total_bytes *= self.backend.elementwise_pass_factor
        bw = self.gpu.dram_bytes_per_s * 0.8
        return total_bytes / bw

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _pipeline_hop_time(self, n_tokens: int) -> float:
        """Point-to-point activation transfers between pipeline stages."""
        if self.pp <= 1:
            return 0.0
        nbytes = 2.0 * n_tokens * self.model.hidden
        per_hop = nbytes / (self.gpu.interconnect_gbps * 1e9) + 20e-6
        return (self.pp - 1) * per_hop

    def decode_step(self, batch: int, ctx: int) -> StepBreakdown:
        """Breakdown of one decode step at context length ``ctx``."""
        linear_s, ops, comm_s = self.linear_time(batch)
        comm_s += self._pipeline_hop_time(batch)
        n_other = self.backend.other_ops_per_layer * self.model.n_layers
        dispatch = (ops + n_other) * self.backend.dispatch_overhead_s
        return StepBreakdown(
            linear_s=linear_s,
            attention_s=self.attention_time(batch, ctx, "decode"),
            comm_s=comm_s,
            other_s=(
                self.elementwise_time(batch)
                + self.backend.fixed_step_overhead_s
            ),
            dispatch_s=dispatch,
        )

    def prefill_step(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Breakdown of the prefill pass."""
        n_tokens = batch * prompt_len
        linear_s, ops, comm_s = self.linear_time(n_tokens)
        comm_s += self._pipeline_hop_time(n_tokens)
        n_other = self.backend.other_ops_per_layer * self.model.n_layers
        dispatch = (ops + n_other) * self.backend.dispatch_overhead_s
        return StepBreakdown(
            linear_s=linear_s,
            attention_s=self.attention_time(batch, prompt_len, "prefill"),
            comm_s=comm_s,
            other_s=(
                self.elementwise_time(n_tokens)
                + self.backend.fixed_step_overhead_s
            ),
            dispatch_s=dispatch,
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def max_wave_batch(self, final_ctx: int) -> int:
        """Largest concurrent batch whose final context fits in KV."""
        block = self.kv_spec.block_size
        tokens_per_seq = ceil_div(final_ctx, block) * block
        return int(self.plan.kv_tokens // tokens_per_seq)

    def run(
        self, batch_size: int, prompt_len: int, output_len: int
    ) -> ServeResult:
        """Benchmark one fixed-batch generation run.

        When the batch's final context exceeds KV capacity, the engine models
        vLLM's recompute-preemption: all sequences decode together until the
        cache fills, the overflow group is evicted and later re-prefilled to
        finish — weight compression shows up as throughput precisely here.
        """
        if batch_size <= 0 or prompt_len <= 0 or output_len <= 0:
            raise ConfigError("batch, prompt and output lengths must be > 0")
        final_ctx = prompt_len + output_len
        fit_batch = self.max_wave_batch(final_ctx)
        if fit_batch == 0:
            raise CapacityError(
                f"{self.model.name} on {self.gpu.name} x{self.tp}"
                f" ({self.backend.name}): a single {final_ctx}-token"
                " sequence does not fit in KV cache"
            )
        prefill_s, decode_s, accum, n_steps = self._run_batch(
            batch_size, prompt_len, output_len
        )
        wave_batch = min(batch_size, fit_batch)
        return ServeResult(
            model=self.model.name,
            gpu=self.gpu.name,
            backend=self.backend.name,
            tensor_parallel=self.tp,
            batch_size=batch_size,
            prompt_len=prompt_len,
            output_len=output_len,
            prefill_s=prefill_s,
            decode_s=decode_s,
            avg_step=accum.scaled(1.0 / max(n_steps, 1)),
            memory=self.plan,
            effective_batch=wave_batch,
            n_waves=ceil_div(batch_size, wave_batch),
        )

    def _run_batch(
        self, batch: int, prompt_len: int, output_len: int
    ) -> tuple[float, float, StepBreakdown, int]:
        """Run a batch, preempting the overflow group when KV fills.

        Returns (prefill seconds, decode seconds, summed breakdown, steps).
        """
        if batch <= self.max_wave_batch(prompt_len + output_len):
            prefill_s, decode_s, accum = self._run_wave(
                batch, prompt_len, output_len
            )
            return prefill_s, decode_s, accum, output_len

        survivors = self.max_wave_batch(prompt_len + output_len)
        preempted = batch - survivors
        # Steps every sequence can take before the cache fills.
        per_seq_tokens = self.plan.kv_tokens // batch
        s_star = min(max(per_seq_tokens - prompt_len, 0), output_len - 1)

        prefill_s = self.prefill_step(batch, prompt_len).total_s
        decode_s = 0.0
        accum = StepBreakdown()
        for step in range(s_star):
            breakdown = self.decode_step(batch, prompt_len + step)
            decode_s += breakdown.total_s
            accum.add(breakdown)
        for step in range(s_star, output_len):
            breakdown = self.decode_step(survivors, prompt_len + step)
            decode_s += breakdown.total_s
            accum.add(breakdown)
        n_steps = output_len

        # The evicted group is re-prefilled over its accumulated context and
        # finishes its remaining tokens (recursively, in case it still does
        # not fit).
        sub_prefill, sub_decode, sub_accum, sub_steps = self._run_batch(
            preempted, prompt_len + max(s_star, 1), output_len - s_star
        )
        prefill_s += sub_prefill
        decode_s += sub_decode
        accum.add(sub_accum)
        n_steps += sub_steps
        return prefill_s, decode_s, accum, n_steps

    def run_continuous(
        self,
        requests: list[Request],
        limits: SchedulerLimits | None = None,
    ) -> "ContinuousResult":
        """Serve a request trace with continuous batching (vLLM's mode).

        Requests carry ``arrival_s`` timestamps; the engine advances a
        simulated clock, admitting work FCFS under KV/batch limits, charging
        a prefill pass for each admission group and one decode step per
        iteration.  This is the serving mode in which the KV capacity freed
        by weight compression turns into admissible concurrency.
        """
        if not requests:
            raise ConfigError("run_continuous needs at least one request")
        kv = PagedKVCache(self.kv_spec, self.plan.kv_bytes)
        scheduler = ContinuousBatchScheduler(kv, limits)
        pending = sorted(requests, key=lambda r: r.arrival_s)
        clock = 0.0
        n_steps = 0
        peak_running = 0

        while pending or scheduler.has_work:
            while pending and pending[0].arrival_s <= clock:
                scheduler.submit(pending.pop(0))
            admitted = scheduler.admit()
            if admitted:
                prompt = max(r.prompt_len for r in admitted)
                clock += self.prefill_step(len(admitted), prompt).total_s
                for req in admitted:
                    req.first_token_s = clock
            if not scheduler.running:
                if pending:
                    clock = max(clock, pending[0].arrival_s)
                    continue
                break
            batch = len(scheduler.running)
            peak_running = max(peak_running, batch)
            mean_ctx = int(
                sum(r.context_len for r in scheduler.running) / batch
            )
            clock += self.decode_step(batch, max(mean_ctx, 1)).total_s
            n_steps += 1
            for req in scheduler.step():
                if req.done:
                    req.finish_s = clock

        finished = scheduler.finished
        tokens = sum(r.generated for r in finished)
        latencies = sorted(r.finish_s - r.arrival_s for r in finished)
        mid = len(latencies) // 2
        return ContinuousResult(
            makespan_s=clock,
            tokens_generated=tokens,
            throughput_tok_s=tokens / clock if clock > 0 else 0.0,
            n_requests=len(finished),
            n_steps=n_steps,
            peak_running=peak_running,
            latency_p50_s=latencies[mid],
            latency_max_s=latencies[-1],
        )

    def _run_wave(
        self, batch: int, prompt_len: int, output_len: int
    ) -> tuple[float, float, StepBreakdown]:
        """Drive one wave through the scheduler and the block allocator."""
        kv = PagedKVCache(self.kv_spec, self.plan.kv_bytes)
        requests = [
            Request(request_id=i, prompt_len=prompt_len,
                    max_new_tokens=output_len)
            for i in range(batch)
        ]
        scheduler = StaticBatchScheduler(requests, kv)
        scheduler.prefill()
        prefill_s = self.prefill_step(batch, prompt_len).total_s

        decode_s = 0.0
        accum = StepBreakdown()
        step_index = 0
        while not scheduler.finished:
            ctx = prompt_len + step_index
            breakdown = self.decode_step(batch, ctx)
            decode_s += breakdown.total_s
            accum.add(breakdown)
            scheduler.step()
            step_index += 1
        return prefill_s, decode_s, accum
