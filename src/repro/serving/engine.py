"""The inference engine: a facade over the three-layer serving stack.

The serving simulator is split into three decoupled subsystems:

* **cost layer** (:mod:`repro.serving.costs`) — :class:`StepCostModel`
  implementations owning the linear/attention/elementwise/dispatch math
  (per backend: cuBLAS, stage-aware TCA-TBE, decompress-per-use), plus a
  memoizing wrapper that buckets decode contexts for long traces;
* **scheduling layer** (:mod:`repro.serving.scheduler`) — policy hierarchy
  (FCFS / priority / SJF), chunked-prefill planning under
  ``max_batched_tokens``, and recompute preemption when KV fills;
* **serving core + metrics** (:mod:`repro.serving.serve`,
  :mod:`repro.serving.metrics`) — the event-driven clock loop and the
  TTFT/TPOT/percentile/SLO-goodput accounting.

:class:`InferenceEngine` wires the three together for one
(model, gpu, backend) triple and keeps the seed-era entry points stable:
``run(...)`` for the paper's fixed-batch benchmarks (§6.5, with vLLM-style
wave recompute when a batch's final context overflows KV) and
``run_continuous(...)`` for the original group-prefill trace replay.  New
serving scenarios go through :meth:`InferenceEngine.serve`, which exposes
the full scheduler-policy / chunked-prefill / SLO surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..compression import (
    ACTIVATION_SIGMA,
    CompressionSpec,
    TensorClass,
    get_codec_policy,
    resolve_spec,
)
from ..errors import CapacityError, ConfigError
from ..gpu.specs import GpuSpec
from ..utils import ceil_div
from .backends import BackendConfig
from .costs import EngineCostModel, StepBreakdown
from .kvcache import CompressedKVCacheSpec, KVCacheSpec, PagedKVCache
from .memory_plan import DEFAULT_GPU_MEM_UTIL, MemoryPlan, plan_memory
from .metrics import ContinuousResult
from .models import ModelSpec
from .scheduler import (
    Request,
    SchedulerLimits,
    StaticBatchScheduler,
)
from .serve import ServingConfig, ServingCore

__all__ = [
    "InferenceEngine",
    "ServeResult",
    "StepBreakdown",
    "ContinuousResult",
]


@dataclass
class ServeResult:
    """Outcome of one benchmark run (fixed batch, fixed lengths)."""

    model: str
    gpu: str
    backend: str
    tensor_parallel: int
    batch_size: int
    prompt_len: int
    output_len: int
    prefill_s: float
    decode_s: float
    avg_step: StepBreakdown
    memory: MemoryPlan
    effective_batch: int
    n_waves: int
    details: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        """End-to-end request latency (full output sequence)."""
        return self.prefill_s + self.decode_s

    @property
    def latency_s(self) -> float:
        """Alias for the paper's latency metric."""
        return self.total_s

    @property
    def throughput_tok_s(self) -> float:
        """Output tokens per second across the batch."""
        return self.batch_size * self.output_len / self.total_s


class InferenceEngine:
    """Step-level serving simulator for one (model, gpu, backend) triple."""

    def __init__(
        self,
        model: ModelSpec,
        gpu: GpuSpec,
        backend: BackendConfig,
        tensor_parallel: int = 1,
        gpu_mem_util: float = DEFAULT_GPU_MEM_UTIL,
        pipeline_parallel: int = 1,
        kv_compression_ratio: float = 1.0,
    ):
        """``kv_compression_ratio > 1`` enables the §7 KV-cache extension:
        blocks are stored Vector-TBE-compressed, multiplying token capacity
        and shrinking the attention kernel's DRAM traffic."""
        if tensor_parallel > 1 and not backend.supports_tensor_parallel:
            raise ConfigError(
                f"backend {backend.name!r} does not support tensor"
                " parallelism (use pipeline_parallel for device-map"
                " sharding)"
            )
        self.model = model
        self.gpu = gpu
        self.backend = backend
        self.tp = tensor_parallel
        self.pp = pipeline_parallel
        self.gpu_mem_util = gpu_mem_util
        self.costs = EngineCostModel(
            model, gpu, backend,
            tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
            kv_compression_ratio=kv_compression_ratio,
        )
        self.kv_ratio = self.costs.kv_ratio
        self.plan = plan_memory(
            model, gpu, backend.weight_scheme, tensor_parallel,
            gpu_mem_util, pipeline_parallel=pipeline_parallel,
        )
        self.kv_spec = KVCacheSpec.for_model(
            model, tensor_parallel, pipeline_parallel
        )
        if self.kv_ratio > 1.0:
            # Same bytes, more tokens: capacity scales with the ratio.
            from dataclasses import replace

            extra = int(self.plan.kv_bytes // (
                self.kv_spec.bytes_per_token / self.kv_ratio
            ))
            self.plan = replace(self.plan, kv_tokens=extra)

    # ------------------------------------------------------------------
    # Cost-layer facade (delegates to the step cost model)
    # ------------------------------------------------------------------
    def linear_time(self, n_tokens: int) -> tuple[float, int, float]:
        """(kernel seconds, op count, all-reduce seconds) for one pass."""
        return self.costs.linear_time(n_tokens)

    def attention_time(self, batch: int, ctx: int, phase: str) -> float:
        """Per-step attention across all layers (one TP shard)."""
        return self.costs.attention_time(batch, ctx, phase)

    def elementwise_time(self, n_tokens: int) -> float:
        """Norms, RoPE, activation and residual traffic per pass."""
        return self.costs.elementwise_time(n_tokens)

    def decode_step(self, batch: int, ctx: int) -> StepBreakdown:
        """Breakdown of one decode step at context length ``ctx``."""
        return self.costs.decode_step(batch, ctx)

    def prefill_step(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Breakdown of the prefill pass."""
        return self.costs.prefill_step(batch, prompt_len)

    # ------------------------------------------------------------------
    # Fixed-batch runs (the paper's §6.5 benchmark mode)
    # ------------------------------------------------------------------
    def max_wave_batch(self, final_ctx: int) -> int:
        """Largest concurrent batch whose final context fits in KV."""
        block = self.kv_spec.block_size
        tokens_per_seq = ceil_div(final_ctx, block) * block
        return int(self.plan.kv_tokens // tokens_per_seq)

    def run(
        self, batch_size: int, prompt_len: int, output_len: int
    ) -> ServeResult:
        """Benchmark one fixed-batch generation run.

        When the batch's final context exceeds KV capacity, the engine models
        vLLM's recompute-preemption: all sequences decode together until the
        cache fills, the overflow group is evicted and later re-prefilled to
        finish — weight compression shows up as throughput precisely here.
        """
        if batch_size <= 0 or prompt_len <= 0 or output_len <= 0:
            raise ConfigError("batch, prompt and output lengths must be > 0")
        final_ctx = prompt_len + output_len
        fit_batch = self.max_wave_batch(final_ctx)
        if fit_batch == 0:
            raise CapacityError(
                f"{self.model.name} on {self.gpu.name} x{self.tp}"
                f" ({self.backend.name}): a single {final_ctx}-token"
                " sequence does not fit in KV cache"
            )
        prefill_s, decode_s, accum, n_steps = self._run_batch(
            batch_size, prompt_len, output_len
        )
        wave_batch = min(batch_size, fit_batch)
        return ServeResult(
            model=self.model.name,
            gpu=self.gpu.name,
            backend=self.backend.name,
            tensor_parallel=self.tp,
            batch_size=batch_size,
            prompt_len=prompt_len,
            output_len=output_len,
            prefill_s=prefill_s,
            decode_s=decode_s,
            avg_step=accum.scaled(1.0 / max(n_steps, 1)),
            memory=self.plan,
            effective_batch=wave_batch,
            n_waves=ceil_div(batch_size, wave_batch),
        )

    def _run_batch(
        self, batch: int, prompt_len: int, output_len: int
    ) -> tuple[float, float, StepBreakdown, int]:
        """Run a batch, preempting the overflow group when KV fills.

        Returns (prefill seconds, decode seconds, summed breakdown, steps).
        """
        if batch <= self.max_wave_batch(prompt_len + output_len):
            prefill_s, decode_s, accum = self._run_wave(
                batch, prompt_len, output_len
            )
            return prefill_s, decode_s, accum, output_len

        survivors = self.max_wave_batch(prompt_len + output_len)
        preempted = batch - survivors
        # Steps every sequence can take before the cache fills.
        per_seq_tokens = self.plan.kv_tokens // batch
        s_star = min(max(per_seq_tokens - prompt_len, 0), output_len - 1)

        prefill_s = self.prefill_step(batch, prompt_len).total_s
        decode_s = 0.0
        accum = StepBreakdown()
        for step in range(s_star):
            breakdown = self.decode_step(batch, prompt_len + step)
            decode_s += breakdown.total_s
            accum.add(breakdown)
        for step in range(s_star, output_len):
            breakdown = self.decode_step(survivors, prompt_len + step)
            decode_s += breakdown.total_s
            accum.add(breakdown)
        n_steps = output_len

        # The evicted group is re-prefilled over its accumulated context and
        # finishes its remaining tokens (recursively, in case it still does
        # not fit).
        sub_prefill, sub_decode, sub_accum, sub_steps = self._run_batch(
            preempted, prompt_len + max(s_star, 1), output_len - s_star
        )
        prefill_s += sub_prefill
        decode_s += sub_decode
        accum.add(sub_accum)
        n_steps += sub_steps
        return prefill_s, decode_s, accum, n_steps

    def _run_wave(
        self, batch: int, prompt_len: int, output_len: int
    ) -> tuple[float, float, StepBreakdown]:
        """Drive one wave through the scheduler and the block allocator."""
        kv = PagedKVCache(self.kv_spec, self.plan.kv_bytes)
        requests = [
            Request(request_id=i, prompt_len=prompt_len,
                    max_new_tokens=output_len)
            for i in range(batch)
        ]
        scheduler = StaticBatchScheduler(requests, kv)
        scheduler.prefill()
        prefill_s = self.prefill_step(batch, prompt_len).total_s

        decode_s = 0.0
        accum = StepBreakdown()
        step_index = 0
        while not scheduler.finished:
            ctx = prompt_len + step_index
            breakdown = self.decode_step(batch, ctx)
            decode_s += breakdown.total_s
            accum.add(breakdown)
            scheduler.step()
            step_index += 1
        return prefill_s, decode_s, accum

    # ------------------------------------------------------------------
    # Trace serving (continuous batching)
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[Request],
        config: ServingConfig | None = None,
        limits: SchedulerLimits | None = None,
        deadline_s: float | None = None,
    ) -> ContinuousResult:
        """Serve a request trace through the event-driven serving core.

        The default :class:`~repro.serving.serve.ServingConfig` enables
        chunked prefill under the FCFS policy; pass a config to pick a
        policy (``"fcfs"`` / ``"priority"`` / ``"sjf"``), an SLO target, or
        cost-model memoization.  ``limits`` overrides the config's
        scheduler limits for convenience.

        ``config.mode`` selects the serving topology — both run on the
        shared event kernel (:mod:`repro.serving.kernel`):
        ``"colocated"`` (default) runs one engine through
        :class:`~repro.serving.serve.ServingCore`, bit-identical to the
        pre-disaggregation behaviour; ``"disaggregated"`` routes through
        :class:`~repro.serving.disagg.DisaggregatedCore`, a prefill pool
        and a decode pool joined by a KV-transfer link sized by
        ``config.disagg`` (each replica gets this engine's full KV
        budget).  The disaggregated pipeline's coupling knobs all live
        on :class:`~repro.serving.serve.DisaggConfig`: decode→prefill
        backpressure watermarks (``backpressure=BackpressureConfig``),
        ``link_topology="shared"|"per_replica"``, chunked prefill inside
        the prefill pool (``prefill_mode="chunked"``) and analytic
        layer-wise prefill/transfer overlap (``overlap_fraction``).

        ``config.weight_codec`` / ``config.kv_codec`` /
        ``config.transfer_codec`` override the engine's construction-time
        compression choices through the unified registry: the run prices
        linear layers under the weight codec, streams (and budgets) the
        KV cache under the KV codec, and ships wire bytes under the
        transfer codec — any combination of registered codecs is valid.
        Slots left ``None`` keep this engine's own cost model, KV spec
        and memory plan, so default configs are bit-compatible.

        Any slot set to ``"auto"`` is resolved right here, at config
        time, by ``config.codec_policy`` against this engine's
        (model, gpu) pair — per tensor class for the weight slot — and
        ``config.calibration`` makes every ratio in the run resolve
        measured rather than analytic (:mod:`repro.compression`'s
        calibration subsystem).  :meth:`resolve_codecs` exposes the
        same selection for inspection without running a trace.

        ``deadline_s`` bounds the simulation (both topologies): the run
        stops before the first event past it and requests still in
        flight are counted as ``n_unfinished`` on the result — the
        open-loop overload contract of :mod:`repro.serving.openloop`.
        ``None`` (default) runs to completion, bit-compatibly.
        """
        config = (config or ServingConfig()).with_limits(limits)
        config, layer_specs = self._resolve_auto(config)
        costs, kv_spec, kv_bytes = self._codec_stack(config, layer_specs)
        if config.mode == "disaggregated":
            from .disagg import DisaggregatedCore

            disagg_core = DisaggregatedCore(
                costs, kv_spec, kv_bytes, config
            )
            return disagg_core.serve(requests, deadline_s=deadline_s)
        if config.mode == "fleet":
            from .fleet import FleetCore

            fleet_core = FleetCore(costs, kv_spec, kv_bytes, config)
            return fleet_core.serve(requests, deadline_s=deadline_s)
        core = ServingCore(costs, kv_spec, kv_bytes, config)
        return core.serve(requests, deadline_s=deadline_s)

    # ------------------------------------------------------------------
    # Codec auto-selection (the calibration + policy subsystem)
    # ------------------------------------------------------------------
    def _selection_classes(self) -> dict[str, TensorClass]:
        """Tensor classes at this engine's *sharded* geometry.

        The sibling of :func:`~repro.compression.tensor_classes_for_model`
        (which samples for calibration at the full layer shapes): weight
        sigmas here come from the TP-sharded layer dims, exactly the
        sigmas ``EngineCostModel`` prices at, so auto selection's
        analytic fallback and the cost layer agree.  Measured lookups
        key on the class *name* and are sigma-independent.
        """
        from .parallel import shard_layer
        from .weights import layer_sigma

        classes: dict[str, TensorClass] = {}
        for layer in self.model.linear_layers():
            layout = shard_layer(layer, self.tp)
            name = f"weight:{layer.kind}"
            classes[name] = TensorClass(
                name, "weight", layer_sigma(layer.kind, layout.m, layout.k)
            )
        classes["kv:block"] = TensorClass(
            "kv:block", "kv", ACTIVATION_SIGMA
        )
        classes["wire:kv"] = TensorClass(
            "wire:kv", "wire", ACTIVATION_SIGMA
        )
        classes["prefix:block"] = TensorClass(
            "prefix:block", "prefix", ACTIVATION_SIGMA
        )
        return classes

    def resolve_codecs(self, config: ServingConfig) -> dict:
        """What the codec slots of ``config`` resolve to on this engine.

        Returns ``{"policy": <name>, "weight": {layer kind: spec},
        "kv": spec, "transfer": spec, "prefix": spec}`` with settled
        :class:`~repro.compression.CompressionSpec` values — ``"auto"``
        slots through the policy, named slots through the same
        per-class, calibration-aware resolution ``serve`` prices with.
        Pure inspection: running :meth:`serve` with the same config
        uses exactly this selection (the one exception is an all-default
        config with no calibration, where ``serve`` keeps the engine's
        construction-time stack and this method reports the equivalent
        analytic per-class resolution of it).
        """
        policy = get_codec_policy(config.codec_policy)
        profile = config.calibration
        classes = self._selection_classes()

        def slot_spec(slot, placement, cls):
            tcls = classes[cls]
            if slot == "auto":
                return policy.select(
                    placement, self.gpu, profile=profile,
                    sigma=tcls.sigma, cls=cls,
                )
            name = slot
            if name is None:
                name = (
                    "none" if placement == "prefix" else
                    config.resolved_transfer_codec
                    if placement == "wire" else
                    self.costs.kv_spec_c if placement == "kv"
                    else self.costs.weight_spec.codec
                )
            return resolve_spec(
                name, placement, sigma=tcls.sigma, cls=cls,
                profile=profile,
            )

        weight: dict[str, CompressionSpec] = {}
        for name, tcls in classes.items():
            if tcls.placement != "weight":
                continue
            kind = name.split(":", 1)[1]
            weight[kind] = slot_spec(config.weight_codec, "weight", name)
        return {
            "policy": policy.name,
            "weight": weight,
            "kv": slot_spec(config.kv_codec, "kv", "kv:block"),
            "transfer": slot_spec(
                config.transfer_codec, "wire", "wire:kv"
            ),
            "prefix": slot_spec(
                (
                    config.prefix_cache.codec
                    if config.prefix_cache is not None else None
                ),
                "prefix", "prefix:block",
            ),
        }

    def _resolve_auto(
        self, config: ServingConfig
    ) -> tuple[ServingConfig, dict[str, CompressionSpec] | None]:
        """Settle ``"auto"`` slots into concrete codecs at config time.

        Returns the (possibly rewritten) config plus the per-layer
        weight spec mapping for an auto weight slot (``None``
        otherwise).  Configs without auto slots pass through untouched —
        the bit-compatibility fast path.
        """
        if not config.auto_slots:
            return config, None
        selection = self.resolve_codecs(config)
        layer_specs = None
        updates: dict[str, object] = {}
        if config.weight_codec == "auto":
            layer_specs = selection["weight"]
            # The dominant name keeps the rewritten config readable; the
            # cost model prices through the per-layer mapping.
            updates["weight_codec"] = max(
                layer_specs.values(), key=lambda s: s.ratio
            ).codec
        if config.kv_codec == "auto":
            updates["kv_codec"] = selection["kv"].codec
        if config.transfer_codec == "auto":
            updates["transfer_codec"] = selection["transfer"].codec
        if (
            config.prefix_cache is not None
            and config.prefix_cache.codec == "auto"
        ):
            updates["prefix_cache"] = replace(
                config.prefix_cache, codec=selection["prefix"].codec
            )
        return replace(config, **updates), layer_specs

    def _codec_stack(
        self,
        config: ServingConfig,
        layer_specs: dict[str, CompressionSpec] | None = None,
    ) -> tuple[EngineCostModel, KVCacheSpec, float]:
        """Resolve the config's codec slots into (costs, kv spec, bytes).

        Registry resolution happens here, once per ``serve`` call — the
        cores and schedulers downstream only ever see settled specs.
        With no codec slots, no calibration profile and no per-layer
        specs this returns the engine's own stack unchanged (the
        bit-compatibility guarantee).
        """
        if (
            config.weight_codec is None
            and config.kv_codec is None
            and config.calibration is None
            and layer_specs is None
        ):
            return self.costs, self.kv_spec, self.plan.kv_bytes
        costs = EngineCostModel(
            self.model, self.gpu, self.backend,
            tensor_parallel=self.tp,
            pipeline_parallel=self.pp,
            weight_codec=(
                layer_specs if layer_specs is not None
                else config.weight_codec
            ),
            # A None slot keeps the engine's construction-time KV spec
            # (including any kv_compression_ratio it was built with) —
            # setting a weight codec must not silently change the KV
            # stack.
            kv_codec=(
                config.kv_codec if config.kv_codec is not None
                else self.costs.kv_spec_c
            ),
            calibration=config.calibration,
        )
        plan = self.plan
        if config.weight_codec is not None or costs.layer_specs is not None:
            # A different weight codec changes the weight footprint, and
            # the memory freed (or reclaimed) moves the KV budget.
            scheme = (
                "dense" if costs.weight_spec.identity
                else costs.weight_spec.codec
            )
            plan = plan_memory(
                self.model, self.gpu, scheme, self.tp,
                self.gpu_mem_util, pipeline_parallel=self.pp,
                layer_ratios=costs.layer_ratios(),
            )
        kv_spec: KVCacheSpec | CompressedKVCacheSpec = self.kv_spec
        if config.kv_codec is not None and costs.kv_ratio > 1.0:
            # Compressed residency: same bytes, proportionally more
            # tokens through the block allocator.  Only an *explicit*
            # kv_codec slot scales capacity — a None slot keeps the
            # engine's historical serve() geometry (raw block budget,
            # compressed streaming), bit-compatible with PR 2.
            kv_spec = CompressedKVCacheSpec(
                inner=self.kv_spec,
                ratio=costs.kv_ratio,
                codec=costs.kv_spec_c.codec,
            )
        return costs, kv_spec, plan.kv_bytes

    def run_continuous(
        self,
        requests: list[Request],
        limits: SchedulerLimits | None = None,
    ) -> ContinuousResult:
        """Serve a request trace with continuous batching (vLLM's mode).

        Seed-compatible facade: FCFS admission, one whole-prompt prefill
        pass per admission group, one decode step per iteration — the mode
        in which KV capacity freed by weight compression turns into
        admissible concurrency.  The result now also carries interpolated
        percentiles, TTFT/TPOT and SLO goodput; use :meth:`serve` for
        chunked prefill and non-FCFS policies.
        """
        if not requests:
            raise ConfigError("run_continuous needs at least one request")
        return self.serve(
            requests,
            config=ServingConfig(policy="fcfs", prefill_mode="group"),
            limits=limits,
        )
