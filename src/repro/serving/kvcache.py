"""Paged KV-cache manager (PagedAttention-style block allocator).

§6.5 of the paper: the memory freed by weight compression is "automatically
repurposed by the memory manager to expand the KV cache capacity", growing
batch sizes and context lengths.  This module is that memory manager: fixed
-size token blocks, per-sequence block tables, exact capacity accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compression import resolve_spec
from ..errors import CapacityError, ConfigError, SchedulingError
from ..utils import ceil_div
from .models import ModelSpec

#: vLLM's default tokens-per-block.
DEFAULT_BLOCK_SIZE = 16


@dataclass(frozen=True)
class KVCacheSpec:
    """Geometry of the KV cache for one model shard."""

    n_layers: int
    kv_heads: int
    head_dim: int
    block_size: int = DEFAULT_BLOCK_SIZE
    dtype_bytes: int = 2

    @classmethod
    def for_model(
        cls, model: ModelSpec, tensor_parallel: int = 1,
        pipeline_parallel: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "KVCacheSpec":
        """KV geometry of one shard.

        Tensor parallelism splits KV heads; pipeline parallelism splits
        layers (each stage caches only its own layers).
        """
        kv_heads = max(1, model.n_kv_heads // tensor_parallel)
        n_layers = ceil_div(model.n_layers, pipeline_parallel)
        return cls(
            n_layers=n_layers,
            kv_heads=kv_heads,
            head_dim=model.head_dim,
            block_size=block_size,
        )

    @property
    def bytes_per_token(self) -> int:
        """K and V bytes for one token across all layers of this shard."""
        return (
            2 * self.n_layers * self.kv_heads * self.head_dim
            * self.dtype_bytes
        )

    @property
    def bytes_per_block(self) -> int:
        """Bytes of one block (``block_size`` tokens)."""
        return self.bytes_per_token * self.block_size

    @property
    def raw_bytes_per_token(self) -> int:
        """Uncompressed K+V bytes per token (identical here; the
        compressed spec reports its inner geometry)."""
        return self.bytes_per_token


@dataclass(frozen=True)
class CompressedKVCacheSpec:
    """KV geometry with losslessly compressed blocks.

    Wraps a :class:`KVCacheSpec`; bytes per token shrink by ``ratio``,
    which the block allocator and memory planner then turn into
    proportionally more token capacity.  Any registered codec can back
    it — build one with :meth:`from_codec` and the registry resolves
    the analytic KV ratio (``extensions.kvcomp`` keeps its historical
    Vector-TBE constructor on top of this class).
    """

    inner: KVCacheSpec
    ratio: float
    codec: str = "vector_tbe"

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ConfigError("KV compression ratio must be >= 1")

    @classmethod
    def from_codec(
        cls,
        inner: KVCacheSpec,
        codec: str,
        ratio: float | None = None,
        profile=None,
    ) -> "CompressedKVCacheSpec":
        """Compressed geometry for any registered codec.

        ``ratio=None`` resolves the codec's activation ratio through the
        compression registry — **measured** when a calibration
        ``profile`` (:class:`~repro.compression.MeasuredRatioProfile`)
        is given or installed process-wide, analytic otherwise; an
        explicit ratio overrides both.
        """
        spec = resolve_spec(codec, "kv", ratio=ratio, profile=profile)
        return cls(inner=inner, ratio=spec.ratio, codec=spec.codec)

    @property
    def bytes_per_token(self) -> int:
        """Compressed K+V bytes per token (ceil, per-block container)."""
        return max(1, math.ceil(self.inner.bytes_per_token / self.ratio))

    @property
    def bytes_per_block(self) -> int:
        """Compressed bytes of one block."""
        return self.bytes_per_token * self.inner.block_size

    @property
    def raw_bytes_per_token(self) -> int:
        """Uncompressed K+V bytes per token (what goes on a raw wire)."""
        return self.inner.bytes_per_token

    @property
    def capacity_gain(self) -> float:
        """Token-capacity multiplier at equal memory."""
        return self.inner.bytes_per_token / self.bytes_per_token

    # Geometry passthrough: the block allocator and serving cores read
    # these off whichever spec flavour they were handed.
    @property
    def block_size(self) -> int:
        return self.inner.block_size

    @property
    def n_layers(self) -> int:
        return self.inner.n_layers

    @property
    def kv_heads(self) -> int:
        return self.inner.kv_heads

    @property
    def head_dim(self) -> int:
        return self.inner.head_dim

    @property
    def dtype_bytes(self) -> int:
        return self.inner.dtype_bytes


class PagedKVCache:
    """Block allocator with per-sequence block tables."""

    def __init__(self, spec: KVCacheSpec, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise CapacityError(
                f"KV cache capacity must be positive, got {capacity_bytes}"
            )
        self.spec = spec
        self.n_blocks = int(capacity_bytes // spec.bytes_per_block)
        if self.n_blocks == 0:
            raise CapacityError(
                "KV capacity smaller than a single block:"
                f" {capacity_bytes} < {spec.bytes_per_block}"
            )
        self._free: list[int] = list(range(self.n_blocks))
        self._tables: dict[int, list[int]] = {}
        self._lengths: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def capacity_tokens(self) -> int:
        """Total token slots."""
        return self.n_blocks * self.spec.block_size

    @property
    def free_blocks(self) -> int:
        """Blocks currently unallocated."""
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Blocks currently held by sequences."""
        return self.n_blocks - len(self._free)

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use."""
        return self.used_blocks / self.n_blocks

    def sequence_length(self, seq_id: int) -> int:
        """Tokens currently cached for ``seq_id``."""
        if seq_id not in self._lengths:
            raise SchedulingError(f"unknown sequence {seq_id}")
        return self._lengths[seq_id]

    def block_table(self, seq_id: int) -> list[int]:
        """The sequence's block table (copy)."""
        if seq_id not in self._tables:
            raise SchedulingError(f"unknown sequence {seq_id}")
        return list(self._tables[seq_id])

    # ------------------------------------------------------------------
    def blocks_needed(self, seq_id: int | None, n_tokens: int) -> int:
        """Blocks that must be newly allocated to grow by ``n_tokens``."""
        current = self._lengths.get(seq_id, 0) if seq_id is not None else 0
        have = ceil_div(current, self.spec.block_size) if current else 0
        need = ceil_div(current + n_tokens, self.spec.block_size)
        return need - have

    def can_allocate(self, seq_id: int | None, n_tokens: int) -> bool:
        """Whether growing by ``n_tokens`` fits without eviction."""
        return self.blocks_needed(seq_id, n_tokens) <= len(self._free)

    def allocate(self, seq_id: int, n_tokens: int) -> None:
        """Create a sequence and reserve blocks for its first tokens."""
        if seq_id in self._tables:
            raise SchedulingError(f"sequence {seq_id} already allocated")
        if n_tokens <= 0:
            raise SchedulingError("initial allocation must be > 0 tokens")
        self._tables[seq_id] = []
        self._lengths[seq_id] = 0
        self._grow(seq_id, n_tokens)

    def append_token(self, seq_id: int, n_tokens: int = 1) -> None:
        """Extend an existing sequence by ``n_tokens`` (decode steps)."""
        if seq_id not in self._tables:
            raise SchedulingError(f"unknown sequence {seq_id}")
        self._grow(seq_id, n_tokens)

    def append_decode(self, seq_ids: list[int]) -> None:
        """Append one token to each sequence (one decode iteration).

        The batched form of :meth:`append_token` — one call per step
        instead of one per sequence, which is the serving loop's hottest
        allocator path.  Raises partway on exhaustion like the sequential
        equivalent; callers that preempt first never hit that.
        """
        lengths = self._lengths
        block = self.spec.block_size
        for seq_id in seq_ids:
            current = lengths.get(seq_id)
            if current is None:
                raise SchedulingError(f"unknown sequence {seq_id}")
            if current % block:
                lengths[seq_id] = current + 1
            else:
                self._grow(seq_id, 1)

    def free(self, seq_id: int) -> int:
        """Release a sequence; returns the number of blocks freed."""
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise SchedulingError(f"unknown sequence {seq_id}")
        del self._lengths[seq_id]
        self._free.extend(table)
        return len(table)

    # ------------------------------------------------------------------
    def _grow(self, seq_id: int, n_tokens: int) -> None:
        if n_tokens == 1:
            # Decode fast path: a token that fits in the sequence's last
            # block needs no allocator work (this is every step of a long
            # decode except one in ``block_size``).
            current = self._lengths[seq_id]
            if current % self.spec.block_size:
                self._lengths[seq_id] = current + 1
                return
        new_blocks = self.blocks_needed(seq_id, n_tokens)
        if new_blocks > len(self._free):
            raise CapacityError(
                f"KV cache exhausted: need {new_blocks} blocks,"
                f" {len(self._free)} free"
            )
        for _ in range(new_blocks):
            self._tables[seq_id].append(self._free.pop())
        self._lengths[seq_id] += n_tokens
