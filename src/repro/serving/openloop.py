"""Open-loop load generation and saturating-rate (knee) search.

Closed-loop replay — the repository's historical mode — feeds the next
request only after earlier ones make room, so an overloaded server
quietly slows its own offered load and every configuration looks
feasible.  **Open-loop** load is the capacity-measurement discipline: a
constant-rate Poisson process fixes every arrival stamp *before the
simulator runs a single step*, so arrivals are completion-independent by
construction and overload shows up as what it is — queues growing
without bound, TTFT diverging, goodput collapsing below the offered
rate.

Three layers:

* :func:`open_loop_arrivals` — the arrival process itself: exponential
  gaps drawn until the horizon is crossed, so the *count* is
  Poisson-random (unlike :func:`~repro.serving.trace.poisson_trace`,
  which fixes the count and lets the horizon float);
* :func:`run_open_loop` — one measurement: materialise a
  :class:`~repro.serving.profiles.WorkloadProfile` trace on those
  stamps, serve it under a hard ``deadline_s`` (overloaded runs
  *terminate*, with the backlog counted as ``n_unfinished``), and
  summarise the steady-state window — arrivals inside
  ``[warmup_s, duration_s - cooldown_s)`` — via
  :meth:`~repro.serving.metrics.ContinuousResult.window_metrics`;
* :func:`find_knee` — bisection over offered rate for the **knee**: the
  highest rate whose measurement still looks feasible (by default
  :func:`goodput_feasible` — steady goodput within ``rel_eps`` of the
  offered rate).  The bracket is probe-bounded, so non-monotone noise
  near saturation can cost accuracy but never termination.

Conservation (property-tested in ``tests/test_openloop.py``): at every
deadline, ``finished + unfinished + rejected == offered``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .metrics import ContinuousResult, ServingMetrics, SLOTarget
from .profiles import WorkloadProfile, get_profile
from .scheduler import Request

__all__ = [
    "open_loop_arrivals",
    "OpenLoopResult",
    "run_open_loop",
    "goodput_feasible",
    "KneeResult",
    "find_knee",
]

#: Gap-draw chunk size: E[count] + 6 sigma covers almost every horizon
#: in one draw; the loop below handles the tail.
_CHUNK_SLACK_SIGMA = 6.0


def open_loop_arrivals(
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
) -> np.ndarray:
    """Poisson arrival stamps in ``[0, duration_s)`` at ``rate_rps``.

    The defining open-loop property: the stamps are a pure function of
    ``(rate_rps, duration_s, seed)`` — the server's speed cannot touch
    them.  Exponential gaps are drawn in vectorised chunks until their
    cumulative sum crosses the horizon, then truncated, so the arrival
    *count* is Poisson-distributed (mean ``rate * duration``) rather
    than fixed.  May legitimately be empty when ``rate * duration`` is
    tiny.
    """
    if rate_rps <= 0:
        raise ConfigError("rate_rps must be positive")
    if duration_s <= 0:
        raise ConfigError("duration_s must be positive")
    rng = np.random.default_rng(seed)
    expected = rate_rps * duration_s
    chunk = max(16, int(expected + _CHUNK_SLACK_SIGMA * np.sqrt(expected)))
    gaps = rng.exponential(1.0 / rate_rps, size=chunk)
    total = float(gaps.sum())
    parts = [gaps]
    while total < duration_s:
        more = rng.exponential(1.0 / rate_rps, size=chunk)
        parts.append(more)
        total += float(more.sum())
    arrivals = np.cumsum(np.concatenate(parts) if len(parts) > 1 else gaps)
    return arrivals[arrivals < duration_s]


@dataclass(frozen=True)
class OpenLoopResult:
    """One open-loop measurement at one offered rate.

    ``result`` is the full deadline-bounded
    :class:`~repro.serving.metrics.ContinuousResult` (conservation:
    ``result.n_requests + result.n_unfinished + result.n_rejected ==
    n_offered``); ``steady`` summarises only the steady-state cohort —
    requests that *arrived* inside ``[steady_start_s, steady_end_s)`` —
    with the window length as the goodput denominator, so
    ``steady.goodput_rps`` is directly comparable to ``rate_rps``.
    """

    profile: str
    rate_rps: float
    duration_s: float
    warmup_s: float
    cooldown_s: float
    deadline_s: float
    n_offered: int
    result: ContinuousResult
    steady: ServingMetrics
    #: Requests whose arrival stamp fell inside the steady window —
    #: counted from the *offered* trace, so never-started requests are
    #: in (``steady.n_timings`` can be smaller).
    n_steady_offered: int = 0

    @property
    def steady_start_s(self) -> float:
        """Steady window start (end of warmup)."""
        return self.warmup_s

    @property
    def steady_end_s(self) -> float:
        """Steady window end (start of cooldown)."""
        return self.duration_s - self.cooldown_s

    @property
    def offered_rps(self) -> float:
        """Realised offered rate (drawn count over the horizon)."""
        return self.n_offered / self.duration_s

    @property
    def steady_offered_rps(self) -> float:
        """Realised offered rate inside the steady window.

        The feasibility reference: at the small request counts a short
        horizon draws, Poisson count noise makes the realised window
        rate differ materially from the nominal ``rate_rps``, and
        goodput can only answer for what actually arrived.
        """
        return self.n_steady_offered / (self.steady_end_s
                                        - self.steady_start_s)

    @property
    def steady_slo_violation_rate(self) -> float:
        """Fraction of steady-offered requests that missed the SLO.

        Offered-based, unlike ``steady.slo_violation_rate`` (which is
        timing-based): a request that never produced a first token by
        the deadline has no timing at all, yet is plainly a violation —
        in deep overload the *entire* steady cohort can be in that
        state.  Good count is recovered from the window goodput
        (``goodput_rps * window length``), so this is exactly
        ``1 - good / offered``; 0 when nothing was offered.
        """
        if self.n_steady_offered == 0:
            return 0.0
        window = self.steady_end_s - self.steady_start_s
        n_good = self.steady.goodput_rps * window
        return max(0.0, 1.0 - n_good / self.n_steady_offered)


def run_open_loop(
    serve,
    profile: str | WorkloadProfile,
    rate_rps: float,
    duration_s: float,
    *,
    warmup_s: float = 0.0,
    cooldown_s: float = 0.0,
    deadline_s: float | None = None,
    slo: SLOTarget | None = None,
    seed: int = 0,
) -> OpenLoopResult:
    """One open-loop run: offer ``rate_rps`` for ``duration_s`` seconds.

    ``serve`` is any callable ``(requests, deadline_s) -> ContinuousResult``
    honouring the deadline contract —
    ``functools.partial``-style wrappers over
    :meth:`~repro.serving.engine.InferenceEngine.serve` in practice, a
    synthetic stub in the unit tests.  Arrivals come from
    :func:`open_loop_arrivals` and lengths from the named profile, both
    fixed before ``serve`` runs: nothing the server does can reshape its
    own offered load.

    ``deadline_s`` defaults to ``3 * duration_s`` — generous drain time
    for a feasible run (which finishes early anyway; the kernel stops at
    its last event, not at the deadline) while bounding an overloaded
    one.  It must cover the full offered horizon (``>= duration_s``).

    ``warmup_s``/``cooldown_s`` trim the steady window: warmup excludes
    the empty-system transient (the first arrivals see an idle server no
    steady state ever sees), cooldown excludes the tail cohort whose
    completions race the deadline.
    """
    profile = get_profile(profile)
    if duration_s <= 0:
        raise ConfigError("duration_s must be positive")
    if warmup_s < 0 or cooldown_s < 0:
        raise ConfigError("warmup_s and cooldown_s must be >= 0")
    if warmup_s + cooldown_s >= duration_s:
        raise ConfigError(
            "warmup_s + cooldown_s must leave a non-empty steady window"
            f" (got {warmup_s} + {cooldown_s} >= {duration_s})"
        )
    if deadline_s is None:
        deadline_s = 3.0 * duration_s
    if deadline_s < duration_s:
        raise ConfigError(
            "deadline_s must cover the offered horizon"
            f" ({deadline_s} < {duration_s})"
        )
    arrivals = open_loop_arrivals(rate_rps, duration_s, seed=seed)
    if arrivals.size == 0:
        # Legitimately nothing offered (tiny rate * duration): an empty
        # measurement, not an error — the knee search probes low rates.
        empty = ContinuousResult.from_run(
            [], makespan_s=0.0, n_steps=0, peak_running=0, slo=slo,
            deadline_s=deadline_s,
        )
        return OpenLoopResult(
            profile=profile.name, rate_rps=rate_rps,
            duration_s=duration_s, warmup_s=warmup_s,
            cooldown_s=cooldown_s, deadline_s=deadline_s, n_offered=0,
            result=empty, steady=empty.metrics,
        )
    requests = profile.trace(arrivals, seed=seed)
    result = serve(requests, deadline_s)
    if result.n_offered != len(requests):
        raise ConfigError(
            "serve callable lost requests:"
            f" finished {result.n_requests} + unfinished"
            f" {result.n_unfinished} + rejected {result.n_rejected}"
            f" != offered {len(requests)}"
        )
    steady = result.window_metrics(
        warmup_s, duration_s - cooldown_s, slo=slo
    )
    n_steady = int(np.count_nonzero(
        (arrivals >= warmup_s) & (arrivals < duration_s - cooldown_s)
    ))
    return OpenLoopResult(
        profile=profile.name,
        rate_rps=rate_rps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        cooldown_s=cooldown_s,
        deadline_s=deadline_s,
        n_offered=len(requests),
        result=result,
        steady=steady,
        n_steady_offered=n_steady,
    )


def goodput_feasible(
    measurement: OpenLoopResult, rel_eps: float = 0.1
) -> bool:
    """Did the steady window sustain the offered rate (within ε)?

    Feasible means steady-window SLO goodput within ``rel_eps`` of the
    *realised* steady-window offered rate
    (:attr:`OpenLoopResult.steady_offered_rps` — what actually arrived,
    which Poisson count noise separates from the nominal rate at short
    horizons).  Below the knee goodput tracks the offered rate; past it
    goodput flattens or collapses while the offered rate keeps climbing,
    so this predicate flips — which is exactly the boundary
    :func:`find_knee` bisects.  A measurement with an empty steady
    window is vacuously feasible (nothing was asked, nothing was
    missed).
    """
    if measurement.n_steady_offered == 0:
        return True
    return measurement.steady.goodput_rps >= (
        (1.0 - rel_eps) * measurement.steady_offered_rps
    )


@dataclass(frozen=True)
class KneeResult:
    """Outcome of a saturating-rate bisection."""

    #: Highest offered rate observed feasible (the knee's lower edge).
    knee_rps: float
    #: Final bracket: ``knee_rps`` feasible, ``infeasible_rps`` not
    #: (``inf`` when even the top of the search range was feasible).
    infeasible_rps: float
    #: Probes actually run, including the bracket endpoints.
    n_probes: int
    #: Every probe as ``(rate_rps, feasible)``, in probe order.
    history: tuple[tuple[float, bool], ...] = field(default=())

    @property
    def converged(self) -> bool:
        """Whether a finite bracket was found and tightened."""
        return np.isfinite(self.infeasible_rps) and self.knee_rps > 0.0


def find_knee(
    probe,
    lo_rps: float,
    hi_rps: float,
    *,
    rate_tol_rps: float = 0.25,
    max_probes: int = 12,
) -> KneeResult:
    """Bisect the feasible/infeasible boundary of ``probe`` over rate.

    ``probe`` is ``(rate_rps) -> bool`` — one open-loop measurement fed
    through a feasibility predicate (:func:`goodput_feasible` composed
    over :func:`run_open_loop`, in the capacity bench).  The search
    first classifies the endpoints: an infeasible ``lo_rps`` returns
    knee 0 (nothing in range is sustainable), a feasible ``hi_rps``
    returns the knee clamped to ``hi_rps`` (saturation is beyond the
    range).  Otherwise it halves the bracket until it is narrower than
    ``rate_tol_rps`` or ``max_probes`` measurements have run.

    Termination is **unconditional**: every iteration either shrinks the
    bracket by half or spends a probe, so a noisy, non-monotone probe
    (goodput jitter near saturation) can misplace the knee by at most
    the bracket width — it cannot loop.  The invariant maintained is
    only that ``lo`` *observed* feasible and ``hi`` *observed*
    infeasible.
    """
    if not 0 < lo_rps < hi_rps:
        raise ConfigError(
            f"need 0 < lo_rps < hi_rps, got ({lo_rps}, {hi_rps})"
        )
    if rate_tol_rps <= 0:
        raise ConfigError("rate_tol_rps must be positive")
    if max_probes < 2:
        raise ConfigError("max_probes must be >= 2 (the endpoints)")
    history: list[tuple[float, bool]] = []

    def measure(rate: float) -> bool:
        ok = bool(probe(rate))
        history.append((rate, ok))
        return ok

    if not measure(lo_rps):
        return KneeResult(
            knee_rps=0.0, infeasible_rps=lo_rps,
            n_probes=len(history), history=tuple(history),
        )
    if measure(hi_rps):
        return KneeResult(
            knee_rps=hi_rps, infeasible_rps=float("inf"),
            n_probes=len(history), history=tuple(history),
        )
    lo, hi = lo_rps, hi_rps
    while hi - lo > rate_tol_rps and len(history) < max_probes:
        mid = 0.5 * (lo + hi)
        if measure(mid):
            lo = mid
        else:
            hi = mid
    return KneeResult(
        knee_rps=lo, infeasible_rps=hi,
        n_probes=len(history), history=tuple(history),
    )
