"""Synthetic weight statistics for the model zoo.

No checkpoints are available in this environment, so weights follow the
paper's own Appendix-A model: per-layer Gaussians with Glorot-style standard
deviations.  Compression ratios are computed *analytically* from the erf
exponent pmf (fast, used by the serving engine for every layer of a 405B
model) and validated against sampled matrices in the tests.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..bf16 import gaussian_bf16_matrix
from ..compression import get_codec, glorot_sigma
from ..errors import ConfigError
from ..kernels.base import WeightCompression
from ..utils import GIB
from .models import ModelSpec


def layer_sigma(kind: str, m: int, k: int) -> float:
    """Per-layer weight standard deviation (Glorot-style).

    ``sigma = sqrt(2 / (fan_in + fan_out))`` matches the magnitude ranges
    observed in trained LLMs (~0.01-0.03); the compression statistics are
    insensitive to the exact value because the exponent pmf's *shape* is
    scale-invariant (Appendix A).  Single-sourced with the calibration
    subsystem (:func:`repro.compression.glorot_sigma`), so measured
    weight classes sample at exactly the sigma the cost layer prices.
    """
    return glorot_sigma(m, k)


@lru_cache(maxsize=4096)
def estimate_layer_compression(
    m: int, k: int, sigma: float, scheme: str = "tcatbe"
) -> WeightCompression:
    """Analytic compression statistics of an (m, k) Gaussian layer.

    Thin facade over the unified registry
    (:mod:`repro.compression`): each codec owns its weight-plane bits
    math (TCA-TBE: ``AverageBits(3)`` at the analytic 7-window coverage
    plus container overhead; entropy baselines: 8 raw bits + exponent
    entropy + container overhead), so this function accepts *any*
    registered codec name.  ``"dense"`` / ``"none"`` return the identity.
    Raises :class:`~repro.errors.ConfigError` for unknown schemes (the
    registry's :class:`~repro.errors.UnknownSpecError` is a subclass).
    """
    codec = get_codec(scheme)
    if codec.identity:
        return WeightCompression.identity()
    return codec.weight_compression(sigma)


def materialize_layer(
    m: int, k: int, sigma: float | None = None, seed: int = 0
) -> np.ndarray:
    """Sample an actual BF16 weight matrix for functional tests/benches."""
    if sigma is None:
        sigma = layer_sigma("generic", m, k)
    return gaussian_bf16_matrix(m, k, sigma=sigma, seed=seed)


def model_compression_report(
    model: ModelSpec, scheme: str = "tcatbe",
    ratios: dict[str, float] | None = None,
) -> dict:
    """Whole-model weight footprint, original vs compressed (§6.5).

    The input embedding stays dense (it is a gather table, not a GEMM);
    every linear layer, LM head included, is compressed.  With
    ``ratios`` given — a mapping from layer *kind* to a (typically
    measured, possibly per-codec-heterogeneous) compression ratio —
    those override the analytic per-layer estimate and ``scheme`` is
    only a label; this is how calibrated/auto-selected weight stacks
    plan memory.
    """
    dense_bytes = float(model.weight_bytes_bf16)
    embed_bytes = 2.0 * model.embedding_params
    if model.tie_embeddings:
        # Tied models store one table, used by both ends; keep it dense.
        compressed = embed_bytes
        layers = [
            l for l in model.linear_layers() if l.kind != "lm_head"
        ]
    else:
        compressed = embed_bytes
        layers = model.linear_layers()
    per_layer = {}
    for layer in layers:
        if ratios is not None:
            if layer.kind not in ratios:
                # A silent 1.0 here would overstate the weight footprint
                # and quietly shrink the KV budget; mirror the cost
                # model's loud guard for the same omission.
                raise ConfigError(
                    f"layer_ratios misses layer kind {layer.kind!r};"
                    f" got {sorted(ratios)}"
                )
            ratio = float(ratios[layer.kind])
        else:
            ratio = estimate_layer_compression(
                layer.m, layer.k,
                layer_sigma(layer.kind, layer.m, layer.k), scheme,
            ).ratio
        layer_bytes = layer.bytes_bf16 / ratio
        compressed += layer_bytes
        per_layer[layer.name] = {
            "ratio": ratio,
            "dense_gib": layer.bytes_bf16 / GIB,
            "compressed_gib": layer_bytes / GIB,
        }
    return {
        "model": model.name,
        "scheme": scheme,
        "dense_gib": dense_bytes / GIB,
        "compressed_gib": compressed / GIB,
        "fraction": compressed / dense_bytes,
        "per_layer": per_layer,
    }
