"""Event-sourced telemetry: spans, metric timelines, latency attribution.

The simulator's results are end-of-run aggregates (`ContinuousResult`,
`PoolStats`, `TransferStats`); they say *what* happened but not *where
the time went*.  This module is the observability substrate the ZipServ
claims need: compressed KV shrinks **wire** time, decompress-on-hit
trades cache capacity for **decompress** time, backpressure converts
preemption storms into **queue** time — all per-request, per-phase
quantities, invisible in aggregates.

Three coupled facilities, all carried by one :class:`TraceRecorder`:

* **structured events** — stages emit lightweight :class:`TraceEvent`
  records (arrival, admit, prefill chunk/span, decode segment, preempt,
  transfer enqueue/wire/deliver, backpressure stall begin/end,
  prefix-cache hit/demote/evict, route, reject, scale, finish).  The
  recorder exports them as Chrome-trace-format JSON
  (:meth:`TraceRecorder.chrome_trace`): one track per pool / link
  channel / replica, ``X`` duration spans for serial stage work,
  ``B``/``E`` pairs for backpressure stalls, ``s``/``f`` flow arrows
  linking a request's prefill → wire → decode hand-off across tracks,
  ``C`` counter series from the metrics registry — loadable in
  ``chrome://tracing`` or Perfetto.
* **sim-time metrics** — a :class:`MetricsRegistry` of counters, gauge
  timelines sampled on event boundaries (KV occupancy, batch size,
  queue depths) and histograms, exportable as plain dicts.
* **latency attribution** — a per-request phase interval state machine.
  Every request is in exactly one phase at a time (:data:`PHASES`);
  stages call :meth:`TraceRecorder.transition` at phase boundaries and
  the recorder charges the elapsed interval to the phase being left.
  Because the intervals telescope over ``[arrival_s, finish_s]`` with a
  monotone boundary sequence, the per-phase seconds of a finished
  request **sum to its end-to-end latency by construction** (float
  addition error only — the conservation property
  ``tests/test_telemetry.py`` pins across every topology).  Decompress
  time is re-assigned out of the admitting prefill interval zero-sum,
  so conservation survives it.

**Off by default, zero-cost when off.**  Nothing here runs unless a
:class:`TelemetryConfig` is supplied (``ServingConfig(telemetry=...)``)
or installed ambiently (:func:`recording`).  Every instrumentation site
in the serving stack is guarded by an ``is None`` check on the recorder
and only *reads* simulation state — the clock arithmetic of an
instrumented run is bit-identical with telemetry on or off, and with it
off the only cost is the ``None`` checks (the ``events_per_s`` gate in
``tools/bench_regression.py`` holds; the telemetry-on overhead on a
20k-request trace is gated there too).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = [
    "PHASES",
    "TelemetryConfig",
    "TraceEvent",
    "RequestAttribution",
    "MetricsRegistry",
    "TraceRecorder",
    "build_recorder",
    "recording",
    "RecordingHandle",
]

#: The latency-attribution phases, in pipeline order.  Every simulated
#: second of a request's life between arrival and finish is charged to
#: exactly one of these:
#:
#: * ``queue`` — waiting anywhere: unrouted, un-admitted, or landed on a
#:   decode replica but not yet admitted (the default phase);
#: * ``prefill`` — resident on an engine owing prompt tokens;
#: * ``transfer_wait`` — KV ready to ship, waiting for a link channel;
#: * ``wire`` — on the wire (serialization + link latency);
#: * ``decode`` — resident on an engine generating tokens;
#: * ``preempt_recompute`` — re-prefilling context after a recompute
#:   preemption (the re-admission's prefill residency);
#: * ``decompress`` — cold-tier prefix-cache hit decompression,
#:   re-assigned zero-sum out of the admitting prefill interval.
PHASES = (
    "queue",
    "prefill",
    "transfer_wait",
    "wire",
    "decode",
    "preempt_recompute",
    "decompress",
)


@dataclass(frozen=True)
class TelemetryConfig:
    """What the recorder captures (``ServingConfig(telemetry=...)``).

    ``enabled=False`` is exactly equivalent to not configuring
    telemetry at all — no recorder is built, every instrumentation site
    short-circuits on its ``None`` check.  The three facility toggles
    trim recording cost for narrow studies (attribution-only runs skip
    the event log, etc.).
    """

    enabled: bool = True
    #: Record structured events (the Chrome-trace export's source).
    events: bool = True
    #: Record counter/gauge/histogram samples.
    metrics: bool = True
    #: Run the per-request phase attribution state machine.
    attribution: bool = True

    def build(self) -> "TraceRecorder | None":
        """A fresh recorder for one run (``None`` when disabled)."""
        return TraceRecorder(self) if self.enabled else None


@dataclass(slots=True)
class TraceEvent:
    """One structured telemetry event, in simulated seconds.

    ``kind`` names the taxonomy entry; ``track`` is the emitting
    pool/link/replica lane (one Chrome-trace thread each); ``dur_s > 0``
    marks a duration span (exported as a ``ph="X"`` complete event),
    ``dur_s == 0`` an instant.
    """

    t_s: float
    kind: str
    track: str
    request_id: int | None = None
    dur_s: float = 0.0
    args: dict | None = None


@dataclass(frozen=True)
class RequestAttribution:
    """Where one finished request's end-to-end latency went.

    The seven phase fields partition ``[arrival_s, finish_s]``:
    ``total_s`` equals ``e2e_s`` up to float-addition error (the
    conservation contract, property-tested across every topology).
    """

    request_id: int
    arrival_s: float
    finish_s: float
    queue_s: float = 0.0
    prefill_s: float = 0.0
    transfer_wait_s: float = 0.0
    wire_s: float = 0.0
    decode_s: float = 0.0
    preempt_recompute_s: float = 0.0
    decompress_s: float = 0.0

    @property
    def e2e_s(self) -> float:
        """End-to-end latency (finish minus arrival)."""
        return self.finish_s - self.arrival_s

    @property
    def total_s(self) -> float:
        """Sum of the seven phase charges (== ``e2e_s`` up to float eps)."""
        return (
            self.queue_s + self.prefill_s + self.transfer_wait_s
            + self.wire_s + self.decode_s + self.preempt_recompute_s
            + self.decompress_s
        )

    def phase_seconds(self) -> dict[str, float]:
        """The seven charges keyed by :data:`PHASES` name."""
        return {
            "queue": self.queue_s,
            "prefill": self.prefill_s,
            "transfer_wait": self.transfer_wait_s,
            "wire": self.wire_s,
            "decode": self.decode_s,
            "preempt_recompute": self.preempt_recompute_s,
            "decompress": self.decompress_s,
        }


class MetricsRegistry:
    """Sim-time counters, gauge timelines and histograms.

    Gauges are sampled on event boundaries by the instrumented stages
    (KV occupancy, batch size, queue depths); each sample appends a
    ``(t_s, value)`` point, so a gauge is a full timeline, not a last
    value.  Counters are monotone accumulators; histograms collect raw
    observations for offline summarising.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, list[tuple[float, float]]] = {}
        self.histograms: dict[str, list[float]] = {}

    def count(self, name: str, delta: float = 1.0) -> None:
        """Bump a counter."""
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def gauge(self, name: str, t_s: float, value: float) -> None:
        """Append one timeline sample to a gauge."""
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = []
        series.append((t_s, value))

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation."""
        series = self.histograms.get(name)
        if series is None:
            series = self.histograms[name] = []
        series.append(value)

    def timelines(self) -> dict:
        """JSON-able export of everything recorded."""
        return {
            "counters": dict(self.counters),
            "gauges": {
                name: [[t, v] for t, v in series]
                for name, series in self.gauges.items()
            },
            "histograms": {
                name: list(values)
                for name, values in self.histograms.items()
            },
        }


class TraceRecorder:
    """The per-run telemetry sink every instrumented stage writes into.

    One recorder is built per ``serve()`` call (shared by every stage
    of the run's topology — all three disagg stages, every fleet
    replica) and surfaced on ``ContinuousResult.telemetry``.  All
    methods are cheap appends/dict updates; **callers** hold the
    ``recorder is None`` guard, so the off path never enters here.
    """

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or TelemetryConfig()
        self.events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()
        #: request_id → finished attribution rows.
        self.attributions: dict[int, RequestAttribution] = {}
        self._events_on = self.config.events
        self._metrics_on = self.config.metrics
        self._attr_on = self.config.attribution
        # Attribution state machine: per live request, the time the
        # current phase started, which phase, and the charges so far.
        self._since: dict[int, float] = {}
        self._phase: dict[int, str] = {}
        self._charges: dict[int, dict[str, float]] = {}
        self._arrival: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def emit(
        self,
        t_s: float,
        kind: str,
        track: str,
        request_id: int | None = None,
        dur_s: float = 0.0,
        args: dict | None = None,
    ) -> None:
        """Append one event (no-op when the event log is toggled off)."""
        if self._events_on:
            self.events.append(
                TraceEvent(t_s, kind, track, request_id, dur_s, args)
            )

    # ------------------------------------------------------------------
    # The attribution state machine
    # ------------------------------------------------------------------
    def transition(self, req, t: float, phase: str) -> None:
        """Charge the current phase up to ``t``, then enter ``phase``.

        The boundary sequence is clamped monotone per request, so the
        charged intervals telescope exactly over the request's life —
        the conservation property rests on this method alone.
        """
        if not self._attr_on:
            return
        rid = req.request_id
        since = self._since.get(rid)
        if since is None:
            return
        if t < since:
            t = since
        elif t > since:
            charges = self._charges[rid]
            cur = self._phase[rid]
            charges[cur] = charges.get(cur, 0.0) + (t - since)
        self._since[rid] = t
        self._phase[rid] = phase

    def _reassign(self, rid: int, src: str, dst: str, seconds: float) -> None:
        """Move ``seconds`` of charge from one phase to another (zero-sum)."""
        charges = self._charges[rid]
        charges[dst] = charges.get(dst, 0.0) + seconds
        charges[src] = charges.get(src, 0.0) - seconds

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the instrumented stages)
    # ------------------------------------------------------------------
    def on_arrival(self, req, track: str = "router") -> None:
        """Register a request: attribution starts in ``queue``."""
        rid = req.request_id
        if self._attr_on:
            self._since[rid] = req.arrival_s
            self._phase[rid] = "queue"
            self._charges[rid] = {}
            self._arrival[rid] = req.arrival_s
        if self._metrics_on:
            self.metrics.count("requests/offered")
        self.emit(req.arrival_s, "arrival", track, rid)

    def on_admit(
        self,
        req,
        t: float,
        track: str,
        hit_tokens: int = 0,
        decompress_s: float = 0.0,
    ) -> None:
        """An engine admitted ``req``: prefill (or recompute) begins.

        A cold-tier prefix hit's decompress delay is re-assigned out of
        the prefill interval it is about to inflate — the stage charges
        the delay to its clock *before* the admitting step, so the
        prefill interval always covers it and both phases stay >= 0.
        """
        rid = req.request_id
        phase = "preempt_recompute" if req.n_preemptions else "prefill"
        if self._attr_on and rid in self._since:
            self.transition(req, t, phase)
            if decompress_s > 0.0:
                self._reassign(rid, phase, "decompress", decompress_s)
        if self._metrics_on:
            self.metrics.count("requests/admitted")
        args = {"hit_tokens": hit_tokens} if hit_tokens else None
        self.emit(t, "admit", track, rid, args=args)

    def on_prefill_chunk(self, req, t: float, track: str, chunk: int) -> None:
        """One prompt chunk committed; completion enters ``decode``."""
        if req.prefill_remaining == 0:
            self.transition(req, t, "decode")
        self.emit(t, "prefill_chunk", track, req.request_id,
                  args={"tokens": chunk})

    def on_preempt(self, req, t: float, track: str) -> None:
        """A running request was evicted (recompute preemption)."""
        self.transition(req, t, "queue")
        if self._metrics_on:
            self.metrics.count("requests/preempted")
        self.emit(t, "preempt", track, req.request_id)

    def on_transfer_enqueue(
        self, req, t: float, track: str, target: int
    ) -> None:
        """Prefilled KV handed to the link: ``transfer_wait`` begins."""
        self.transition(req, t, "transfer_wait")
        self.emit(t, "transfer_enqueue", track, req.request_id,
                  args={"target": target})

    def on_transfer(
        self,
        req,
        ready: float,
        start: float,
        done: float,
        nbytes: float,
        track: str,
        channel: int,
    ) -> None:
        """One wire transfer served: ``wire`` from start to done."""
        self.transition(req, start, "wire")
        self.transition(req, done, "queue")
        if self._metrics_on:
            self.metrics.count("transfer/bytes", nbytes)
            self.metrics.observe("transfer/wire_s", done - start)
            self.metrics.observe("transfer/queue_s", start - ready)
        self.emit(start, "wire", f"{track}/ch{channel}", req.request_id,
                  dur_s=done - start, args={"bytes": nbytes})

    def on_deliver(self, req, t: float, track: str) -> None:
        """A transfer landed on its decode replica (flow arrow target)."""
        self.emit(t, "transfer_deliver", track, req.request_id)

    def on_finish(self, req, t: float, track: str) -> None:
        """A request finished: close and freeze its attribution."""
        rid = req.request_id
        if self._attr_on:
            since = self._since.pop(rid, None)
            if since is not None:
                phase = self._phase.pop(rid)
                charges = self._charges.pop(rid)
                if t < since:
                    t = since
                elif t > since:
                    charges[phase] = (
                        charges.get(phase, 0.0) + (t - since)
                    )
                arrival = self._arrival.pop(rid, req.arrival_s)
                self.attributions[rid] = RequestAttribution(
                    request_id=rid,
                    arrival_s=arrival,
                    finish_s=t,
                    queue_s=charges.get("queue", 0.0),
                    prefill_s=charges.get("prefill", 0.0),
                    transfer_wait_s=charges.get("transfer_wait", 0.0),
                    wire_s=charges.get("wire", 0.0),
                    decode_s=charges.get("decode", 0.0),
                    preempt_recompute_s=charges.get(
                        "preempt_recompute", 0.0
                    ),
                    decompress_s=charges.get("decompress", 0.0),
                )
        if self._metrics_on:
            self.metrics.count("requests/finished")
            self.metrics.observe("request/e2e_s", t - req.arrival_s)
        self.emit(t, "finish", track, rid)

    def on_reject(self, req, t: float, track: str = "router") -> None:
        """Admission control refused a request at the front door."""
        rid = req.request_id
        if self._attr_on:
            self._since.pop(rid, None)
            self._phase.pop(rid, None)
            self._charges.pop(rid, None)
            self._arrival.pop(rid, None)
        if self._metrics_on:
            self.metrics.count("requests/rejected")
        self.emit(t, "reject", track, rid)

    def on_route(self, req, t: float, replica: int) -> None:
        """The router handed a request to a replica (stays ``queue``)."""
        self.emit(t, "route", "router", req.request_id,
                  args={"replica": replica})

    def on_stall(self, t: float, track: str) -> None:
        """Backpressure began stalling a prefill pool's admission."""
        if self._metrics_on:
            self.metrics.count("backpressure/stalls")
        self.emit(t, "stall_begin", track)

    def on_stall_clear(self, t: float, track: str) -> None:
        """The stall cleared; admission resumed."""
        self.emit(t, "stall_end", track)

    def on_cache(self, kind: str, t: float, track: str,
                 args: dict | None = None) -> None:
        """A prefix-cache event (``cache_hit``/``cache_demote``/
        ``cache_evict``), emitted by :class:`PrefixCache` itself."""
        if self._metrics_on:
            self.metrics.count(f"cache/{kind.removeprefix('cache_')}s")
        self.emit(t, kind, track, args=args)

    def on_scale(self, event) -> None:
        """An autoscaler action (:class:`~repro.serving.fleet.ScaleEvent`)."""
        if self._metrics_on:
            self.metrics.count(f"autoscaler/{event.action}")
        self.emit(event.t_s, "scale", "autoscaler", args={
            "action": event.action,
            "replica": event.replica,
            "reason": event.reason,
        })

    def span(self, t: float, dur_s: float, kind: str, track: str,
             args: dict | None = None) -> None:
        """A duration span on one track (prefill pass, decode segment)."""
        self.emit(t, kind, track, dur_s=dur_s, args=args)

    def sample_engine(self, track: str, t: float, scheduler) -> None:
        """Gauge one engine's KV occupancy, batch size and queue depth."""
        if not self._metrics_on:
            return
        kv = scheduler.kv
        gauges = self.metrics.gauges
        for name, value in (
            (f"{track}/kv_frac", kv.used_blocks / max(kv.n_blocks, 1)),
            (f"{track}/batch", float(len(scheduler.running))),
            (f"{track}/waiting", float(len(scheduler.waiting))),
        ):
            series = gauges.get(name)
            if series is None:
                series = gauges[name] = []
            series.append((t, value))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def phase_shares(self) -> dict[str, float]:
        """Fraction of total attributed seconds per phase (sums to 1)."""
        totals = dict.fromkeys(PHASES, 0.0)
        for attr in self.attributions.values():
            for phase, seconds in attr.phase_seconds().items():
                totals[phase] += seconds
        grand = sum(totals.values())
        if grand <= 0.0:
            return totals
        return {phase: s / grand for phase, s in totals.items()}

    def slowest(self, n: int = 10) -> list[RequestAttribution]:
        """The ``n`` finished requests with the largest e2e latency."""
        rows = sorted(
            self.attributions.values(),
            key=lambda a: (-a.e2e_s, a.request_id),
        )
        return rows[:n]

    # ------------------------------------------------------------------
    # Chrome trace export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as Chrome trace event format (``chrome://tracing``).

        Mapping: every track becomes one thread of one process;
        duration events (``dur_s > 0``) export as ``ph="X"`` complete
        events, stall begin/end as matched ``B``/``E`` pairs, transfer
        enqueue→deliver as ``s``→``f`` flow arrows keyed by request id,
        everything else as thread-scoped instants; gauge timelines
        export as ``C`` counter series.  Events are globally sorted by
        timestamp, so the file is monotone (the schema property
        ``tools/trace_report.py`` validates in CI).
        """
        tracks: dict[str, int] = {}

        def tid(track: str) -> int:
            if track not in tracks:
                tracks[track] = len(tracks) + 1
            return tracks[track]

        rows: list[dict] = []
        open_stalls: dict[str, int] = {}
        for ev in self.events:
            ts = ev.t_s * 1e6
            base: dict = {"pid": 1, "tid": tid(ev.track), "ts": ts}
            args = dict(ev.args) if ev.args else {}
            if ev.request_id is not None:
                args["request_id"] = ev.request_id
            if ev.kind == "stall_begin":
                rows.append({**base, "ph": "B", "name": "stall",
                             "cat": "backpressure", "args": args})
                open_stalls[ev.track] = open_stalls.get(ev.track, 0) + 1
            elif ev.kind == "stall_end":
                rows.append({**base, "ph": "E", "name": "stall",
                             "cat": "backpressure", "args": args})
                open_stalls[ev.track] = open_stalls.get(ev.track, 0) - 1
            elif ev.kind == "transfer_enqueue":
                rows.append({**base, "ph": "s", "name": "kv",
                             "cat": "flow", "id": ev.request_id,
                             "args": args})
            elif ev.kind == "transfer_deliver":
                rows.append({**base, "ph": "f", "bp": "e", "name": "kv",
                             "cat": "flow", "id": ev.request_id,
                             "args": args})
            elif ev.dur_s > 0.0:
                rows.append({**base, "ph": "X", "name": ev.kind,
                             "cat": "span", "dur": ev.dur_s * 1e6,
                             "args": args})
            else:
                rows.append({**base, "ph": "i", "name": ev.kind,
                             "cat": "instant", "s": "t", "args": args})
        # A run cut off mid-stall (deadline) leaves a B without an E;
        # close it at the last timestamp so the B/E invariant holds.
        last_ts = max((r["ts"] for r in rows), default=0.0)
        for track, depth in open_stalls.items():
            for _ in range(max(depth, 0)):
                rows.append({
                    "pid": 1, "tid": tracks[track], "ts": last_ts,
                    "ph": "E", "name": "stall", "cat": "backpressure",
                    "args": {},
                })
        for name, series in self.metrics.gauges.items():
            track, _, short = name.rpartition("/")
            counter_tid = tid(track or name)
            for t, value in series:
                rows.append({
                    "pid": 1, "tid": counter_tid, "ts": t * 1e6,
                    "ph": "C", "name": name,
                    "args": {short or "value": value},
                })
        rows.sort(key=lambda r: (r["ts"], r["tid"]))
        meta: list[dict] = [{
            "ph": "M", "pid": 1, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": "zipserv-sim"},
        }]
        for track, t in sorted(tracks.items(), key=lambda kv: kv[1]):
            meta.append({
                "ph": "M", "pid": 1, "tid": t, "ts": 0,
                "name": "thread_name", "args": {"name": track},
            })
            meta.append({
                "ph": "M", "pid": 1, "tid": t, "ts": 0,
                "name": "thread_sort_index", "args": {"sort_index": t},
            })
        return {
            "traceEvents": meta + rows,
            "displayTimeUnit": "ms",
            "otherData": {
                "phase_shares": self.phase_shares(),
                "n_attributed": len(self.attributions),
            },
        }

    def write_chrome_trace(self, path) -> None:
        """Serialise :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)


# ----------------------------------------------------------------------
# Ambient enablement (tooling: bench --trace, trace_report.py)
# ----------------------------------------------------------------------
#: Process-wide default telemetry config.  ``None`` (the shipped value)
#: means telemetry is off for every config that does not set its own
#: ``ServingConfig.telemetry`` — the zero-cost contract.  Set via
#: :func:`recording`, which lets tooling trace any registered scenario
#: without touching its config.
DEFAULT: TelemetryConfig | None = None

#: The recorder most recently built by :func:`build_recorder` — how
#: :func:`recording` hands the recorder of an ambient-enabled run back
#: to the caller (mirrors the bench harness's last-core idiom).
LAST: TraceRecorder | None = None


def build_recorder(
    config: TelemetryConfig | None,
) -> TraceRecorder | None:
    """Resolve the effective config and build one run's recorder.

    Serving cores call this at the top of ``serve()``: an explicit
    ``ServingConfig.telemetry`` wins; otherwise the ambient
    :data:`DEFAULT` (installed by :func:`recording`) applies; with
    neither, telemetry is off and the core's instrumentation guards all
    short-circuit.
    """
    effective = config if config is not None else DEFAULT
    if effective is None:
        return None
    if not isinstance(effective, TelemetryConfig):
        raise ConfigError(
            "telemetry must be a TelemetryConfig, got"
            f" {type(effective).__name__}"
        )
    recorder = effective.build()
    if recorder is not None:
        global LAST
        LAST = recorder
    return recorder


@dataclass
class RecordingHandle:
    """Yielded by :func:`recording`; exposes the captured recorder."""

    config: TelemetryConfig = field(default_factory=TelemetryConfig)

    @property
    def recorder(self) -> TraceRecorder | None:
        """The last recorder built inside (or after) the context."""
        return LAST


@contextmanager
def recording(config: TelemetryConfig | None = None):
    """Ambiently enable telemetry for every run inside the context.

    Installs ``config`` (default: record everything) as the process
    :data:`DEFAULT`, so any ``serve()`` whose config leaves
    ``telemetry=None`` records — the hook ``bench_serving.py --trace``
    and ``tools/trace_report.py`` use to trace *registered* scenarios
    without editing them.  Yields a :class:`RecordingHandle` whose
    ``recorder`` property returns the run's recorder afterwards.
    """
    global DEFAULT
    effective = config or TelemetryConfig()
    if not isinstance(effective, TelemetryConfig):
        raise ConfigError(
            "recording() takes a TelemetryConfig, got"
            f" {type(effective).__name__}"
        )
    previous = DEFAULT
    DEFAULT = effective
    try:
        yield RecordingHandle(effective)
    finally:
        DEFAULT = previous
