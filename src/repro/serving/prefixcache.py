"""Prefix cache: block-granular prefix reuse with a compressed cold tier.

Multi-turn sessions re-prefill the same tokens every turn — the shared
system prompt plus the whole conversation so far.  A prefix cache keeps
those KV blocks resident between turns so the scheduler can skip the
cached portion of a prompt and start chunked prefill at the first
uncached token.

This module is the cache itself; the integration points live elsewhere:

* capacity is **carved out of the KV memory plan** — the serving cores
  build the block allocator over ``kv_bytes * (1 - capacity_frac)`` and
  hand the carved bytes here, so cache capacity is real memory taken
  from the batch, not free headroom;
* :class:`~repro.serving.scheduler.ContinuousBatchScheduler` consults
  the cache at admission (``lookup``) and repopulates it when a request
  finishes or is released (``store``);
* the **cold tier** holds blocks under a registry codec
  (:mod:`repro.compression`): at equal memory it caches ``ratio``×
  more tokens, and a cold hit pays a decompress charge priced with the
  same kernel-cost hooks the rest of the stack uses
  (:func:`cold_hit_seconds_per_token`) — ZipServ's thesis applied to
  the cache tier, where compression ratio converts directly into
  hit-rate.

Two tiers, LRU between them: entries are stored **hot** (raw bytes),
demoted hot→cold when the hot tier overflows (bytes shrink by exactly
the codec ratio — the conservation invariant of
``tests/test_prefixcache.py``), and evicted cold→gone when the cold
tier overflows.  A hit promotes the entry back to hot.

Sizing is block-granular throughout: an entry of ``n`` tokens charges
``ceil(n / block_size)`` blocks against its tier, and ``lookup`` floors
the hit to a block multiple — partial blocks are never reusable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import decode_cycles_per_element
from ..compression import get_codec
from ..errors import ConfigError
from ..utils import ceil_div

__all__ = [
    "PrefixCacheConfig",
    "PrefixCacheStats",
    "PrefixCache",
    "cold_hit_seconds_per_token",
]

#: Fallback hardware rates for decompress pricing when no
#: :class:`~repro.gpu.specs.GpuSpec` is discoverable from the cost
#: model (A100-class HBM and SM clocks; only the *ratio* of charges
#: matters to scheduling decisions, not their absolute scale).
_DEFAULT_DRAM_BYTES_PER_S = 1.5e12
_DEFAULT_SM_CYCLES_PER_S = 1.5e11


def cold_hit_seconds_per_token(
    spec, codec, ratio: float, gpu=None
) -> float:
    """Decompress charge of one cold-tier token on a cache hit.

    Priced like every other compressed stream in the stack, through the
    codec's kernel-cost hooks: the compressed bytes stream out of HBM at
    the codec's bandwidth fraction, the decode ALU pays
    ``decode_cycles_factor`` scaled cycles per element, and the raw
    bytes are written back so the batch reads them at full speed.  The
    identity codec (a raw cold tier) costs nothing — its blocks are
    already in serving form.

    ``spec`` is the KV geometry (:class:`~repro.serving.kvcache
    .KVCacheSpec`); ``gpu`` a :class:`~repro.gpu.specs.GpuSpec`, or
    ``None`` to price at default A100-class rates.
    """
    codec = get_codec(codec)
    if codec.identity:
        return 0.0
    raw = float(spec.raw_bytes_per_token)
    n_elements = raw / spec.dtype_bytes
    dram = (
        gpu.dram_bytes_per_s if gpu is not None
        else _DEFAULT_DRAM_BYTES_PER_S
    )
    sm = (
        gpu.sm_cycles_per_s if gpu is not None
        else _DEFAULT_SM_CYCLES_PER_S
    )
    stream_s = (raw / max(ratio, 1.0)) / (dram * codec.stream_bw_frac)
    decode_s = (
        n_elements * codec.decode_cycles_factor
        * decode_cycles_per_element() / sm
    )
    writeback_s = raw / dram
    return stream_s + decode_s + writeback_s


@dataclass(frozen=True)
class PrefixCacheConfig:
    """How a serving topology provisions its prefix cache.

    ``capacity_frac`` of the engine's KV byte budget is carved off for
    the cache (the block allocator shrinks by the same amount — cache
    memory is never free); ``hot_frac`` of the carve holds raw blocks,
    the rest holds the compressed cold tier.  ``codec`` names the cold
    tier's registry codec: ``"auto"`` resolves through the engine's
    codec policy against the new ``prefix`` placement class (measured
    when a calibration profile is set), ``None`` keeps the cold tier
    raw — the equal-memory baseline the compressed tier is gated
    against.
    """

    capacity_frac: float = 0.2
    hot_frac: float = 0.5
    codec: str | None = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_frac < 1.0:
            raise ConfigError(
                "prefix cache capacity_frac must be in (0, 1), got"
                f" {self.capacity_frac}"
            )
        if not 0.0 <= self.hot_frac <= 1.0:
            raise ConfigError(
                f"prefix cache hot_frac must be in [0, 1], got"
                f" {self.hot_frac}"
            )
        if self.codec is not None and self.codec != "auto":
            get_codec(self.codec)  # raises UnknownSpecError if absent


@dataclass(frozen=True)
class PrefixCacheStats:
    """Counters of one prefix cache over one run.

    ``hit_tokens <= offered_prefix_tokens`` always (a hit never exceeds
    the prefix the request offered), and
    ``n_hits + n_misses == n_lookups`` — the counter invariants of
    ``tests/test_prefixcache.py``.
    """

    n_lookups: int = 0
    n_hits: int = 0
    n_misses: int = 0
    #: Prompt tokens skipped via cache hits (block-floored).
    hit_tokens: int = 0
    #: Prefix tokens requests offered to the cache (hit or not).
    offered_prefix_tokens: int = 0
    n_demotions: int = 0
    n_evictions: int = 0
    #: Resident bytes per tier at the end of the run.
    bytes_hot: float = 0.0
    bytes_cold: float = 0.0
    n_entries_hot: int = 0
    n_entries_cold: int = 0
    #: Total decompress delay charged for cold hits.
    cold_delay_s: float = 0.0

    @property
    def token_hit_rate(self) -> float:
        """Fraction of offered prefix tokens served from cache."""
        if not self.offered_prefix_tokens:
            return 0.0
        return self.hit_tokens / self.offered_prefix_tokens

    @property
    def request_hit_rate(self) -> float:
        """Fraction of lookups that hit at all."""
        return self.n_hits / self.n_lookups if self.n_lookups else 0.0

    @classmethod
    def merge(cls, stats) -> "PrefixCacheStats":
        """Sum counters across replicas (fleet aggregation).

        Byte/entry gauges sum too — they then read as fleet-wide
        residency, which is what capacity accounting wants.
        """
        rows = [s for s in stats if s is not None]
        if not rows:
            return cls()
        return cls(
            n_lookups=sum(s.n_lookups for s in rows),
            n_hits=sum(s.n_hits for s in rows),
            n_misses=sum(s.n_misses for s in rows),
            hit_tokens=sum(s.hit_tokens for s in rows),
            offered_prefix_tokens=sum(
                s.offered_prefix_tokens for s in rows
            ),
            n_demotions=sum(s.n_demotions for s in rows),
            n_evictions=sum(s.n_evictions for s in rows),
            bytes_hot=sum(s.bytes_hot for s in rows),
            bytes_cold=sum(s.bytes_cold for s in rows),
            n_entries_hot=sum(s.n_entries_hot for s in rows),
            n_entries_cold=sum(s.n_entries_cold for s in rows),
            cold_delay_s=sum(s.cold_delay_s for s in rows),
        )


class _Entry:
    """One cached prefix: its token count, tier and LRU stamp."""

    __slots__ = ("n_tokens", "tier", "tick")

    def __init__(self, n_tokens: int, tier: str, tick: int):
        self.n_tokens = n_tokens
        self.tier = tier
        self.tick = tick


class PrefixCache:
    """Two-tier LRU prefix cache over block-granular KV bytes.

    Keyed by an opaque prefix id (the serving stack uses
    ``Request.session_id``).  All byte accounting is deterministic
    integer/float arithmetic off the KV geometry — no wall clock, no
    randomness — so runs are reproducible.
    """

    def __init__(
        self,
        spec,
        capacity_bytes: float,
        hot_frac: float = 0.5,
        cold_ratio: float = 1.0,
        cold_hit_s_per_token: float = 0.0,
    ):
        if capacity_bytes <= 0:
            raise ConfigError(
                "prefix cache capacity must be positive, got"
                f" {capacity_bytes}"
            )
        if not 0.0 <= hot_frac <= 1.0:
            raise ConfigError(f"hot_frac must be in [0, 1]: {hot_frac}")
        if cold_ratio < 1.0:
            raise ConfigError(
                f"cold tier ratio must be >= 1, got {cold_ratio}"
            )
        if cold_hit_s_per_token < 0.0:
            raise ConfigError("cold_hit_s_per_token must be >= 0")
        self.spec = spec
        self.capacity_bytes = float(capacity_bytes)
        self.hot_capacity_bytes = float(capacity_bytes) * hot_frac
        self.cold_capacity_bytes = (
            self.capacity_bytes - self.hot_capacity_bytes
        )
        self.cold_ratio = float(cold_ratio)
        self.cold_hit_s_per_token = float(cold_hit_s_per_token)
        self._entries: dict[object, _Entry] = {}
        self._tick = 0
        self.bytes_hot = 0.0
        self.bytes_cold = 0.0
        self.n_lookups = 0
        self.n_hits = 0
        self.n_misses = 0
        self.hit_tokens = 0
        self.offered_prefix_tokens = 0
        self.n_demotions = 0
        self.n_evictions = 0
        self.cold_delay_s = 0.0
        #: Optional :class:`~repro.serving.telemetry.TraceRecorder`.
        #: The scheduler that owns this cache attaches it and refreshes
        #: ``now`` (sim time) before calling in; guarded by ``is None``
        #: everywhere, so the default is free.
        self.telemetry = None
        self.now = 0.0
        self.track = "cache"

    # ------------------------------------------------------------------
    def _raw_bytes(self, n_tokens: int) -> float:
        """Block-granular raw bytes of an ``n_tokens`` prefix."""
        blocks = ceil_div(n_tokens, self.spec.block_size)
        return float(blocks * self.spec.bytes_per_block)

    def _tier_bytes(self, entry: _Entry) -> float:
        raw = self._raw_bytes(entry.n_tokens)
        return raw if entry.tier == "hot" else raw / self.cold_ratio

    def _touch(self, entry: _Entry) -> None:
        self._tick += 1
        entry.tick = self._tick

    # ------------------------------------------------------------------
    def lookup(self, prefix_id, prefix_tokens: int) -> tuple[int, float]:
        """Resolve a prefix: ``(cached tokens, decompress delay)``.

        The hit is ``min(cached, offered)`` floored to a block multiple
        — never more than the request actually shares, never a partial
        block.  A cold hit accrues the per-token decompress charge and
        the entry is promoted hot (which may demote colder neighbours).
        """
        self.n_lookups += 1
        self.offered_prefix_tokens += max(int(prefix_tokens), 0)
        entry = self._entries.get(prefix_id)
        if entry is None or prefix_tokens <= 0:
            self.n_misses += 1
            return 0, 0.0
        block = self.spec.block_size
        hit = min(entry.n_tokens, int(prefix_tokens))
        hit = (hit // block) * block
        if hit <= 0:
            self.n_misses += 1
            return 0, 0.0
        self.n_hits += 1
        self.hit_tokens += hit
        delay_s = 0.0
        tier = entry.tier
        if entry.tier == "cold":
            delay_s = hit * self.cold_hit_s_per_token
            self.cold_delay_s += delay_s
            # Promote: the whole entry moves back to serving form.
            self.bytes_cold -= self._tier_bytes(entry)
            entry.tier = "hot"
            self.bytes_hot += self._tier_bytes(entry)
        self._touch(entry)
        self._rebalance()
        if self.telemetry is not None:
            self.telemetry.on_cache(
                "cache_hit", self.now, self.track,
                args={"tokens": hit, "tier": tier, "delay_s": delay_s},
            )
        return hit, delay_s

    def store(self, prefix_id, n_tokens: int) -> None:
        """Insert or extend a prefix (always lands hot, then rebalances).

        A shorter ``n_tokens`` than already cached never truncates —
        the longer prefix strictly subsumes it.
        """
        if n_tokens <= 0:
            return
        entry = self._entries.get(prefix_id)
        if entry is None:
            entry = _Entry(int(n_tokens), "hot", 0)
            self._entries[prefix_id] = entry
            self.bytes_hot += self._tier_bytes(entry)
        else:
            self.bytes_hot -= (
                self._tier_bytes(entry) if entry.tier == "hot" else 0.0
            )
            self.bytes_cold -= (
                self._tier_bytes(entry) if entry.tier == "cold" else 0.0
            )
            entry.n_tokens = max(entry.n_tokens, int(n_tokens))
            entry.tier = "hot"
            self.bytes_hot += self._tier_bytes(entry)
        self._touch(entry)
        self._rebalance()

    # ------------------------------------------------------------------
    def _lru(self, tier: str) -> object | None:
        """The least-recently-used key of one tier (None if empty)."""
        best_key, best_tick = None, None
        for key, entry in self._entries.items():
            if entry.tier != tier:
                continue
            if best_tick is None or entry.tick < best_tick:
                best_key, best_tick = key, entry.tick
        return best_key

    def _rebalance(self) -> None:
        """LRU-demote hot→cold, then LRU-evict cold→gone, to capacity."""
        while self.bytes_hot > self.hot_capacity_bytes:
            key = self._lru("hot")
            if key is None:
                break
            entry = self._entries[key]
            # Demotion conserves content: the same tokens, raw bytes
            # shrunk by exactly the cold ratio.
            self.bytes_hot -= self._tier_bytes(entry)
            entry.tier = "cold"
            self.bytes_cold += self._tier_bytes(entry)
            self.n_demotions += 1
            if self.telemetry is not None:
                self.telemetry.on_cache(
                    "cache_demote", self.now, self.track,
                    args={"tokens": entry.n_tokens},
                )
        while self.bytes_cold > self.cold_capacity_bytes:
            key = self._lru("cold")
            if key is None:
                break
            entry = self._entries.pop(key)
            self.bytes_cold -= self._tier_bytes(entry)
            self.n_evictions += 1
            if self.telemetry is not None:
                self.telemetry.on_cache(
                    "cache_evict", self.now, self.track,
                    args={"tokens": entry.n_tokens},
                )

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._entries)

    def stats(self) -> PrefixCacheStats:
        """Snapshot the counters as an immutable stats row."""
        n_hot = sum(
            1 for e in self._entries.values() if e.tier == "hot"
        )
        return PrefixCacheStats(
            n_lookups=self.n_lookups,
            n_hits=self.n_hits,
            n_misses=self.n_misses,
            hit_tokens=self.hit_tokens,
            offered_prefix_tokens=self.offered_prefix_tokens,
            n_demotions=self.n_demotions,
            n_evictions=self.n_evictions,
            bytes_hot=self.bytes_hot,
            bytes_cold=self.bytes_cold,
            n_entries_hot=n_hot,
            n_entries_cold=len(self._entries) - n_hot,
            cold_delay_s=self.cold_delay_s,
        )
