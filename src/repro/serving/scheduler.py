"""Request scheduling: static batches, policies, chunked prefill, preemption.

The **scheduling layer** of the three-layer serving architecture
(costs -> scheduling -> serving core).  Three pieces:

* :class:`StaticBatchScheduler` — the paper's §6.5 benchmark mode: all
  requests run together from prefill to the last token;
* a **policy hierarchy** (:class:`FCFSPolicy`, :class:`PriorityPolicy`,
  :class:`AgingPriorityPolicy`, :class:`SJFPolicy`) deciding admission
  order and preemption victims — aging is the anti-starvation variant:
  waiting time buys effective priority, so batch tenants cannot be
  parked forever behind sustained chat traffic;
* :class:`ContinuousBatchScheduler` — vLLM-style continuous batching with
  KV/batch admission limits, **chunked prefill** planning (prefill tokens
  co-scheduled with decode tokens under ``max_batched_tokens``) and
  **preempt-and-recompute** when the KV cache fills mid-decode (the evicted
  request re-prefills its whole accumulated context on re-admission).

Schedulers decide *what* runs each iteration; they never touch the clock.
The serving core (:mod:`repro.serving.serve`) prices the plans against a
cost model and advances time.

Invariants this layer guarantees (tested in ``tests/test_scheduler.py``):

* **head-of-line admission** — the waiting queue is ranked by the
  policy's ``waiting_key`` and admission stops at the first request that
  does not fit; smaller requests never skip past the policy's favourite.
* **preemption ordering** — victims are chosen strictly by the policy's
  ``victim_key`` (first in ``order_victims`` is evicted first), and the
  last running request is never preempted: ``ensure_decode_capacity``
  raises :class:`~repro.errors.CapacityError` instead of emptying the
  running set.
* **recompute debt** — a preempted request re-enters the waiting queue
  and, on re-admission, owes a prefill pass over its *whole* accumulated
  context (prompt + generated); previously-admitted requests are exempt
  from the admission token budget so they can always be re-admitted.
* **conservation** — a request leaves the scheduler only through
  ``finished``, with exactly ``max_new_tokens`` generated; KV blocks are
  freed on finish and on preemption, never leaked.
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from ..errors import CapacityError, SchedulingError, UnknownSpecError
from .kvcache import PagedKVCache


class RequestState(enum.Enum):
    """Lifecycle of a request."""

    WAITING = "waiting"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclass(eq=False)
class Request:
    """One generation request.

    Identity semantics (``eq=False``): two requests are the same only if
    they are the same object — queue membership tests must not confuse
    distinct requests that happen to share field values.
    """

    request_id: int
    prompt_len: int
    max_new_tokens: int
    arrival_s: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    first_token_s: float | None = None
    finish_s: float | None = None
    priority: int = 0
    tenant: str = "default"
    prefill_remaining: int = 0
    n_preemptions: int = 0
    #: Session this request belongs to (multi-turn traces); ``None``
    #: for single-turn requests.  Keys the prefix cache and session-
    #: affinity routing.
    session_id: int | None = None
    #: Leading prompt tokens shared with the session's previous turn —
    #: what a prefix cache could skip.  0 for first turns and
    #: single-turn requests.
    prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len <= 0:
            raise SchedulingError("prompt_len must be positive")
        if self.max_new_tokens <= 0:
            raise SchedulingError("max_new_tokens must be positive")

    @property
    def context_len(self) -> int:
        """Tokens currently in context (prompt + generated)."""
        return self.prompt_len + self.generated

    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to generate (the SJF job-size signal)."""
        return self.max_new_tokens - self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.max_new_tokens


class StaticBatchScheduler:
    """All requests run together from prefill to the last token."""

    def __init__(self, requests: list[Request], kv: PagedKVCache):
        if not requests:
            raise SchedulingError("static batch needs at least one request")
        self.requests = requests
        self.kv = kv
        self._prefilled = False

    def prefill(self) -> list[Request]:
        """Admit the whole batch; allocate prompt KV for every request."""
        if self._prefilled:
            raise SchedulingError("batch already prefilled")
        for req in self.requests:
            self.kv.allocate(req.request_id, req.prompt_len)
            req.state = RequestState.RUNNING
        self._prefilled = True
        return self.requests

    def step(self) -> list[Request]:
        """One decode step: every unfinished request emits one token."""
        if not self._prefilled:
            raise SchedulingError("prefill before stepping")
        active = [r for r in self.requests if not r.done]
        for req in active:
            self.kv.append_token(req.request_id)
            req.generated += 1
            if req.done:
                req.state = RequestState.FINISHED
                self.kv.free(req.request_id)
        return active

    @property
    def finished(self) -> bool:
        return self._prefilled and all(r.done for r in self.requests)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class SchedulerPolicy:
    """Admission ordering + preemption-victim ordering.

    Subclasses override the two key functions; the scheduler keeps the
    head-of-line blocking discipline (no skips past a request the policy
    ranked first), so a policy is exactly an ordering.
    """

    name = "base"

    def waiting_key(self, req: Request):
        """Sort key over the waiting queue (first = admitted first)."""
        raise NotImplementedError

    def victim_key(self, req: Request):
        """Sort key over running requests (first = preempted first)."""
        raise NotImplementedError

    def order_waiting(self, waiting: list[Request]) -> list[Request]:
        """The waiting queue in admission order."""
        return sorted(waiting, key=self.waiting_key)

    def order_victims(self, running: list[Request]) -> list[Request]:
        """Running requests in preemption order."""
        return sorted(running, key=self.victim_key)

    @property
    def supports_incremental_order(self) -> bool:
        """Whether queues may be kept sorted by ``waiting_key`` insorts.

        True exactly when the policy's admission order *is* the key sort
        — i.e. :meth:`order_waiting` was not overridden.  Every built-in
        policy qualifies (their keys end in ``request_id``, a total
        order, so insorted insertion reproduces ``order_waiting``
        element-for-element); a subclass that overrides
        :meth:`order_waiting` to do something richer than a key sort
        falls back to whole-queue re-sorts automatically.
        """
        return type(self).order_waiting is SchedulerPolicy.order_waiting


class FCFSPolicy(SchedulerPolicy):
    """First come, first served; newest request is preempted first."""

    name = "fcfs"

    def waiting_key(self, req: Request):
        return (req.arrival_s, req.request_id)

    def victim_key(self, req: Request):
        return (-req.arrival_s, -req.request_id)


class PriorityPolicy(SchedulerPolicy):
    """Higher ``Request.priority`` wins; ties break FCFS.

    Preemption evicts the lowest-priority, youngest request first, so a
    burst of high-priority traffic reclaims KV from background tenants.
    """

    name = "priority"

    def waiting_key(self, req: Request):
        return (-req.priority, req.arrival_s, req.request_id)

    def victim_key(self, req: Request):
        return (req.priority, -req.arrival_s, -req.request_id)


class AgingPriorityPolicy(PriorityPolicy):
    """Priority with linear aging: waiting requests gain rank over time.

    Plain priority starves batch tenants under sustained chat load: a
    steady stream of priority-1 arrivals keeps every priority-0 request
    parked at the back of the queue indefinitely.  Aging fixes this with
    the classic waiting-time-weighted key: a request's *effective*
    priority at time ``t`` is ``priority + aging_rate * (t - arrival_s)``,
    so a batch request that has waited ``1 / aging_rate`` seconds ranks
    level with a fresh chat request one priority class above it.

    The key needs no clock: comparing two requests at the same instant,
    the ``aging_rate * t`` term is common and cancels, leaving
    ``priority - aging_rate * arrival_s`` — a static per-request key that
    still orders exactly like the time-dependent effective priority.
    (This is also why aging composes with the scheduler's sorted-queue
    caching: relative order never changes as time passes.)

    Preemption mirrors admission: the victim is the request whose
    effective priority is lowest *now*, ties to the youngest.
    """

    name = "priority_aging"

    #: Priority classes gained per second of waiting.  At 0.2/s a
    #: batch request overtakes a chat arrival (one class up) after 5 s
    #: of queueing; 0 degenerates to the plain priority policy.
    DEFAULT_AGING_RATE = 0.2

    def __init__(self, aging_rate: float | None = None):
        if aging_rate is None:
            aging_rate = self.DEFAULT_AGING_RATE
        if aging_rate < 0:
            raise SchedulingError("aging_rate must be >= 0")
        self.aging_rate = float(aging_rate)

    def _effective(self, req: Request) -> float:
        """Time-shifted effective priority (clock-free form)."""
        return req.priority - self.aging_rate * req.arrival_s

    def waiting_key(self, req: Request):
        return (-self._effective(req), req.arrival_s, req.request_id)

    def victim_key(self, req: Request):
        return (self._effective(req), -req.arrival_s, -req.request_id)


class SJFPolicy(SchedulerPolicy):
    """Shortest job first, by expected remaining service tokens.

    Minimises mean latency on heavy-tailed length mixes; preemption evicts
    the longest-remaining request first (it has the most left to lose
    anyway under recompute).
    """

    name = "sjf"

    def waiting_key(self, req: Request):
        return (
            req.prompt_len + req.remaining_tokens,
            req.arrival_s,
            req.request_id,
        )

    def victim_key(self, req: Request):
        return (-req.remaining_tokens, -req.arrival_s, -req.request_id)


POLICIES: dict[str, type[SchedulerPolicy]] = {
    cls.name: cls
    for cls in (FCFSPolicy, PriorityPolicy, AgingPriorityPolicy, SJFPolicy)
}


def get_policy(policy: str | SchedulerPolicy) -> SchedulerPolicy:
    """Resolve a policy by name (case-insensitive) or pass one through."""
    if isinstance(policy, SchedulerPolicy):
        return policy
    key = str(policy).lower()
    if key not in POLICIES:
        raise UnknownSpecError("scheduler policy", policy, list(POLICIES))
    return POLICIES[key]()


@dataclass(frozen=True)
class SchedulerLimits:
    """Admission limits (vLLM-style)."""

    max_num_seqs: int = 256
    max_batched_tokens: int = 8192


@dataclass
class StepPlan:
    """One iteration's work: prefill chunks co-scheduled with decode."""

    prefill: list[tuple[Request, int]] = field(default_factory=list)
    decode: list[Request] = field(default_factory=list)
    #: Sum of the decode set's context lengths (for the mean-ctx charge).
    decode_ctx_sum: int = 0

    @property
    def mean_decode_ctx(self) -> int:
        """Mean context of the decode set (0 when none decode)."""
        if not self.decode:
            return 0
        return int(self.decode_ctx_sum / len(self.decode))

    def drop(self, victims: list[Request]) -> None:
        """Remove preempted requests from the plan (rare path)."""
        gone = set(id(v) for v in victims)
        self.prefill = [
            (r, c) for r, c in self.prefill if id(r) not in gone
        ]
        self.decode = [r for r in self.decode if id(r) not in gone]
        self.decode_ctx_sum = sum(r.context_len for r in self.decode)

    @property
    def n_prefill_tokens(self) -> int:
        """Prompt tokens processed this step."""
        return sum(chunk for _, chunk in self.prefill)

    @property
    def n_prefill_seqs(self) -> int:
        """Sequences receiving a prefill chunk this step."""
        return len(self.prefill)

    @property
    def n_decode_tokens(self) -> int:
        """Decode tokens (one per decoding sequence) this step."""
        return len(self.decode)

    @property
    def n_batched_tokens(self) -> int:
        """Total batched tokens (the ``max_batched_tokens`` consumption)."""
        return self.n_prefill_tokens + self.n_decode_tokens

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode


class DecodeWindowState:
    """Array-of-struct view of a stable decode batch (fast-forward windows).

    The serving cores' widened fast-forward advances one stable decode
    set through many bucketed segments inside a single stage advance;
    re-walking ``Request`` attributes and the KV allocator's
    per-sequence dicts between segments would put python attribute
    lookups back on the hot path the windows exist to avoid.  This holds
    the two per-request fields the window math needs — context length
    and remaining output tokens — as parallel numpy arrays, built once
    per window and advanced in O(1) vectorized ops.  Timestamps stay on
    the ``Request`` objects: only a window's final segment can finish
    requests, and ``commit_decode_window`` stamps them scalar-side
    there.

    KV-growth checks run off the ``ctx`` array alone, relying on a
    scheduler invariant: a decode-phase request's KV sequence holds
    exactly ``context_len`` tokens (admission allocates the whole
    restart context; every decode step appends one token and increments
    ``generated`` together).
    """

    __slots__ = ("ctx", "remaining")

    def __init__(self, decode: list[Request]):
        n = len(decode)
        self.ctx = np.fromiter(
            (r.context_len for r in decode), dtype=np.int64, count=n
        )
        self.remaining = np.fromiter(
            (r.remaining_tokens for r in decode), dtype=np.int64, count=n
        )

    def advance(self, k: int) -> None:
        """Account ``k`` committed decode steps for every request."""
        self.ctx += k
        self.remaining -= k

    def min_remaining(self) -> int:
        """Steps until the first request finishes."""
        return int(self.remaining.min())

    def blocks_to_grow(self, k: int, block_size: int) -> int:
        """New KV blocks the whole batch needs to append ``k`` tokens each.

        Vectorized twin of summing ``PagedKVCache.blocks_needed(id, k)``
        over the batch (same ceil arithmetic, batched).
        """
        have = (self.ctx + (block_size - 1)) // block_size
        need = (self.ctx + (k + block_size - 1)) // block_size
        return int((need - have).sum())


class ContinuousBatchScheduler:
    """Continuous batching under KV and batch limits, policy-ordered."""

    def __init__(
        self,
        kv: PagedKVCache,
        limits: SchedulerLimits | None = None,
        policy: str | SchedulerPolicy = "fcfs",
        prefix_cache=None,
    ):
        self.kv = kv
        self.limits = limits or SchedulerLimits()
        self.policy = get_policy(policy)
        #: Optional :class:`~repro.serving.prefixcache.PrefixCache`.
        #: With one set, admission skips the cached leading tokens of a
        #: session request's prompt (``prefill_remaining`` starts at the
        #: first uncached token) and finished/released requests
        #: repopulate the cache.  ``None`` (default) leaves every code
        #: path bit-identical to the cache-less scheduler.
        self.prefix_cache = prefix_cache
        self._cache_delay_s = 0.0
        self.waiting: list[Request] = []
        self.running: list[Request] = []
        self.finished: list[Request] = []
        self.n_preemptions = 0
        #: Optional :class:`~repro.serving.telemetry.TraceRecorder`.
        #: The owning stage attaches it and keeps ``_now`` / ``track``
        #: fresh so scheduler-internal events (admit, prefill chunk,
        #: finish, preempt) can be stamped with sim time; every use is
        #: guarded by ``is None``, so the default costs nothing.
        self.telemetry = None
        self._now = 0.0
        self.track = "engine"
        self._waiting_dirty = False
        #: Built-in policies admit in ``waiting_key`` order, so the
        #: waiting queue can be kept sorted by O(log n) insorts instead
        #: of a whole-queue re-sort per admission round (the profiled
        #: hot spot on large traces, where the queue backs up to
        #: thousands).  Policies overriding ``order_waiting`` keep the
        #: legacy dirty-flag re-sort.
        self._incremental = self.policy.supports_incremental_order

    def _enqueue_waiting(self, request: Request) -> None:
        """Add to the waiting queue, preserving admission order.

        While the incremental invariant holds (``_waiting_dirty`` is
        False) the queue is already in ``waiting_key`` order and an
        insort keeps it there — identical to the ``sorted()`` result
        because every built-in key ends in ``request_id``, making keys
        unique.  Otherwise append and let :meth:`admit` re-sort.
        """
        if self._incremental and not self._waiting_dirty:
            insort(self.waiting, request, key=self.policy.waiting_key)
        else:
            self.waiting.append(request)
            self._waiting_dirty = True

    def waiting_head(self) -> Request:
        """The request the policy would admit next (queue must be non-empty)."""
        if not self._incremental:
            # A custom order_waiting may consult external state; always
            # ask it fresh rather than trusting a cached sort.
            return self.policy.order_waiting(self.waiting)[0]
        if self._waiting_dirty:
            self.waiting = self.policy.order_waiting(self.waiting)
            self._waiting_dirty = False
        return self.waiting[0]

    def submit(self, request: Request) -> None:
        """Queue a new request."""
        if request.state is not RequestState.WAITING:
            raise SchedulingError(
                f"request {request.request_id} is {request.state}"
            )
        self._enqueue_waiting(request)

    def admit(
        self,
        enforce_token_budget: bool = True,
        max_requests: int | None = None,
    ) -> list[Request]:
        """Admit waiting requests while capacity allows (no queue skips).

        The waiting queue is ranked by the policy; admission stops at the
        first request that does not fit (head-of-line blocking), so the
        policy's favourite is never starved by smaller requests behind it.
        A (re-)admitted request owes a prefill pass over its whole
        accumulated context — ``prompt_len`` for fresh requests, plus the
        already-generated tokens after a recompute preemption.

        ``enforce_token_budget`` caps one admission round's prompt tokens at
        ``max_batched_tokens`` (group-prefill mode, where the whole group
        prefills in a single pass).  Chunked prefill passes ``False``: the
        step planner spreads any prompt across iterations, so a prompt
        larger than the step budget must not block the queue forever.
        Previously-preempted requests are exempt from the budget check even
        in group mode — their accumulated context can legitimately exceed
        it, and a request that was admitted once must stay re-admittable
        or it (and everything queued behind it) is silently stranded.

        ``max_requests`` caps the round's admissions (``None`` = no cap);
        a caller that re-evaluates an external gate between admissions —
        the backpressure-aware chunked prefill pool — admits one request
        at a time with it.
        """
        if self._waiting_dirty:
            self.waiting = self.policy.order_waiting(self.waiting)
            self._waiting_dirty = False
        admitted = []
        budget = self.limits.max_batched_tokens
        while self.waiting:
            if max_requests is not None and len(admitted) >= max_requests:
                break
            head = self.waiting[0]
            restart_len = head.context_len
            if len(self.running) >= self.limits.max_num_seqs:
                break
            if (
                enforce_token_budget
                and head.n_preemptions == 0
                and restart_len > budget
            ):
                break
            # Reserve context KV plus one decode block of headroom.
            if not self.kv.can_allocate(None, restart_len + 1):
                break
            self.waiting.pop(0)
            self.kv.allocate(head.request_id, restart_len)
            head.state = RequestState.RUNNING
            head.prefill_remaining = restart_len
            cache = self.prefix_cache
            hit, delay_s = 0, 0.0
            if (
                cache is not None
                and head.n_preemptions == 0
                and head.session_id is not None
                and head.prefix_tokens > 0
            ):
                # Skip the cached leading tokens: prefill starts at the
                # first uncached token.  At least one token always
                # prefills (the first-token stamp needs a chunk), and
                # re-admissions after preemption recompute everything —
                # their KV was freed, the cache entry may be stale.
                if self.telemetry is not None:
                    cache.now = self._now
                hit, delay_s = cache.lookup(
                    head.session_id,
                    min(head.prefix_tokens, restart_len - 1),
                )
                head.prefill_remaining = restart_len - hit
                self._cache_delay_s += delay_s
            if enforce_token_budget:
                budget -= restart_len
            self.running.append(head)
            admitted.append(head)
            if self.telemetry is not None:
                self.telemetry.on_admit(
                    head, self._now, self.track, hit, delay_s
                )
        return admitted

    # ------------------------------------------------------------------
    # Chunked prefill
    # ------------------------------------------------------------------
    def plan_step(self, max_batched_tokens: int | None = None) -> StepPlan:
        """Co-schedule decode tokens and prefill chunks for one iteration.

        Decode is prioritised (each decoding sequence takes one token of
        budget); leftover budget is handed to still-prefilling sequences in
        admission order, each receiving a chunk of at most its remaining
        prompt.  This replaces the whole-group ``max(prompt_len)`` prefill
        charge with vLLM-style token-level co-scheduling.
        """
        budget = (
            max_batched_tokens
            if max_batched_tokens is not None
            else self.limits.max_batched_tokens
        )
        decode: list[Request] = []
        ctx_sum = 0
        for req in self.running:
            if req.prefill_remaining == 0 and len(decode) < budget:
                decode.append(req)
                ctx_sum += req.context_len
        budget -= len(decode)
        prefill: list[tuple[Request, int]] = []
        for req in self.running:
            if budget <= 0:
                break
            if req.prefill_remaining <= 0:
                continue
            chunk = min(req.prefill_remaining, budget)
            prefill.append((req, chunk))
            budget -= chunk
        return StepPlan(prefill=prefill, decode=decode, decode_ctx_sum=ctx_sum)

    def apply_step(self, plan: StepPlan, clock: float) -> list[Request]:
        """Commit one planned iteration at post-step time ``clock``.

        Prefill chunks advance ``prefill_remaining``; a sequence whose
        prefill completes this step produced its first token (TTFT stamp).
        Decoding sequences append one token each and finish when done.
        Returns the requests that finished this step.
        """
        tel = self.telemetry
        if tel is not None:
            self._now = clock
        for req, chunk in plan.prefill:
            if chunk <= 0 or chunk > req.prefill_remaining:
                raise SchedulingError(
                    f"bad prefill chunk {chunk} for request"
                    f" {req.request_id}"
                )
            req.prefill_remaining -= chunk
            if req.prefill_remaining == 0 and req.first_token_s is None:
                req.first_token_s = clock
            if tel is not None:
                tel.on_prefill_chunk(req, clock, self.track, chunk)
        self.kv.append_decode([req.request_id for req in plan.decode])
        done = []
        for req in plan.decode:
            req.generated += 1
            if req.done:
                req.state = RequestState.FINISHED
                req.finish_s = clock
                self._store_prefix(req)
                self.kv.free(req.request_id)
                self.running.remove(req)
                self.finished.append(req)
                done.append(req)
                if tel is not None:
                    tel.on_finish(req, clock, self.track)
        return done

    # ------------------------------------------------------------------
    # Prefix cache hooks
    # ------------------------------------------------------------------
    def _store_prefix(self, req: Request) -> None:
        """Repopulate the prefix cache with a request's final context.

        The next turn of the session shares exactly this context —
        prompt plus everything generated — as its prompt prefix.
        """
        if self.prefix_cache is not None and req.session_id is not None:
            if self.telemetry is not None:
                self.prefix_cache.now = self._now
            self.prefix_cache.store(req.session_id, req.context_len)

    def consume_cache_delay(self) -> float:
        """Drain the decompress delay accrued by cold-tier cache hits.

        The serving stage charges it to the clock alongside the step
        that admitted the hitting requests; reading resets to zero.
        """
        delay_s = self._cache_delay_s
        self._cache_delay_s = 0.0
        return delay_s

    # ------------------------------------------------------------------
    # Hand-off (disaggregated pipelines)
    # ------------------------------------------------------------------
    def release(self, req: Request) -> Request:
        """Hand a running request off this engine without finishing it.

        Frees its KV blocks and removes it from the running set; the
        request re-enters ``WAITING`` so a downstream pool's scheduler
        can :meth:`submit` it (the chunked prefill pool releases each
        request the moment its last prompt chunk completes and its KV
        ships over the transfer link).  Unlike :meth:`preempt` this is
        not a failure path: no recompute debt is assigned and
        ``n_preemptions`` does not move.
        """
        if req not in self.running:
            raise SchedulingError(
                f"request {req.request_id} is not running"
            )
        self._store_prefix(req)
        self.kv.free(req.request_id)
        self.running.remove(req)
        req.state = RequestState.WAITING
        return req

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def preempt(self, req: Request) -> None:
        """Evict a running request (recompute-style).

        Its KV blocks are freed and it rejoins the waiting queue; on
        re-admission it re-prefills prompt + already-generated tokens
        (vLLM's recompute preemption, the §6.5 mechanism by which freed KV
        memory buys throughput).
        """
        if req not in self.running:
            raise SchedulingError(
                f"request {req.request_id} is not running"
            )
        self.kv.free(req.request_id)
        self.running.remove(req)
        req.state = RequestState.PREEMPTED
        req.prefill_remaining = 0
        req.n_preemptions += 1
        self.n_preemptions += 1
        self._enqueue_waiting(req)
        if self.telemetry is not None:
            self.telemetry.on_preempt(req, self._now, self.track)

    def ensure_decode_capacity(self, decode: list[Request]) -> list[Request]:
        """Preempt until every request in ``decode`` can append one token.

        Victims are chosen by the policy, never from requests that already
        cannot be preempted without emptying the running set.  Returns the
        preempted requests; ``decode`` is pruned in place as victims fall
        out of it.
        """
        preempted: list[Request] = []
        while True:
            # Each sequence needs at most one new block per token, so a
            # free-block count covering the whole set settles it without
            # the per-sequence walk.
            if self.kv.free_blocks >= len(decode):
                return preempted
            needed = sum(
                self.kv.blocks_needed(r.request_id, 1) for r in decode
            )
            if needed <= self.kv.free_blocks:
                return preempted
            if len(self.running) <= 1:
                raise CapacityError(
                    "KV cache cannot grow the last running request"
                )
            victim = self.policy.order_victims(self.running)[0]
            self.preempt(victim)
            if victim in decode:
                decode.remove(victim)
            preempted.append(victim)

    # ------------------------------------------------------------------
    # Legacy single-token stepping (group-prefill mode, seed behaviour)
    # ------------------------------------------------------------------
    def step(self) -> list[Request]:
        """One decode step over the running set."""
        stepped = []
        for req in list(self.running):
            self.kv.append_token(req.request_id)
            req.generated += 1
            stepped.append(req)
            if req.done:
                req.state = RequestState.FINISHED
                self._store_prefix(req)
                self.kv.free(req.request_id)
                self.running.remove(req)
                self.finished.append(req)
        return stepped

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)
