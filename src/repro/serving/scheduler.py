"""Request scheduling: static batches (the paper's benchmark mode) and a
continuous-batching scheduler (vLLM's normal operation).

The end-to-end experiments in §6.5 run fixed batches of identical requests;
:class:`StaticBatchScheduler` reproduces that.  :class:`ContinuousBatch
Scheduler` implements FCFS admission under KV-capacity and batch-size limits
so the repo also covers the serving behaviour the freed KV memory enables
(larger admissible batches -> higher throughput).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SchedulingError
from .kvcache import PagedKVCache


class RequestState(enum.Enum):
    """Lifecycle of a request."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request."""

    request_id: int
    prompt_len: int
    max_new_tokens: int
    arrival_s: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    first_token_s: float | None = None
    finish_s: float | None = None

    def __post_init__(self) -> None:
        if self.prompt_len <= 0:
            raise SchedulingError("prompt_len must be positive")
        if self.max_new_tokens <= 0:
            raise SchedulingError("max_new_tokens must be positive")

    @property
    def context_len(self) -> int:
        """Tokens currently in context (prompt + generated)."""
        return self.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.max_new_tokens


class StaticBatchScheduler:
    """All requests run together from prefill to the last token."""

    def __init__(self, requests: list[Request], kv: PagedKVCache):
        if not requests:
            raise SchedulingError("static batch needs at least one request")
        self.requests = requests
        self.kv = kv
        self._prefilled = False

    def prefill(self) -> list[Request]:
        """Admit the whole batch; allocate prompt KV for every request."""
        if self._prefilled:
            raise SchedulingError("batch already prefilled")
        for req in self.requests:
            self.kv.allocate(req.request_id, req.prompt_len)
            req.state = RequestState.RUNNING
        self._prefilled = True
        return self.requests

    def step(self) -> list[Request]:
        """One decode step: every unfinished request emits one token."""
        if not self._prefilled:
            raise SchedulingError("prefill before stepping")
        active = [r for r in self.requests if not r.done]
        for req in active:
            self.kv.append_token(req.request_id)
            req.generated += 1
            if req.done:
                req.state = RequestState.FINISHED
                self.kv.free(req.request_id)
        return active

    @property
    def finished(self) -> bool:
        return self._prefilled and all(r.done for r in self.requests)


@dataclass
class SchedulerLimits:
    """Admission limits (vLLM-style)."""

    max_num_seqs: int = 256
    max_batched_tokens: int = 8192


class ContinuousBatchScheduler:
    """FCFS continuous batching under KV and batch limits."""

    def __init__(self, kv: PagedKVCache, limits: SchedulerLimits | None = None):
        self.kv = kv
        self.limits = limits or SchedulerLimits()
        self.waiting: list[Request] = []
        self.running: list[Request] = []
        self.finished: list[Request] = []

    def submit(self, request: Request) -> None:
        """Queue a new request."""
        if request.state is not RequestState.WAITING:
            raise SchedulingError(
                f"request {request.request_id} is {request.state}"
            )
        self.waiting.append(request)

    def admit(self) -> list[Request]:
        """Admit waiting requests while capacity allows (FCFS, no skips)."""
        admitted = []
        budget = self.limits.max_batched_tokens
        while self.waiting:
            head = self.waiting[0]
            if len(self.running) >= self.limits.max_num_seqs:
                break
            if head.prompt_len > budget:
                break
            # Reserve prompt KV plus one decode block of headroom.
            if not self.kv.can_allocate(None, head.prompt_len + 1):
                break
            self.waiting.pop(0)
            self.kv.allocate(head.request_id, head.prompt_len)
            head.state = RequestState.RUNNING
            budget -= head.prompt_len
            self.running.append(head)
            admitted.append(head)
        return admitted

    def step(self) -> list[Request]:
        """One decode step over the running set."""
        stepped = []
        for req in list(self.running):
            self.kv.append_token(req.request_id)
            req.generated += 1
            stepped.append(req)
            if req.done:
                req.state = RequestState.FINISHED
                self.kv.free(req.request_id)
                self.running.remove(req)
                self.finished.append(req)
        return stepped

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)
