"""GPU memory planning: weights + reserves + KV capacity (§6.5, Figure 17).

The planner follows vLLM's budget: a fraction of device memory is usable
(``gpu_memory_utilization``); weights and a working reserve (activations,
CUDA context, NCCL buffers) are subtracted; everything left becomes KV-cache
blocks.  Weight compression therefore converts directly into KV capacity —
the paper measures 5.07 -> 8.60 GiB (1.70x) on the RTX4090/LLaMA-8B setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CapacityError
from ..gpu.specs import GpuSpec
from ..utils import GIB
from .kvcache import KVCacheSpec
from .models import ModelSpec
from .weights import model_compression_report

#: Fraction of VRAM vLLM claims by default.
DEFAULT_GPU_MEM_UTIL = 0.92

#: Working reserve per GPU: CUDA context, activations, graph pools.
DEFAULT_RESERVE_BYTES = 0.55 * GIB


@dataclass(frozen=True)
class MemoryPlan:
    """Per-GPU memory budget for one serving configuration."""

    model: str
    gpu: str
    scheme: str
    tensor_parallel: int
    vram_bytes: float
    usable_bytes: float
    weight_bytes: float
    reserve_bytes: float
    kv_bytes: float
    kv_tokens: int

    @property
    def weight_gib(self) -> float:
        """Per-GPU weight footprint in GiB."""
        return self.weight_bytes / GIB

    @property
    def kv_gib(self) -> float:
        """Per-GPU KV capacity in GiB."""
        return self.kv_bytes / GIB

    def max_batch(self, context_len: int) -> int:
        """Largest batch of ``context_len``-token sequences that fits."""
        if context_len <= 0:
            raise CapacityError("context length must be positive")
        return self.kv_tokens // context_len


def plan_memory(
    model: ModelSpec,
    gpu: GpuSpec,
    scheme: str = "dense",
    tensor_parallel: int = 1,
    gpu_mem_util: float = DEFAULT_GPU_MEM_UTIL,
    reserve_bytes: float = DEFAULT_RESERVE_BYTES,
    pipeline_parallel: int = 1,
    layer_ratios: dict[str, float] | None = None,
) -> MemoryPlan:
    """Compute the per-GPU memory plan; raises if weights do not fit.

    ``layer_ratios`` (layer kind -> weight compression ratio) overrides
    the analytic per-layer estimate — the path measured calibration and
    per-class auto-selected codecs plan through; ``scheme`` is then only
    the plan's label.
    """
    if tensor_parallel < 1 or pipeline_parallel < 1:
        raise CapacityError("parallel degrees must be >= 1")
    if not 0.0 < gpu_mem_util <= 1.0:
        raise CapacityError("gpu_mem_util must be in (0, 1]")

    if layer_ratios is not None:
        report = model_compression_report(model, scheme, ratios=layer_ratios)
        total_weights = report["compressed_gib"] * GIB
    elif scheme == "dense":
        total_weights = float(model.weight_bytes_bf16)
    else:
        report = model_compression_report(model, scheme)
        total_weights = report["compressed_gib"] * GIB
    shards = tensor_parallel * pipeline_parallel
    weight_bytes = total_weights / shards

    usable = gpu.vram_bytes * gpu_mem_util
    kv_bytes = usable - weight_bytes - reserve_bytes
    if kv_bytes <= 0:
        raise CapacityError(
            f"{model.name} ({scheme}) does not fit on {gpu.name}"
            f" x{shards}: weights {weight_bytes / GIB:.2f} GiB"
            f" vs usable {usable / GIB:.2f} GiB"
        )
    kv_spec = KVCacheSpec.for_model(model, tensor_parallel, pipeline_parallel)
    kv_tokens = int(kv_bytes // kv_spec.bytes_per_token)
    return MemoryPlan(
        model=model.name,
        gpu=gpu.name,
        scheme=scheme,
        tensor_parallel=tensor_parallel,
        vram_bytes=gpu.vram_bytes,
        usable_bytes=usable,
        weight_bytes=weight_bytes,
        reserve_bytes=reserve_bytes,
        kv_bytes=kv_bytes,
        kv_tokens=kv_tokens,
    )
