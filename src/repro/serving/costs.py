"""Step cost models: the time side of the serving simulator.

This is the **cost layer** of the three-layer serving architecture
(costs -> scheduling -> serving core).  A :class:`StepCostModel` answers one
question — "how long does this engine step take?" — and nothing else: it
owns the linear/attention/elementwise/dispatch accounting that used to live
inside ``InferenceEngine``, so schedulers and serving loops can be written
against a narrow protocol and tested with toy models.

Three implementations:

* :class:`EngineCostModel` — the real thing: per-backend linear execution
  (cuBLAS / stage-aware TCA-TBE / decompress-per-use), paged or eager
  attention with optional Vector-TBE KV compression, ring all-reduces under
  tensor parallelism, and per-kernel dispatch gaps;
* :class:`MemoizedStepCostModel` — a caching wrapper that buckets decode
  context lengths and batched token counts so long traces stop recomputing
  near-identical steps (the ``benchmarks/bench_serving.py`` speedup);
* anything test code supplies that satisfies :class:`StepCostModel`.

Invariants this layer guarantees (tested in ``tests/test_costs.py`` and
``benchmarks/bench_serving.py``):

* **purity** — a cost model never mutates scheduler or request state;
  the same (batch, context, chunk) query always prices identically, which
  is what makes memoization and the core's fast-forward legal at all.
* **bounded memoization drift** — :class:`MemoizedStepCostModel` rounds
  contexts and token counts *up* to the bucket edge, never down: a
  bucketed step is never cheaper than the exact step, and never more than
  one ``ctx_bucket`` of context / one ``token_bucket`` of tokens more
  expensive.  The drift is therefore one-sided and bounded per step
  (makespans inflate by a few percent at ``ctx_bucket=64``, see the
  benchmark's 1.03x ceiling), but it *is* config-dependent — keep buckets
  small relative to typical contexts.
* **cache isolation** — returned :class:`StepBreakdown` objects are
  copies; callers accumulating into them cannot poison the cache.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

import numpy as np

from ..analysis.calibration import decode_cycles_per_element
from ..compression import CompressionSpec, get_codec, resolve_spec
from ..errors import ConfigError
from ..gpu.specs import GpuSpec
from ..kernels.attention import (
    PAGED_BW_FRAC,
    eager_attention_decode,
    eager_attention_decode_batch,
    eager_attention_prefill,
    flash_attention_prefill,
    paged_attention_decode,
    paged_attention_decode_batch,
    paged_attention_decode_compressed,
    paged_attention_decode_compressed_batch,
)
from ..kernels.pipeline import linear_profile
from ..utils import ceil_div
from .backends import BackendConfig
from .models import ModelSpec
from .parallel import allreduce_time, shard_layer
from .weights import estimate_layer_compression, layer_sigma

#: Backend linear modes map onto these registry codecs when no explicit
#: ``weight_codec`` is configured (the pre-registry behaviour).
_BACKEND_WEIGHT_CODECS = {
    "cublas": "none",
    "stage_aware": "tcatbe",
    "decoupled_per_use": "dfloat11",
}


@dataclass
class StepBreakdown:
    """Time composition of one engine step (seconds)."""

    linear_s: float = 0.0
    attention_s: float = 0.0
    comm_s: float = 0.0
    other_s: float = 0.0
    dispatch_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Wall time of the step."""
        return (
            self.linear_s + self.attention_s + self.comm_s
            + self.other_s + self.dispatch_s
        )

    def scaled(self, factor: float) -> "StepBreakdown":
        """Component-wise scaling (used for averaging)."""
        return StepBreakdown(
            linear_s=self.linear_s * factor,
            attention_s=self.attention_s * factor,
            comm_s=self.comm_s * factor,
            other_s=self.other_s * factor,
            dispatch_s=self.dispatch_s * factor,
        )

    def add(self, other: "StepBreakdown") -> None:
        """Accumulate another breakdown."""
        self.linear_s += other.linear_s
        self.attention_s += other.attention_s
        self.comm_s += other.comm_s
        self.other_s += other.other_s
        self.dispatch_s += other.dispatch_s


@runtime_checkable
class StepCostModel(Protocol):
    """What the scheduling and serving layers need from a cost model."""

    def linear_time(self, n_tokens: int) -> tuple[float, int, float]:
        """(kernel seconds, op count, all-reduce seconds) for one pass."""
        ...

    def attention_time(self, batch: int, ctx: int, phase: str) -> float:
        """Per-step attention across all layers (one TP shard)."""
        ...

    def elementwise_time(self, n_tokens: int) -> float:
        """Norms, RoPE, activation and residual traffic per pass."""
        ...

    def decode_step(self, batch: int, ctx: int) -> StepBreakdown:
        """One decode iteration at context length ``ctx``."""
        ...

    def prefill_step(self, batch: int, prompt_len: int) -> StepBreakdown:
        """One whole-prompt prefill pass."""
        ...

    def mixed_step(
        self,
        decode_batch: int,
        decode_ctx: int,
        prefill_seqs: int,
        prefill_tokens: int,
    ) -> StepBreakdown:
        """One chunked-prefill iteration co-scheduling both token kinds."""
        ...


class EngineCostModel:
    """Analytic step costs for one (model, gpu, backend) triple.

    This is the component math formerly embedded in ``InferenceEngine``:
    linear layers per backend execution mode, attention with the KV context,
    elementwise traffic, pipeline hops, collectives and dispatch overhead.
    """

    def __init__(
        self,
        model: ModelSpec,
        gpu: GpuSpec,
        backend: BackendConfig,
        tensor_parallel: int = 1,
        pipeline_parallel: int = 1,
        kv_compression_ratio: float | None = None,
        weight_codec: str | CompressionSpec | Mapping | None = None,
        kv_codec: str | CompressionSpec | None = None,
        calibration=None,
    ):
        """``weight_codec`` / ``kv_codec`` are registry names (or resolved
        :class:`~repro.compression.CompressionSpec` objects); ``None``
        keeps the backend's historical mapping (linear mode -> weight
        codec, ``kv_compression_ratio`` -> Vector-TBE KV streaming).  An
        explicit ``kv_compression_ratio`` overrides the codec's analytic
        estimate.

        ``weight_codec`` may also be a **mapping from layer kind**
        (``qkv_proj`` / ``o_proj`` / ``gateup_proj`` / ``down_proj`` /
        ``lm_head``, with an optional ``"default"`` fallback) to a codec
        name or resolved spec — per-tensor-class codec selection, the
        form the ``"auto"`` serving slots produce.  ``calibration`` is a
        measured :class:`~repro.compression.MeasuredRatioProfile`; with
        one supplied, per-layer weight pricing and the KV spec use
        measured ratios (measured wins over analytic, explicit ratios
        still win over both)."""
        if kv_compression_ratio is not None and kv_compression_ratio < 1.0:
            raise ConfigError("kv_compression_ratio must be >= 1")
        self.model = model
        self.gpu = gpu
        self.backend = backend
        self.tp = tensor_parallel
        self.pp = pipeline_parallel
        self.calibration = calibration
        self.kv_heads = max(1, model.n_kv_heads // tensor_parallel)
        self._linear_cache: dict[tuple, tuple[float, int, float]] = {}

        # Registry resolution happens once, here — consumers of this model
        # never look codecs up again (and never import extensions lazily
        # inside a step; that used to live in ``attention_time``).
        if weight_codec is None:
            weight_codec = _BACKEND_WEIGHT_CODECS[backend.linear_mode]
        #: Per-layer-kind resolved weight specs; ``None`` keeps the
        #: scalar analytic path bit-exactly.  Built for an explicit
        #: mapping, or for a scalar codec when a calibration profile
        #: should re-price each layer class with measured ratios.
        self.layer_specs: dict[str, CompressionSpec] | None = None
        if isinstance(weight_codec, Mapping):
            self.layer_specs = self._resolve_layer_specs(weight_codec)
        elif calibration is not None:
            scalar = resolve_spec(
                weight_codec, "weight", profile=calibration
            )
            if not scalar.resolve().identity:
                self.layer_specs = self._resolve_layer_specs(
                    {"default": weight_codec}
                )
        if self.layer_specs is not None:
            self.weight_spec = self._dominant_layer_spec()
        else:
            self.weight_spec = resolve_spec(weight_codec, "weight")
        self._weight_codec = self.weight_spec.resolve()
        if kv_codec is None:
            ratio = float(kv_compression_ratio or 1.0)
            kv_codec = "vector_tbe" if ratio > 1.0 else "none"
            self.kv_spec_c = resolve_spec(kv_codec, "kv", ratio=ratio)
        else:
            self.kv_spec_c = resolve_spec(
                kv_codec, "kv", ratio=kv_compression_ratio,
                profile=calibration,
            )
        self.kv_ratio = self.kv_spec_c.ratio
        self._kv_attention_args: tuple[float, float, float] | None = None
        if self.kv_ratio > 1.0 and backend.attention == "paged":
            codec = self.kv_spec_c.resolve()
            self._kv_attention_args = (
                self.kv_ratio,
                decode_cycles_per_element() * codec.decode_cycles_factor,
                PAGED_BW_FRAC * codec.stream_bw_frac,
            )

    # ------------------------------------------------------------------
    # Per-layer weight-spec resolution (the "auto" / calibrated path)
    # ------------------------------------------------------------------
    def _resolve_layer_specs(
        self, mapping: Mapping
    ) -> dict[str, CompressionSpec]:
        """Resolve one weight spec per layer kind at its sharded sigma.

        Values may be codec names or already-resolved specs; measured
        ratios come from ``self.calibration`` keyed by the layer's
        tensor class (``"weight:<kind>"``), with the profile's weight
        aggregate, then the analytic estimator, as fallbacks.
        """
        specs: dict[str, CompressionSpec] = {}
        for layer in self.model.linear_layers():
            value = mapping.get(layer.kind, mapping.get("default"))
            if value is None:
                raise ConfigError(
                    f"weight codec mapping misses layer kind"
                    f" {layer.kind!r} (add it or a 'default' entry);"
                    f" got {sorted(mapping)}"
                )
            layout = shard_layer(layer, self.tp)
            specs[layer.kind] = resolve_spec(
                value, "weight",
                sigma=layer_sigma(layer.kind, layout.m, layout.k),
                cls=f"weight:{layer.kind}",
                profile=self.calibration,
            )
        return specs

    def _dominant_layer_spec(self) -> CompressionSpec:
        """The spec covering the most parameters (introspection and the
        memory planner's scheme label; pricing stays per-layer)."""
        weight = {
            layer.kind: layer.params for layer in self.model.linear_layers()
        }
        kind = max(
            self.layer_specs, key=lambda k: (weight.get(k, 0), k)
        )
        return self.layer_specs[kind]

    def layer_ratios(self) -> dict[str, float] | None:
        """Per-layer-kind weight compression ratios (None on the scalar
        path) — what the memory planner turns into KV capacity."""
        if self.layer_specs is None:
            return None
        return {
            kind: spec.ratio for kind, spec in self.layer_specs.items()
        }

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def linear_time(self, n_tokens: int) -> tuple[float, int, float]:
        """(kernel seconds, op count, all-reduce seconds) for one pass."""
        key = (n_tokens,)
        if key in self._linear_cache:
            return self._linear_cache[key]
        total = 0.0
        comm = 0.0
        ops = 0
        for layer in self.model.linear_layers():
            layout = shard_layer(layer, self.tp)
            sigma = layer_sigma(layer.kind, layout.m, layout.k)
            if self.layer_specs is not None:
                spec = self.layer_specs[layer.kind]
                codec = get_codec(spec.codec)
                # The registry's own coverage math at this layer's
                # sigma, with the spec's (possibly measured) ratio
                # swapped in over the analytic one.
                comp = (
                    None if codec.identity
                    else replace(
                        codec.weight_compression(sigma), ratio=spec.ratio
                    )
                )
            else:
                codec = self._weight_codec
                comp = (
                    None if codec.identity
                    else estimate_layer_compression(
                        layout.m, layout.k, sigma, codec.name
                    )
                )
            profile = linear_profile(
                self.gpu, layout.m, layout.k, n_tokens, codec, comp
            )
            layer_time = profile.time_s + self.backend.per_layer_sync_s
            total += layer_time * layer.count
            ops += layer.count
            if layout.needs_allreduce:
                nbytes = 2.0 * n_tokens * self.model.hidden
                comm += allreduce_time(self.gpu, nbytes, self.tp) * layer.count
        result = (total / self.backend.e2e_bw_derate, ops, comm)
        self._linear_cache[key] = result
        return result

    def attention_time(self, batch: int, ctx: int, phase: str) -> float:
        """Per-step attention across all layers (one TP shard)."""
        heads = max(1, self.model.n_heads // self.tp)
        kv_heads = self.kv_heads
        if phase == "decode":
            if self._kv_attention_args is not None:
                ratio, cycles, bw_frac = self._kv_attention_args
                profile = paged_attention_decode_compressed(
                    self.gpu, batch, ctx, heads, kv_heads,
                    self.model.head_dim, ratio=ratio,
                    cycles_per_element=cycles, bw_frac=bw_frac,
                )
                return profile.time_s * self.model.n_layers
            fn = (
                paged_attention_decode
                if self.backend.attention == "paged"
                else eager_attention_decode
            )
            profile = fn(self.gpu, batch, ctx, heads, kv_heads,
                         self.model.head_dim)
        else:
            fn = (
                flash_attention_prefill
                if self.backend.attention == "paged"
                else eager_attention_prefill
            )
            profile = fn(self.gpu, batch, ctx, heads, kv_heads,
                         self.model.head_dim)
        return profile.time_s * self.model.n_layers

    def attention_time_batch(self, batch: int, ctxs) -> np.ndarray:
        """Decode attention seconds for an array of context lengths.

        Element ``i`` is bitwise equal to
        ``attention_time(batch, ctxs[i], "decode")`` — the batch kernels
        preserve the scalar expression trees, and the per-layer scaling
        is the same single multiply.
        """
        heads = max(1, self.model.n_heads // self.tp)
        kv_heads = self.kv_heads
        if self._kv_attention_args is not None:
            ratio, cycles, bw_frac = self._kv_attention_args
            times = paged_attention_decode_compressed_batch(
                self.gpu, batch, ctxs, heads, kv_heads,
                self.model.head_dim, ratio=ratio,
                cycles_per_element=cycles, bw_frac=bw_frac,
            )
        else:
            fn = (
                paged_attention_decode_batch
                if self.backend.attention == "paged"
                else eager_attention_decode_batch
            )
            times = fn(self.gpu, batch, ctxs, heads, kv_heads,
                       self.model.head_dim)
        return times * self.model.n_layers

    def elementwise_time(self, n_tokens: int) -> float:
        """Norms, RoPE, activation and residual traffic per pass."""
        h = self.model.hidden
        inter = self.model.intermediate
        per_layer = (
            2 * (4.0 * n_tokens * h)          # two RMSNorms (read+write)
            + 2.0 * n_tokens * (self.model.q_dim + self.model.kv_dim) * 2
            + 6.0 * n_tokens * inter           # SiLU-mul over gate/up
            + 2 * (6.0 * n_tokens * h)         # two residual adds
        )
        total_bytes = per_layer * self.model.n_layers / self.tp
        total_bytes += 4.0 * n_tokens * h      # embedding + final norm
        total_bytes *= self.backend.elementwise_pass_factor
        bw = self.gpu.dram_bytes_per_s * 0.8
        return total_bytes / bw

    def pipeline_hop_time(self, n_tokens: int) -> float:
        """Point-to-point activation transfers between pipeline stages."""
        if self.pp <= 1:
            return 0.0
        nbytes = 2.0 * n_tokens * self.model.hidden
        per_hop = nbytes / (self.gpu.interconnect_gbps * 1e9) + 20e-6
        return (self.pp - 1) * per_hop

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _step(
        self, n_tokens: int, attention_s: float
    ) -> StepBreakdown:
        linear_s, ops, comm_s = self.linear_time(n_tokens)
        comm_s += self.pipeline_hop_time(n_tokens)
        n_other = self.backend.other_ops_per_layer * self.model.n_layers
        dispatch = (ops + n_other) * self.backend.dispatch_overhead_s
        return StepBreakdown(
            linear_s=linear_s,
            attention_s=attention_s,
            comm_s=comm_s,
            other_s=(
                self.elementwise_time(n_tokens)
                + self.backend.fixed_step_overhead_s
            ),
            dispatch_s=dispatch,
        )

    def decode_step(self, batch: int, ctx: int) -> StepBreakdown:
        """Breakdown of one decode step at context length ``ctx``."""
        return self._step(batch, self.attention_time(batch, ctx, "decode"))

    def decode_step_batch(self, batch: int, ctxs) -> np.ndarray:
        """Total seconds of one decode step at each context in ``ctxs``.

        One numpy pass over the whole array.  Element ``i`` is bitwise
        equal to ``decode_step(batch, ctxs[i]).total_s`` — and therefore
        also to a decode-only ``mixed_step``'s total (its attention sum
        starts from ``0.0`` and its token count adds ``0``, both exact
        no-ops) — because the per-component math below mirrors
        :meth:`_step` and the final sum runs in the same left-to-right
        component order as :attr:`StepBreakdown.total_s`.  That bitwise
        contract is what lets fast-forward windows price whole bucket
        spans here and still replay the stepwise float sequence exactly.
        """
        attention_s = self.attention_time_batch(batch, ctxs)
        linear_s, ops, comm_s = self.linear_time(batch)
        comm_s = comm_s + self.pipeline_hop_time(batch)
        n_other = self.backend.other_ops_per_layer * self.model.n_layers
        dispatch_s = (ops + n_other) * self.backend.dispatch_overhead_s
        other_s = (
            self.elementwise_time(batch)
            + self.backend.fixed_step_overhead_s
        )
        return (((linear_s + attention_s) + comm_s) + other_s) + dispatch_s

    def prefill_step(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Breakdown of the whole-prompt prefill pass."""
        return self._step(
            batch * prompt_len,
            self.attention_time(batch, prompt_len, "prefill"),
        )

    def mixed_step(
        self,
        decode_batch: int,
        decode_ctx: int,
        prefill_seqs: int,
        prefill_tokens: int,
    ) -> StepBreakdown:
        """One chunked-prefill iteration (vLLM-style co-scheduling).

        Linear, elementwise and dispatch costs are charged over the combined
        token count (that is the whole point of chunking: prefill tokens
        ride the decode batch's GEMMs); attention splits into a decode part
        at the running context and a prefill part over the chunk.  The
        prefill chunk's attention is charged at the mean per-sequence chunk
        length — first-order, like the rest of the simulator.
        """
        if decode_batch <= 0 and prefill_tokens <= 0:
            raise ConfigError("mixed step needs decode or prefill work")
        attention_s = 0.0
        if decode_batch > 0:
            attention_s += self.attention_time(
                decode_batch, max(decode_ctx, 1), "decode"
            )
        if prefill_tokens > 0:
            seqs = max(prefill_seqs, 1)
            chunk = max(ceil_div(prefill_tokens, seqs), 1)
            attention_s += self.attention_time(seqs, chunk, "prefill")
        return self._step(decode_batch + prefill_tokens, attention_s)


def _bucket(value: int, size: int) -> int:
    """Round ``value`` up to the next multiple of ``size`` (min ``size``)."""
    return max(ceil_div(value, size), 1) * size


class MemoizedStepCostModel:
    """Bucketing cache around any :class:`StepCostModel`.

    Long traces evaluate the step model at thousands of near-identical
    (batch, context, chunk) points; this wrapper rounds decode contexts up
    to ``ctx_bucket`` and batched token counts up to ``token_bucket`` before
    delegating, so the expensive per-layer walk runs once per bucket.  The
    rounding biases step times slightly *up* (never faster than exact), by
    at most one bucket of tokens/context — keep buckets small relative to
    typical contexts.  ``hits``/``misses`` expose cache effectiveness.
    """

    def __init__(
        self,
        inner: StepCostModel,
        ctx_bucket: int = 64,
        token_bucket: int = 16,
    ):
        if ctx_bucket <= 0 or token_bucket <= 0:
            raise ConfigError("memoization buckets must be positive")
        self.inner = inner
        self.ctx_bucket = ctx_bucket
        self.token_bucket = token_bucket
        self.hits = 0
        self.misses = 0
        self._cache: dict[tuple, StepBreakdown] = {}
        # Per-step-kind [hits, misses]; kinds are the cache-key tags
        # ("d" decode, "p" prefill, "m" mixed).  Global hits/misses stay
        # as the sum for backwards compatibility.
        self._kind_stats: dict[str, list[int]] = {
            "d": [0, 0], "p": [0, 0], "m": [0, 0],
        }

    # Raw component queries pass straight through (exact).
    def linear_time(self, n_tokens: int) -> tuple[float, int, float]:
        """Delegate (exact)."""
        return self.inner.linear_time(n_tokens)

    def attention_time(self, batch: int, ctx: int, phase: str) -> float:
        """Delegate (exact)."""
        return self.inner.attention_time(batch, ctx, phase)

    def elementwise_time(self, n_tokens: int) -> float:
        """Delegate (exact)."""
        return self.inner.elementwise_time(n_tokens)

    def _lookup(self, key: tuple, compute) -> StepBreakdown:
        stats = self._kind_stats[key[0]]
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            stats[0] += 1
        else:
            self.misses += 1
            stats[1] += 1
            found = compute()
            self._cache[key] = found
        # Copy on return: StepBreakdown.add() mutates in place, and a
        # caller accumulating into a returned breakdown must not poison
        # the cache.
        return found.scaled(1.0)

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Cache effectiveness per step kind.

        Returns ``{"decode"|"prefill"|"mixed": {"hits", "misses",
        "size"}}`` where ``size`` is the number of live cache entries of
        that kind.  ``hits``/``misses`` count every pricing query —
        including each element of a :meth:`decode_step_batch` call, so a
        fast-forward window that prices many bucket edges at once is
        accounted like the equivalent scalar loop.
        """
        names = {"d": "decode", "p": "prefill", "m": "mixed"}
        sizes = {kind: 0 for kind in names}
        for key in self._cache:
            sizes[key[0]] += 1
        return {
            names[kind]: {"hits": h, "misses": m, "size": sizes[kind]}
            for kind, (h, m) in self._kind_stats.items()
        }

    def decode_step_batch(self, batch: int, ctxs) -> np.ndarray:
        """Total seconds of a decode-only step at each context in ``ctxs``.

        The bucketed window-pricing path: each context rounds up to its
        ``ctx_bucket`` edge and the inner model is evaluated once per
        *unique* edge.  Queries go through the decode-only **mixed**
        query — ``mixed_step(batch, edge, 0, 0)``, sharing its cache key
        with the scalar :meth:`mixed_step` path — because that is the
        exact call a chunked serving core makes per step, and arbitrary
        inner models (test doubles included) may price ``decode_step``
        differently.  Returned totals are therefore bitwise equal to the
        stepwise scalar sequence for *any* inner model, and per-element
        hit/miss accounting matches the equivalent scalar loop.
        """
        ctxs = np.asarray(ctxs, dtype=np.int64)
        bucket = self.ctx_bucket
        edges = np.maximum(
            (ctxs + (bucket - 1)) // bucket, 1
        ) * bucket
        out = np.empty(edges.size, dtype=np.float64)
        stats = self._kind_stats["m"]
        cache = self._cache
        for i, b_ctx in enumerate(edges.tolist()):
            key = ("m", batch, b_ctx, 0, 0)
            found = cache.get(key)
            if found is not None:
                self.hits += 1
                stats[0] += 1
            else:
                self.misses += 1
                stats[1] += 1
                found = self.inner.mixed_step(batch, b_ctx, 0, 0)
                cache[key] = found
            out[i] = found.total_s
        return out

    def decode_step(self, batch: int, ctx: int) -> StepBreakdown:
        """Decode step at the bucketed context."""
        b_ctx = _bucket(ctx, self.ctx_bucket)
        return self._lookup(
            ("d", batch, b_ctx),
            lambda: self.inner.decode_step(batch, b_ctx),
        )

    def prefill_step(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Prefill pass at the bucketed prompt length."""
        b_len = _bucket(prompt_len, self.token_bucket)
        return self._lookup(
            ("p", batch, b_len),
            lambda: self.inner.prefill_step(batch, b_len),
        )

    def mixed_step(
        self,
        decode_batch: int,
        decode_ctx: int,
        prefill_seqs: int,
        prefill_tokens: int,
    ) -> StepBreakdown:
        """Mixed step with bucketed context and chunk size."""
        b_ctx = _bucket(decode_ctx, self.ctx_bucket) if decode_batch else 0
        b_tok = (
            _bucket(prefill_tokens, self.token_bucket)
            if prefill_tokens else 0
        )
        return self._lookup(
            ("m", decode_batch, b_ctx, prefill_seqs, b_tok),
            lambda: self.inner.mixed_step(
                decode_batch, b_ctx, prefill_seqs, b_tok
            ),
        )


def maybe_memoize(costs: StepCostModel, cost_bucket: int) -> StepCostModel:
    """Wrap ``costs`` in the standard memoization buckets, if enabled.

    The single source of the bucket recipe (``token_bucket`` is a quarter
    of the context bucket) shared by every serving core, so colocated and
    disaggregated runs always price steps identically for the same
    ``cost_bucket`` setting.  ``cost_bucket <= 0`` returns ``costs``
    unchanged (exact pricing).
    """
    if cost_bucket <= 0:
        return costs
    return MemoizedStepCostModel(
        costs,
        ctx_bucket=cost_bucket,
        token_bucket=max(1, cost_bucket // 4),
    )
