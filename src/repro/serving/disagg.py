"""Disaggregated prefill/decode serving with KV-transfer costs.

Colocated serving (:class:`~repro.serving.serve.ServingCore`) time-shares
one engine between prefill and decode, so long prompts inflate decode
latency (chunking only softens this).  Production stacks increasingly
*disaggregate*: a **prefill pool** runs nothing but whole-prompt prefill,
a **decode pool** runs nothing but continuous-batching decode, and each
finished prefill ships its KV cache across an interconnect.  That hand-off
is where lossless KV compression pays a second dividend — the SplitZip
observation — because the wire bytes shrink by the same Vector-TBE ratio
that shrinks HBM residency (:mod:`repro.extensions.kvcomp`).

:class:`DisaggregatedCore` models the whole path with three cooperating
stages, each event-driven like the colocated core:

1. **prefill pool** — ``prefill_replicas`` identical engines pulling from
   one policy-ordered queue, each prefilling a single request at a time
   (prefill saturates compute; batching buys nothing in this regime).
   The first token is produced here, so TTFT is independent of the link.
2. **transfer link** — a serial FIFO channel.  Each transfer carries
   ``prompt_len * raw_bytes_per_token / ratio`` bytes (the sender
   re-encodes the raw KV with the wire codec, whatever codec the cache
   is resident in) and costs
   ``bytes / bandwidth + latency``; queueing behind earlier transfers is
   accounted separately so a saturated link is visible as queue delay,
   not just wire time.
3. **decode pool** — ``decode_replicas`` engines, each with its own full
   KV cache and :class:`~repro.serving.scheduler.ContinuousBatchScheduler`.
   Requests are released to their replica when their KV lands; they enter
   decode with ``prefill_remaining = 0`` (the KV came over the wire).  A
   request preempted *on the decode replica* recomputes there — recompute
   cannot be outsourced back to the prefill pool.

Because nothing feeds back from decode to prefill (no backpressure), the
three stages can be simulated in sequence and remain exactly equivalent to
a fully interleaved event loop; per-pool busy time, per-transfer wire and
queue times, and the usual TTFT/TPOT/goodput picture all come out of one
:class:`~repro.serving.metrics.ContinuousResult`.

Conservation invariants (tested in ``tests/test_disagg.py``): every
submitted request is prefilled exactly once, transferred exactly once, and
decoded to completion; wire bytes equal KV size divided by the codec
ratio; an infinite, zero-latency link makes every transfer free.  A
request whose KV can never fit its decode replica raises
:class:`~repro.errors.CapacityError` instead of being silently dropped.
"""

from __future__ import annotations

import heapq

from ..compression import resolve_spec
from ..errors import ConfigError
from .costs import StepCostModel, maybe_memoize
from .kvcache import KVCacheSpec, PagedKVCache
from .metrics import (
    ContinuousResult,
    PoolStats,
    TransferRecord,
    TransferStats,
)
from .scheduler import ContinuousBatchScheduler, Request, get_policy
from .serve import (
    ServingConfig,
    _raise_stranded,
    commit_decode_window,
    decode_window_len,
)

__all__ = ["DisaggregatedCore", "resolve_transfer_ratio"]


def resolve_transfer_ratio(config: ServingConfig) -> float:
    """The wire compression ratio implied by the transfer codec.

    An explicit ``transfer_ratio`` wins; otherwise the codec named by
    ``config.resolved_transfer_codec`` (the ``ServingConfig`` slot, with
    ``DisaggConfig.transfer_codec`` as fallback) resolves through the
    compression registry's wire estimator — 1.0 for ``"none"``, the
    analytic activation ratio for ``"kvcomp"``/``vector_tbe``, the
    entropy-coded split-plane ratio for the baseline codecs.
    """
    if config.disagg.transfer_ratio is not None:
        return float(config.disagg.transfer_ratio)
    return resolve_spec(config.resolved_transfer_codec, "wire").ratio


class _DecodeReplica:
    """One decode-pool engine: its own KV cache, scheduler and clock."""

    def __init__(
        self,
        index: int,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
    ):
        self.index = index
        self.costs = costs
        self.config = config
        self.scheduler = ContinuousBatchScheduler(
            PagedKVCache(kv_spec, kv_bytes), config.limits, config.policy
        )
        #: (release_s, tiebreak, request) — KV arrival order on this replica.
        self.pending: list[tuple[float, int, Request]] = []
        self.outstanding_tokens = 0
        self.clock = 0.0
        self.busy_s = 0.0
        self.n_steps = 0
        self.peak_running = 0

    def assign(self, release_s: float, req: Request) -> None:
        """Hand this replica a request whose KV lands at ``release_s``."""
        heapq.heappush(self.pending, (release_s, req.request_id, req))
        self.outstanding_tokens += req.remaining_tokens

    def run(self) -> None:
        """Drain every assigned request (decode-only continuous batching).

        The loop mirrors the colocated chunked loop, with one twist: an
        admitted request that was never preempted here enters with
        ``prefill_remaining = 0`` — its KV arrived over the link, so no
        prefill is owed.  Locally preempted requests keep the recompute
        debt ``admit`` assigns them and re-prefill on this replica.
        """
        scheduler = self.scheduler
        while self.pending or scheduler.has_work:
            while self.pending and self.pending[0][0] <= self.clock:
                _, _, req = heapq.heappop(self.pending)
                scheduler.submit(req)
            for req in scheduler.admit(enforce_token_budget=False):
                if req.n_preemptions == 0:
                    req.prefill_remaining = 0
            plan = scheduler.plan_step()
            if self.config.preemption and plan.decode:
                victims = scheduler.ensure_decode_capacity(plan.decode)
                if victims:
                    plan.drop(victims)
            if plan.empty:
                if self.pending:
                    self.clock = max(self.clock, self.pending[0][0])
                    continue
                if scheduler.has_work:
                    # Nothing runs, nothing is due, yet requests remain:
                    # their KV can never fit this replica.
                    _raise_stranded(scheduler)
                break
            self.peak_running = max(
                self.peak_running, len(scheduler.running)
            )
            breakdown = self.costs.mixed_step(
                len(plan.decode),
                max(plan.mean_decode_ctx, 1),
                plan.n_prefill_seqs,
                plan.n_prefill_tokens,
            )
            next_event = self.pending[0][0] if self.pending else None
            k = decode_window_len(
                scheduler, plan, next_event, self.clock,
                breakdown.total_s, self.config.cost_bucket,
            )
            self.clock += breakdown.total_s * k
            self.busy_s += breakdown.total_s * k
            self.n_steps += k
            if k > 1:
                commit_decode_window(scheduler, plan, k, self.clock)
            else:
                scheduler.apply_step(plan, self.clock)


class DisaggregatedCore:
    """Two-pool serving: prefill pool → KV-transfer link → decode pool.

    Drop-in sibling of :class:`~repro.serving.serve.ServingCore` — same
    constructor shape, same :meth:`serve` contract — selected by
    ``ServingConfig(mode="disaggregated")``.  The result's ``pools`` and
    ``transfer`` fields carry the disaggregation-specific accounting.
    """

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig | None = None,
    ):
        self.config = config or ServingConfig(mode="disaggregated")
        if self.config.mode != "disaggregated":
            raise ConfigError(
                "DisaggregatedCore requires mode='disaggregated',"
                f" got {self.config.mode!r}"
            )
        self.costs = maybe_memoize(costs, self.config.cost_bucket)
        self.kv_spec = kv_spec
        self.kv_bytes = kv_bytes
        self.policy = get_policy(self.config.policy)
        self.transfer_ratio = resolve_transfer_ratio(self.config)

    # ------------------------------------------------------------------
    def serve(self, requests: list[Request]) -> ContinuousResult:
        """Replay a trace through both pools; returns the full picture."""
        if not requests:
            raise ConfigError("serve needs at least one request")
        prefill_busy, handoffs = self._run_prefill_pool(requests)
        transfers = self._run_link(handoffs)
        replicas = self._run_decode_pool(handoffs, transfers)

        makespan = max(
            [r.clock for r in replicas]
            + [t.done_s for t in transfers]
            + [ready for ready, _ in handoffs]
        )
        finished: list[Request] = []
        for replica in replicas:
            finished.extend(replica.scheduler.finished)
        finished.sort(key=lambda r: r.request_id)
        pools = (
            PoolStats.from_busy(
                "prefill", prefill_busy, makespan, n_steps=len(requests)
            ),
            PoolStats.from_busy(
                "decode",
                [r.busy_s for r in replicas],
                makespan,
                n_steps=sum(r.n_steps for r in replicas),
            ),
        )
        return ContinuousResult.from_run(
            finished,
            makespan_s=makespan,
            n_steps=len(requests) + sum(r.n_steps for r in replicas),
            peak_running=max(r.peak_running for r in replicas),
            slo=self.config.slo,
            n_preemptions=sum(
                r.scheduler.n_preemptions for r in replicas
            ),
            policy=self.policy.name,
            # The prefill pool always runs whole-prompt passes, whatever
            # the config's (colocated-only) prefill_mode says — report
            # what actually happened.
            prefill_mode="group",
            mode="disaggregated",
            pools=pools,
            transfer=TransferStats.from_records(
                transfers, makespan, self.transfer_ratio
            ),
        )

    # ------------------------------------------------------------------
    def _run_prefill_pool(
        self, requests: list[Request]
    ) -> tuple[list[float], list[tuple[float, Request]]]:
        """Multi-server prefill queue: one whole-prompt pass per request.

        Returns per-replica busy seconds and ``(prefill_done_s, request)``
        hand-offs.  Replicas pull from one shared queue in policy order;
        an idle pool jumps its earliest replica to the next arrival
        (event-driven, like the colocated loop).
        """
        n = self.config.disagg.prefill_replicas
        free: list[tuple[float, int]] = [(0.0, i) for i in range(n)]
        heapq.heapify(free)
        busy = [0.0] * n
        pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        waiting: list[Request] = []
        handoffs: list[tuple[float, Request]] = []
        while pending or waiting:
            now, idx = heapq.heappop(free)
            while pending and pending[0].arrival_s <= now:
                waiting.append(pending.pop(0))
            if not waiting:
                now = max(now, pending[0].arrival_s)
                while pending and pending[0].arrival_s <= now:
                    waiting.append(pending.pop(0))
            req = self.policy.order_waiting(waiting)[0]
            waiting.remove(req)
            # A replica freed by a short job can be popped with a clock
            # behind requests another replica's jump already queued;
            # prefill must still not start before the request arrives.
            start = max(now, req.arrival_s)
            duration = self.costs.prefill_step(1, req.prompt_len).total_s
            done = start + duration
            busy[idx] += duration
            # The prefill engine emits the first token; TTFT never waits
            # on the link.
            if req.first_token_s is None:
                req.first_token_s = done
            handoffs.append((done, req))
            heapq.heappush(free, (done, idx))
        return busy, handoffs

    # ------------------------------------------------------------------
    def _run_link(
        self, handoffs: list[tuple[float, Request]]
    ) -> list[TransferRecord]:
        """Serial FIFO link: wire each prefilled KV to the decode pool.

        Transfers are served in KV-ready order (ties by request id).  Wire
        bytes are the prompt's KV footprint divided by the codec ratio;
        each transfer additionally pays the fixed link latency.
        """
        disagg = self.config.disagg
        bandwidth = disagg.link_gb_per_s * 1e9
        # Wire bytes are priced off the *raw* KV footprint: the sender
        # re-encodes with the wire codec, whatever codec (if any) the KV
        # is resident in.  For a plain spec raw == resident.
        per_token = self.kv_spec.raw_bytes_per_token / self.transfer_ratio
        link_free = 0.0
        records = []
        for ready, req in sorted(
            handoffs, key=lambda h: (h[0], h[1].request_id)
        ):
            nbytes = req.prompt_len * per_token
            wire = nbytes / bandwidth + disagg.link_latency_s
            start = max(ready, link_free)
            link_free = start + wire
            records.append(TransferRecord(
                request_id=req.request_id,
                nbytes=nbytes,
                ready_s=ready,
                start_s=start,
                done_s=link_free,
            ))
        return records

    # ------------------------------------------------------------------
    def _run_decode_pool(
        self,
        handoffs: list[tuple[float, Request]],
        transfers: list[TransferRecord],
    ) -> list[_DecodeReplica]:
        """Assign landed KV to decode replicas and drain them.

        Assignment is least-outstanding-tokens first (ties to the lowest
        replica index) in KV-arrival order — a deterministic greedy
        balance.  Replicas share no state, so each drains independently.
        """
        replicas = [
            _DecodeReplica(
                i, self.costs, self.kv_spec, self.kv_bytes, self.config
            )
            for i in range(self.config.disagg.decode_replicas)
        ]
        by_id = {req.request_id: req for _, req in handoffs}
        for record in transfers:
            target = min(
                replicas, key=lambda r: (r.outstanding_tokens, r.index)
            )
            target.assign(record.done_s, by_id[record.request_id])
        for replica in replicas:
            replica.run()
        return replicas
