"""Disaggregated prefill/decode serving on the shared event kernel.

Colocated serving (:class:`~repro.serving.serve.ServingCore`) time-shares
one engine between prefill and decode, so long prompts inflate decode
latency (chunking only softens this).  Production stacks increasingly
*disaggregate*: a **prefill pool** runs prompt processing, a **decode
pool** runs continuous-batching decode, and each finished prefill ships
its KV cache across an interconnect.  That hand-off is where lossless KV
compression pays a second dividend — the SplitZip observation — because
the wire bytes shrink by the same Vector-TBE ratio that shrinks HBM
residency (:mod:`repro.extensions.kvcomp`).

:class:`DisaggregatedCore` models the whole path as three pluggable
stages on one :class:`~repro.serving.kernel.EventKernel`:

1. **prefill pool** (:class:`PrefillPoolStage`, or
   :class:`ChunkedPrefillPoolStage` with
   ``DisaggConfig(prefill_mode="chunked")``) — ``prefill_replicas``
   engines pulling from one policy-ordered queue.  Group mode runs one
   whole-prompt pass per request (prefill saturates compute; batching
   buys nothing in this regime); chunked mode co-schedules prompt chunks
   across concurrent requests on each replica via
   :meth:`~repro.serving.scheduler.ContinuousBatchScheduler.plan_step`,
   so one giant prompt no longer serializes a replica.  The first token
   is produced here, so TTFT is independent of the link.
2. **transfer link** (:class:`TransferLinkStage`) — a serial FIFO
   channel (``link_topology="shared"``) or one dedicated channel per
   decode replica (``"per_replica"``).  Each transfer carries
   ``prompt_len * raw_bytes_per_token / ratio`` bytes (the sender
   re-encodes the raw KV with the wire codec, whatever codec the cache
   is resident in) and costs ``bytes / bandwidth + latency``; queueing
   behind earlier transfers is accounted separately so a saturated link
   is visible as queue delay, not just wire time.
   ``DisaggConfig.overlap_fraction`` hides that fraction of the
   serialization time under the tail of the producing prefill
   (layer-wise overlap, modelled analytically).
3. **decode pool** (:class:`DecodePoolStage`) — ``decode_replicas``
   engines, each with its own full KV cache and
   :class:`~repro.serving.scheduler.ContinuousBatchScheduler`.
   Requests are released to their replica when their KV lands; they
   enter decode with ``prefill_remaining = 0`` (the KV came over the
   wire).  A request preempted *on the decode replica* recomputes there
   — recompute cannot be outsourced back to the prefill pool.

With ``DisaggConfig.backpressure`` set, capacity pressure propagates
*backwards*: the prefill stage stalls admission while the decode pool's
projected free KV or the link queue depth crosses the configured
watermark, and the kernel wakes it the instant a downstream event clears
the condition.  The feedback-free default (backpressure ``None``, shared
link, group prefill, exact costs) reproduces the old stage-by-stage
sequential simulation bit-exactly — the stages perform the same float
operations in the same order, the kernel only interleaves them
(``tests/test_kernel.py`` pins this against recorded PR 3 floats).

Conservation invariants (tested in ``tests/test_disagg.py`` and
``tests/test_kernel.py``): every submitted request is prefilled exactly
once, transferred exactly once, and decoded to completion — also while
backpressure is actively stalling admission; wire bytes equal KV size
divided by the codec ratio; an infinite, zero-latency link makes every
transfer free.  A request whose KV can never fit its decode replica (or
whose footprint can never satisfy the backpressure watermark) raises
:class:`~repro.errors.CapacityError` instead of being silently dropped.
"""

from __future__ import annotations

import heapq

from ..compression import resolve_spec
from ..errors import CapacityError, ConfigError, SchedulingError
from ..utils import ceil_div
from .costs import StepCostModel, maybe_memoize
from .kernel import EventKernel, Stage
from .kvcache import KVCacheSpec, PagedKVCache
from .metrics import (
    ContinuousResult,
    PoolStats,
    TransferRecord,
    TransferStats,
)
from .prefixcache import PrefixCacheStats
from .scheduler import ContinuousBatchScheduler, Request, get_policy
from .serve import (
    ServingConfig,
    _raise_stranded,
    build_prefix_cache,
    decode_window_len,
    run_decode_window,
)
from .telemetry import build_recorder

__all__ = [
    "DisaggregatedCore",
    "PrefillPoolStage",
    "ChunkedPrefillPoolStage",
    "TransferLinkStage",
    "DecodePoolStage",
    "resolve_transfer_ratio",
]


def resolve_transfer_ratio(config: ServingConfig) -> float:
    """The wire compression ratio implied by the transfer codec.

    An explicit ``transfer_ratio`` wins; otherwise the codec named by
    ``config.resolved_transfer_codec`` (the ``ServingConfig`` slot, with
    ``DisaggConfig.transfer_codec`` as fallback) resolves through the
    compression registry's wire estimator — **measured** when the
    config carries a calibration profile (``config.calibration``) or
    one is installed process-wide, analytic otherwise: 1.0 for
    ``"none"``, the activation ratio for ``"kvcomp"``/``vector_tbe``,
    the entropy-coded split-plane ratio for the baseline codecs.  This
    is the value :class:`TransferLinkStage` prices every wire byte off.
    """
    if config.disagg.transfer_ratio is not None:
        return float(config.disagg.transfer_ratio)
    name = config.resolved_transfer_codec
    if name == "auto":
        raise ConfigError(
            "transfer_codec='auto' must be resolved through"
            " InferenceEngine.serve (codec policy selection needs the"
            " model/GPU pair); pass the selected codec name here"
        )
    return resolve_spec(name, "wire", profile=config.calibration).ratio


# ----------------------------------------------------------------------
# Stage 1: the prefill pool
# ----------------------------------------------------------------------
class _BackpressureGate:
    """The decode→prefill admission gate shared by both pool flavours.

    Evaluates the configured watermarks against live downstream state
    and owns the stall bookkeeping (observational only — recording the
    first-stall instant never changes a scheduling decision, so calling
    :meth:`stalled` from a stage's ``next_event_time`` keeps that
    method effectively pure).
    """

    def __init__(
        self,
        backpressure,
        link: "TransferLinkStage",
        decode_pool: "DecodePoolStage",
    ):
        self.backpressure = backpressure
        self.link = link
        self.decode_pool = decode_pool
        self.stall_s = 0.0
        self._stall_since: float | None = None
        #: Optional :class:`~repro.serving.telemetry.TraceRecorder` plus
        #: the track stall events land on; the owning stage attaches
        #: both (and the fleet layer re-points ``track`` after renaming
        #: its stages).
        self.recorder = None
        self.track = "prefill"

    def stalled(self, head: Request, t: float) -> bool:
        """Whether admitting ``head`` at time ``t`` must wait."""
        bp = self.backpressure
        if bp is None:
            return False
        over = (
            bp.max_link_queue is not None
            and self.link.queue_depth >= bp.max_link_queue
        ) or (
            bp.min_free_kv_frac > 0.0
            and self.decode_pool.projected_free_frac(
                self.decode_pool.blocks_for(head)
            ) < bp.min_free_kv_frac
        )
        if over and self._stall_since is None:
            self._stall_since = t
            if self.recorder is not None:
                self.recorder.on_stall(t, self.track)
        return over

    def resumed(self, now: float) -> bool:
        """Credit a cleared stall (call when an admission succeeds)."""
        if self._stall_since is None:
            return False
        self.stall_s += max(0.0, now - self._stall_since)
        self._stall_since = None
        if self.recorder is not None:
            self.recorder.on_stall_clear(now, self.track)
        return True

    def raise_stranded(self, stranded_ids) -> None:
        """Fail loudly for requests that were never prefilled."""
        hint = (
            " (backpressure watermark can never clear for them)"
            if self.backpressure is not None else ""
        )
        raise CapacityError(
            f"requests {sorted(stranded_ids)} were never prefilled{hint}"
        )


class PrefillPoolStage(Stage):
    """Whole-prompt prefill pool: one policy-ordered queue, N replicas.

    Each prefill-start decision replays the sequential pool's arithmetic
    exactly — pop the earliest-free replica, absorb due arrivals, pick
    the policy head, start at ``max(replica_free, arrival)`` — but as
    kernel events, so a backpressure watermark can gate the *next* start
    without touching any timestamp of the starts that do happen.  A
    replica freed by a short job can be popped with a clock behind
    requests another replica's jump already queued; prefill must still
    not start before the request arrives.

    Finished prefills are delivered to the transfer link at their
    completion instant (the in-flight heap), never earlier, which is
    what keeps the link's queue depth an honest backpressure signal.
    """

    name = "prefill"

    def __init__(
        self,
        requests: list[Request],
        costs: StepCostModel,
        config: ServingConfig,
        link: "TransferLinkStage",
        decode_pool: "DecodePoolStage",
        recorder=None,
    ):
        disagg = config.disagg
        self.costs = costs
        self.policy = get_policy(config.policy)
        self.backpressure = disagg.backpressure
        self.link = link
        self.decode_pool = decode_pool
        self.gate = _BackpressureGate(disagg.backpressure, link, decode_pool)
        self._rec = recorder
        if recorder is not None:
            self.gate.recorder = recorder
            self.gate.track = self.name
        n = disagg.prefill_replicas
        self._free: list[tuple[float, int]] = [(0.0, i) for i in range(n)]
        heapq.heapify(self._free)
        self.busy = [0.0] * n
        self.pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        self.waiting: list[Request] = []
        #: (done_s, request_id, request) — prefills on a replica now.
        self._inflight: list[tuple[float, int, Request]] = []
        self.n_prefills = 0
        #: Starts may never predate the instant a stall cleared.
        self._floor = 0.0
        self._head_cache: tuple[tuple[float, int, int], Request] | None = (
            None
        )

    # ------------------------------------------------------------------
    def _next_start_time(self) -> float | None:
        """When the next prefill-start decision is due (gate ignored)."""
        if not (self.pending or self.waiting):
            return None
        free_t, _ = self._free[0]
        if self.waiting or self.pending[0].arrival_s <= free_t:
            return free_t
        return self.pending[0].arrival_s

    def _peek_head(self, t: float) -> Request:
        """The request the policy would start at decision time ``t``.

        The backpressure gate consults this on every kernel poll; the
        candidate set only changes when a start mutates the queues
        (which always moves a queue length), so the policy sort is
        cached on ``(t, len(waiting), len(pending))``.
        """
        key = (t, len(self.waiting), len(self.pending))
        if self._head_cache is not None and self._head_cache[0] == key:
            return self._head_cache[1]
        candidates = self.waiting + [
            r for r in self.pending if r.arrival_s <= t
        ]
        head = self.policy.order_waiting(candidates)[0]
        self._head_cache = (key, head)
        return head

    # ------------------------------------------------------------------
    def next_event_time(self) -> float | None:
        t_done = self._inflight[0][0] if self._inflight else None
        t_start = self._next_start_time()
        if (
            self.backpressure is not None
            and t_start is not None
            and self.gate.stalled(self._peek_head(t_start), t_start)
        ):
            t_start = None
        if t_done is None:
            return t_start
        if t_start is None:
            return t_done
        return min(t_done, t_start)

    def advance(self, now: float) -> None:
        # Deliver completed prefills to the link first: a hand-off due
        # at `now` must be visible to the link within this instant.
        while self._inflight and self._inflight[0][0] <= now:
            done, _, req = heapq.heappop(self._inflight)
            self.link.enqueue(done, req)
        # Then make every start decision due at `now`.
        while True:
            t = self._next_start_time()
            if t is None or t > now:
                return
            if self.backpressure is not None and self.gate.stalled(
                self._peek_head(t), t
            ):
                return
            self._start_one(now)

    def _start_one(self, now: float) -> None:
        """One prefill start: the sequential pool's loop body, verbatim."""
        now_r, idx = heapq.heappop(self._free)
        while self.pending and self.pending[0].arrival_s <= now_r:
            self.waiting.append(self.pending.pop(0))
        if not self.waiting:
            now_r = max(now_r, self.pending[0].arrival_s)
            while self.pending and self.pending[0].arrival_s <= now_r:
                self.waiting.append(self.pending.pop(0))
        req = self.policy.order_waiting(self.waiting)[0]
        self.waiting.remove(req)
        start = max(now_r, req.arrival_s)
        if self.gate.resumed(now):
            # The stall cleared at `now`; forbid this (and any later)
            # start from predating it.
            self._floor = max(self._floor, now)
        if self._floor > start:
            start = self._floor
        duration = self.costs.prefill_step(1, req.prompt_len).total_s
        done = start + duration
        self.busy[idx] += duration
        self.n_prefills += 1
        # The prefill engine emits the first token; TTFT never waits on
        # the link.
        if req.first_token_s is None:
            req.first_token_s = done
        rec = self._rec
        if rec is not None:
            rec.transition(req, start, "prefill")
            rec.span(start, duration, "prefill", f"{self.name}/r{idx}",
                     args={"tokens": req.prompt_len})
        heapq.heappush(self._inflight, (done, req.request_id, req))
        self.decode_pool.commit_blocks(req)
        heapq.heappush(self._free, (done, idx))

    @property
    def stall_s(self) -> float:
        return self.gate.stall_s

    def finish(self) -> None:
        if self.pending or self.waiting:
            self.gate.raise_stranded(
                r.request_id for r in self.pending + self.waiting
            )


class _PrefillReplica:
    """One chunked prefill engine: scheduler, KV cache and local clock."""

    def __init__(
        self,
        index: int,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
    ):
        self.index = index
        self.costs = costs
        self.config = config
        # The prefix cache lives on the *prefill* side — that is where
        # cached tokens skip work.  Each replica carves a private cache
        # out of its own KV budget (None when no cache is configured).
        self.prefix_cache, batch_bytes = build_prefix_cache(
            config, kv_spec, kv_bytes, costs
        )
        self.scheduler = ContinuousBatchScheduler(
            PagedKVCache(kv_spec, batch_bytes), config.limits,
            config.policy, prefix_cache=self.prefix_cache,
        )
        #: (arrival_s, tiebreak, request) — dispatched, not yet due.
        self.pending: list[tuple[float, int, Request]] = []
        self.outstanding_prompt = 0
        self.clock = 0.0
        self.busy_s = 0.0
        self.n_steps = 0


class ChunkedPrefillPoolStage(Stage):
    """Chunked prefill pool: each replica co-schedules prompt chunks.

    Selected by ``DisaggConfig(prefill_mode="chunked")``.  Arrivals are
    dispatched to the replica with the fewest outstanding prompt tokens
    (ties to the lowest index); each replica then runs the colocated
    chunked planner in prefill-only form — decode never happens here, a
    request is :meth:`~repro.serving.scheduler.ContinuousBatchScheduler.release`-d
    to the transfer link the instant its last chunk completes (which is
    also its TTFT stamp).  Unlike the group pool, chunked replicas hold
    prompt KV resident while prefilling, so each replica carries the
    same KV budget as a decode replica.

    Backpressure gates *admission* into a replica (running chunks always
    finish): requests are admitted one at a time, the gate re-judged
    against the new policy head after each, with the admitted request's
    landing footprint committed to the decode pool's projection — so the
    watermark holds per request, exactly as in the group pool.
    """

    name = "prefill"

    def __init__(
        self,
        requests: list[Request],
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
        link: "TransferLinkStage",
        decode_pool: "DecodePoolStage",
        recorder=None,
    ):
        self.costs = costs
        self.config = config
        self.backpressure = config.disagg.backpressure
        self.link = link
        self.decode_pool = decode_pool
        self.gate = _BackpressureGate(
            config.disagg.backpressure, link, decode_pool
        )
        self.replicas = [
            _PrefillReplica(i, costs, kv_spec, kv_bytes, config)
            for i in range(config.disagg.prefill_replicas)
        ]
        self._rec = recorder
        if recorder is not None:
            self.attach_recorder(recorder)
        self.pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        #: (ready_s, request_id, request) — chunk-complete hand-offs not
        #: yet delivered to the link (a step's hand-off becomes ready at
        #: the post-step clock, which may lie beyond the current kernel
        #: instant — delivering early would inflate the link queue the
        #: backpressure watermark reads).
        self._inflight: list[tuple[float, int, Request]] = []

    def attach_recorder(self, recorder) -> None:
        """Point every telemetry hook of this pool at ``recorder``.

        Track names derive from ``self.name``; the fleet layer calls
        this again after renaming the stage so a replica's lanes read
        ``prefill[2]/r0`` rather than a bare ``prefill/r0``.
        """
        self._rec = recorder
        self.gate.recorder = recorder
        self.gate.track = self.name
        for replica in self.replicas:
            replica.scheduler.telemetry = recorder
            replica.scheduler.track = f"{self.name}/r{replica.index}"
            if replica.prefix_cache is not None:
                replica.prefix_cache.telemetry = recorder
                replica.prefix_cache.track = (
                    f"{self.name}/r{replica.index}/cache"
                )

    # ------------------------------------------------------------------
    def _replica_event(self, replica: _PrefillReplica) -> float | None:
        if replica.scheduler.running:
            return replica.clock
        if replica.pending:
            return max(replica.clock, replica.pending[0][0])
        if replica.scheduler.waiting and not self._gated(
            replica, replica.clock
        ):
            # A gate-stalled replica has no event of its own: the kernel
            # re-polls this method after every downstream event, so it
            # wakes (at the kernel's clamped clock) the instant the
            # watermark clears.
            return replica.clock
        return None

    def next_event_time(self) -> float | None:
        times = [self.pending[0].arrival_s] if self.pending else []
        if self._inflight:
            times.append(self._inflight[0][0])
        times += [
            t for r in self.replicas
            if (t := self._replica_event(r)) is not None
        ]
        return min(times) if times else None

    def advance(self, now: float) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            ready, _, req = heapq.heappop(self._inflight)
            self.link.enqueue(ready, req)
        while self.pending and self.pending[0].arrival_s <= now:
            req = self.pending.pop(0)
            target = min(
                self.replicas,
                key=lambda r: (r.outstanding_prompt, r.index),
            )
            target.outstanding_prompt += req.prompt_len
            heapq.heappush(
                target.pending, (req.arrival_s, req.request_id, req)
            )
        for replica in self.replicas:
            t = self._replica_event(replica)
            if t is not None and t <= now:
                self._step_replica(replica, now)

    # ------------------------------------------------------------------
    def _gated(self, replica: _PrefillReplica, now: float) -> bool:
        if self.backpressure is None or not replica.scheduler.waiting:
            return False
        head = replica.scheduler.policy.order_waiting(
            replica.scheduler.waiting
        )[0]
        return self.gate.stalled(head, now)

    def _step_replica(self, replica: _PrefillReplica, now: float) -> None:
        """One scheduling iteration of one chunked prefill replica."""
        scheduler = replica.scheduler
        while replica.pending and replica.pending[0][0] <= replica.clock:
            _, _, req = heapq.heappop(replica.pending)
            scheduler.submit(req)
        if (
            self.backpressure is not None
            and not scheduler.running
            and scheduler.waiting
            and replica.clock < now
        ):
            # The replica sat gate-stalled with a frozen clock while the
            # kernel moved on: admissions — and the chunks, TTFT stamps
            # and hand-offs they produce — happen at the resume instant,
            # never retroactively (the chunked twin of the group pool's
            # start floor).
            replica.clock = now
        rec = self._rec
        if rec is not None:
            scheduler._now = replica.clock
        # Admit one request at a time so the backpressure gate sees each
        # admission's committed KV before judging the next head — a
        # whole-round admit could flood the decode pool in one go.
        gated = self._gated(replica, now)
        while not gated and scheduler.waiting:
            admitted = scheduler.admit(
                enforce_token_budget=False, max_requests=1
            )
            if not admitted:
                break
            self.decode_pool.commit_blocks(admitted[0])
            self.gate.resumed(now)
            gated = self._gated(replica, now)
        plan = scheduler.plan_step()
        if plan.empty:
            if replica.pending:
                replica.clock = max(replica.clock, replica.pending[0][0])
                return
            if scheduler.has_work and not gated:
                # Nothing runs, nothing is due, admission is not gated,
                # yet requests wait: their prompt KV can never fit this
                # replica.  (A gated replica reports no event instead —
                # the kernel re-polls it after every downstream event,
                # and finish() reports it if the watermark never
                # clears.)
                _raise_stranded(scheduler)
            return
        if scheduler.prefix_cache is not None:
            # Cold-tier hits pay their decompression before the step
            # that uses the restored KV (mirrors the colocated stage).
            delay_s = scheduler.consume_cache_delay()
            if delay_s > 0.0:
                if rec is not None:
                    rec.span(replica.clock, delay_s, "decompress",
                             scheduler.track)
                replica.clock += delay_s
                replica.busy_s += delay_s
        breakdown = self.costs.mixed_step(
            0, 1, plan.n_prefill_seqs, plan.n_prefill_tokens
        )
        if rec is not None:
            rec.span(replica.clock, breakdown.total_s, "prefill",
                     scheduler.track,
                     args={"tokens": plan.n_prefill_tokens,
                           "seqs": plan.n_prefill_seqs})
        replica.clock += breakdown.total_s
        replica.busy_s += breakdown.total_s
        replica.n_steps += 1
        scheduler.apply_step(plan, replica.clock)
        shipped = [
            r for r in scheduler.running if r.prefill_remaining == 0
        ]
        for req in shipped:
            scheduler.release(req)
            replica.outstanding_prompt -= req.prompt_len
            # Blocks were committed at admission (the KV journey became
            # inevitable there); the decode pool uncommits on landing.
            # Delivery to the link waits for the hand-off's ready
            # instant (the post-step clock) via the in-flight heap.
            heapq.heappush(
                self._inflight, (replica.clock, req.request_id, req)
            )
        if rec is not None:
            rec.sample_engine(scheduler.track, replica.clock, scheduler)

    def finish(self) -> None:
        stranded = [r.request_id for r in self.pending] + [
            r.request_id
            for replica in self.replicas
            for r in (
                replica.scheduler.waiting
                + [req for _, _, req in replica.pending]
            )
        ]
        if stranded:
            self.gate.raise_stranded(stranded)

    @property
    def stall_s(self) -> float:
        return self.gate.stall_s

    @property
    def busy(self) -> list[float]:
        return [r.busy_s for r in self.replicas]

    @property
    def n_prefills(self) -> int:
        return sum(r.n_steps for r in self.replicas)

    def cache_stats(self) -> list[PrefixCacheStats]:
        """Per-replica prefix-cache counters (empty when cache off)."""
        return [
            r.prefix_cache.stats()
            for r in self.replicas
            if r.prefix_cache is not None
        ]


# ----------------------------------------------------------------------
# Stage 2: the transfer link
# ----------------------------------------------------------------------
class TransferLinkStage(Stage):
    """KV-transfer link: serial FIFO channel(s) between the pools.

    ``link_topology="shared"`` is one channel serving hand-offs in
    (ready, request-id) order — byte-for-byte the PR 2 fold.
    ``"per_replica"`` gives every decode replica its own channel at the
    configured bandwidth, so transfers to different replicas overlap on
    the wire.  Either way the *target replica* is chosen when the
    hand-off is enqueued (least outstanding decode tokens, ties to the
    lowest index — the same greedy the sequential simulation applied in
    transfer order, which for the shared FIFO is the same order), and
    the decode pool learns the landing time the moment the transfer
    starts, never earlier.
    """

    name = "transfer"

    def __init__(
        self,
        config: ServingConfig,
        kv_spec: KVCacheSpec,
        transfer_ratio: float,
        decode_pool: "DecodePoolStage",
        recorder=None,
    ):
        self._rec = recorder
        disagg = config.disagg
        self.latency = disagg.link_latency_s
        self.bandwidth = disagg.link_gb_per_s * 1e9
        self.overlap = disagg.overlap_fraction
        # Wire bytes are priced off the *raw* KV footprint: the sender
        # re-encodes with the wire codec, whatever codec (if any) the KV
        # is resident in.  For a plain spec raw == resident.
        self.per_token = kv_spec.raw_bytes_per_token / transfer_ratio
        self.per_replica = disagg.link_topology == "per_replica"
        self.n_links = (
            disagg.decode_replicas if self.per_replica else 1
        )
        self.decode_pool = decode_pool
        self._free = [0.0] * self.n_links
        #: Per-channel (ready_s, request_id, request, target) queues.
        self._queues: list[list[tuple[float, int, Request, int]]] = [
            [] for _ in range(self.n_links)
        ]
        self.records: list[TransferRecord] = []
        self.peak_queue_depth = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Hand-offs waiting for a channel (not yet on the wire)."""
        return sum(len(q) for q in self._queues)

    def enqueue(self, ready: float, req: Request) -> None:
        """Accept a finished prefill's KV for transfer at time ``ready``."""
        target = self.decode_pool.assign(req)
        channel = target if self.per_replica else 0
        heapq.heappush(
            self._queues[channel], (ready, req.request_id, req, target)
        )
        self.peak_queue_depth = max(self.peak_queue_depth, self.queue_depth)
        if self._rec is not None:
            self._rec.on_transfer_enqueue(req, ready, self.name, target)
            self._rec.metrics.gauge(
                f"{self.name}/queue_depth", ready, float(self.queue_depth)
            )
        # A hand-off may be due earlier than this stage's cached next
        # event — tell the kernel to re-poll (the heap contract).
        self.notify()

    # ------------------------------------------------------------------
    def next_event_time(self) -> float | None:
        times = [
            max(q[0][0], self._free[ch])
            for ch, q in enumerate(self._queues) if q
        ]
        return min(times) if times else None

    def advance(self, now: float) -> None:
        for channel, queue in enumerate(self._queues):
            while queue and max(queue[0][0], self._free[channel]) <= now:
                ready, _, req, target = heapq.heappop(queue)
                nbytes = req.prompt_len * self.per_token
                wire = nbytes / self.bandwidth
                if self.overlap > 0.0:
                    wire *= 1.0 - self.overlap
                wire += self.latency
                start = max(ready, self._free[channel])
                done = start + wire
                self._free[channel] = done
                self.records.append(TransferRecord(
                    request_id=req.request_id,
                    nbytes=nbytes,
                    ready_s=ready,
                    start_s=start,
                    done_s=done,
                    link=channel,
                ))
                if self._rec is not None:
                    self._rec.on_transfer(
                        req, ready, start, done, nbytes, self.name,
                        channel,
                    )
                self.decode_pool.deliver(target, req, done)

    def finish(self) -> None:
        if self.queue_depth:
            # The link always drains (it reports an event while queued);
            # a leftover here is a kernel-wiring bug, not a workload
            # property.
            raise SchedulingError(
                f"{self.queue_depth} transfers left on the link"
            )


# ----------------------------------------------------------------------
# Stage 3: the decode pool
# ----------------------------------------------------------------------
class _DecodeReplica:
    """One decode-pool engine: its own KV cache, scheduler and clock."""

    def __init__(
        self,
        index: int,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
    ):
        self.index = index
        self.costs = costs
        self.config = config
        self.scheduler = ContinuousBatchScheduler(
            PagedKVCache(kv_spec, kv_bytes), config.limits, config.policy
        )
        #: (release_s, tiebreak, request) — KV arrival order on this replica.
        self.pending: list[tuple[float, int, Request]] = []
        self.outstanding_tokens = 0
        #: Assigned transfers whose landing time is not yet known.
        self.n_unreleased = 0
        self.clock = 0.0
        self.busy_s = 0.0
        self.n_steps = 0
        self.peak_running = 0
        self._quiescent = False


class DecodePoolStage(Stage):
    """Decode pool: N independent continuous-batching replicas.

    Each replica's scheduling iteration mirrors the colocated chunked
    loop, with one twist: an admitted request that was never preempted
    here enters with ``prefill_remaining = 0`` — its KV arrived over the
    link, so no prefill is owed.  Locally preempted requests keep the
    recompute debt ``admit`` assigns them and re-prefill on this
    replica.  Fast-forward windows are capped at the upstream stages'
    next event in addition to the replica's own next KV landing: the
    interleaved kernel cannot see hand-offs that have not been scheduled
    yet, so it stops a window where new work *could* appear (with exact
    costs every window is one step and the cap is moot).

    The stage also owns the backpressure bookkeeping the prefill stage
    reads: committed-but-not-landed KV blocks and the pool's projected
    free fraction, plus the peak observed occupancy
    (``peak_kv_frac``) the ``ext_disagg`` sweep reports.
    """

    name = "decode"

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
        recorder=None,
    ):
        self.config = config
        self.replicas = [
            _DecodeReplica(i, costs, kv_spec, kv_bytes, config)
            for i in range(config.disagg.decode_replicas)
        ]
        self._rec = recorder
        if recorder is not None:
            self.attach_recorder(recorder)
        self.block_size = kv_spec.block_size
        self.total_blocks = sum(
            r.scheduler.kv.n_blocks for r in self.replicas
        )
        self.committed_blocks = 0
        self.peak_kv_frac = 0.0
        self._upstream: tuple[Stage, ...] = ()

    def set_upstream(self, *stages: Stage) -> None:
        """Register the stages whose events cap fast-forward windows."""
        self._upstream = stages

    def attach_recorder(self, recorder) -> None:
        """Point every replica's telemetry hooks at ``recorder``.

        Re-called by the fleet layer after renaming the stage so track
        names carry the replica-qualified stage name.
        """
        self._rec = recorder
        for replica in self.replicas:
            replica.scheduler.telemetry = recorder
            replica.scheduler.track = f"{self.name}/r{replica.index}"

    # ------------------------------------------------------------------
    # Backpressure bookkeeping (read by the prefill stage)
    # ------------------------------------------------------------------
    def blocks_for(self, req: Request) -> int:
        """KV blocks this request will occupy when its KV lands."""
        return ceil_div(req.prompt_len, self.block_size)

    def commit_blocks(self, req: Request) -> None:
        """Reserve the request's landing footprint (at prefill start)."""
        self.committed_blocks += self.blocks_for(req)

    def _uncommit_blocks(self, req: Request) -> None:
        self.committed_blocks -= self.blocks_for(req)

    def projected_free_frac(self, extra_blocks: int = 0) -> float:
        """Pool free-block fraction after in-flight KV (+extra) lands."""
        free = sum(r.scheduler.kv.free_blocks for r in self.replicas)
        return (free - self.committed_blocks - extra_blocks) / max(
            self.total_blocks, 1
        )

    def _sample_occupancy(self) -> None:
        used = sum(r.scheduler.kv.used_blocks for r in self.replicas)
        self.peak_kv_frac = max(
            self.peak_kv_frac, used / max(self.total_blocks, 1)
        )

    # ------------------------------------------------------------------
    # Hand-off plumbing (called by the transfer link)
    # ------------------------------------------------------------------
    def assign(self, req: Request) -> int:
        """Pick the target replica for a hand-off (at enqueue time).

        Least-outstanding-tokens first, ties to the lowest replica index
        — the same deterministic greedy the sequential simulation
        applied, and over the same sequence of hand-offs, so the
        placement is unchanged.  ``outstanding_tokens`` accumulates and
        is never decremented, matching the sequential fold exactly.
        """
        target = min(
            self.replicas, key=lambda r: (r.outstanding_tokens, r.index)
        )
        target.outstanding_tokens += req.remaining_tokens
        target.n_unreleased += 1
        return target.index

    def deliver(self, index: int, req: Request, release_s: float) -> None:
        """Schedule a transfer's landing on its replica (at wire start)."""
        replica = self.replicas[index]
        replica.n_unreleased -= 1
        heapq.heappush(
            replica.pending, (release_s, req.request_id, req)
        )
        if self._rec is not None:
            self._rec.on_deliver(
                req, release_s, f"{self.name}/r{index}"
            )
        replica._quiescent = False
        # The landing may predate this stage's cached next event — tell
        # the kernel to re-poll (the heap contract).
        self.notify()

    # ------------------------------------------------------------------
    def _replica_event(self, replica: _DecodeReplica) -> float | None:
        if replica._quiescent:
            return None
        if replica.scheduler.running or replica.scheduler.waiting:
            return replica.clock
        if replica.pending:
            return max(replica.clock, replica.pending[0][0])
        return None

    def next_event_time(self) -> float | None:
        times = [
            t for r in self.replicas
            if (t := self._replica_event(r)) is not None
        ]
        return min(times) if times else None

    def advance(self, now: float) -> None:
        for replica in self.replicas:
            t = self._replica_event(replica)
            if t is not None and t <= now:
                self._step_replica(replica)

    def _upstream_horizon(self) -> float | None:
        times = [
            t for s in self._upstream
            if (t := s.next_event_time()) is not None
        ]
        return min(times) if times else None

    def _step_replica(self, replica: _DecodeReplica) -> None:
        """One scheduling iteration: the sequential replica loop body."""
        scheduler = replica.scheduler
        rec = self._rec
        if rec is not None:
            scheduler._now = replica.clock
        while replica.pending and replica.pending[0][0] <= replica.clock:
            _, _, req = heapq.heappop(replica.pending)
            scheduler.submit(req)
        for req in scheduler.admit(enforce_token_budget=False):
            if req.n_preemptions == 0:
                req.prefill_remaining = 0
                self._uncommit_blocks(req)
                if rec is not None:
                    # The KV landed over the link — no prefill is owed;
                    # decode residency starts at this admission.
                    rec.transition(req, replica.clock, "decode")
        plan = scheduler.plan_step()
        if self.config.preemption and plan.decode:
            victims = scheduler.ensure_decode_capacity(plan.decode)
            if victims:
                plan.drop(victims)
        if plan.empty:
            if replica.pending:
                replica.clock = max(replica.clock, replica.pending[0][0])
                return
            # Nothing runs and nothing is scheduled to land.  If
            # requests still wait their KV cannot fit *now* — quiesce;
            # a later landing re-polls us, and finish() raises if none
            # ever comes (the conservation guarantee).
            replica._quiescent = True
            return
        replica.peak_running = max(
            replica.peak_running, len(scheduler.running)
        )
        breakdown = replica.costs.mixed_step(
            len(plan.decode),
            max(plan.mean_decode_ctx, 1),
            plan.n_prefill_seqs,
            plan.n_prefill_tokens,
        )
        next_event = replica.pending[0][0] if replica.pending else None
        if self.config.cost_bucket > 0:
            # Only bucketed costs fast-forward; with exact costs the
            # window is always one step and the horizon cap is moot —
            # skip the upstream polls (they include the prefill pool's
            # policy sort) on the hot path.
            horizon = self._upstream_horizon()
            if horizon is not None:
                next_event = (
                    horizon if next_event is None
                    else min(next_event, horizon)
                )
        k = decode_window_len(
            scheduler, plan, next_event, replica.clock,
            breakdown.total_s, self.config.cost_bucket,
        )
        if k > 1:
            win_start = replica.clock
            replica.clock, segments = run_decode_window(
                scheduler, replica.costs, plan, next_event,
                replica.clock, self.config.cost_bucket,
                breakdown.total_s, k,
                preemption=self.config.preemption,
                on_segment=self._sample_occupancy,
            )
            for step_s, ki in segments:
                replica.busy_s += step_s * ki
                replica.n_steps += ki
            if rec is not None:
                t = win_start
                for step_s, ki in segments:
                    rec.span(t, step_s * ki, "decode", scheduler.track,
                             args={"steps": ki,
                                   "batch": len(plan.decode)})
                    t += step_s * ki
                rec.sample_engine(
                    scheduler.track, replica.clock, scheduler
                )
        else:
            if rec is not None:
                rec.span(
                    replica.clock, breakdown.total_s, "step",
                    scheduler.track,
                    args={"decode": len(plan.decode),
                          "prefill_tokens": plan.n_prefill_tokens},
                )
            replica.clock += breakdown.total_s
            replica.busy_s += breakdown.total_s
            replica.n_steps += 1
            scheduler.apply_step(plan, replica.clock)
            self._sample_occupancy()
            if rec is not None:
                rec.sample_engine(
                    scheduler.track, replica.clock, scheduler
                )

    def finish(self) -> None:
        for replica in self.replicas:
            if replica.scheduler.has_work:
                _raise_stranded(replica.scheduler)
            if replica.pending or replica.n_unreleased:
                raise SchedulingError(
                    f"decode replica {replica.index} left"
                    " undelivered hand-offs"
                )


# ----------------------------------------------------------------------
# The core: three stages on one kernel
# ----------------------------------------------------------------------
class DisaggregatedCore:
    """Two-pool serving: prefill pool → KV-transfer link → decode pool.

    Drop-in sibling of :class:`~repro.serving.serve.ServingCore` — same
    constructor shape, same :meth:`serve` contract — selected by
    ``ServingConfig(mode="disaggregated")``.  The result's ``pools`` and
    ``transfer`` fields carry the disaggregation-specific accounting.
    """

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig | None = None,
    ):
        self.config = config or ServingConfig(mode="disaggregated")
        if self.config.mode != "disaggregated":
            raise ConfigError(
                "DisaggregatedCore requires mode='disaggregated',"
                f" got {self.config.mode!r}"
            )
        if (
            self.config.prefix_cache is not None
            and self.config.disagg.prefill_mode != "chunked"
        ):
            raise ConfigError(
                "prefix_cache requires DisaggConfig("
                "prefill_mode='chunked'): the group prefill pool has no"
                " per-replica scheduler to skip cached tokens with"
            )
        self.costs = maybe_memoize(costs, self.config.cost_bucket)
        self.kv_spec = kv_spec
        self.kv_bytes = kv_bytes
        self.policy = get_policy(self.config.policy)
        self.transfer_ratio = resolve_transfer_ratio(self.config)

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[Request],
        deadline_s: float | None = None,
    ) -> ContinuousResult:
        """Replay a trace through the three-stage kernel pipeline.

        ``deadline_s`` bounds the simulation exactly as in
        :meth:`~repro.serving.serve.ServingCore.serve`: the kernel stops
        before the first event past it, and every request not yet
        decoded to completion — still queued for prefill, on the wire,
        or mid-decode — is counted in ``n_unfinished`` (with partial
        timings where a first token exists) instead of raising the
        stranded-work invariant.  ``None`` keeps run-to-completion
        behaviour bit-exactly.
        """
        if not requests:
            raise ConfigError("serve needs at least one request")
        rec = build_recorder(self.config.telemetry)
        disagg = self.config.disagg
        decode_pool = DecodePoolStage(
            self.costs, self.kv_spec, self.kv_bytes, self.config,
            recorder=rec,
        )
        link = TransferLinkStage(
            self.config, self.kv_spec, self.transfer_ratio, decode_pool,
            recorder=rec,
        )
        if disagg.prefill_mode == "chunked":
            prefill: Stage = ChunkedPrefillPoolStage(
                requests, self.costs, self.kv_spec, self.kv_bytes,
                self.config, link, decode_pool, recorder=rec,
            )
        else:
            prefill = PrefillPoolStage(
                requests, self.costs, self.config, link, decode_pool,
                recorder=rec,
            )
        if rec is not None:
            for req in sorted(
                requests, key=lambda r: (r.arrival_s, r.request_id)
            ):
                rec.on_arrival(req, track=prefill.name)
        decode_pool.set_upstream(prefill, link)
        EventKernel(
            [prefill, link, decode_pool], recorder=rec
        ).run(until=deadline_s)

        replicas = decode_pool.replicas
        transfers = link.records
        makespan = max(
            [r.clock for r in replicas]
            + [t.done_s for t in transfers]
            + [t.ready_s for t in transfers]
        )
        finished: list[Request] = []
        for replica in replicas:
            finished.extend(replica.scheduler.finished)
        finished.sort(key=lambda r: r.request_id)
        finished_ids = {r.request_id for r in finished}
        unfinished = [
            r for r in requests if r.request_id not in finished_ids
        ]
        pools = (
            PoolStats.from_busy(
                "prefill", prefill.busy, makespan,
                n_steps=prefill.n_prefills,
                stall_s=prefill.stall_s,
            ),
            PoolStats.from_busy(
                "decode",
                [r.busy_s for r in replicas],
                makespan,
                n_steps=sum(r.n_steps for r in replicas),
                peak_kv_frac=decode_pool.peak_kv_frac,
            ),
        )
        return ContinuousResult.from_run(
            finished,
            makespan_s=makespan,
            n_steps=prefill.n_prefills + sum(r.n_steps for r in replicas),
            peak_running=max(r.peak_running for r in replicas),
            slo=self.config.slo,
            n_preemptions=sum(
                r.scheduler.n_preemptions for r in replicas
            ),
            policy=self.policy.name,
            # The pool runs whatever DisaggConfig.prefill_mode says —
            # the (colocated-only) ServingConfig.prefill_mode does not
            # reshape it; report what actually happened.
            prefill_mode=disagg.prefill_mode,
            mode="disaggregated",
            pools=pools,
            transfer=TransferStats.from_records(
                transfers, makespan, self.transfer_ratio,
                n_links=link.n_links,
                peak_queue_depth=link.peak_queue_depth,
            ),
            unfinished=unfinished,
            deadline_s=deadline_s,
            prefix_cache=(
                PrefixCacheStats.merge(cache_stats)
                if (cache_stats := getattr(
                    prefill, "cache_stats", lambda: []
                )())
                else None
            ),
            telemetry=rec,
        )
