"""Request routing across a replica fleet: policies + the router stage.

The fleet layer (:mod:`repro.serving.fleet`) composes N independent
engine instances on one :class:`~repro.serving.kernel.EventKernel`; this
module owns the *front door*: a :class:`RouterStage` that consumes the
trace's arrival stream and hands each request to one replica, chosen by
a pluggable :class:`RoutingPolicy`.

Policies live in a codec-style registry (:data:`ROUTING_POLICIES`,
mirroring ``repro.serving.scheduler.POLICIES`` and the compression
registry): register a subclass with :func:`register_routing_policy` and
any ``FleetConfig(routing="<name>")`` picks it up.  Builtins:

* ``round_robin`` — cycle over the active replicas; the baseline every
  load balancer ships.
* ``least_outstanding`` — fewest requests routed-but-unfinished; the
  classic least-connections balancer.
* ``least_kv_occupancy`` — lowest *projected* KV-block occupancy, fed by
  the same committed-block signals decode→prefill backpressure reads
  (:meth:`~repro.serving.disagg.DecodePoolStage.projected_free_frac`
  on disagg replicas; allocated + router-committed blocks on colocated
  ones).  Because routing *commits* a request's landing footprint at
  the routing instant, the signal self-balances before any KV is
  allocated — under heterogeneous prompt lengths this beats counting
  requests, since one RAG prompt occupies the KV of fifty chat turns.
* ``session_affinity`` — sticky key→replica mapping (first pick by
  key hash over the active set), so multi-turn sessions land where
  their prefix KV lives.  Requests are keyed by ``session_id`` when
  set, else by a non-default ``tenant`` name; **unkeyed** requests
  cycle round-robin instead of hashing, so a mixed keyed/unkeyed
  stream cannot convoy its unkeyed half onto one replica.  A key whose
  replica is drained by the autoscaler is re-homed on its next
  request.

The router also owns front-door **admission control**:
:class:`RouterConfig(max_outstanding_per_replica=...)` caps each
replica's routed-but-unfinished backlog; a request whose selected
replica is at the cap is *rejected* at the routing instant — recorded
on :attr:`RouterStage.rejected`, surfaced as
``ContinuousResult.n_rejected`` and (being offered-but-not-good)
counted by ``steady_slo_violation_rate``.  The default (``None``)
admits everything, byte-identical to the pre-admission-control fleet.

Determinism: every builtin is a pure function of the routing history
and replica state — no RNG, and the tenant hash is ``zlib.crc32`` (not
Python's seeded ``hash``) — so a trace routes identically across
processes and platforms (tested in ``tests/test_fleet.py``).

**The perf-critical contract** (the reason this is a kernel stage and
not a loop): the heap kernel re-polls a stage only when it is dirty or
idle, so the router must :meth:`~repro.serving.kernel.Stage.notify`
exactly the replicas it delivered into — waking every replica on every
arrival would put the whole fleet back on the O(stages) re-poll path
the PR 6 heap kernel removed, and the 100k-request fleet trace gate in
``benchmarks/bench_serving.py`` would catch it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ConfigError, SchedulingError, UnknownSpecError
from .kernel import Stage
from .scheduler import Request

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "LeastKVOccupancyPolicy",
    "SessionAffinityPolicy",
    "ROUTING_POLICIES",
    "register_routing_policy",
    "get_routing_policy",
    "list_routing_policies",
    "RouterConfig",
    "RouterStage",
]


class RoutingPolicy:
    """Picks the replica that serves each arriving request.

    Subclasses implement :meth:`select`; instances may keep state across
    calls (a round-robin cursor, an affinity map) — the router constructs
    one policy instance per run, so state never leaks between serves.
    """

    #: Registry key (``FleetConfig(routing=<name>)``).
    name = "routing"

    def select(
        self, req: Request, active: list, now: float
    ):
        """Return the replica (from ``active``) that takes ``req``.

        ``active`` is the non-empty list of replicas currently accepting
        traffic (warm and not draining), in index order; ``now`` is the
        routing instant.  Must be deterministic — no RNG, no
        process-seeded hashing — so fleet runs replay bit-identically.
        """
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Cycle over the active replicas in index order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, req: Request, active: list, now: float):
        replica = active[self._cursor % len(active)]
        self._cursor += 1
        return replica


class LeastOutstandingPolicy(RoutingPolicy):
    """Fewest routed-but-unfinished requests (least connections)."""

    name = "least_outstanding"

    def select(self, req: Request, active: list, now: float):
        return min(active, key=lambda r: (r.n_outstanding, r.index))


class LeastKVOccupancyPolicy(RoutingPolicy):
    """Lowest projected KV-block occupancy (committed-block signal).

    ``replica.kv_occupancy()`` counts blocks already allocated *plus*
    blocks committed to requests still queued or in flight — the same
    projection backpressure watermarks gate on — so the signal moves at
    the routing instant, not when KV lands.

    Occupancy is compared at **watermark granularity** (:data:`n_bands`
    equal bands) rather than block granularity, and ties cycle
    round-robin over the band-minimal replicas.  Both choices are
    load-balancer hysteresis, not approximation:

    * at block granularity, whichever replica most recently finished a
      decode batch is fractionally emptiest and convoys *every*
      subsequent arrival until admission catches up — per-request
      commitments are tiny next to running-batch contexts, so the raw
      signal herds and TTFT spikes;
    * within a band the replicas are indistinguishable on memory, and
      an adaptive tie-break (least-outstanding) would chase scheduler
      jitter — on homogeneous traffic that makes the policy strictly
      worse than plain round-robin, the balancer it must dominate.

    Across bands — a replica materially fuller than its peers, the
    regime where one RAG prompt occupies the KV of fifty chat turns —
    occupancy dominates.
    """

    name = "least_kv_occupancy"

    #: Occupancy bands: replicas within the same quartile tie.  Quartile
    #: watermarks match the backpressure convention (low/high fractions
    #: of KV) and are coarse enough that homogeneous traffic — where
    #: every replica hovers around one occupancy — collapses to pure
    #: round-robin rather than band-edge oscillation.
    n_bands = 4

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, req: Request, active: list, now: float):
        banded = [
            (int(r.kv_occupancy() * self.n_bands), r) for r in active
        ]
        low = min(band for band, _ in banded)
        candidates = [r for band, r in banded if band == low]
        replica = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return replica


class SessionAffinityPolicy(RoutingPolicy):
    """Sticky key→replica mapping (hash first, then pinned).

    The affinity key is ``session_id`` when the request carries one
    (multi-turn session traces — the prefix cache lives on the replica
    the session is pinned to), else a non-``"default"`` ``tenant``
    name.  The first request of a key picks ``crc32(key) %
    len(active)`` — a platform-stable hash, deliberately not Python's
    per-process seeded ``hash()`` — and every later request follows
    the pin while that replica stays active.  A pin to a drained
    replica is re-homed (and re-pinned) on the key's next request.

    **Unkeyed** requests (no session, default tenant) are *not*
    pinned: they cycle round-robin over the active set.  Hashing them
    would put every unkeyed request behind one shared ``"default"``
    key and convoy the whole stream onto a single replica — the bug
    class this branch exists to avoid.
    """

    name = "session_affinity"

    def __init__(self) -> None:
        self._pins: dict[str, object] = {}
        self._cursor = 0

    def select(self, req: Request, active: list, now: float):
        session = getattr(req, "session_id", None)
        if session is not None:
            key = f"s{session}"
        else:
            tenant = getattr(req, "tenant", "default")
            if tenant == "default":
                replica = active[self._cursor % len(active)]
                self._cursor += 1
                return replica
            key = f"t{tenant}"
        replica = self._pins.get(key)
        if replica is None or replica not in active:
            replica = active[zlib.crc32(key.encode()) % len(active)]
            self._pins[key] = replica
        return replica


ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    cls.name: cls
    for cls in (
        RoundRobinPolicy,
        LeastOutstandingPolicy,
        LeastKVOccupancyPolicy,
        SessionAffinityPolicy,
    )
}


def register_routing_policy(cls: type[RoutingPolicy]) -> type[RoutingPolicy]:
    """Register a :class:`RoutingPolicy` subclass under ``cls.name``.

    Usable as a decorator; returns the class unchanged.  Re-registering
    a taken name raises — shadowing a builtin silently would change
    every config using it.
    """
    name = cls.name
    if name in ROUTING_POLICIES and ROUTING_POLICIES[name] is not cls:
        raise SchedulingError(
            f"routing policy name {name!r} is already registered"
        )
    ROUTING_POLICIES[name] = cls
    return cls


def get_routing_policy(policy) -> RoutingPolicy:
    """Resolve a policy by name (case-insensitive) or pass one through."""
    if isinstance(policy, RoutingPolicy):
        return policy
    key = str(policy).lower()
    if key not in ROUTING_POLICIES:
        raise UnknownSpecError(
            "routing policy", policy, list(ROUTING_POLICIES)
        )
    return ROUTING_POLICIES[key]()


def list_routing_policies() -> list[str]:
    """Registered routing-policy names, sorted."""
    return sorted(ROUTING_POLICIES)


@dataclass(frozen=True)
class RouterConfig:
    """Front-door admission control (``FleetConfig(router=...)``).

    ``max_outstanding_per_replica`` caps a replica's
    routed-but-unfinished backlog: a request whose policy-selected
    replica is at the cap is **rejected** at the routing instant
    instead of delivered — the request never enters any queue, exactly
    like a load balancer returning 503 when the backend's connection
    pool is exhausted.  ``None`` (the default) admits everything.
    """

    max_outstanding_per_replica: int | None = None

    def __post_init__(self) -> None:
        cap = self.max_outstanding_per_replica
        if cap is not None and cap < 1:
            raise ConfigError(
                f"max_outstanding_per_replica must be >= 1, got {cap}"
            )


class RouterStage(Stage):
    """The fleet's front door: routes the arrival stream to replicas.

    Holds the full trace sorted by arrival and a cursor — no pops, so a
    100k-request trace costs one sort up front and O(1) per arrival.
    Each :meth:`advance` routes every arrival due at ``now`` through the
    policy (which sees only active replicas), delivers it into the
    chosen replica's entry queue, and then notifies *exactly the
    replicas it touched* — the heap-kernel contract that keeps a
    1000-replica fleet from waking wholesale on every arrival.

    ``assignments`` records ``request_id → replica index`` for the
    routing histogram and the determinism tests; requests refused by
    admission control (:class:`RouterConfig`) land on ``rejected``
    instead and are never delivered anywhere.
    """

    name = "router"

    def __init__(
        self,
        requests: list[Request],
        policy,
        replicas: list,
        config: RouterConfig | None = None,
        recorder=None,
    ):
        self.policy = get_routing_policy(policy)
        self.replicas = replicas
        self.config = config or RouterConfig()
        self._rec = recorder
        self._pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        self._cursor = 0
        self.assignments: dict[int, int] = {}
        self.rejected: list[Request] = []

    # ------------------------------------------------------------------
    @property
    def n_unrouted(self) -> int:
        """Arrivals not yet handed to a replica."""
        return len(self._pending) - self._cursor

    def next_arrival_s(self) -> float | None:
        """When the next unrouted request arrives (fast-forward horizon).

        Colocated fleet replicas cap their decode fast-forward windows
        here: a window may not overshoot an arrival the router has not
        delivered yet (the fleet twin of the disagg upstream-horizon
        cap).  Side-effect-free, so it doubles as this stage's next
        event time.
        """
        if self._cursor >= len(self._pending):
            return None
        return self._pending[self._cursor].arrival_s

    # ------------------------------------------------------------------
    def next_event_time(self) -> float | None:
        return self.next_arrival_s()

    def advance(self, now: float) -> None:
        pending, replicas = self._pending, self.replicas
        cap = self.config.max_outstanding_per_replica
        touched = set()
        while self._cursor < len(pending):
            req = pending[self._cursor]
            if req.arrival_s > now:
                break
            self._cursor += 1
            active = [r for r in replicas if r.is_active(now)]
            if not active:
                raise SchedulingError(
                    "no active replica to route request"
                    f" {req.request_id} at t={now}"
                )
            replica = self.policy.select(req, active, now)
            if cap is not None and replica.n_outstanding >= cap:
                self.rejected.append(req)
                if self._rec is not None:
                    self._rec.on_reject(req, now, self.name)
                continue
            replica.deliver(req)
            self.assignments[req.request_id] = replica.index
            touched.add(replica)
            if self._rec is not None:
                self._rec.on_route(req, now, replica.index)
        for replica in touched:
            replica.entry_stage.notify()

    def finish(self) -> None:
        if self.n_unrouted:
            raise SchedulingError(
                f"{self.n_unrouted} requests left unrouted"
            )
