"""Model zoo: the LLM families the paper benchmarks (§6.1).

Layer shapes are taken from the public model configurations; kernel
benchmarks extract their GEMM dims from here exactly as the paper extracts
them from the real checkpoints.  Projections are merged the way serving
engines merge them: QKV into one matrix, gate+up into one matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnknownSpecError


@dataclass(frozen=True)
class LayerShape:
    """One linear-layer weight matrix: ``Y = W[m, k] @ x``.

    ``count`` is how many instances exist in the model (n_layers for
    per-block projections, 1 for the LM head).
    """

    name: str
    kind: str
    m: int
    k: int
    count: int

    @property
    def params(self) -> int:
        """Parameters across all instances."""
        return self.m * self.k * self.count

    @property
    def bytes_bf16(self) -> int:
        """BF16 bytes across all instances."""
        return 2 * self.params


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of one LLM."""

    name: str
    family: str
    nominal_params_b: float
    hidden: int
    intermediate: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    vocab: int
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads:
            raise ValueError(
                f"{self.name}: heads {self.n_heads} not divisible by"
                f" kv heads {self.n_kv_heads}"
            )

    @property
    def q_dim(self) -> int:
        """Query projection output width (may differ from hidden, e.g. Gemma)."""
        return self.n_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        """Key/value projection output width."""
        return self.n_kv_heads * self.head_dim

    def linear_layers(self) -> list[LayerShape]:
        """Every GEMM weight in the model, merged as served.

        The input embedding is *not* listed: it is a gather table, not a
        GEMM, and ZipServ keeps it dense (§6.5 accounting).
        """
        L = self.n_layers
        return [
            LayerShape("qkv_proj", "qkv_proj",
                       self.q_dim + 2 * self.kv_dim, self.hidden, L),
            LayerShape("o_proj", "o_proj", self.hidden, self.q_dim, L),
            LayerShape("gateup_proj", "gateup_proj",
                       2 * self.intermediate, self.hidden, L),
            LayerShape("down_proj", "down_proj",
                       self.hidden, self.intermediate, L),
            LayerShape("lm_head", "lm_head", self.vocab, self.hidden, 1),
        ]

    @property
    def embedding_params(self) -> int:
        """Input-embedding parameters (output embedding is the LM head)."""
        return self.vocab * self.hidden

    def param_count(self) -> int:
        """Total parameters (linear layers + input embedding).

        The LM head is omitted when embeddings are tied (it shares the input
        embedding storage).
        """
        total = self.embedding_params
        for layer in self.linear_layers():
            if layer.kind == "lm_head" and self.tie_embeddings:
                continue
            total += layer.params
        return total

    @property
    def weight_bytes_bf16(self) -> int:
        """BF16 weight footprint in bytes."""
        return 2 * self.param_count()

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes per token (BF16 K and V across all layers)."""
        return 2 * 2 * self.n_layers * self.kv_dim


MODELS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        ModelSpec("llama3.1-8b", "llama3.1", 8.0,
                  4096, 14336, 32, 32, 8, 128, 128256),
        ModelSpec("llama3.1-70b", "llama3.1", 70.0,
                  8192, 28672, 80, 64, 8, 128, 128256),
        ModelSpec("llama3.1-405b", "llama3.1", 405.0,
                  16384, 53248, 126, 128, 8, 128, 128256),
        ModelSpec("qwen2.5-7b", "qwen2.5", 7.6,
                  3584, 18944, 28, 28, 4, 128, 152064),
        ModelSpec("qwen2.5-14b", "qwen2.5", 14.7,
                  5120, 13824, 48, 40, 8, 128, 152064),
        ModelSpec("qwen2.5-32b", "qwen2.5", 32.5,
                  5120, 27648, 64, 40, 8, 128, 152064),
        ModelSpec("qwen2.5-72b", "qwen2.5", 72.7,
                  8192, 29568, 80, 64, 8, 128, 152064),
        ModelSpec("gemma3-12b", "gemma3", 12.0,
                  3840, 15360, 48, 16, 8, 256, 262208, tie_embeddings=True),
        ModelSpec("gemma3-27b", "gemma3", 27.0,
                  5376, 21504, 62, 32, 16, 128, 262208, tie_embeddings=True),
        ModelSpec("mistral-24b", "mistral", 24.0,
                  5120, 32768, 40, 32, 8, 128, 131072),
        ModelSpec("mistral-123b", "mistral", 123.0,
                  12288, 28672, 88, 96, 8, 128, 32768),
    ]
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive)."""
    key = name.lower()
    if key not in MODELS:
        raise UnknownSpecError("model", name, list(MODELS))
    return MODELS[key]
