"""Tensor parallelism: Megatron-style layer sharding and all-reduce cost.

Column-parallel layers (QKV, GateUp, LM head) split the output dim; row-
parallel layers (O, Down) split the input dim and require an all-reduce of
the activations afterwards — two all-reduces per transformer block per step.
The paper's multi-GPU runs (Mistral-24B on 2x L40S, LLaMA-70B on 4x L40S)
communicate over PCIe, which the ring model below captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..gpu.specs import GpuSpec
from .models import LayerShape

#: Per-operation latency of a collective (launch + rendezvous).
ALLREDUCE_LATENCY_S = 20e-6

#: Layer kinds whose output dimension is sharded.
COLUMN_PARALLEL = {"qkv_proj", "gateup_proj", "lm_head"}

#: Layer kinds whose input dimension is sharded (all-reduce after).
ROW_PARALLEL = {"o_proj", "down_proj"}


@dataclass(frozen=True)
class TensorParallelLayout:
    """Sharding decision for one layer."""

    m: int
    k: int
    needs_allreduce: bool


def shard_layer(layer: LayerShape, tp: int) -> TensorParallelLayout:
    """Per-GPU GEMM shape of ``layer`` under ``tp``-way tensor parallelism."""
    if tp < 1:
        raise ConfigError("tensor parallel degree must be >= 1")
    if tp == 1:
        return TensorParallelLayout(layer.m, layer.k, False)
    if layer.kind in COLUMN_PARALLEL:
        if layer.m % tp:
            raise ConfigError(
                f"{layer.name}: output dim {layer.m} not divisible by tp={tp}"
            )
        return TensorParallelLayout(layer.m // tp, layer.k, False)
    if layer.kind in ROW_PARALLEL:
        if layer.k % tp:
            raise ConfigError(
                f"{layer.name}: input dim {layer.k} not divisible by tp={tp}"
            )
        return TensorParallelLayout(layer.m, layer.k // tp, True)
    raise ConfigError(f"unknown layer kind {layer.kind!r}")


def allreduce_time(spec: GpuSpec, nbytes: float, tp: int) -> float:
    """Ring all-reduce time for ``nbytes`` across ``tp`` GPUs.

    Standard ring cost: each GPU sends/receives ``2 (tp-1)/tp`` of the
    buffer over its interconnect, plus a fixed latency term.
    """
    if tp < 1:
        raise ConfigError("tensor parallel degree must be >= 1")
    if nbytes < 0:
        raise ConfigError("allreduce bytes must be non-negative")
    if tp == 1:
        return 0.0
    wire = 2.0 * (tp - 1) / tp * nbytes / (spec.interconnect_gbps * 1e9)
    return wire + ALLREDUCE_LATENCY_S
