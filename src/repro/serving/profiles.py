"""Named workload profiles: declarative traffic shapes for capacity runs.

A capacity study asks the same question of many configurations — *what
arrival rate can this stack sustain under its SLO?* — and the answer is
only comparable when every configuration faces the **same traffic
shape**.  This module gives those shapes names: a
:class:`WorkloadProfile` declares its request mix as weighted
:class:`WorkloadStream` components (each a prompt/output
:class:`~repro.serving.trace.LengthDistribution` pair plus a scheduler
priority), and compiles to a concrete request trace for any arrival
process — the open-loop driver (:mod:`repro.serving.openloop`) hands it
Poisson arrival stamps, the profile fills in the lengths.

Profiles are registered like codecs and scheduler policies: a module
registry (:data:`PROFILES`), a :func:`get_profile` lookup that raises
:class:`~repro.errors.UnknownSpecError` with a nearest-match hint, and a
:func:`register_profile` hook so experiments can add shapes without
editing this file (docs recipe 6 in ``docs/adding-a-scenario.md``).

Built-in shapes (all deterministic per seed, golden-pinned in
``tests/test_profiles.py``):

* ``fixed_length`` — every request identical (512 prompt / 128 output;
  cv=0).  The control shape: capacity differences between stacks are
  pure configuration, zero workload variance.
* ``chat`` — the interactive mix: 90% short chat turns at priority 1
  over 10% background batch jobs at priority 0 (the multi-tenant
  scenario of :data:`repro.serving.trace.DEFAULT_TENANTS`, recast as a
  single-rate stream mix).
* ``code_generation`` — long prefill, short decode: fat prompts (whole
  files of context) answered with short completions.  Prefill-bound,
  the regime where chunked prefill and prefill/decode disaggregation
  move the knee.
* ``rag_long_context`` — retrieval-augmented generation: very long
  stuffed-context prompts with medium answers.  KV-heaviest shape per
  request, so compressed KV (residency *and* wire) pays most here.
* ``chat_sessions`` — multi-turn sessions (:class:`SessionProfile`):
  a shared system prompt plus per-turn growing history, so consecutive
  turns share a long prompt prefix.  The prefix-cache workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, UnknownSpecError
from .scheduler import Request
from .trace import LengthDistribution, TenantSpec

__all__ = [
    "WorkloadStream",
    "WorkloadProfile",
    "SessionProfile",
    "PROFILES",
    "register_profile",
    "get_profile",
    "list_profiles",
]


@dataclass(frozen=True)
class WorkloadStream:
    """One component of a profile's request mix.

    ``weight`` is the stream's share of arrivals (normalised over the
    profile's streams); lengths come from the clipped log-normal
    :class:`~repro.serving.trace.LengthDistribution` pair, and
    ``priority`` tags the generated requests for priority-aware
    scheduler policies (higher runs first, matching
    :class:`~repro.serving.trace.TenantSpec`).
    """

    weight: float
    prompts: LengthDistribution
    outputs: LengthDistribution
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ConfigError("stream weight must be positive")


@dataclass(frozen=True)
class WorkloadProfile:
    """A named traffic shape: weighted streams compiling to traces.

    The profile is **rate-free**: it describes what requests look like,
    not how fast they arrive.  Callers bring the arrival process —
    :meth:`trace` pairs the profile with explicit arrival stamps (the
    open-loop driver's path), :meth:`tenant_specs` re-expresses the mix
    as :class:`~repro.serving.trace.TenantSpec` entries for the
    closed-trace :func:`~repro.serving.trace.multi_tenant_trace`
    generator (weights become per-tenant rate shares).
    """

    name: str
    description: str
    streams: dict[str, WorkloadStream] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("profile needs a name")
        if not self.streams:
            raise ConfigError(f"profile {self.name!r} needs >= 1 stream")

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        """Sum of stream weights (the mix normaliser)."""
        return sum(s.weight for s in self.streams.values())

    def tenant_specs(
        self, rate_rps: float, n_requests: int
    ) -> dict[str, TenantSpec]:
        """The mix as per-tenant specs at one total offered rate.

        Each stream gets its weight share of both the rate and the
        request count (at least one request each), so
        :func:`~repro.serving.trace.multi_tenant_trace` reproduces the
        profile's mix as superposed Poisson processes.
        """
        if rate_rps <= 0:
            raise ConfigError("rate_rps must be positive")
        if n_requests < len(self.streams):
            raise ConfigError(
                f"profile {self.name!r} needs >= {len(self.streams)}"
                " requests (one per stream)"
            )
        total = self.total_weight
        return {
            name: TenantSpec(
                rate_rps=rate_rps * s.weight / total,
                n_requests=max(1, round(n_requests * s.weight / total)),
                prompts=s.prompts,
                outputs=s.outputs,
                priority=s.priority,
            )
            for name, s in self.streams.items()
        }

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[list[str], np.ndarray, np.ndarray, list[int]]:
        """Draw ``n`` requests' (stream, prompt_len, output_len, priority).

        Deterministic per RNG state: streams are visited in sorted-name
        order — one weighted assignment draw (skipped entirely for
        single-stream profiles, so their draw sequence matches a bare
        ``LengthDistribution.sample`` pair), then one vectorised length
        pair per stream, scattered back to request positions.
        """
        names = sorted(self.streams)
        if len(names) == 1:
            choice = np.zeros(n, dtype=int)
        else:
            weights = np.array(
                [self.streams[nm].weight for nm in names], dtype=float
            )
            choice = rng.choice(len(names), size=n, p=weights / weights.sum())
        prompts = np.zeros(n, dtype=int)
        outputs = np.zeros(n, dtype=int)
        for i, nm in enumerate(names):
            idx = np.flatnonzero(choice == i)
            if idx.size == 0:
                continue
            stream = self.streams[nm]
            prompts[idx] = stream.prompts.sample(idx.size, rng)
            outputs[idx] = stream.outputs.sample(idx.size, rng)
        tenants = [names[c] for c in choice]
        priorities = [self.streams[t].priority for t in tenants]
        return tenants, prompts, outputs, priorities

    def trace(
        self,
        arrivals: np.ndarray | list[float],
        seed: int = 0,
    ) -> list[Request]:
        """Materialise requests for explicit arrival stamps.

        The arrival process is the caller's (open-loop constant-rate,
        recorded production stamps, anything); the profile only fills in
        per-request lengths, tenants and priorities — which is exactly
        what makes open-loop arrivals completion-independent: the stamps
        are fixed before the simulator runs a single step.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigError("trace needs at least one arrival")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigError("arrival stamps must be non-decreasing")
        rng = np.random.default_rng(seed)
        tenants, prompts, outputs, priorities = self.sample(
            arrivals.size, rng
        )
        return [
            Request(
                request_id=i,
                prompt_len=int(prompts[i]),
                max_new_tokens=int(outputs[i]),
                arrival_s=float(arrivals[i]),
                tenant=tenants[i],
                priority=priorities[i],
            )
            for i in range(arrivals.size)
        ]


@dataclass(frozen=True)
class SessionProfile(WorkloadProfile):
    """A multi-turn session shape: arrivals are turns, not requests.

    The open-loop driver hands any profile a flat arrival-stamp array;
    a session profile reinterprets stamp ``i`` as **turn ``i // S`` of
    session ``i % S``** with ``S = ceil(n / mean_turns)`` concurrent
    sessions — every arrival keeps its stamp and its draw order (the
    stream's prompt distribution supplies the *user turn* lengths), but
    prompts grow with the session's accumulated history on top of the
    shared ``system_prompt_len``, and each request carries
    ``session_id`` and ``prefix_tokens`` (the context cached by the
    previous turn).  Rate sweeps therefore scale the *session count*,
    not the turns per session, keeping the prefix-reuse structure
    comparable across rates.
    """

    system_prompt_len: int = 256
    mean_turns: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.system_prompt_len < 0:
            raise ConfigError("system_prompt_len must be >= 0")
        if self.mean_turns < 1.0:
            raise ConfigError("mean_turns must be >= 1")

    def trace(
        self,
        arrivals: np.ndarray | list[float],
        seed: int = 0,
    ) -> list[Request]:
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigError("trace needs at least one arrival")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigError("arrival stamps must be non-decreasing")
        rng = np.random.default_rng(seed)
        n = int(arrivals.size)
        tenants, user_lens, outputs, priorities = self.sample(n, rng)
        n_sessions = max(1, -(-n // int(round(self.mean_turns))))
        context: dict[int, int] = {}
        requests = []
        for i in range(n):
            sid = i % n_sessions
            cached = context.get(sid, 0)
            prompt = (
                (cached if cached else self.system_prompt_len)
                + int(user_lens[i])
            )
            requests.append(Request(
                request_id=i,
                prompt_len=prompt,
                max_new_tokens=int(outputs[i]),
                arrival_s=float(arrivals[i]),
                tenant=tenants[i],
                priority=priorities[i],
                session_id=sid,
                prefix_tokens=cached,
            ))
            context[sid] = prompt + int(outputs[i])
        return requests


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Registered profiles by name.  Mutated only via
#: :func:`register_profile`; look up via :func:`get_profile`.
PROFILES: dict[str, WorkloadProfile] = {}


def register_profile(profile: WorkloadProfile) -> WorkloadProfile:
    """Add a profile to the registry (its ``name`` is the key).

    Re-registering an existing name raises — capacity baselines key on
    profile names, and silently redefining one would corrupt every
    comparison against the committed knees.
    """
    if profile.name in PROFILES:
        raise ConfigError(
            f"workload profile {profile.name!r} is already registered"
        )
    PROFILES[profile.name] = profile
    return profile


def get_profile(name: str | WorkloadProfile) -> WorkloadProfile:
    """Look up a profile by name (instances pass through unchanged)."""
    if isinstance(name, WorkloadProfile):
        return name
    try:
        return PROFILES[name]
    except KeyError:
        raise UnknownSpecError(
            "workload profile", name, list(PROFILES)
        ) from None


def list_profiles() -> list[str]:
    """Registered profile names, sorted."""
    return sorted(PROFILES)


# ----------------------------------------------------------------------
# Built-in shapes
# ----------------------------------------------------------------------
register_profile(WorkloadProfile(
    name="fixed_length",
    description=(
        "Every request identical: 512-token prompt, 128-token output."
        " The control shape — zero workload variance, so capacity"
        " differences are pure configuration."
    ),
    streams={
        "fixed": WorkloadStream(
            weight=1.0,
            prompts=LengthDistribution(mean=512, cv=0.0, minimum=512,
                                       maximum=512),
            outputs=LengthDistribution(mean=128, cv=0.0, minimum=128,
                                       maximum=128),
        ),
    },
))

register_profile(WorkloadProfile(
    name="chat",
    description=(
        "Interactive mix: 90% short chat turns (priority 1) over 10%"
        " background batch jobs — the DEFAULT_TENANTS scenario as a"
        " single-rate stream mix."
    ),
    streams={
        "interactive": WorkloadStream(
            weight=0.9,
            prompts=LengthDistribution(mean=128, cv=0.6, minimum=16,
                                       maximum=512),
            outputs=LengthDistribution(mean=96, cv=0.8, minimum=8,
                                       maximum=384),
            priority=1,
        ),
        "batch": WorkloadStream(
            weight=0.1,
            prompts=LengthDistribution(mean=768, cv=0.5, minimum=128,
                                       maximum=2048),
            outputs=LengthDistribution(mean=384, cv=0.6, minimum=64,
                                       maximum=1024),
        ),
    },
))

register_profile(WorkloadProfile(
    name="code_generation",
    description=(
        "Long prefill, short decode: whole-file prompts answered with"
        " short completions. Prefill-bound — the regime where chunked"
        " prefill and disaggregation move the knee."
    ),
    streams={
        "completion": WorkloadStream(
            weight=1.0,
            prompts=LengthDistribution(mean=1536, cv=0.5, minimum=256,
                                       maximum=4096),
            outputs=LengthDistribution(mean=48, cv=0.6, minimum=8,
                                       maximum=192),
        ),
    },
))

register_profile(SessionProfile(
    name="chat_sessions",
    description=(
        "Multi-turn chat sessions: a shared system prompt plus history"
        " that grows every turn, so consecutive turns share a long"
        " prompt prefix. The prefix-cache workload — cached prefill is"
        " skipped, turning cache capacity (and cold-tier compression"
        " ratio) into knee throughput."
    ),
    streams={
        "sessions": WorkloadStream(
            weight=1.0,
            prompts=LengthDistribution(mean=64, cv=0.6, minimum=8,
                                       maximum=256),
            outputs=LengthDistribution(mean=128, cv=0.7, minimum=16,
                                       maximum=384),
        ),
    },
    system_prompt_len=256,
    mean_turns=4.0,
))

register_profile(WorkloadProfile(
    name="rag_long_context",
    description=(
        "Retrieval-augmented generation: very long stuffed-context"
        " prompts with medium answers. KV-heaviest shape per request,"
        " where compressed KV (residency and wire) pays most."
    ),
    streams={
        "rag": WorkloadStream(
            weight=1.0,
            prompts=LengthDistribution(mean=3072, cv=0.4, minimum=512,
                                       maximum=8192),
            outputs=LengthDistribution(mean=256, cv=0.5, minimum=32,
                                       maximum=768),
        ),
    },
))
