"""Serving-backend configurations: ZipServ, vLLM, Transformers, DFloat11.

A backend bundles the decisions that differentiate the four systems in the
end-to-end comparison (§6.5): how weights are stored, how linear layers
execute, which attention implementation runs, and how much framework
overhead every step pays.  Numeric constants live in
:mod:`repro.analysis.calibration` where they carry provenance notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import DISPATCH_OVERHEAD_S, E2E_BW_DERATE
from ..errors import UnknownSpecError


@dataclass(frozen=True)
class BackendConfig:
    """Execution profile of one serving system."""

    name: str
    weight_scheme: str  # "dense" | "tcatbe" | "dfloat11"
    linear_mode: str  # "cublas" | "stage_aware" | "decoupled_per_use"
    attention: str  # "paged" | "eager"
    dispatch_overhead_s: float
    other_ops_per_layer: int
    fixed_step_overhead_s: float
    elementwise_pass_factor: float = 1.0
    per_layer_sync_s: float = 0.0
    e2e_bw_derate: float = E2E_BW_DERATE
    supports_tensor_parallel: bool = True

    def __post_init__(self) -> None:
        if self.weight_scheme not in ("dense", "tcatbe", "dfloat11"):
            raise ValueError(f"unknown weight scheme {self.weight_scheme!r}")
        if self.linear_mode not in (
            "cublas", "stage_aware", "decoupled_per_use"
        ):
            raise ValueError(f"unknown linear mode {self.linear_mode!r}")
        if self.attention not in ("paged", "eager"):
            raise ValueError(f"unknown attention kind {self.attention!r}")


BACKENDS: dict[str, BackendConfig] = {
    cfg.name: cfg
    for cfg in [
        # vLLM: dense cuBLAS linears, PagedAttention, lean dispatch.
        BackendConfig(
            name="vllm",
            weight_scheme="dense",
            linear_mode="cublas",
            attention="paged",
            dispatch_overhead_s=DISPATCH_OVERHEAD_S["vllm"],
            other_ops_per_layer=7,
            fixed_step_overhead_s=0.4e-3,
        ),
        # ZipServ: vLLM integration + TCA-TBE weights + stage-aware linears.
        BackendConfig(
            name="zipserv",
            weight_scheme="tcatbe",
            linear_mode="stage_aware",
            attention="paged",
            dispatch_overhead_s=DISPATCH_OVERHEAD_S["zipserv"],
            other_ops_per_layer=7,
            fixed_step_overhead_s=0.4e-3,
        ),
        # HF Transformers: eager attention, unfused elementwise ops, heavy
        # Python dispatch, no paged KV (contiguous pre-allocation).
        BackendConfig(
            name="transformers",
            weight_scheme="dense",
            linear_mode="cublas",
            attention="eager",
            dispatch_overhead_s=DISPATCH_OVERHEAD_S["transformers"],
            other_ops_per_layer=12,
            fixed_step_overhead_s=6.0e-3,
            elementwise_pass_factor=1.6,
        ),
        # DFloat11: Transformers-based, Huffman-compressed weights that are
        # decompressed (decoupled) before every use, with a per-layer sync
        # and scratch-buffer churn.
        BackendConfig(
            name="dfloat11",
            weight_scheme="dfloat11",
            linear_mode="decoupled_per_use",
            attention="eager",
            dispatch_overhead_s=DISPATCH_OVERHEAD_S["dfloat11"],
            other_ops_per_layer=12,
            fixed_step_overhead_s=6.0e-3,
            elementwise_pass_factor=1.6,
            per_layer_sync_s=0.8e-3,
            supports_tensor_parallel=False,
        ),
    ]
}


def get_backend(name: str) -> BackendConfig:
    """Look up a backend by name (case-insensitive)."""
    key = name.lower()
    if key not in BACKENDS:
        raise UnknownSpecError("backend", name, list(BACKENDS))
    return BACKENDS[key]
