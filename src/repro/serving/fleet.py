"""Fleet-scale serving: N engine instances behind a router, on one kernel.

One engine — colocated or disaggregated — tops out at its capacity knee;
"millions of users" means a *fleet* of them behind a load balancer, the
shape the multi-instance k8s deployments shipped with
inference-benchmarker (replicas behind a service) deploy in production.
This module makes that shape simulable without a new simulator: a fleet
run is just more :class:`~repro.serving.kernel.Stage` objects on the
same :class:`~repro.serving.kernel.EventKernel`.

Composition (selected by ``ServingConfig(mode="fleet",
fleet=FleetConfig(...))`` through ``InferenceEngine.serve``):

* :class:`~repro.serving.router.RouterStage` — consumes the arrival
  stream and hands each request to a replica via a registered
  :class:`~repro.serving.router.RoutingPolicy`;
* N **replicas**, each a full engine instance with its own scheduler
  and KV cache: a colocated
  :class:`~repro.serving.serve.ColocatedStage`, or an entire disagg
  stage-trio (prefill pool → transfer link → decode pool).  Each
  replica has its *own* :class:`ServingConfig`, so mixed fleets — a
  few big disagg cells plus cheap colocated spot instances — are
  expressible (``FleetConfig.instances``);
* an optional :class:`AutoscalerStage` — a periodic control loop that
  *activates* standby replicas when the fleet's projected KV occupancy
  crosses the high watermark (or backpressure stall time grows), after
  a configurable warm-up delay, and *drains* idle replicas at the low
  watermark — never one holding in-flight work.

Costs are resolved **once** at the fleet level: the engine's codec
stack (weights/KV/wire, auto slots, calibration) feeds every replica,
and replicas sharing a ``cost_bucket`` share one memoized cost model —
a 4-replica fleet warms one step-price cache, not four.

Fast-forward correctness: a colocated replica's decode window may not
overshoot an arrival the router has not delivered yet, so each replica
caps its window at :meth:`RouterStage.next_arrival_s` (the fleet twin
of the disagg upstream-horizon cap); disagg replicas get the router
appended to their decode pool's upstream set.  Conservation — every
offered request is finished, in flight, or still queued somewhere, and
``sum(per-replica finished) == fleet finished`` — is tested in
``tests/test_fleet.py`` and surfaced per replica on
:class:`~repro.serving.metrics.ContinuousResult.replicas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..utils import ceil_div
from .costs import StepCostModel, maybe_memoize
from .disagg import (
    ChunkedPrefillPoolStage,
    DecodePoolStage,
    PrefillPoolStage,
    TransferLinkStage,
    resolve_transfer_ratio,
)
from .kernel import EventKernel, Stage
from .kvcache import KVCacheSpec, PagedKVCache
from .metrics import ContinuousResult, PoolStats, ReplicaStats, TransferStats
from .prefixcache import PrefixCacheStats
from .router import RouterConfig, RouterStage, get_routing_policy
from .scheduler import ContinuousBatchScheduler, Request, get_policy
from .serve import ColocatedStage, ServingConfig, build_prefix_cache
from .telemetry import build_recorder

__all__ = [
    "AutoscalerConfig",
    "AutoscalerStage",
    "FleetConfig",
    "FleetCore",
    "ScaleEvent",
]


@dataclass(frozen=True)
class AutoscalerConfig:
    """The fleet autoscaler's control loop.

    Every ``interval_s`` of simulated time (while work exists) the
    controller reads the fleet's signals and may take one action:

    * **scale up** — when the worst active replica's projected KV
      occupancy reaches ``kv_high_frac``, or any prefill pool's
      backpressure stall time grew since the last tick, activate one
      standby replica; it starts taking traffic ``warmup_s`` later
      (model load + cache warm time);
    * **scale down** — when the worst occupancy is at or below
      ``kv_low_frac`` and more than ``min_replicas`` are active, drain
      one replica — always the highest-indexed one with **zero
      outstanding work** (never a replica holding in-flight requests;
      the invariant ``tests/test_fleet.py`` pins).

    ``min_replicas`` is also the initially-active count; replicas
    beyond it start standby.  ``max_replicas=None`` caps at the fleet
    size.
    """

    min_replicas: int = 1
    max_replicas: int | None = None
    interval_s: float = 1.0
    warmup_s: float = 0.0
    kv_high_frac: float = 0.85
    kv_low_frac: float = 0.15

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if (
            self.max_replicas is not None
            and self.max_replicas < self.min_replicas
        ):
            raise ConfigError("max_replicas must be >= min_replicas")
        if not self.interval_s > 0:
            raise ConfigError("interval_s must be positive")
        if self.warmup_s < 0:
            raise ConfigError("warmup_s must be >= 0")
        if not 0.0 <= self.kv_low_frac < self.kv_high_frac <= 1.0:
            raise ConfigError(
                "need 0 <= kv_low_frac < kv_high_frac <= 1, got"
                f" [{self.kv_low_frac}, {self.kv_high_frac}]"
            )


@dataclass(frozen=True)
class FleetConfig:
    """Geometry and routing of a replica fleet (``mode="fleet"``).

    ``instance`` is the per-replica :class:`ServingConfig` template
    (``mode="colocated"`` or ``"disaggregated"``); ``None`` derives it
    from the fleet-level config (same policy, limits, prefill mode and
    cost bucket, colocated).  ``instances`` instead lists one config
    per replica for heterogeneous fleets and overrides
    ``n_replicas``/``instance``.  Instance configs may not set codec
    slots or calibration — compression resolves once at the fleet
    level (``InferenceEngine.serve``) and feeds every replica — and
    may not nest fleets.
    """

    n_replicas: int = 2
    routing: object = "round_robin"
    instance: ServingConfig | None = None
    instances: tuple[ServingConfig, ...] = ()
    autoscaler: AutoscalerConfig | None = None
    #: Front-door admission control
    #: (:class:`~repro.serving.router.RouterConfig`); ``None`` admits
    #: everything.
    router: RouterConfig | None = None

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigError("n_replicas must be >= 1")
        if self.router is not None and not isinstance(
            self.router, RouterConfig
        ):
            raise ConfigError(
                "FleetConfig.router must be a RouterConfig,"
                f" got {type(self.router).__name__}"
            )
        get_routing_policy(self.routing)  # raises UnknownSpecError
        for cfg in (self.instance, *self.instances):
            if cfg is None:
                continue
            if not isinstance(cfg, ServingConfig):
                raise ConfigError(
                    "fleet instances must be ServingConfig values,"
                    f" got {type(cfg).__name__}"
                )
            if cfg.mode == "fleet":
                raise ConfigError("fleet instances cannot nest fleets")
            for slot in (cfg.weight_codec, cfg.kv_codec,
                         cfg.transfer_codec):
                if slot is not None:
                    raise ConfigError(
                        "instance codec slots must be None: compression"
                        " resolves once at the fleet level (set the"
                        " slots on the mode='fleet' config)"
                    )
            if cfg.calibration is not None:
                raise ConfigError(
                    "instance calibration must be None (set it on the"
                    " mode='fleet' config)"
                )
        n = len(self.instances) or self.n_replicas
        if self.autoscaler is not None and self.autoscaler.min_replicas > n:
            raise ConfigError(
                f"autoscaler min_replicas ({self.autoscaler.min_replicas})"
                f" exceeds the fleet size ({n})"
            )

    @property
    def size(self) -> int:
        """Total replicas (active + standby)."""
        return len(self.instances) or self.n_replicas

    def resolve_instances(
        self, outer: ServingConfig
    ) -> tuple[ServingConfig, ...]:
        """Settle the per-replica configs against the fleet-level one.

        Fleet-level codec state propagates down where an instance needs
        it: the (already policy-resolved) ``transfer_codec`` to disagg
        instances, ``calibration`` to everyone — so wire pricing inside
        a replica sees the same measured ratios the fleet's cost stack
        was built with — and ``prefix_cache`` to any instance that does
        not set its own (every replica carves a private cache; a fleet
        of N replicas holds N independent prefix caches, which is why
        ``session_affinity`` routing changes fleet hit rates).
        """
        if self.instances:
            base = self.instances
        else:
            template = self.instance
            if template is None:
                template = replace(
                    outer, mode="colocated", fleet=None,
                    weight_codec=None, kv_codec=None,
                    transfer_codec=None, calibration=None,
                    # One recorder per fleet run, threaded explicitly by
                    # FleetCore — never one per replica config.
                    telemetry=None,
                )
            base = (template,) * self.n_replicas
        resolved = []
        for cfg in base:
            updates: dict = {}
            if (
                outer.transfer_codec is not None
                and cfg.mode == "disaggregated"
            ):
                updates["transfer_codec"] = outer.transfer_codec
            if outer.calibration is not None:
                updates["calibration"] = outer.calibration
            if (
                outer.prefix_cache is not None
                and cfg.prefix_cache is None
                # Group-mode disagg prefill has no scheduler to skip
                # cached tokens with — such instances run cache-less.
                and not (
                    cfg.mode == "disaggregated"
                    and cfg.disagg.prefill_mode != "chunked"
                )
            ):
                updates["prefix_cache"] = outer.prefix_cache
            resolved.append(replace(cfg, **updates) if updates else cfg)
        return tuple(resolved)


class _SignalKVCache(PagedKVCache):
    """A KV cache that retires router block commitments on allocation.

    The router commits a request's landing footprint at the routing
    instant (so ``least_kv_occupancy`` sees queued work before any KV
    is allocated); the first real allocation for that sequence retires
    the commitment — after which the live block table carries the
    signal.  Re-allocations after preemption find nothing to retire.
    """

    def __init__(self, spec, capacity_bytes, on_allocate) -> None:
        super().__init__(spec, capacity_bytes)
        self._on_allocate = on_allocate

    def allocate(self, seq_id: int, n_tokens: int) -> None:
        self._on_allocate(seq_id)
        super().allocate(seq_id, n_tokens)


class _ColocatedReplica:
    """One fleet replica wrapping a colocated engine stage."""

    mode = "colocated"

    def __init__(
        self,
        index: int,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
        recorder=None,
    ):
        self.index = index
        self.config = config
        # Each replica carves a *private* prefix cache out of its own
        # KV budget — sessions only hit where their finished turns
        # landed, which is what makes routing policy show up in fleet
        # hit rates.
        self.prefix_cache, batch_bytes = build_prefix_cache(
            config, kv_spec, kv_bytes, costs
        )
        kv = _SignalKVCache(
            kv_spec, batch_bytes, self._retire_commitment
        )
        self.scheduler = ContinuousBatchScheduler(
            kv, config.limits, config.policy,
            prefix_cache=self.prefix_cache,
        )
        self.pending: list[Request] = []
        self.stage = ColocatedStage(
            costs, self.scheduler, self.pending, config,
            recorder=recorder,
        )
        self.stage.name = f"engine[{index}]"
        if recorder is not None:
            # Re-point the tracks the stage derived from its pre-rename
            # name.
            self.scheduler.track = self.stage.name
            if self.prefix_cache is not None:
                self.prefix_cache.telemetry = recorder
                self.prefix_cache.track = f"{self.stage.name}/cache"
        self._block_size = kv_spec.block_size
        self._committed: dict[int, int] = {}
        self._committed_blocks = 0
        self.n_routed = 0
        #: When this replica (became / will become) active; ``None`` =
        #: standby or drained.  Set by the core and the autoscaler.
        self.active_since: float | None = None

    # -- router surface -------------------------------------------------
    @property
    def stages(self) -> tuple[Stage, ...]:
        return (self.stage,)

    @property
    def entry_stage(self) -> Stage:
        return self.stage

    def attach_router(self, router: RouterStage) -> None:
        self.stage.horizon = router.next_arrival_s

    def is_active(self, now: float) -> bool:
        return self.active_since is not None and self.active_since <= now

    def deliver(self, req: Request) -> None:
        # The router routes in arrival order, so appending keeps the
        # replica's pending queue sorted — the ColocatedStage contract.
        self.pending.append(req)
        self.n_routed += 1
        blocks = ceil_div(req.prompt_len, self._block_size)
        self._committed[req.request_id] = blocks
        self._committed_blocks += blocks

    def _retire_commitment(self, seq_id: int) -> None:
        blocks = self._committed.pop(seq_id, None)
        if blocks is not None:
            self._committed_blocks -= blocks

    # -- routing signals ------------------------------------------------
    @property
    def n_outstanding(self) -> int:
        return self.n_routed - len(self.scheduler.finished)

    def kv_occupancy(self) -> float:
        """Projected block occupancy: allocated + router-committed."""
        kv = self.scheduler.kv
        return (kv.used_blocks + self._committed_blocks) / max(
            kv.n_blocks, 1
        )

    stall_s = 0.0

    # -- result surface -------------------------------------------------
    @property
    def finished(self) -> list[Request]:
        return self.scheduler.finished

    @property
    def clock_s(self) -> float:
        return self.stage.clock

    @property
    def n_steps(self) -> int:
        return self.stage.n_steps

    @property
    def peak_running(self) -> int:
        return self.stage.peak_running

    @property
    def n_preemptions(self) -> int:
        return self.scheduler.n_preemptions

    def cache_stats(self) -> list[PrefixCacheStats]:
        if self.prefix_cache is None:
            return []
        return [self.prefix_cache.stats()]

    def stats(self, makespan_s: float) -> ReplicaStats:
        pool = PoolStats.from_busy(
            f"replica{self.index}/engine", [self.stage.busy_s],
            makespan_s, n_steps=self.stage.n_steps,
            peak_kv_frac=self.stage.peak_kv_frac,
        )
        return ReplicaStats(
            index=self.index,
            mode=self.mode,
            n_routed=self.n_routed,
            n_finished=len(self.finished),
            n_unfinished=self.n_outstanding,
            pools=(pool,),
        )


class _DisaggReplica:
    """One fleet replica wrapping a full disaggregated stage-trio."""

    mode = "disaggregated"

    def __init__(
        self,
        index: int,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig,
        recorder=None,
    ):
        self.index = index
        self.config = config
        self.transfer_ratio = resolve_transfer_ratio(config)
        self.decode_pool = DecodePoolStage(
            costs, kv_spec, kv_bytes, config, recorder=recorder
        )
        self.link = TransferLinkStage(
            config, kv_spec, self.transfer_ratio, self.decode_pool,
            recorder=recorder,
        )
        if config.disagg.prefill_mode == "chunked":
            self.prefill: Stage = ChunkedPrefillPoolStage(
                [], costs, kv_spec, kv_bytes, config,
                self.link, self.decode_pool, recorder=recorder,
            )
        else:
            self.prefill = PrefillPoolStage(
                [], costs, config, self.link, self.decode_pool,
                recorder=recorder,
            )
        for stage, label in (
            (self.prefill, "prefill"),
            (self.link, "transfer"),
            (self.decode_pool, "decode"),
        ):
            stage.name = f"{label}[{index}]"
        if recorder is not None:
            # Re-derive track names from the replica-qualified stage
            # names (the link reads its name lazily at emit time).
            attach = getattr(self.prefill, "attach_recorder", None)
            if attach is not None:
                attach(recorder)
            else:
                self.prefill.gate.track = self.prefill.name
            self.decode_pool.attach_recorder(recorder)
        self.n_routed = 0
        self.active_since: float | None = None
        self._chunked = config.disagg.prefill_mode == "chunked"

    # -- router surface -------------------------------------------------
    @property
    def stages(self) -> tuple[Stage, ...]:
        return (self.prefill, self.link, self.decode_pool)

    @property
    def entry_stage(self) -> Stage:
        return self.prefill

    def attach_router(self, router: RouterStage) -> None:
        self.decode_pool.set_upstream(self.prefill, self.link, router)

    def is_active(self, now: float) -> bool:
        return self.active_since is not None and self.active_since <= now

    def deliver(self, req: Request) -> None:
        # Arrival-ordered append, matching both pool flavours' pending
        # contract (they pop arrivals from the front in order).
        self.prefill.pending.append(req)
        self.n_routed += 1

    # -- routing signals ------------------------------------------------
    @property
    def n_outstanding(self) -> int:
        return self.n_routed - self.n_finished

    def _queued_requests(self) -> list[Request]:
        """Requests routed here whose KV is not yet committed downstream."""
        queued = list(self.prefill.pending)
        if self._chunked:
            for rep in self.prefill.replicas:
                queued += [r for _, _, r in rep.pending]
                queued += list(rep.scheduler.waiting)
        else:
            queued += list(self.prefill.waiting)
        return queued

    def kv_occupancy(self) -> float:
        """Projected decode-pool occupancy, queue included.

        ``projected_free_frac`` already counts blocks committed by
        started/admitted prefills; folding the not-yet-committed queue
        in as ``extra_blocks`` makes a backlogged cell look as full as
        it is about to be.
        """
        extra = sum(
            self.decode_pool.blocks_for(r) for r in self._queued_requests()
        )
        return 1.0 - self.decode_pool.projected_free_frac(extra)

    @property
    def stall_s(self) -> float:
        return self.prefill.stall_s

    # -- result surface -------------------------------------------------
    @property
    def n_finished(self) -> int:
        return sum(
            len(r.scheduler.finished) for r in self.decode_pool.replicas
        )

    @property
    def finished(self) -> list[Request]:
        out: list[Request] = []
        for rep in self.decode_pool.replicas:
            out.extend(rep.scheduler.finished)
        return out

    @property
    def clock_s(self) -> float:
        times = [r.clock for r in self.decode_pool.replicas]
        times += [t.done_s for t in self.link.records]
        times += [t.ready_s for t in self.link.records]
        return max(times, default=0.0)

    @property
    def n_steps(self) -> int:
        return self.prefill.n_prefills + sum(
            r.n_steps for r in self.decode_pool.replicas
        )

    @property
    def peak_running(self) -> int:
        return max(
            (r.peak_running for r in self.decode_pool.replicas), default=0
        )

    @property
    def n_preemptions(self) -> int:
        return sum(
            r.scheduler.n_preemptions for r in self.decode_pool.replicas
        )

    def cache_stats(self) -> list[PrefixCacheStats]:
        # Only the chunked prefill pool carries prefix caches.
        return getattr(self.prefill, "cache_stats", lambda: [])()

    def stats(self, makespan_s: float) -> ReplicaStats:
        pools = (
            PoolStats.from_busy(
                f"replica{self.index}/prefill", self.prefill.busy,
                makespan_s, n_steps=self.prefill.n_prefills,
                stall_s=self.prefill.stall_s,
            ),
            PoolStats.from_busy(
                f"replica{self.index}/decode",
                [r.busy_s for r in self.decode_pool.replicas],
                makespan_s,
                n_steps=sum(
                    r.n_steps for r in self.decode_pool.replicas
                ),
                peak_kv_frac=self.decode_pool.peak_kv_frac,
            ),
        )
        return ReplicaStats(
            index=self.index,
            mode=self.mode,
            n_routed=self.n_routed,
            n_finished=self.n_finished,
            n_unfinished=self.n_outstanding,
            pools=pools,
            transfer=TransferStats.from_records(
                self.link.records, makespan_s, self.transfer_ratio,
                n_links=self.link.n_links,
                peak_queue_depth=self.link.peak_queue_depth,
            ),
        )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, for the scaling timeline."""

    t_s: float
    action: str  # "up" | "down"
    replica: int
    reason: str  # "kv" | "stall" | "idle"
    #: For "up": when the replica starts taking traffic (t_s + warmup).
    active_at_s: float | None = None
    #: The replica's outstanding work at action time (always 0 on
    #: "down" — the never-drain-in-flight invariant, pinned in tests).
    n_outstanding: int = 0


class AutoscalerStage(Stage):
    """Periodic scale-up/scale-down control loop as a kernel stage.

    Ticks every ``interval_s`` while the fleet has work (unrouted
    arrivals or outstanding requests); reports no event otherwise, so
    an idle fleet drains without the autoscaler keeping the kernel
    alive.  Each tick reads the same signals backpressure uses —
    projected KV occupancy (committed blocks included) and prefill
    stall growth — and takes at most one action; activations take
    effect ``warmup_s`` later, which the router observes through
    ``replica.is_active``.
    """

    name = "autoscaler"

    def __init__(
        self,
        config: AutoscalerConfig,
        router: RouterStage,
        replicas: list,
        recorder=None,
    ):
        self.config = config
        self.router = router
        self.replicas = replicas
        self._rec = recorder
        self.events: list[ScaleEvent] = []
        self._next = config.interval_s
        self._last_stall = 0.0

    def _has_work(self) -> bool:
        if self.router.n_unrouted:
            return True
        return any(r.n_outstanding for r in self.replicas)

    def next_event_time(self) -> float | None:
        return self._next if self._has_work() else None

    def advance(self, now: float) -> None:
        while self._next <= now:
            self._evaluate(self._next)
            self._next += self.config.interval_s

    def _evaluate(self, t: float) -> None:
        cfg = self.config
        active = [
            r for r in self.replicas
            if r.active_since is not None and r.active_since <= t
        ]
        warming = [
            r for r in self.replicas
            if r.active_since is not None and r.active_since > t
        ]
        standby = [r for r in self.replicas if r.active_since is None]
        occupancy = max((r.kv_occupancy() for r in active), default=0.0)
        stall = sum(r.stall_s for r in self.replicas)
        stalled = stall > self._last_stall
        self._last_stall = stall
        cap = cfg.max_replicas
        if cap is None:
            cap = len(self.replicas)
        if (
            (occupancy >= cfg.kv_high_frac or stalled)
            and standby
            and len(active) + len(warming) < cap
        ):
            replica = standby[0]
            replica.active_since = t + cfg.warmup_s
            event = ScaleEvent(
                t_s=t,
                action="up",
                replica=replica.index,
                reason="kv" if occupancy >= cfg.kv_high_frac else "stall",
                active_at_s=replica.active_since,
            )
            self.events.append(event)
            if self._rec is not None:
                self._rec.on_scale(event)
        elif (
            occupancy <= cfg.kv_low_frac
            and len(active) > cfg.min_replicas
        ):
            # Drain the highest-indexed idle replica; a replica with
            # outstanding work is never drained.
            for replica in reversed(active):
                if replica.n_outstanding == 0:
                    replica.active_since = None
                    event = ScaleEvent(
                        t_s=t,
                        action="down",
                        replica=replica.index,
                        reason="idle",
                        n_outstanding=replica.n_outstanding,
                    )
                    self.events.append(event)
                    if self._rec is not None:
                        self._rec.on_scale(event)
                    break


class FleetCore:
    """Fleet serving: router → N replicas (+ autoscaler) on one kernel.

    Drop-in sibling of :class:`~repro.serving.serve.ServingCore` and
    :class:`~repro.serving.disagg.DisaggregatedCore` — same constructor
    shape, same :meth:`serve` contract — selected by
    ``ServingConfig(mode="fleet")``.  The result reports ``mode="fleet"``
    with per-replica breakdowns on ``result.replicas`` (and their pools
    flattened into ``result.pools`` under ``replica<i>/...`` names).

    After :meth:`serve`, ``last_router`` and ``scale_events`` expose the
    run's routing assignments and autoscaler timeline for inspection.
    """

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig | None = None,
    ):
        self.config = config or ServingConfig(mode="fleet")
        if self.config.mode != "fleet":
            raise ConfigError(
                f"FleetCore requires mode='fleet', got"
                f" {self.config.mode!r}"
            )
        self.costs = costs
        self.kv_spec = kv_spec
        self.kv_bytes = kv_bytes
        self.policy = get_policy(self.config.policy)
        # Replicas sharing a cost bucket share one memoized cost model:
        # the fleet warms one step-price cache, not one per replica.
        self._memoized: dict[int, StepCostModel] = {}
        self.last_router: RouterStage | None = None
        self.scale_events: tuple[ScaleEvent, ...] = ()

    # ------------------------------------------------------------------
    def _costs_for(self, bucket: int) -> StepCostModel:
        if bucket not in self._memoized:
            self._memoized[bucket] = maybe_memoize(self.costs, bucket)
        return self._memoized[bucket]

    def _build_replica(self, index: int, cfg: ServingConfig, recorder=None):
        costs = self._costs_for(cfg.cost_bucket)
        cls = (
            _DisaggReplica if cfg.mode == "disaggregated"
            else _ColocatedReplica
        )
        return cls(
            index, costs, self.kv_spec, self.kv_bytes, cfg,
            recorder=recorder,
        )

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[Request],
        deadline_s: float | None = None,
    ) -> ContinuousResult:
        """Replay a trace through the fleet; same contract as the cores.

        ``deadline_s`` bounds the simulation exactly as in the single
        cores; conservation holds by construction —
        ``n_requests + n_unfinished == n_offered`` — so
        :func:`~repro.serving.openloop.run_open_loop` (and therefore
        ``find_knee``) drives a fleet unchanged.
        """
        if not requests:
            raise ConfigError("serve needs at least one request")
        rec = build_recorder(self.config.telemetry)
        fleet = self.config.fleet
        instance_configs = fleet.resolve_instances(self.config)
        replicas = [
            self._build_replica(i, cfg, recorder=rec)
            for i, cfg in enumerate(instance_configs)
        ]
        router = RouterStage(
            requests, fleet.routing, replicas, config=fleet.router,
            recorder=rec,
        )
        if rec is not None:
            for req in sorted(
                requests, key=lambda r: (r.arrival_s, r.request_id)
            ):
                rec.on_arrival(req, track=router.name)
        n_active = len(replicas)
        if fleet.autoscaler is not None:
            n_active = min(fleet.autoscaler.min_replicas, len(replicas))
        for replica in replicas[:n_active]:
            replica.active_since = 0.0
        for replica in replicas:
            replica.attach_router(router)
        stages: list[Stage] = [router]
        for replica in replicas:
            stages.extend(replica.stages)
        autoscaler = None
        if fleet.autoscaler is not None:
            autoscaler = AutoscalerStage(
                fleet.autoscaler, router, replicas, recorder=rec
            )
            stages.append(autoscaler)
        EventKernel(stages, recorder=rec).run(until=deadline_s)
        self.last_router = router
        self.scale_events = (
            tuple(autoscaler.events) if autoscaler is not None else ()
        )

        finished: list[Request] = []
        for replica in replicas:
            finished.extend(replica.finished)
        finished.sort(key=lambda r: r.request_id)
        done_ids = {r.request_id for r in finished}
        done_ids.update(r.request_id for r in router.rejected)
        unfinished = [
            r for r in requests if r.request_id not in done_ids
        ]
        makespan = max((r.clock_s for r in replicas), default=0.0)
        stats = tuple(r.stats(makespan) for r in replicas)
        cache_stats = [
            s for replica in replicas for s in replica.cache_stats()
        ]
        return ContinuousResult.from_run(
            finished,
            makespan_s=makespan,
            n_steps=sum(r.n_steps for r in replicas),
            peak_running=max((r.peak_running for r in replicas), default=0),
            slo=self.config.slo,
            n_preemptions=sum(r.n_preemptions for r in replicas),
            policy=self.policy.name,
            prefill_mode=self.config.prefill_mode,
            mode="fleet",
            pools=tuple(p for s in stats for p in s.pools),
            unfinished=unfinished,
            n_rejected=len(router.rejected),
            deadline_s=deadline_s,
            replicas=stats,
            prefix_cache=(
                PrefixCacheStats.merge(cache_stats)
                if cache_stats else None
            ),
            scale_events=self.scale_events,
            telemetry=rec,
        )
