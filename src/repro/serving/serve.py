"""The serving core: an event-driven loop over cost + scheduling layers.

Top of the three-layer serving architecture.  :class:`ServingCore` owns the
simulated clock and nothing else: each iteration it asks the scheduler what
to run (admission, chunked-prefill planning, preemption when KV fills),
prices the plan with a :class:`~repro.serving.costs.StepCostModel`, advances
time, and commits the plan.  When no work is runnable it jumps the clock to
the next arrival — event-driven, no idle ticking.

Two prefill modes:

* ``"group"`` — the seed engine's behaviour, kept bit-compatible for the
  ``InferenceEngine.run_continuous`` facade: each admission group pays one
  whole-prompt prefill pass at ``max(prompt_len)``;
* ``"chunked"`` — vLLM-style chunked prefill: prompt tokens are
  co-scheduled with decode tokens under ``max_batched_tokens``, so decode
  latency is never held hostage by a long prompt.

Results carry the full metrics picture (TTFT/TPOT, interpolated
percentiles, SLO goodput) via :mod:`repro.serving.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..utils import ceil_div
from .costs import MemoizedStepCostModel, StepCostModel
from .kvcache import KVCacheSpec, PagedKVCache
from .metrics import ContinuousResult, SLOTarget
from .scheduler import (
    ContinuousBatchScheduler,
    Request,
    RequestState,
    SchedulerLimits,
    SchedulerPolicy,
    get_policy,
)

PREFILL_MODES = ("group", "chunked")


@dataclass(frozen=True)
class ServingConfig:
    """How the serving core schedules and accounts a trace run."""

    policy: str | SchedulerPolicy = "fcfs"
    prefill_mode: str = "chunked"
    limits: SchedulerLimits = field(default_factory=SchedulerLimits)
    slo: SLOTarget = field(default_factory=SLOTarget)
    #: 0 disables cost memoization; > 0 buckets decode contexts (and
    #: prefill chunks, at a quarter of the size) to that many tokens.
    cost_bucket: int = 0
    preemption: bool = True

    def __post_init__(self) -> None:
        if self.prefill_mode not in PREFILL_MODES:
            raise ConfigError(
                f"prefill_mode must be one of {PREFILL_MODES},"
                f" got {self.prefill_mode!r}"
            )
        if self.cost_bucket < 0:
            raise ConfigError("cost_bucket must be >= 0")

    def with_limits(self, limits: SchedulerLimits | None) -> "ServingConfig":
        """A copy with ``limits`` swapped in (if given)."""
        return self if limits is None else replace(self, limits=limits)


class ServingCore:
    """Event-driven continuous-batching simulator."""

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig | None = None,
    ):
        self.config = config or ServingConfig()
        if self.config.cost_bucket > 0:
            costs = MemoizedStepCostModel(
                costs,
                ctx_bucket=self.config.cost_bucket,
                token_bucket=max(1, self.config.cost_bucket // 4),
            )
        self.costs = costs
        self.kv_spec = kv_spec
        self.kv_bytes = kv_bytes

    # ------------------------------------------------------------------
    def serve(self, requests: list[Request]) -> ContinuousResult:
        """Replay a request trace; returns the full metrics picture."""
        if not requests:
            raise ConfigError("serve needs at least one request")
        kv = PagedKVCache(self.kv_spec, self.kv_bytes)
        scheduler = ContinuousBatchScheduler(
            kv, self.config.limits, self.config.policy
        )
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if self.config.prefill_mode == "group":
            clock, n_steps, peak = self._serve_group(scheduler, pending)
        else:
            clock, n_steps, peak = self._serve_chunked(scheduler, pending)
        return ContinuousResult.from_run(
            scheduler.finished,
            makespan_s=clock,
            n_steps=n_steps,
            peak_running=peak,
            slo=self.config.slo,
            n_preemptions=scheduler.n_preemptions,
            policy=scheduler.policy.name,
            prefill_mode=self.config.prefill_mode,
        )

    # ------------------------------------------------------------------
    def _serve_group(
        self,
        scheduler: ContinuousBatchScheduler,
        pending: list[Request],
    ) -> tuple[float, int, int]:
        """Seed-compatible loop: whole-prompt prefill per admission group."""
        clock = 0.0
        n_steps = 0
        peak_running = 0
        while pending or scheduler.has_work:
            while pending and pending[0].arrival_s <= clock:
                scheduler.submit(pending.pop(0))
            admitted = scheduler.admit()
            if admitted:
                prompt = max(r.prefill_remaining for r in admitted)
                clock += self.costs.prefill_step(
                    len(admitted), prompt
                ).total_s
                for req in admitted:
                    req.prefill_remaining = 0
                    if req.first_token_s is None:
                        req.first_token_s = clock
            if not scheduler.running:
                if pending:
                    clock = max(clock, pending[0].arrival_s)
                    continue
                break
            if self.config.preemption:
                scheduler.ensure_decode_capacity(list(scheduler.running))
            batch = len(scheduler.running)
            peak_running = max(peak_running, batch)
            mean_ctx = int(
                sum(r.context_len for r in scheduler.running) / batch
            )
            clock += self.costs.decode_step(batch, max(mean_ctx, 1)).total_s
            n_steps += 1
            for req in scheduler.step():
                if req.done:
                    req.finish_s = clock
        return clock, n_steps, peak_running

    # ------------------------------------------------------------------
    def _serve_chunked(
        self,
        scheduler: ContinuousBatchScheduler,
        pending: list[Request],
    ) -> tuple[float, int, int]:
        """Chunked-prefill loop: prompt and decode tokens share the budget."""
        clock = 0.0
        n_steps = 0
        peak_running = 0
        while pending or scheduler.has_work:
            while pending and pending[0].arrival_s <= clock:
                scheduler.submit(pending.pop(0))
            scheduler.admit(enforce_token_budget=False)
            plan = scheduler.plan_step()
            if self.config.preemption and plan.decode:
                victims = scheduler.ensure_decode_capacity(plan.decode)
                if victims:
                    plan.drop(victims)
            if plan.empty:
                if pending:
                    clock = max(clock, pending[0].arrival_s)
                    continue
                break
            peak_running = max(peak_running, len(scheduler.running))
            breakdown = self.costs.mixed_step(
                len(plan.decode),
                max(plan.mean_decode_ctx, 1),
                plan.n_prefill_seqs,
                plan.n_prefill_tokens,
            )
            k = self._decode_window(scheduler, plan, pending, clock,
                                    breakdown.total_s)
            if k > 1:
                clock += breakdown.total_s * k
                n_steps += k
                self._apply_window(scheduler, plan, k, clock)
            else:
                clock += breakdown.total_s
                n_steps += 1
                scheduler.apply_step(plan, clock)
        return clock, n_steps, peak_running

    # ------------------------------------------------------------------
    # Fast-forward over identical decode steps
    # ------------------------------------------------------------------
    def _decode_window(
        self,
        scheduler: ContinuousBatchScheduler,
        plan,
        pending: list[Request],
        clock: float,
        step_s: float,
    ) -> int:
        """Steps the current decode-only plan can repeat unchanged.

        Only meaningful with bucketed costs (``cost_bucket > 0``): inside a
        context bucket every decode step of a stable batch prices
        identically, so the loop may advance ``k`` steps in one shot.  The
        window ends at the first event that would change the plan or its
        price: a request finishing, a pending arrival, the mean context
        crossing a bucket edge, or KV needing more blocks than are free
        (conservative — fall back to stepping so preemption logic runs).
        Exact costs (``cost_bucket == 0``) always step one at a time, since
        every step then prices differently.

        A non-empty waiting queue does not end the window: admission was
        just attempted and blocked, and with no arrivals, finishes or
        frees inside the window the blocker (sequence slots, or free KV
        which only shrinks while decode grows) persists until the window's
        last step — exactly when the stepwise loop would next admit.
        """
        bucket = self.config.cost_bucket
        if (
            bucket <= 0
            or plan.prefill
            or not plan.decode
            or len(plan.decode) != len(scheduler.running)
        ):
            return 1
        k = min(r.remaining_tokens for r in plan.decode)
        mean_ctx = max(plan.mean_decode_ctx, 1)
        k = min(k, ceil_div(mean_ctx, bucket) * bucket - mean_ctx + 1)
        if pending and step_s > 0:
            gap = pending[0].arrival_s - clock
            k = min(k, max(1, int(gap / step_s)))
        if k > 1:
            kv = scheduler.kv
            needed = sum(
                kv.blocks_needed(r.request_id, k) for r in plan.decode
            )
            if needed > kv.free_blocks:
                return 1
        return k

    @staticmethod
    def _apply_window(
        scheduler: ContinuousBatchScheduler,
        plan,
        k: int,
        clock: float,
    ) -> None:
        """Commit ``k`` identical decode steps at post-window time ``clock``.

        ``k`` never exceeds the smallest remaining-token count, so only
        requests finishing exactly at the window's last step finish — with
        the same ``finish_s`` the stepwise loop would have stamped.
        """
        kv = scheduler.kv
        for req in plan.decode:
            kv.append_token(req.request_id, k)
            req.generated += k
            if req.done:
                req.state = RequestState.FINISHED
                req.finish_s = clock
                kv.free(req.request_id)
                scheduler.running.remove(req)
                scheduler.finished.append(req)
