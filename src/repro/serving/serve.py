"""The serving core: an event-driven loop over cost + scheduling layers.

Top of the three-layer serving architecture.  :class:`ServingCore` owns the
simulated clock and nothing else: each iteration it asks the scheduler what
to run (admission, chunked-prefill planning, preemption when KV fills),
prices the plan with a :class:`~repro.serving.costs.StepCostModel`, advances
time, and commits the plan.  When no work is runnable it jumps the clock to
the next arrival — event-driven, no idle ticking.

Two prefill modes:

* ``"group"`` — the seed engine's behaviour, kept bit-compatible for the
  ``InferenceEngine.run_continuous`` facade: each admission group pays one
  whole-prompt prefill pass at ``max(prompt_len)``;
* ``"chunked"`` — vLLM-style chunked prefill: prompt tokens are
  co-scheduled with decode tokens under ``max_batched_tokens``, so decode
  latency is never held hostage by a long prompt.

Results carry the full metrics picture (TTFT/TPOT, interpolated
percentiles, SLO goodput) via :mod:`repro.serving.metrics`.

:class:`ServingConfig` is also where the **serving mode** is chosen:
``mode="colocated"`` runs this module's single-engine loop, while
``mode="disaggregated"`` routes through
:class:`repro.serving.disagg.DisaggregatedCore` — a prefill pool and a
decode pool joined by a KV-transfer link whose cost and codec live in
:class:`DisaggConfig`.

Both topologies run on the shared event kernel
(:mod:`repro.serving.kernel`): the colocated loop is a single
:class:`~repro.serving.kernel.Stage` whose per-event body is exactly one
iteration of the historical clock loop, so the kernel refactor moved no
timestamps; the disaggregated topology is three cooperating stages with
optional decode→prefill backpressure (:class:`BackpressureConfig`).

Invariants this layer guarantees (tested in ``tests/test_serving_core.py``
and ``tests/test_disagg.py``):

* **bit-compatibility of ``run_continuous``** — ``prefill_mode="group"``
  with the FCFS policy and exact costs reproduces the seed engine's clock
  arithmetic exactly (same floats, not merely close), so
  ``InferenceEngine.run_continuous`` never drifts from the seed;
  ``mode="colocated"`` is likewise bit-identical to the pre-disaggregation
  ``serve()`` output.
* **event-driven clock** — time only moves when work is priced or the loop
  jumps to the next arrival; no idle ticking, so makespan is exactly the
  sum of executed step costs plus waiting gaps.
* **fast-forward exactness** — a fast-forwarded window of ``k`` identical
  decode steps commits the same token counts, finish stamps and KV growth
  as ``k`` stepwise iterations would (only legal under bucketed costs,
  where every step in the window prices identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..compression import (
    ACTIVATION_SIGMA,
    get_codec,
    get_codec_policy,
    resolve_spec,
)
from ..errors import CapacityError, ConfigError
from ..utils import ceil_div
from .costs import StepCostModel, maybe_memoize
from .kernel import EventKernel, Stage
from .kvcache import KVCacheSpec, PagedKVCache
from .metrics import ContinuousResult, SLOTarget
from .prefixcache import (
    PrefixCache,
    PrefixCacheConfig,
    cold_hit_seconds_per_token,
)
from .scheduler import (
    ContinuousBatchScheduler,
    DecodeWindowState,
    Request,
    RequestState,
    SchedulerLimits,
    SchedulerPolicy,
    get_policy,
)
from .telemetry import TelemetryConfig, build_recorder

PREFILL_MODES = ("group", "chunked")
SERVING_MODES = ("colocated", "disaggregated", "fleet")
LINK_TOPOLOGIES = ("shared", "per_replica")

#: Sentinel for the codec slots: resolve the slot through the codec
#: policy at config time (``InferenceEngine.serve`` does the resolution,
#: since selection needs the model/GPU pair).
AUTO_CODEC = "auto"


def _raise_stranded(scheduler) -> None:
    """Fail loudly when queued work can never run.

    Reached when nothing is running, nothing is due to arrive, admission
    was just attempted, and requests still wait: their KV can never fit
    (or, in group mode, their prompt exceeds the admission token budget).
    Returning a clean-looking result would silently drop them — and under
    head-of-line blocking everything queued behind them — so every
    serving loop raises instead (the conservation invariant of
    :mod:`repro.serving.scheduler`).
    """
    stranded = sorted(r.request_id for r in scheduler.waiting)
    raise CapacityError(
        f"requests {stranded} can never be admitted: KV demand or prompt"
        " length exceeds what this engine can ever free"
    )


@dataclass(frozen=True)
class BackpressureConfig:
    """Decode→prefill backpressure watermarks (disaggregated mode).

    The feedback-free pipeline admits prefills as fast as the prefill
    pool can run them, so a slow link or a full decode pool shows up as
    an unbounded transfer queue and decode-side preemption storms.  With
    backpressure configured, the prefill pool **stalls admission** (the
    event kernel simply stops scheduling prefill starts; running
    prefills complete) while either watermark is crossed, and resumes
    the instant downstream events clear it:

    Each watermark is opt-in (the defaults gate nothing):

    * ``min_free_kv_frac`` — the decode pool's *projected* free-block
      fraction (free blocks minus blocks already committed to prefilled
      or in-flight KV, over total blocks) must stay at or above this
      after admitting the candidate request; 0 (default) disables the
      occupancy watermark;
    * ``max_link_queue`` — no new prefill is admitted while this many
      hand-offs sit queued (not yet on the wire) at the transfer link;
      ``None`` (default) disables the queue watermark.

    Watermarks gate *admission* only — prefills already in flight still
    complete and their KV still lands, so observed peaks can exceed the
    watermark's level by the work admitted before it tripped (up to one
    request per prefill replica on the queue side, plus decode-time KV
    growth on the occupancy side).  This is deliberate hysteresis, not
    slack: admission-time projection is what a real admission controller
    has.

    A request whose own KV footprint can never satisfy the watermark is
    stranded and raises :class:`~repro.errors.CapacityError` at the end
    of the run instead of being silently dropped (tested in
    ``tests/test_kernel.py``).
    """

    min_free_kv_frac: float = 0.0
    max_link_queue: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_free_kv_frac <= 1.0:
            raise ConfigError("min_free_kv_frac must be in [0, 1]")
        if self.max_link_queue is not None and self.max_link_queue < 1:
            raise ConfigError("max_link_queue must be >= 1 (or None)")


@dataclass(frozen=True)
class DisaggConfig:
    """Geometry and link of the disaggregated (two-pool) serving mode.

    ``prefill_replicas`` engines do nothing but whole-prompt prefill;
    ``decode_replicas`` engines do nothing but continuous-batching decode,
    each with its own full KV cache.  Finished prefills ship their KV over
    a serial FIFO link of ``link_gb_per_s`` GB/s (``inf`` models an ideal
    fabric) with ``link_latency_s`` per-transfer setup cost.  The
    ``transfer_codec`` decides what goes on the wire and may name *any*
    codec in the compression registry (:mod:`repro.compression`):
    ``"none"`` ships raw BF16 KV, ``"kvcomp"`` (the ``vector_tbe`` alias)
    ships Vector-TBE-compressed blocks at the analytic activation ratio,
    the entropy baselines ship their split-plane streams — override the
    analytic ratio with ``transfer_ratio``.  Compressed transfer is the
    SplitZip effect, where lossless KV compression pays off a second time
    on the interconnect.
    """

    prefill_replicas: int = 1
    decode_replicas: int = 1
    link_gb_per_s: float = float("inf")
    link_latency_s: float = 0.0
    transfer_codec: str = "none"
    #: Explicit wire compression ratio; ``None`` derives it from the
    #: codec's registry estimator (1.0 for ``"none"``).
    transfer_ratio: float | None = None
    #: ``"shared"`` — one serial FIFO channel carries every hand-off
    #: (the PR 2 model); ``"per_replica"`` — each decode replica has its
    #: own dedicated link of ``link_gb_per_s``, so transfers to
    #: different replicas overlap on the wire.
    link_topology: str = "shared"
    #: How the prefill pool runs: ``"group"`` — one whole-prompt pass
    #: per request per replica (the PR 2 model, bit-compatible default);
    #: ``"chunked"`` — each prefill replica co-schedules prompt chunks
    #: across concurrent requests under ``SchedulerLimits`` via
    #: :meth:`~repro.serving.scheduler.ContinuousBatchScheduler.plan_step`.
    #: (Deliberately separate from the colocated-only
    #: ``ServingConfig.prefill_mode``, which existing disagg configs set
    #: without meaning to reshape the pool.)
    prefill_mode: str = "group"
    #: Analytic layer-wise prefill/transfer overlap: this fraction of a
    #: hand-off's serialization time is hidden under the tail of its
    #: prefill (early layers' KV ships while late layers still compute),
    #: so only ``1 - overlap_fraction`` of the wire time plus the link
    #: latency is paid after prefill completes.  0 (default) keeps the
    #: PR 2 no-overlap arithmetic bit-exactly.
    overlap_fraction: float = 0.0
    #: Decode→prefill backpressure watermarks; ``None`` (default) keeps
    #: the feedback-free PR 2 pipeline.
    backpressure: BackpressureConfig | None = None

    def __post_init__(self) -> None:
        if self.prefill_replicas < 1 or self.decode_replicas < 1:
            raise ConfigError("each pool needs at least one replica")
        if not self.link_gb_per_s > 0:
            raise ConfigError("link_gb_per_s must be positive (inf allowed)")
        if self.link_latency_s < 0:
            raise ConfigError("link_latency_s must be >= 0")
        get_codec(self.transfer_codec)  # raises UnknownSpecError if absent
        if self.transfer_ratio is not None and self.transfer_ratio < 1.0:
            raise ConfigError("transfer_ratio must be >= 1")
        if self.link_topology not in LINK_TOPOLOGIES:
            raise ConfigError(
                f"link_topology must be one of {LINK_TOPOLOGIES},"
                f" got {self.link_topology!r}"
            )
        if self.prefill_mode not in PREFILL_MODES:
            raise ConfigError(
                f"disagg prefill_mode must be one of {PREFILL_MODES},"
                f" got {self.prefill_mode!r}"
            )
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ConfigError("overlap_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ServingConfig:
    """How the serving core schedules and accounts a trace run.

    The three ``*_codec`` slots make compression a first-class serving
    property: each may name any codec in the compression registry
    (:mod:`repro.compression`) and any combination is valid — raw
    weights with compressed KV and a compressed wire is a legal
    deployment.  ``None`` keeps the historical behaviour for that slot
    (backend-chosen weight scheme, engine-level ``kv_compression_ratio``,
    ``disagg.transfer_codec``), so existing configs stay bit-compatible.

    Each slot also accepts ``"auto"``: the slot is then resolved at
    config time by ``codec_policy`` (``"best_ratio"`` /
    ``"best_throughput"`` / ``"balanced"`` / ``"balanced(alpha)"`` — see
    :mod:`repro.compression.policy`), per tensor class for the weight
    slot, against the engine's (model, gpu) pair.  ``calibration``
    carries a measured :class:`~repro.compression.MeasuredRatioProfile`
    (:func:`repro.compression.calibrate`): with one set, every codec
    ratio in the run — auto-selected or named — resolves measured
    rather than analytic (explicit ratios still win over both).
    """

    policy: str | SchedulerPolicy = "fcfs"
    prefill_mode: str = "chunked"
    limits: SchedulerLimits = field(default_factory=SchedulerLimits)
    slo: SLOTarget = field(default_factory=SLOTarget)
    #: 0 disables cost memoization; > 0 buckets decode contexts (and
    #: prefill chunks, at a quarter of the size) to that many tokens.
    cost_bucket: int = 0
    preemption: bool = True
    #: ``"colocated"`` runs prefill and decode on one engine
    #: (:class:`ServingCore`); ``"disaggregated"`` splits them into two
    #: pools joined by a KV-transfer link
    #: (:class:`repro.serving.disagg.DisaggregatedCore`); ``"fleet"``
    #: composes N replica instances behind a routing stage
    #: (:class:`repro.serving.fleet.FleetCore`), geometry in ``fleet``.
    mode: str = "colocated"
    disagg: DisaggConfig = field(default_factory=DisaggConfig)
    #: Fleet geometry and routing
    #: (:class:`repro.serving.fleet.FleetConfig`); defaults to a
    #: two-replica round-robin fleet when ``mode="fleet"``, ignored
    #: otherwise.  (Typed ``object`` to keep the import lazy — the
    #: fleet layer builds on this module.)
    fleet: object = None
    #: Weight storage/execution codec (``None`` = the backend's scheme;
    #: ``"auto"`` = per-layer-class policy selection).
    weight_codec: str | None = None
    #: KV-cache residency codec (``None`` = the engine's construction-time
    #: ``kv_compression_ratio``; ``"none"`` forces raw KV; ``"auto"`` =
    #: policy selection).
    kv_codec: str | None = None
    #: Disaggregation wire codec (``None`` = ``disagg.transfer_codec``;
    #: ``"auto"`` = policy selection).
    transfer_codec: str | None = None
    #: Codec-selection policy used by ``"auto"`` slots — a name parsed
    #: by :func:`repro.compression.get_codec_policy` or a
    #: :class:`~repro.compression.CodecPolicy` instance.
    codec_policy: object = "balanced"
    #: Measured calibration profile
    #: (:class:`~repro.compression.MeasuredRatioProfile`); ``None``
    #: keeps analytic ratio resolution (bit-compatible).
    calibration: object = None
    #: Prefix-cache provisioning
    #: (:class:`~repro.serving.prefixcache.PrefixCacheConfig`): carve a
    #: fraction of the KV budget into a two-tier session-prefix cache so
    #: repeated prompts skip their cached prefill.  Applies to every
    #: topology (per-replica caches in fleet and disaggregated chunked-
    #: prefill pools).  ``None`` (default) disables the cache and keeps
    #: every existing config bit-compatible.
    prefix_cache: PrefixCacheConfig | None = None
    #: Telemetry capture (:class:`~repro.serving.telemetry.TelemetryConfig`):
    #: per-request spans, sim-time metric timelines and latency
    #: attribution, surfaced on ``ContinuousResult.telemetry``.  ``None``
    #: (default) records nothing and costs nothing — the clock
    #: arithmetic is bit-identical either way (telemetry only *reads*
    #: simulation state).
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.prefill_mode not in PREFILL_MODES:
            raise ConfigError(
                f"prefill_mode must be one of {PREFILL_MODES},"
                f" got {self.prefill_mode!r}"
            )
        if self.cost_bucket < 0:
            raise ConfigError("cost_bucket must be >= 0")
        if self.mode not in SERVING_MODES:
            raise ConfigError(
                f"mode must be one of {SERVING_MODES}, got {self.mode!r}"
            )
        for slot in (self.weight_codec, self.kv_codec, self.transfer_codec):
            if slot is not None and slot != AUTO_CODEC:
                get_codec(slot)  # raises UnknownSpecError if absent
        if self.mode == "fleet" or self.fleet is not None:
            # Imported lazily: the fleet layer builds on this module.
            from .fleet import FleetConfig

            if self.fleet is None:
                object.__setattr__(self, "fleet", FleetConfig())
            elif not isinstance(self.fleet, FleetConfig):
                raise ConfigError(
                    "fleet must be a FleetConfig, got"
                    f" {type(self.fleet).__name__}"
                )
        if self.prefix_cache is not None and not isinstance(
            self.prefix_cache, PrefixCacheConfig
        ):
            raise ConfigError(
                "prefix_cache must be a PrefixCacheConfig, got"
                f" {type(self.prefix_cache).__name__}"
            )
        if self.telemetry is not None and not isinstance(
            self.telemetry, TelemetryConfig
        ):
            raise ConfigError(
                "telemetry must be a TelemetryConfig, got"
                f" {type(self.telemetry).__name__}"
            )
        # A bad policy name should fail at config construction, not at
        # the first serve() with an "auto" slot.
        get_codec_policy(self.codec_policy)

    @property
    def auto_slots(self) -> tuple[str, ...]:
        """Which codec slots are set to ``"auto"``."""
        prefix_slot = (
            self.prefix_cache.codec
            if self.prefix_cache is not None else None
        )
        return tuple(
            name for name, slot in (
                ("weight", self.weight_codec),
                ("kv", self.kv_codec),
                ("transfer", self.transfer_codec),
                ("prefix", prefix_slot),
            )
            if slot == AUTO_CODEC
        )

    @property
    def resolved_transfer_codec(self) -> str:
        """The wire codec name after slot fallback."""
        return (
            self.transfer_codec
            if self.transfer_codec is not None
            else self.disagg.transfer_codec
        )

    def with_limits(self, limits: SchedulerLimits | None) -> "ServingConfig":
        """A copy with ``limits`` swapped in (if given)."""
        return self if limits is None else replace(self, limits=limits)


def _discover_gpu(costs):
    """The GpuSpec a cost model prices on, if reachable (memoization
    wrappers keep it on their inner model)."""
    gpu = getattr(costs, "gpu", None)
    if gpu is None:
        gpu = getattr(getattr(costs, "inner", None), "gpu", None)
    return gpu


def build_prefix_cache(
    config: ServingConfig, kv_spec, kv_bytes: float, costs,
) -> tuple[PrefixCache | None, float]:
    """Provision one engine's prefix cache from its serving config.

    Returns ``(cache, batch_kv_bytes)``: the cache holds
    ``capacity_frac`` of ``kv_bytes`` and the block allocator gets the
    remainder — cache capacity is charged against the KV memory plan,
    never conjured.  With ``config.prefix_cache=None`` this is the
    identity: ``(None, kv_bytes)``, the bit-compatibility fast path
    every topology shares.

    The cold tier's codec resolves like every other slot:
    ``InferenceEngine.serve`` settles ``"auto"`` at config time; a core
    constructed directly resolves it here through ``codec_policy``
    against the cost model's GPU (same policy, same placement class,
    same answer).  Ratios honour ``config.calibration``.
    """
    pc = config.prefix_cache
    if pc is None:
        return None, kv_bytes
    cache_bytes = kv_bytes * pc.capacity_frac
    cold_ratio, cold_s = 1.0, 0.0
    if pc.codec is not None:
        codec = pc.codec
        gpu = _discover_gpu(costs)
        if codec == AUTO_CODEC:
            if gpu is None:
                raise ConfigError(
                    "prefix codec 'auto' needs a GPU-bearing cost model"
                    " to resolve; name the codec explicitly"
                )
            spec = get_codec_policy(config.codec_policy).select(
                "prefix", gpu, profile=config.calibration,
                sigma=ACTIVATION_SIGMA, cls="prefix:block",
            )
        else:
            spec = resolve_spec(
                codec, "prefix", sigma=ACTIVATION_SIGMA,
                cls="prefix:block", profile=config.calibration,
            )
        cold_ratio = spec.ratio
        cold_s = cold_hit_seconds_per_token(
            kv_spec, spec.codec, cold_ratio, gpu
        )
    cache = PrefixCache(
        kv_spec, cache_bytes,
        hot_frac=pc.hot_frac,
        cold_ratio=cold_ratio,
        cold_hit_s_per_token=cold_s,
    )
    return cache, kv_bytes - cache_bytes


class ColocatedStage(Stage):
    """The colocated engine as one event-kernel stage.

    Each :meth:`advance` performs exactly one iteration of the
    historical ``ServingCore`` clock loop (group or chunked body), so
    running it under :class:`~repro.serving.kernel.EventKernel` emits
    the same float operations in the same order as the pre-kernel
    hand-rolled ``while`` loop — the bit-compatibility contract of
    ``run_continuous`` and ``mode="colocated"`` survives the refactor
    untouched.  As the only stage in its topology, its next event is
    trivially its own clock.
    """

    name = "engine"

    def __init__(
        self,
        costs: StepCostModel,
        scheduler: ContinuousBatchScheduler,
        pending: list[Request],
        config: ServingConfig,
        recorder=None,
    ):
        self.costs = costs
        self.scheduler = scheduler
        self.pending = pending
        self.config = config
        #: Optional :class:`~repro.serving.telemetry.TraceRecorder`;
        #: also attached to the scheduler so admission/finish events
        #: carry sim time.  ``None`` leaves every body untouched but
        #: for dead ``is None`` checks.
        self._rec = recorder
        if recorder is not None:
            scheduler.telemetry = recorder
            scheduler.track = self.name
        self.clock = 0.0
        self.n_steps = 0
        self.peak_running = 0
        #: Accumulated compute time and peak KV occupancy — the
        #: per-replica ``PoolStats`` signals a fleet reports; pure
        #: accounting, never consulted by the clock arithmetic.
        self.busy_s = 0.0
        self.peak_kv_frac = 0.0
        #: Optional external fast-forward horizon (set by the fleet
        #: layer): a side-effect-free callable returning the next event
        #: this stage cannot see — the router's next undelivered
        #: arrival.  A decode window may not overshoot it.  ``None``
        #: (default) keeps the single-engine behaviour bit-exactly.
        self.horizon = None
        self._body = (
            self._advance_group if config.prefill_mode == "group"
            else self._advance_chunked
        )

    # ------------------------------------------------------------------
    def _sample_kv(self) -> None:
        kv = self.scheduler.kv
        frac = kv.used_blocks / kv.n_blocks
        if frac > self.peak_kv_frac:
            self.peak_kv_frac = frac

    # ------------------------------------------------------------------
    def next_event_time(self) -> float | None:
        if not self.pending and not self.scheduler.has_work:
            return None
        return self.clock

    def advance(self, now: float) -> None:
        self._body()

    # ------------------------------------------------------------------
    def _advance_group(self) -> None:
        """One iteration of the seed-compatible whole-prompt-prefill loop."""
        scheduler, pending = self.scheduler, self.pending
        rec = self._rec
        if rec is not None:
            scheduler._now = self.clock
            scheduler.track = self.name
        while pending and pending[0].arrival_s <= self.clock:
            scheduler.submit(pending.pop(0))
        admitted = scheduler.admit()
        if admitted:
            prompt = max(r.prefill_remaining for r in admitted)
            step_s = self.costs.prefill_step(len(admitted), prompt).total_s
            if rec is not None:
                rec.span(self.clock, step_s, "prefill", self.name,
                         args={"batch": len(admitted), "tokens": prompt})
            self.clock += step_s
            self.busy_s += step_s
            for req in admitted:
                req.prefill_remaining = 0
                if req.first_token_s is None:
                    req.first_token_s = self.clock
                if rec is not None:
                    rec.transition(req, self.clock, "decode")
        if not scheduler.running:
            if pending:
                self.clock = max(self.clock, pending[0].arrival_s)
                return
            if scheduler.has_work:
                _raise_stranded(scheduler)
            return
        if self.config.preemption:
            if rec is not None:
                scheduler._now = self.clock
            scheduler.ensure_decode_capacity(list(scheduler.running))
        batch = len(scheduler.running)
        self.peak_running = max(self.peak_running, batch)
        mean_ctx = int(
            sum(r.context_len for r in scheduler.running) / batch
        )
        step_s = self.costs.decode_step(batch, max(mean_ctx, 1)).total_s
        if rec is not None:
            rec.span(self.clock, step_s, "decode", self.name,
                     args={"batch": batch})
        self.clock += step_s
        self.busy_s += step_s
        self.n_steps += 1
        if rec is not None:
            scheduler._now = self.clock
        for req in scheduler.step():
            if req.done:
                req.finish_s = self.clock
                if rec is not None:
                    rec.on_finish(req, self.clock, self.name)
        self._sample_kv()
        if rec is not None:
            rec.sample_engine(self.name, self.clock, scheduler)

    # ------------------------------------------------------------------
    def _advance_chunked(self) -> None:
        """One iteration of the chunked-prefill co-scheduling loop."""
        scheduler, pending = self.scheduler, self.pending
        rec = self._rec
        if rec is not None:
            scheduler._now = self.clock
            scheduler.track = self.name
        while pending and pending[0].arrival_s <= self.clock:
            scheduler.submit(pending.pop(0))
        scheduler.admit(enforce_token_budget=False)
        plan = scheduler.plan_step()
        if self.config.preemption and plan.decode:
            victims = scheduler.ensure_decode_capacity(plan.decode)
            if victims:
                plan.drop(victims)
        if plan.empty:
            if pending:
                self.clock = max(self.clock, pending[0].arrival_s)
                return
            if scheduler.has_work:
                _raise_stranded(scheduler)
            return
        self.peak_running = max(self.peak_running, len(scheduler.running))
        if scheduler.prefix_cache is not None:
            # Cold-tier hits owe a decompress stream before the first
            # chunk of the admitted prompt runs; charge it with the
            # admitting step.  Cache-off schedulers never enter (zero
            # extra float ops on the bit-compat path).
            delay_s = scheduler.consume_cache_delay()
            if delay_s > 0.0:
                if rec is not None:
                    rec.span(self.clock, delay_s, "decompress", self.name)
                self.clock += delay_s
                self.busy_s += delay_s
        breakdown = self.costs.mixed_step(
            len(plan.decode),
            max(plan.mean_decode_ctx, 1),
            plan.n_prefill_seqs,
            plan.n_prefill_tokens,
        )
        next_event = pending[0].arrival_s if pending else None
        if self.horizon is not None:
            h = self.horizon()
            if h is not None and (next_event is None or h < next_event):
                next_event = h
        k = decode_window_len(
            scheduler, plan, next_event,
            self.clock, breakdown.total_s, self.config.cost_bucket,
        )
        if k > 1:
            win_start = self.clock
            self.clock, segments = run_decode_window(
                scheduler, self.costs, plan, next_event, self.clock,
                self.config.cost_bucket, breakdown.total_s, k,
                preemption=self.config.preemption,
                on_segment=self._sample_kv,
            )
            for step_s, ki in segments:
                self.busy_s += step_s * ki
                self.n_steps += ki
            if rec is not None:
                # Reconstruct the fast-forwarded window as spans after
                # the fact — the hot loop itself stays untouched.
                t = win_start
                for step_s, ki in segments:
                    rec.span(t, step_s * ki, "decode", self.name,
                             args={"steps": ki,
                                   "batch": len(plan.decode)})
                    t += step_s * ki
                rec.sample_engine(self.name, self.clock, scheduler)
        else:
            if rec is not None:
                rec.span(
                    self.clock, breakdown.total_s, "step", self.name,
                    args={"decode": len(plan.decode),
                          "prefill_tokens": plan.n_prefill_tokens},
                )
            self.clock += breakdown.total_s
            self.busy_s += breakdown.total_s
            self.n_steps += 1
            scheduler.apply_step(plan, self.clock)
            self._sample_kv()
            if rec is not None:
                rec.sample_engine(self.name, self.clock, scheduler)


class ServingCore:
    """Event-driven continuous-batching simulator (colocated topology)."""

    def __init__(
        self,
        costs: StepCostModel,
        kv_spec: KVCacheSpec,
        kv_bytes: float,
        config: ServingConfig | None = None,
    ):
        self.config = config or ServingConfig()
        if self.config.mode != "colocated":
            # Mirror of DisaggregatedCore's guard: running a
            # disaggregated config colocated would silently ignore the
            # pool geometry and link costs.
            raise ConfigError(
                "ServingCore requires mode='colocated', got"
                f" {self.config.mode!r}; use DisaggregatedCore (or"
                " InferenceEngine.serve, which routes on mode)"
            )
        self.costs = maybe_memoize(costs, self.config.cost_bucket)
        self.kv_spec = kv_spec
        self.kv_bytes = kv_bytes

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[Request],
        deadline_s: float | None = None,
    ) -> ContinuousResult:
        """Replay a request trace; returns the full metrics picture.

        ``deadline_s`` bounds the simulation: the kernel stops before
        the first event past it, and everything still pending, waiting
        or running is counted in the result's ``n_unfinished`` (with
        partial timings for requests that produced a first token)
        instead of being simulated to completion.  ``None`` (default)
        keeps the historical run-to-completion behaviour bit-exactly —
        including the stranded-request :class:`~repro.errors.CapacityError`,
        which a deadline run skips (a backlog at the deadline is the
        measured outcome, not a bug).
        """
        if not requests:
            raise ConfigError("serve needs at least one request")
        rec = build_recorder(self.config.telemetry)
        cache, batch_bytes = build_prefix_cache(
            self.config, self.kv_spec, self.kv_bytes, self.costs
        )
        if rec is not None and cache is not None:
            cache.telemetry = rec
        kv = PagedKVCache(self.kv_spec, batch_bytes)
        scheduler = ContinuousBatchScheduler(
            kv, self.config.limits, self.config.policy,
            prefix_cache=cache,
        )
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if rec is not None:
            for req in pending:
                rec.on_arrival(req, track="engine")
        stage = ColocatedStage(
            self.costs, scheduler, pending, self.config, recorder=rec
        )
        EventKernel([stage], recorder=rec).run(until=deadline_s)
        unfinished = (
            list(stage.pending) + list(scheduler.waiting)
            + list(scheduler.running)
        )
        return ContinuousResult.from_run(
            scheduler.finished,
            makespan_s=stage.clock,
            n_steps=stage.n_steps,
            peak_running=stage.peak_running,
            slo=self.config.slo,
            n_preemptions=scheduler.n_preemptions,
            policy=scheduler.policy.name,
            prefill_mode=self.config.prefill_mode,
            unfinished=unfinished,
            deadline_s=deadline_s,
            prefix_cache=cache.stats() if cache is not None else None,
            telemetry=rec,
        )


def decode_window_len(
    scheduler: ContinuousBatchScheduler,
    plan,
    next_event_s: float | None,
    clock: float,
    step_s: float,
    bucket: int,
) -> int:
    """Steps the current decode-only plan can repeat unchanged.

    Shared by the colocated core and the disaggregated decode replicas.
    Only meaningful with bucketed costs (``bucket > 0``): inside a
    context bucket every decode step of a stable batch prices
    identically, so a loop may advance ``k`` steps in one shot.  The
    window ends at the first event that would change the plan or its
    price: a request finishing, the next external event (an arrival, or
    a KV landing on a decode replica) at ``next_event_s``, the mean
    context crossing a bucket edge, or KV needing more blocks than are
    free (conservative — fall back to stepping so preemption logic
    runs).  Exact costs (``bucket == 0``) always step one at a time,
    since every step then prices differently.

    A non-empty waiting queue does not end the window: admission was
    just attempted and blocked, and with no arrivals, finishes or
    frees inside the window the blocker (sequence slots, or free KV
    which only shrinks while decode grows) persists until the window's
    last step — exactly when the stepwise loop would next admit.
    """
    if (
        bucket <= 0
        or plan.prefill
        or not plan.decode
        or len(plan.decode) != len(scheduler.running)
    ):
        return 1
    k = min(r.remaining_tokens for r in plan.decode)
    mean_ctx = max(plan.mean_decode_ctx, 1)
    k = min(k, ceil_div(mean_ctx, bucket) * bucket - mean_ctx + 1)
    if next_event_s is not None and step_s > 0:
        gap = next_event_s - clock
        k = min(k, max(1, int(gap / step_s)))
    if k > 1:
        kv = scheduler.kv
        # Appending k tokens never needs more than k//block + 1 new
        # blocks per sequence; when free blocks cover that bound the
        # exact per-sequence walk (a dict lookup per request) is skipped
        # — the common case on large traces.
        bound = len(plan.decode) * (k // kv.spec.block_size + 1)
        if bound > kv.free_blocks:
            needed = sum(
                kv.blocks_needed(r.request_id, k) for r in plan.decode
            )
            if needed > kv.free_blocks:
                return 1
    return k


def commit_decode_window(
    scheduler: ContinuousBatchScheduler,
    plan,
    k: int,
    clock: float,
) -> None:
    """Commit ``k`` identical decode steps at post-window time ``clock``.

    ``k`` never exceeds the smallest remaining-token count, so only
    requests finishing exactly at the window's last step finish — with
    the same ``finish_s`` the stepwise loop would have stamped.
    """
    kv = scheduler.kv
    tel = scheduler.telemetry
    if tel is not None:
        scheduler._now = clock
    for req in plan.decode:
        kv.append_token(req.request_id, k)
        req.generated += k
        if req.done:
            req.state = RequestState.FINISHED
            req.finish_s = clock
            scheduler._store_prefix(req)
            kv.free(req.request_id)
            scheduler.running.remove(req)
            scheduler.finished.append(req)
            if tel is not None:
                tel.on_finish(req, clock, scheduler.track)


def run_decode_window(
    scheduler: ContinuousBatchScheduler,
    costs: StepCostModel,
    plan,
    next_event_s: float | None,
    clock: float,
    bucket: int,
    first_step_s: float,
    first_k: int,
    preemption: bool,
    on_segment=None,
) -> tuple[float, list[tuple[float, int]]]:
    """Advance the widest fast-forward window: chained bucketed segments.

    The stepwise simulator pays a full scheduling iteration — arrival
    submit, admission attempt, ``plan_step``, capacity check, step
    pricing — between every pair of :func:`decode_window_len` windows,
    even when each of those is provably a no-op.  This helper chains
    segments inside one stage advance while the no-op proof holds:

    * **no arrivals/landings** — the window never crosses
      ``next_event_s`` (the caller folds its upstream horizon in), so no
      submits happen and, with no finishes either, admission's blocker
      (sequence slots, or free KV, which only shrinks while decode
      grows) persists — the attempt stays a no-op.  With a custom
      admission order (``order_waiting`` overridden) a non-empty queue
      ends the window conservatively: such an order may be
      time-dependent, and only whole-queue re-sorts observe it.
    * **no preemptions** — chaining continues only where
      ``ensure_decode_capacity`` would return without acting.
    * **same plan** — no finishes and a no-op admission leave the
      running set (and its order) untouched, so ``plan_step`` would
      rebuild exactly this decode set with contexts one segment older.

    The moment any condition fails the loop breaks *without* committing
    further work; the next kernel advance then runs the unmodified
    stepwise body from an identical scheduler state, so breaking early
    is always bit-safe.

    **Float discipline**: the clock advances ``step_s * k`` per segment
    — the same ``(step_s, k)`` sequence, in the same order, as the
    stepwise loop's per-window adds — and segment prices come from
    ``decode_step_batch`` (bitwise equal to the scalar decode-only
    ``mixed_step`` the stepwise body calls; one vectorized pricing pass
    covers every bucket edge the window can reach).  Request state is
    tracked in a :class:`~repro.serving.scheduler.DecodeWindowState`
    array pair; ``Request`` objects are only touched by the per-segment
    ``commit_decode_window``.

    Returns ``(new_clock, segments)`` with one ``(step_s, k)`` tuple per
    committed segment, so callers replicate the stepwise float
    accumulation into their own counters (``busy_s``, ``n_steps``).
    ``on_segment`` (if given) runs after each segment's commit —
    occupancy sampling hooks, which must see the pre-free peak of a
    finishing segment, not just the window end.
    """
    segments: list[tuple[float, int]] = []
    batch = len(plan.decode)
    kv = scheduler.kv
    block_size = kv.spec.block_size
    incremental = scheduler._incremental
    # The AoS view and the vectorized price table are built lazily, on
    # the first segment that actually chains: most windows end at the
    # next arrival and never continue, and for those the array setup
    # would cost more than the python it replaces.
    state: DecodeWindowState | None = None
    prices: dict[int, float] | None = None
    min_rem = min(r.remaining_tokens for r in plan.decode)
    step_s, k = first_step_s, first_k
    while True:
        clock += step_s * k
        segments.append((step_s, k))
        finishes = k >= min_rem
        commit_decode_window(scheduler, plan, k, clock)
        if state is not None:
            state.advance(k)
        plan.decode_ctx_sum += batch * k
        if on_segment is not None:
            on_segment()
        if finishes:
            break
        if next_event_s is not None and next_event_s <= clock:
            break
        if scheduler.waiting and not incremental:
            break
        if state is None:
            # Snapshot *after* the first commit, so no catch-up advance
            # is owed.
            state = DecodeWindowState(plan.decode)
        min_rem = state.min_remaining()
        if (
            preemption
            and kv.free_blocks < batch
            and state.blocks_to_grow(1, block_size) > kv.free_blocks
        ):
            break
        mean_ctx = max(plan.mean_decode_ctx, 1)
        edge = ceil_div(mean_ctx, bucket) * bucket
        if prices is None:
            batch_fn = getattr(costs, "decode_step_batch", None)
            if batch_fn is not None:
                # One vectorized pricing pass over every bucket edge the
                # window can still reach (bounded by the first finish).
                hi = ceil_div(mean_ctx + min_rem, bucket) * bucket
                edges = list(range(edge, hi + bucket, bucket))
                prices = dict(
                    zip(edges, batch_fn(batch, edges).tolist())
                )
            else:
                prices = {}
        step_s = prices.get(edge)
        if step_s is None:
            step_s = costs.mixed_step(batch, mean_ctx, 0, 0).total_s
        k = min_rem
        k = min(k, edge - mean_ctx + 1)
        if next_event_s is not None and step_s > 0:
            gap = next_event_s - clock
            k = min(k, max(1, int(gap / step_s)))
        if k > 1 and state.blocks_to_grow(k, block_size) > kv.free_blocks:
            k = 1
        if k <= 1:
            # A one-step window must run the stepwise body (its finish
            # and preemption handling differ); leave it to the next
            # kernel advance.
            break
    return clock, segments
