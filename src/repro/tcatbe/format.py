"""The TCA-TBE compressed-matrix container and its size accounting.

Per 8x8 FragTile the format stores five buffers (§4.2):

1–3. three 64-bit bitmaps (bit-planes of the 3-bit codewords)  — 24 B/tile;
4.   PackedSignMantissa: 1 B per in-window element;
5.   FullValue: 2 B per fallback element.

At matrix level the buffers are concatenated in canonical tile order.  The
PackedSignMantissa and FullValue segments of each 64x64 BlockTile are padded
to 128-bit (16 B) alignment so the kernel can use ``LDGSTS.128`` vectorised
copies, and an Offset array stores one (high, low) start pair per BlockTile.
All of that — padding included — is counted by :class:`SizeReport` so the
compression ratios we report are the ratios a real deployment would see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from ..utils import popcount64, round_up
from .layout import FRAG_ELEMS, TILES_PER_BLOCK, padded_shape

#: On-disk / in-memory format version for serialized matrices.
FORMAT_VERSION = 1

#: Fixed per-matrix header: shape, base exponent, window size, buffer sizes.
HEADER_NBYTES = 64

#: Alignment (bytes) of per-BlockTile value segments (128-bit LDGSTS).
SEGMENT_ALIGN = 16

#: Offset array entry per BlockTile: two uint32 starts (high, low).
OFFSET_ENTRY_NBYTES = 8


@dataclass(frozen=True)
class SizeReport:
    """Byte-level breakdown of a compressed matrix."""

    bitmaps_nbytes: int
    high_nbytes: int
    low_nbytes: int
    padding_nbytes: int
    offsets_nbytes: int
    header_nbytes: int

    @property
    def total_nbytes(self) -> int:
        """Total compressed footprint."""
        return (
            self.bitmaps_nbytes
            + self.high_nbytes
            + self.low_nbytes
            + self.padding_nbytes
            + self.offsets_nbytes
            + self.header_nbytes
        )


@dataclass
class TcaTbeMatrix:
    """A BF16 matrix compressed with TCA-TBE.

    Attributes
    ----------
    shape:
        Original (rows, cols) before BlockTile padding.
    base_exp:
        Global base exponent; in-window exponents decode as
        ``base_exp + codeword``.
    window_size:
        Number of in-window exponent classes (7 for 3-bit codewords).
    bitmaps:
        ``(n_tiles, 3)`` uint64; column ``j`` is bit-plane ``j`` of the
        codewords (bit ``p`` = bit ``j`` of the code at in-tile position
        ``p``).
    high:
        Concatenated PackedSignMantissa bytes, canonical tile order.
    low:
        Concatenated FullValue uint16 words, canonical tile order.
    high_starts / low_starts:
        ``(n_tiles + 1,)`` exclusive prefix offsets into ``high`` / ``low``.
        Derived data (a real container stores per-BlockTile offsets only and
        recovers per-tile starts from bitmap popcounts); kept here for O(1)
        tile access and *not* counted into the compressed size beyond the
        per-BlockTile Offset array.
    """

    shape: tuple[int, int]
    base_exp: int
    window_size: int
    bitmaps: np.ndarray
    high: np.ndarray
    low: np.ndarray
    high_starts: np.ndarray
    low_starts: np.ndarray

    def __post_init__(self) -> None:
        if self.bitmaps.dtype != np.uint64 or self.bitmaps.ndim != 2:
            raise FormatError("bitmaps must be a 2-D uint64 array")
        if self.bitmaps.shape[1] != 3:
            raise FormatError("bitmaps must have 3 bit-plane columns")
        if self.high.dtype != np.uint8:
            raise FormatError("high buffer must be uint8")
        if self.low.dtype != np.uint16:
            raise FormatError("low buffer must be uint16")
        if not 0 <= self.base_exp <= 255 - self.window_size:
            raise FormatError(f"base_exp {self.base_exp} out of range")

    # ------------------------------------------------------------------
    # Derived counts
    # ------------------------------------------------------------------
    @property
    def padded_shape(self) -> tuple[int, int]:
        """Shape after BlockTile padding."""
        return padded_shape(*self.shape)

    @property
    def n_tiles(self) -> int:
        """Number of 8x8 FragTiles."""
        return int(self.bitmaps.shape[0])

    @property
    def n_blocks(self) -> int:
        """Number of 64x64 BlockTiles."""
        return self.n_tiles // TILES_PER_BLOCK

    @property
    def n_elements(self) -> int:
        """Original element count (before padding)."""
        return self.shape[0] * self.shape[1]

    @property
    def n_padded_elements(self) -> int:
        """Element count including BlockTile padding."""
        return self.n_tiles * FRAG_ELEMS

    @property
    def n_high(self) -> int:
        """Number of in-window (compressed) elements."""
        return int(self.high.size)

    @property
    def n_low(self) -> int:
        """Number of fallback (full-precision) elements."""
        return int(self.low.size)

    @property
    def coverage(self) -> float:
        """Fraction of (padded) elements stored in compressed form."""
        return self.n_high / self.n_padded_elements

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_report(self) -> SizeReport:
        """Byte breakdown including per-BlockTile alignment padding."""
        block_high = self._per_block_counts(self.high_starts)
        block_low = self._per_block_counts(self.low_starts)
        high_raw = int(block_high.sum())
        low_raw = int(2 * block_low.sum())
        high_padded = int(
            sum(round_up(int(c), SEGMENT_ALIGN) for c in block_high)
        )
        low_padded = int(
            sum(round_up(int(2 * c), SEGMENT_ALIGN) for c in block_low)
        )
        return SizeReport(
            bitmaps_nbytes=self.n_tiles * 24,
            high_nbytes=high_raw,
            low_nbytes=low_raw,
            padding_nbytes=(high_padded - high_raw) + (low_padded - low_raw),
            offsets_nbytes=self.n_blocks * OFFSET_ENTRY_NBYTES,
            header_nbytes=HEADER_NBYTES,
        )

    @property
    def compressed_nbytes(self) -> int:
        """Total compressed footprint in bytes."""
        return self.size_report().total_nbytes

    @property
    def original_nbytes(self) -> int:
        """Uncompressed BF16 footprint of the original matrix."""
        return 2 * self.n_elements

    @property
    def padded_original_nbytes(self) -> int:
        """Uncompressed footprint of the padded matrix."""
        return 2 * self.n_padded_elements

    @property
    def ratio(self) -> float:
        """Compression ratio (original bytes / compressed bytes)."""
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bits_per_element(self) -> float:
        """Average storage cost per (padded) element in bits."""
        return 8.0 * self.compressed_nbytes / self.n_padded_elements

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`FormatError` if broken.

        Verifies that bitmap popcounts agree with the prefix-offset arrays
        and that buffer sizes match — the invariants the GPU decompressor's
        dynamic addressing relies on.
        """
        indicator = (
            self.bitmaps[:, 0] | self.bitmaps[:, 1] | self.bitmaps[:, 2]
        )
        counts = popcount64(indicator)
        if not np.array_equal(np.diff(self.high_starts), counts):
            raise FormatError("high_starts disagree with bitmap popcounts")
        if not np.array_equal(
            np.diff(self.low_starts), FRAG_ELEMS - counts
        ):
            raise FormatError("low_starts disagree with bitmap popcounts")
        if self.high_starts[-1] != self.high.size:
            raise FormatError("high buffer size mismatch")
        if self.low_starts[-1] != self.low.size:
            raise FormatError("low buffer size mismatch")
        # Codeword planes may only be set where the indicator is set (codes
        # 1..7 imply at least one plane bit; fallback positions are all-zero).
        for plane in range(3):
            if (self.bitmaps[:, plane] & ~indicator).any():
                raise FormatError(f"bit-plane {plane} set outside indicator")

    def _per_block_counts(self, starts: np.ndarray) -> np.ndarray:
        if (self.n_tiles % TILES_PER_BLOCK) != 0:
            raise FormatError("tile count is not BlockTile aligned")
        # starts has n_tiles + 1 entries, so this slice includes the final
        # total and diff yields one count per BlockTile.
        boundaries = starts[:: TILES_PER_BLOCK]
        return np.diff(boundaries)
