"""Serialization of TCA-TBE matrices (the offline compressor's output).

The offline compressor runs once per model (§6.4: ~2.5 minutes for an 8B
model on CPU); its output is stored and later mapped by the inference
engine.  We persist to ``.npz`` with a small versioned header.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import FormatError
from .format import FORMAT_VERSION, TcaTbeMatrix

_HEADER_KEYS = ("version", "shape", "base_exp", "window_size")


def save_npz(matrix: TcaTbeMatrix, path: str | Path) -> None:
    """Write a compressed matrix to ``path`` (.npz container)."""
    header = {
        "version": FORMAT_VERSION,
        "shape": list(matrix.shape),
        "base_exp": matrix.base_exp,
        "window_size": matrix.window_size,
    }
    np.savez(
        Path(path),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        bitmaps=matrix.bitmaps,
        high=matrix.high,
        low=matrix.low,
        high_starts=matrix.high_starts,
        low_starts=matrix.low_starts,
    )


def load_npz(path: str | Path) -> TcaTbeMatrix:
    """Read a compressed matrix written by :func:`save_npz` and validate it."""
    with np.load(Path(path)) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise FormatError(f"bad TCA-TBE container header: {exc}") from exc
        for key in _HEADER_KEYS:
            if key not in header:
                raise FormatError(f"container header missing {key!r}")
        if header["version"] != FORMAT_VERSION:
            raise FormatError(
                f"unsupported format version {header['version']}"
                f" (expected {FORMAT_VERSION})"
            )
        matrix = TcaTbeMatrix(
            shape=tuple(header["shape"]),
            base_exp=int(header["base_exp"]),
            window_size=int(header["window_size"]),
            bitmaps=archive["bitmaps"],
            high=archive["high"],
            low=archive["low"],
            high_starts=archive["high_starts"],
            low_starts=archive["low_starts"],
        )
    matrix.validate()
    return matrix
