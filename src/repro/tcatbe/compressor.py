"""The offline TCA-TBE compressor (Algorithm 1), fully vectorised.

Phase I profiles the global exponent histogram and selects the max-coverage
window of 7 consecutive exponents; Phase II encodes every 8x8 tile into the
triple-bitmap + two-buffer representation.  The per-tile loop of Algorithm 1
is expressed here as whole-matrix numpy operations over the canonical
``(n_tiles, 64)`` tile view, which keeps multi-hundred-megabyte layers
tractable in Python.
"""

from __future__ import annotations

import numpy as np

from ..bf16 import exponent_field, pack_sign_mantissa
from ..errors import ShapeError
from ..utils import require_2d
from .analysis import WINDOW_SIZE, WindowSelection, exponent_histogram, select_window
from .format import TcaTbeMatrix
from .layout import FRAG_ELEMS, pad_matrix, to_tiles

#: Precomputed 2^p table for bit-plane packing.
_POW2 = (np.uint64(1) << np.arange(FRAG_ELEMS, dtype=np.uint64))


def compress(
    weights: np.ndarray,
    window: WindowSelection | None = None,
    window_size: int = WINDOW_SIZE,
) -> TcaTbeMatrix:
    """Compress a BF16 (uint16) matrix into TCA-TBE.

    Parameters
    ----------
    weights:
        2-D uint16 array of BF16 bit patterns.
    window:
        Pre-selected exponent window; by default Phase I selects the
        max-coverage window from the matrix's own histogram.  Passing a
        window allows model-global (rather than per-matrix) bases.
    window_size:
        Number of in-window exponent classes; 7 matches the 3-bit codeword.

    Returns
    -------
    :class:`~repro.tcatbe.format.TcaTbeMatrix`
        The round-trip ``decompress(compress(w)) == w`` is bit-exact.
    """
    require_2d(weights, "weights")
    if weights.dtype != np.uint16:
        raise ShapeError("weights must be BF16 bit patterns (uint16)")
    if window is None:
        window = select_window(exponent_histogram(weights), window_size)
    if window.size != window_size:
        raise ShapeError(
            f"window size {window.size} != requested {window_size}"
        )

    # Pad with an in-window value (exponent = window.start, +0 mantissa) so
    # padding compresses instead of polluting the fallback buffer.
    pad_value = np.uint16(window.start << 7)
    padded = pad_matrix(weights, pad_value)
    tiles = to_tiles(padded)  # (n_tiles, 64), row-major positions

    exponents = exponent_field(tiles).astype(np.int16)
    in_window = (exponents >= window.start) & (exponents < window.stop)
    codes = np.where(
        in_window, (exponents - window.base_exp).astype(np.uint8), 0
    ).astype(np.uint8)

    bitmaps = np.empty((tiles.shape[0], 3), dtype=np.uint64)
    for plane in range(3):
        plane_bits = ((codes >> plane) & 1).astype(np.uint64)
        bitmaps[:, plane] = plane_bits @ _POW2

    packed = pack_sign_mantissa(tiles)
    high = packed[in_window]  # C-order flatten == canonical tile order
    low = tiles[~in_window]

    counts = in_window.sum(axis=1, dtype=np.int64)
    high_starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    low_starts = np.concatenate(
        [[0], np.cumsum(FRAG_ELEMS - counts)]
    ).astype(np.int64)

    return TcaTbeMatrix(
        shape=tuple(weights.shape),
        base_exp=window.base_exp,
        window_size=window.size,
        bitmaps=bitmaps,
        high=np.ascontiguousarray(high),
        low=np.ascontiguousarray(low),
        high_starts=high_starts,
        low_starts=low_starts,
    )
