"""TCA-TBE: Tensor-Core-Aware Triple Bitmap Encoding (§4.2 of the paper).

The paper's core lossless format.  Every 8x8 FragTile of a BF16 weight matrix
is encoded as:

* three 64-bit **bitmaps** (one per bit-plane of a 3-bit codeword per
  element);
* a **PackedSignMantissa** buffer: one byte (sign + 7-bit mantissa) per
  element whose exponent lies in a globally selected window of 7 consecutive
  exponent values;
* a **FullValue** buffer: the raw 16-bit word for every other element.

Decoding is constant-time and branch-free: codeword ``c`` at position ``p``
reconstructs exponent ``base_exp + c`` (implicit lookup), and buffer offsets
come from population counts over the OR of the three bitmaps (dynamic
addressing).  See Algorithms 1 and 2 in the paper.
"""

from .analysis import (
    WindowSelection,
    average_bits,
    expected_bits_for_codeword,
    exponent_entropy,
    exponent_histogram,
    select_window,
    top_k_contiguous,
    window_coverage,
)
from .compressor import compress
from .decompressor import decompress, decompress_tile
from .format import FORMAT_VERSION, SizeReport, TcaTbeMatrix
from .layout import (
    BLOCK_TILE,
    FRAG_ELEMS,
    FRAG_TILE,
    TC_TILE,
    TILES_PER_BLOCK,
    from_tiles,
    pad_matrix,
    padded_shape,
    tile_base_coords,
    to_tiles,
)
from .warp_ref import decode_tile_warp, WarpDecodeResult

__all__ = [
    "compress",
    "decompress",
    "decompress_tile",
    "TcaTbeMatrix",
    "SizeReport",
    "FORMAT_VERSION",
    "WindowSelection",
    "select_window",
    "window_coverage",
    "exponent_histogram",
    "exponent_entropy",
    "average_bits",
    "expected_bits_for_codeword",
    "top_k_contiguous",
    "FRAG_TILE",
    "TC_TILE",
    "BLOCK_TILE",
    "FRAG_ELEMS",
    "TILES_PER_BLOCK",
    "padded_shape",
    "pad_matrix",
    "to_tiles",
    "from_tiles",
    "tile_base_coords",
    "decode_tile_warp",
    "WarpDecodeResult",
]
