"""Literal per-lane reference for Algorithm 2 (ZipGEMM thread-local decode).

This module executes the decompressor exactly as one GPU warp would: 32
lanes, each reconstructing its two elements of an 8x8 FragTile from the three
bitmaps using a spatial-indicator mask, prefix popcounts for dynamic
addressing, and the implicit ``base + code`` exponent lookup.  It exists for
two reasons:

1. **Correctness oracle** — the vectorised decompressor must agree with this
   step-by-step transcription of the paper's pseudocode;
2. **Micro-metrics** — it counts the SASS-level instructions (POPC, LOP3,
   IADD, SHF, PRMT, LDS) behind Figure 12(a) instead of hard-coding them.

The decode is *branch-free in warp terms*: both the high-frequency and the
fallback path are short predicated sequences and every lane executes the same
number of steps, which is exactly the property that distinguishes TCA-TBE
from variable-length entropy codecs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.instructions import InstructionCounter
from .format import TcaTbeMatrix
from .layout import FRAG_ELEMS

WARP_SIZE = 32


@dataclass
class WarpDecodeResult:
    """Output of a warp-level tile decode."""

    values: np.ndarray
    instructions: InstructionCounter
    high_count: int
    low_count: int

    @property
    def instructions_per_element(self) -> float:
        """Average decode instructions per reconstructed element."""
        return self.instructions.total / FRAG_ELEMS


def decode_tile_warp(
    matrix: TcaTbeMatrix, tile_index: int
) -> WarpDecodeResult:
    """Decode one FragTile lane-by-lane, following Algorithm 2 verbatim."""
    b1 = int(matrix.bitmaps[tile_index, 0])
    b2 = int(matrix.bitmaps[tile_index, 1])
    b3 = int(matrix.bitmaps[tile_index, 2])
    base_exp = matrix.base_exp
    high = matrix.high[
        matrix.high_starts[tile_index]:matrix.high_starts[tile_index + 1]
    ]
    low = matrix.low[
        matrix.low_starts[tile_index]:matrix.low_starts[tile_index + 1]
    ]

    counter = InstructionCounter()
    values = np.zeros(FRAG_ELEMS, dtype=np.uint16)

    # Step 1: spatial indicator M = B1 | B2 | B3 — one LOP3 per lane (it is
    # a single 3-input logic op on hardware).
    indicator = b1 | b2 | b3
    counter.add("LOP3", WARP_SIZE)

    for lane in range(WARP_SIZE):
        for half in range(2):
            # p = 2*lane + half: folded into the register layout (IMAD).
            p = 2 * lane + half
            counter.add("IMAD", 1)

            # mask = (1 << p) - 1 : SHF + IADD.
            mask = (1 << p) - 1
            counter.add("SHF", 1)
            counter.add("IADD", 1)

            # idx_H = popc(M & mask): LOP3 + POPC.
            idx_high = (indicator & mask).bit_count()
            counter.add("LOP3", 1)
            counter.add("POPC", 1)

            # Predicate: (M >> p) & 1 — SHF + LOP3.
            is_high = (indicator >> p) & 1
            counter.add("SHF", 1)
            counter.add("LOP3", 1)

            if is_high:
                # Case A: fetch packed sign+mantissa (shared-memory load).
                packed = int(high[idx_high])
                counter.add("LDS", 1)

                # Reconstruct 3-bit code from the three planes:
                # three extracts + two merges -> 3 SHF + 2 LOP3.
                code = (
                    (((b3 >> p) & 1) << 2)
                    | (((b2 >> p) & 1) << 1)
                    | ((b1 >> p) & 1)
                )
                counter.add("SHF", 3)
                counter.add("LOP3", 2)

                # Implicit lookup: e = base + c (one IADD, no table).
                exponent = base_exp + code
                counter.add("IADD", 1)

                # MakeBF16(sign, e, mantissa): byte-permute + merge.
                sign = packed >> 7
                mantissa = packed & 0x7F
                word = (sign << 15) | (exponent << 7) | mantissa
                counter.add("PRMT", 1)
                counter.add("LOP3", 1)
            else:
                # Case B: idx_L = p - idx_H, then a raw 16-bit load.
                idx_low = p - idx_high
                counter.add("IADD", 1)
                word = int(low[idx_low])
                counter.add("LDS", 1)

            values[p] = word

    # Repack into a .bf16x2 register pair per lane (PRMT per lane).
    counter.add("PRMT", WARP_SIZE)

    return WarpDecodeResult(
        values=values,
        instructions=counter,
        high_count=int(high.size),
        low_count=int(low.size),
    )


def average_instruction_mix(
    matrix: TcaTbeMatrix, max_tiles: int = 64
) -> InstructionCounter:
    """Aggregate the instruction mix over the first ``max_tiles`` tiles."""
    total = InstructionCounter()
    n = min(max_tiles, matrix.n_tiles)
    for tile in range(n):
        total.merge(decode_tile_warp(matrix, tile).instructions)
    return total
