"""Vector-TBE: the 1-D adaptation of TCA-TBE (§7, extension direction 1).

The paper's first future-work item is adapting TCA-TBE to lossless KV-cache
compression.  KV blocks are small (16 tokens x kv_dim) and stream-appended,
so the 64x64 BlockTile hierarchy does not apply; what carries over is the
core encoding — a 3-bit codeword per element stored as three 64-bit
bit-planes per 64-element group, one packed sign+mantissa byte per in-window
element, and full 16-bit fallbacks — which keeps decoding constant-time and
branch-free for the attention kernel.

This module implements that 1-D variant over arbitrary-length uint16
vectors.  It is shared by the KV-cache extension and the checkpoint
compressor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bf16 import assemble, exponent_field, pack_sign_mantissa, unpack_sign_mantissa
from ..errors import FormatError
from ..utils import ceil_div, popcount64
from .analysis import WINDOW_SIZE, WindowSelection, exponent_histogram, select_window

#: Elements per bitmap group (three 64-bit planes cover 64 elements).
GROUP = 64

_POW2 = (np.uint64(1) << np.arange(GROUP, dtype=np.uint64))


@dataclass
class VecTbe:
    """A losslessly compressed BF16 vector (1-D triple-bitmap encoding)."""

    length: int
    base_exp: int
    window_size: int
    bitmaps: np.ndarray  # (n_groups, 3) uint64
    high: np.ndarray     # packed sign+mantissa bytes
    low: np.ndarray      # fallback uint16 words
    high_starts: np.ndarray
    low_starts: np.ndarray

    def __post_init__(self) -> None:
        if self.bitmaps.dtype != np.uint64 or self.bitmaps.shape[1:] != (3,):
            raise FormatError("bitmaps must be an (n_groups, 3) uint64 array")
        if not 0 <= self.base_exp <= 255 - self.window_size:
            raise FormatError(f"base_exp {self.base_exp} out of range")

    @property
    def n_groups(self) -> int:
        """Number of 64-element groups (last one may be partial)."""
        return int(self.bitmaps.shape[0])

    @property
    def compressed_nbytes(self) -> int:
        """Footprint: bit-planes + value buffers + per-vector header."""
        return int(
            24 * self.n_groups + self.high.nbytes + self.low.nbytes + 16
        )

    @property
    def original_nbytes(self) -> int:
        """Uncompressed BF16 footprint."""
        return 2 * self.length

    @property
    def ratio(self) -> float:
        """Compression ratio."""
        return self.original_nbytes / max(self.compressed_nbytes, 1)

    @property
    def coverage(self) -> float:
        """Fraction of elements on the compressed (in-window) path."""
        if self.length == 0:
            return 0.0
        return int(self.high.size) / self.length

    def validate(self) -> None:
        """Check popcount/offset consistency (same invariants as 2-D)."""
        indicator = (
            self.bitmaps[:, 0] | self.bitmaps[:, 1] | self.bitmaps[:, 2]
        )
        counts = popcount64(indicator)
        if counts.sum() != self.high.size:
            raise FormatError("high buffer disagrees with bitmap popcounts")
        if not np.array_equal(np.diff(self.high_starts), counts):
            raise FormatError("high_starts disagree with bitmap popcounts")
        if self.high.size + self.low.size != self.length:
            raise FormatError("value buffers do not cover the vector")


def compress_vector(
    values: np.ndarray,
    window: WindowSelection | None = None,
    window_size: int = WINDOW_SIZE,
) -> VecTbe:
    """Compress a 1-D BF16 (uint16) vector; bit-exact round trip."""
    flat = np.asarray(values)
    if flat.dtype != np.uint16:
        raise FormatError("values must be BF16 bit patterns (uint16)")
    flat = np.ascontiguousarray(flat).ravel()
    n = int(flat.size)
    if window is None:
        window = select_window(exponent_histogram(flat), window_size)

    n_groups = ceil_div(max(n, 1), GROUP)
    padded = np.zeros(n_groups * GROUP, dtype=np.uint16)
    padded[:n] = flat
    groups = padded.reshape(n_groups, GROUP)

    exponents = exponent_field(groups).astype(np.int16)
    in_window = (exponents >= window.start) & (exponents < window.stop)
    # Padding tail: force fallback lane, then drop it from the buffers.
    tail = np.zeros_like(in_window)
    if n % GROUP:
        tail[-1, n % GROUP:] = True
    in_window &= ~tail

    codes = np.where(
        in_window, (exponents - window.base_exp).astype(np.uint8), 0
    ).astype(np.uint8)
    bitmaps = np.empty((n_groups, 3), dtype=np.uint64)
    for plane in range(3):
        bits = ((codes >> plane) & 1).astype(np.uint64)
        bitmaps[:, plane] = bits @ _POW2

    packed = pack_sign_mantissa(groups)
    high = np.ascontiguousarray(packed[in_window])
    low_mask = ~in_window & ~tail
    low = np.ascontiguousarray(groups[low_mask])

    counts = in_window.sum(axis=1, dtype=np.int64)
    high_starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    low_counts = low_mask.sum(axis=1, dtype=np.int64)
    low_starts = np.concatenate([[0], np.cumsum(low_counts)]).astype(np.int64)

    return VecTbe(
        length=n,
        base_exp=window.base_exp,
        window_size=window.size,
        bitmaps=bitmaps,
        high=high,
        low=low,
        high_starts=high_starts,
        low_starts=low_starts,
    )


def decompress_vector(blob: VecTbe) -> np.ndarray:
    """Recover the exact BF16 vector."""
    n_groups = blob.n_groups
    codes = np.zeros((n_groups, GROUP), dtype=np.uint8)
    positions = np.arange(GROUP, dtype=np.uint64)
    for plane in range(3):
        bits = (blob.bitmaps[:, plane:plane + 1] >> positions) & np.uint64(1)
        codes |= (bits << np.uint64(plane)).astype(np.uint8)
    in_window = codes > 0

    out = np.zeros(n_groups * GROUP, dtype=np.uint16)
    flat_mask = in_window.reshape(-1)
    # Valid (non-padding) positions.
    valid = np.zeros(n_groups * GROUP, dtype=bool)
    valid[: blob.length] = True

    if flat_mask.sum() != blob.high.size:
        raise FormatError("bitmap indicator disagrees with high buffer")
    sign, mantissa = unpack_sign_mantissa(blob.high)
    exponent = blob.base_exp + codes.reshape(-1)[flat_mask].astype(np.uint16)
    out[flat_mask] = assemble(sign, exponent, mantissa)

    low_positions = valid & ~flat_mask
    if low_positions.sum() != blob.low.size:
        raise FormatError("fallback buffer size mismatch")
    out[low_positions] = blob.low
    return out[: blob.length].copy()
