"""Exponent-distribution analysis and codeword-length trade-off (§3.1, §4.2).

The offline compressor's Phase I: profile the exponent histogram of a weight
matrix, then pick the window of ``2^n - 1`` *numerically consecutive* exponent
values that maximises coverage.  The window — not the top-k *set* — is what
enables the implicit (arithmetic) lookup ``exponent = base_exp + codeword``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bf16 import exponent_field
from ..errors import ShapeError

#: Number of in-window exponent classes for the 3-bit codeword (001..111).
WINDOW_SIZE = 7


@dataclass(frozen=True)
class WindowSelection:
    """Result of Phase I of Algorithm 1.

    Attributes
    ----------
    base_exp:
        ``min(window) - 1``; decoding adds the codeword to this value.
    start:
        First exponent value in the window (= ``base_exp + 1``).
    size:
        Number of exponent classes in the window.
    coverage:
        Fraction of elements whose exponent falls inside the window.
    """

    base_exp: int
    start: int
    size: int
    coverage: float

    @property
    def stop(self) -> int:
        """One past the last exponent value in the window."""
        return self.start + self.size


def exponent_histogram(weights: np.ndarray) -> np.ndarray:
    """Histogram (256 bins) of the BF16 exponent field of ``weights``."""
    flat = np.asarray(weights)
    if flat.dtype != np.uint16:
        raise ShapeError("weights must be BF16 bit patterns (uint16)")
    return np.bincount(exponent_field(flat.ravel()), minlength=256).astype(
        np.int64
    )


def select_window(
    hist: np.ndarray, size: int = WINDOW_SIZE
) -> WindowSelection:
    """Pick the max-coverage window of ``size`` consecutive exponent values.

    The window start must be >= 1 so that ``base_exp = start - 1`` is a valid
    exponent field value; exponent 0 (zero/subnormal) therefore always falls
    back to full precision, which matches the paper's format (codeword 000 is
    the fallback marker, never a value).
    """
    hist = np.asarray(hist, dtype=np.int64)
    if hist.shape != (256,):
        raise ShapeError(f"hist must have shape (256,), got {hist.shape}")
    if not 1 <= size <= 255:
        raise ValueError(f"window size must be in [1, 255], got {size}")
    total = int(hist.sum())
    if total == 0:
        return WindowSelection(base_exp=0, start=1, size=size, coverage=0.0)
    window_sums = np.convolve(hist, np.ones(size, dtype=np.int64), "valid")
    # valid starts: 1 .. 256 - size  (start 0 would need base_exp = -1)
    starts = np.arange(window_sums.size)
    valid = starts >= 1
    window_sums = np.where(valid, window_sums, -1)
    start = int(np.argmax(window_sums))
    return WindowSelection(
        base_exp=start - 1,
        start=start,
        size=size,
        coverage=float(window_sums[start] / total),
    )


def window_coverage(hist: np.ndarray, window: WindowSelection) -> float:
    """Coverage of an arbitrary window against a histogram."""
    hist = np.asarray(hist, dtype=np.int64)
    total = int(hist.sum())
    if total == 0:
        return 0.0
    return float(hist[window.start:window.stop].sum() / total)


def top_k_contiguous(hist: np.ndarray, k: int = WINDOW_SIZE) -> bool:
    """True if the k most frequent exponents form a consecutive run.

    §3.1 reports this holds for 99.6% of 3,875 matrices across four model
    families; Appendix A proves it for Gaussian weights (unimodality).
    Ties are broken towards lower exponent values, matching ``np.argsort``
    stability on the negated histogram.
    """
    hist = np.asarray(hist, dtype=np.int64)
    present = np.flatnonzero(hist > 0)
    if present.size <= 1:
        return True
    k = min(k, present.size)
    top = np.argsort(-hist, kind="stable")[:k]
    top_sorted = np.sort(top)
    return bool(top_sorted[-1] - top_sorted[0] == k - 1)


def exponent_entropy(hist: np.ndarray) -> float:
    """Shannon entropy (bits) of the exponent distribution."""
    hist = np.asarray(hist, dtype=np.float64)
    total = hist.sum()
    if total == 0:
        return 0.0
    p = hist[hist > 0] / total
    return float(-(p * np.log2(p)).sum())


def theoretical_ratio(entropy_bits: float) -> float:
    """Information-theoretic BF16 compression bound 16 / (8 + H(exponent))."""
    return 16.0 / (8.0 + entropy_bits)


def average_bits(codeword_bits: int, coverage: float) -> float:
    """Expected storage per element for an n-bit codeword (§4.2).

    ``AverageBits(n) = r_n (n + 8) + (1 - r_n)(n + 16)`` where ``r_n`` is the
    fraction of weights covered by the top ``2^n - 1`` exponents.  For n = 3
    and r ≈ 0.96 this is ~11.3 bits, close to the ~10.6-bit entropy bound and
    better than 2-bit (12.4) or 4-bit (12.1) codewords.
    """
    if codeword_bits < 1:
        raise ValueError("codeword length must be >= 1")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage must be in [0, 1], got {coverage}")
    n = codeword_bits
    return coverage * (n + 8) + (1.0 - coverage) * (n + 16)


def expected_bits_for_codeword(hist: np.ndarray, codeword_bits: int) -> float:
    """Measure ``AverageBits(n)`` for a histogram: best (2^n - 1)-window."""
    window = select_window(hist, size=(1 << codeword_bits) - 1)
    return average_bits(codeword_bits, window.coverage)
