"""Hierarchical tiling of TCA-TBE (§4.2, "Hierarchical Tiling Design").

Three granularities, matching GPU execution units:

* **FragTile** — 8x8, the smallest Tensor Core operand fragment.  Thread
  ``i`` of a warp owns the elements at row-major positions ``2i`` and
  ``2i + 1`` (one ``.bf16x2`` register).
* **TensorCoreTile** — 16x16, a 2x2 grid of FragTiles matching the
  ``mma.m16n8k16`` A-operand; FragTiles are stored *column-major* within it,
  mirroring operand registers Ra0..Ra3.
* **BlockTile** — 64x64, processed by one thread block; TensorCoreTiles are
  stored row-major within it, and BlockTiles row-major across the matrix.

This module defines the canonical linearisation used by the compressor,
decompressor and fused kernel: :func:`to_tiles` reorders a padded matrix into
a ``(n_tiles, 64)`` array whose rows follow exactly that hierarchy, and
:func:`from_tiles` inverts it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..utils import round_up, require_2d

#: FragTile edge (elements).
FRAG_TILE = 8
#: TensorCoreTile edge.
TC_TILE = 16
#: BlockTile edge.
BLOCK_TILE = 64
#: Elements per FragTile.
FRAG_ELEMS = FRAG_TILE * FRAG_TILE
#: FragTiles per BlockTile.
TILES_PER_BLOCK = (BLOCK_TILE // FRAG_TILE) ** 2

_TT_PER_BT = BLOCK_TILE // TC_TILE  # 4
_FT_PER_TT = TC_TILE // FRAG_TILE  # 2


def padded_shape(rows: int, cols: int) -> tuple[int, int]:
    """Round a matrix shape up to BlockTile multiples."""
    if rows <= 0 or cols <= 0:
        raise ShapeError(f"matrix dims must be positive, got {rows}x{cols}")
    return round_up(rows, BLOCK_TILE), round_up(cols, BLOCK_TILE)


def pad_matrix(matrix: np.ndarray, pad_value: int) -> np.ndarray:
    """Pad a uint16 matrix to BlockTile multiples with ``pad_value``.

    The compressor pads with a value *inside* the exponent window so padding
    never bloats the fallback buffer; padded elements are sliced away on
    decompression.
    """
    require_2d(matrix, "matrix")
    rows, cols = matrix.shape
    prows, pcols = padded_shape(rows, cols)
    if (prows, pcols) == (rows, cols):
        return matrix
    out = np.full((prows, pcols), np.uint16(pad_value), dtype=np.uint16)
    out[:rows, :cols] = matrix
    return out


def to_tiles(padded: np.ndarray) -> np.ndarray:
    """Reorder a BlockTile-aligned matrix into ``(n_tiles, 64)`` rows.

    Row ``t`` of the result holds FragTile ``t`` of the canonical hierarchy,
    flattened in row-major (position ``p = 8*row + col``) order — the order in
    which warp lanes own elements (lane ``p // 2``, register half ``p % 2``).
    """
    require_2d(padded, "padded")
    prows, pcols = padded.shape
    if prows % BLOCK_TILE or pcols % BLOCK_TILE:
        raise ShapeError(
            f"matrix {prows}x{pcols} is not BlockTile ({BLOCK_TILE}) aligned"
        )
    mb, kb = prows // BLOCK_TILE, pcols // BLOCK_TILE
    # dims: bt_r, tt_r, ft_r, row, bt_c, tt_c, ft_c, col
    x = padded.reshape(mb, _TT_PER_BT, _FT_PER_TT, FRAG_TILE,
                       kb, _TT_PER_BT, _FT_PER_TT, FRAG_TILE)
    # order: BlockTiles row-major, TensorCoreTiles row-major, FragTiles
    # column-major (ft_c outer, ft_r inner = Ra0,Ra1,Ra2,Ra3), positions
    # row-major.
    x = x.transpose(0, 4, 1, 5, 6, 2, 3, 7)
    return np.ascontiguousarray(x.reshape(-1, FRAG_ELEMS))


def from_tiles(tiles: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`to_tiles` for a BlockTile-aligned target ``shape``."""
    prows, pcols = shape
    if prows % BLOCK_TILE or pcols % BLOCK_TILE:
        raise ShapeError(
            f"target shape {prows}x{pcols} is not BlockTile aligned"
        )
    mb, kb = prows // BLOCK_TILE, pcols // BLOCK_TILE
    expected = mb * kb * TILES_PER_BLOCK
    if tiles.shape != (expected, FRAG_ELEMS):
        raise ShapeError(
            f"tiles must have shape ({expected}, {FRAG_ELEMS}),"
            f" got {tiles.shape}"
        )
    # dims: bt_r, bt_c, tt_r, tt_c, ft_c, ft_r, row, col
    x = tiles.reshape(mb, kb, _TT_PER_BT, _TT_PER_BT,
                      _FT_PER_TT, _FT_PER_TT, FRAG_TILE, FRAG_TILE)
    x = x.transpose(0, 2, 5, 6, 1, 3, 4, 7)
    return np.ascontiguousarray(x.reshape(prows, pcols))


def tile_base_coords(prows: int, pcols: int) -> np.ndarray:
    """Top-left (row, col) of every FragTile in canonical tile order.

    Useful for tests and for the warp-level reference decoder, which works on
    one FragTile at a time.
    """
    if prows % BLOCK_TILE or pcols % BLOCK_TILE:
        raise ShapeError("shape must be BlockTile aligned")
    mb, kb = prows // BLOCK_TILE, pcols // BLOCK_TILE
    coords = []
    for bt_r in range(mb):
        for bt_c in range(kb):
            for tt_r in range(_TT_PER_BT):
                for tt_c in range(_TT_PER_BT):
                    for ft_c in range(_FT_PER_TT):
                        for ft_r in range(_FT_PER_TT):
                            coords.append((
                                bt_r * BLOCK_TILE + tt_r * TC_TILE
                                + ft_r * FRAG_TILE,
                                bt_c * BLOCK_TILE + tt_c * TC_TILE
                                + ft_c * FRAG_TILE,
                            ))
    return np.asarray(coords, dtype=np.int64)


def lane_positions(lane: int) -> tuple[int, int]:
    """In-tile positions (p0, p1) owned by warp lane ``lane`` (0..31)."""
    if not 0 <= lane < 32:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    return 2 * lane, 2 * lane + 1


def position_rc(position: int) -> tuple[int, int]:
    """Row/col of a row-major in-tile position (0..63)."""
    if not 0 <= position < FRAG_ELEMS:
        raise ValueError(f"position must be in [0, 64), got {position}")
    return position // FRAG_TILE, position % FRAG_TILE
