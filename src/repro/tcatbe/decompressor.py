"""TCA-TBE decompression (the vectorised analogue of Algorithm 2).

Algorithm 2 gives each warp lane the constant-time recipe for its two
elements: OR the three bit-planes into a spatial indicator, popcount a prefix
mask for dynamic addressing, reassemble the exponent as ``base + code``.
This module performs the same steps for *all* tiles at once with numpy, and
is exercised against the literal per-lane reference
(:mod:`repro.tcatbe.warp_ref`) in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..bf16 import assemble, unpack_sign_mantissa
from ..errors import FormatError
from .format import TcaTbeMatrix
from .layout import FRAG_ELEMS, from_tiles

_POSITIONS = np.arange(FRAG_ELEMS, dtype=np.uint64)


def _codes_from_bitmaps(bitmaps: np.ndarray) -> np.ndarray:
    """Expand ``(n_tiles, 3)`` bit-planes into ``(n_tiles, 64)`` codewords."""
    codes = np.zeros((bitmaps.shape[0], FRAG_ELEMS), dtype=np.uint8)
    for plane in range(3):
        bits = (bitmaps[:, plane:plane + 1] >> _POSITIONS) & np.uint64(1)
        codes |= (bits << np.uint64(plane)).astype(np.uint8)
    return codes


def decompress(matrix: TcaTbeMatrix) -> np.ndarray:
    """Reconstruct the exact original BF16 (uint16) matrix."""
    codes = _codes_from_bitmaps(matrix.bitmaps)
    in_window = codes > 0

    expected_high = int(in_window.sum())
    if expected_high != matrix.n_high:
        raise FormatError(
            f"bitmap indicator says {expected_high} compressed elements,"
            f" buffer holds {matrix.n_high}"
        )
    if matrix.n_padded_elements - expected_high != matrix.n_low:
        raise FormatError("fallback buffer size disagrees with bitmaps")

    tiles = np.empty((matrix.n_tiles, FRAG_ELEMS), dtype=np.uint16)

    # Case A (high-frequency path): exponent = base_exp + code, sign/mantissa
    # from the packed byte.  Boolean C-order indexing matches the canonical
    # buffer order the compressor used.
    sign, mantissa = unpack_sign_mantissa(matrix.high)
    exponent = matrix.base_exp + codes[in_window].astype(np.uint16)
    tiles[in_window] = assemble(sign, exponent, mantissa)

    # Case B (fallback path): raw 16-bit words.
    tiles[~in_window] = matrix.low

    padded = from_tiles(tiles, matrix.padded_shape)
    rows, cols = matrix.shape
    return np.ascontiguousarray(padded[:rows, :cols])


def decompress_tile(matrix: TcaTbeMatrix, tile_index: int) -> np.ndarray:
    """Decode a single FragTile to its 64 BF16 words (canonical order).

    This is the unit of work the fused ZipGEMM kernel performs per warp and
    per K-slice; :mod:`repro.kernels.functional` builds on it.
    """
    if not 0 <= tile_index < matrix.n_tiles:
        raise FormatError(
            f"tile index {tile_index} out of range [0, {matrix.n_tiles})"
        )
    codes = _codes_from_bitmaps(matrix.bitmaps[tile_index:tile_index + 1])[0]
    in_window = codes > 0

    h0 = matrix.high_starts[tile_index]
    h1 = matrix.high_starts[tile_index + 1]
    l0 = matrix.low_starts[tile_index]
    l1 = matrix.low_starts[tile_index + 1]

    out = np.empty(FRAG_ELEMS, dtype=np.uint16)
    sign, mantissa = unpack_sign_mantissa(matrix.high[h0:h1])
    exponent = matrix.base_exp + codes[in_window].astype(np.uint16)
    out[in_window] = assemble(sign, exponent, mantissa)
    out[~in_window] = matrix.low[l0:l1]
    return out
