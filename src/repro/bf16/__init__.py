"""BFloat16 substrate.

All compressed formats in this repository operate on raw BF16 bit patterns
stored as ``numpy.uint16`` arrays.  This package provides the conversions and
bit-field helpers shared by the TCA-TBE format and the baseline codecs.
"""

from .dtype import (
    EXPONENT_BIAS,
    EXPONENT_BITS,
    MANTISSA_BITS,
    assemble,
    bf16_to_f32,
    exponent_field,
    f32_to_bf16,
    mantissa_field,
    pack_sign_mantissa,
    sign_field,
    unpack_sign_mantissa,
)
from .random import gaussian_bf16_matrix, gaussian_bf16_sample

__all__ = [
    "EXPONENT_BIAS",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "assemble",
    "bf16_to_f32",
    "exponent_field",
    "f32_to_bf16",
    "mantissa_field",
    "pack_sign_mantissa",
    "sign_field",
    "unpack_sign_mantissa",
    "gaussian_bf16_matrix",
    "gaussian_bf16_sample",
]
