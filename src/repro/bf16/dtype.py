"""BFloat16 bit-level representation (§2.2 of the paper).

A BF16 value is a 16-bit word: 1 sign bit, 8 exponent bits, 7 mantissa bits::

    bit:   15 | 14 .. 7  | 6 .. 0
           S  | exponent | mantissa

    value = (-1)^S * 2^(exponent - 127) * (1.mantissa)

We keep BF16 tensors as ``numpy.uint16`` arrays holding the raw bit patterns,
which makes lossless round-trips testable with exact equality and makes field
extraction a couple of shifts — the same operations the CUDA decompressor
performs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

#: Exponent bias of BF16 (identical to IEEE-754 binary32).
EXPONENT_BIAS = 127

#: Width of the exponent field in bits.
EXPONENT_BITS = 8

#: Width of the explicit mantissa field in bits.
MANTISSA_BITS = 7

_SIGN_SHIFT = 15
_EXP_SHIFT = 7
_EXP_MASK = np.uint16(0xFF << _EXP_SHIFT)
_MANT_MASK = np.uint16(0x7F)

#: Canonical quiet-NaN bit pattern used when converting float32 NaNs.
QUIET_NAN = np.uint16(0x7FC0)


def f32_to_bf16(values: np.ndarray) -> np.ndarray:
    """Convert float32 values to BF16 bit patterns (round-to-nearest-even).

    This matches the truncation-with-rounding performed by hardware
    ``cvt.rn.bf16.f32``: the low 16 bits of the float32 word are dropped after
    adding ``0x7FFF + lsb`` so ties round to even.  NaNs map to the canonical
    quiet NaN.

    Parameters
    ----------
    values:
        Array of float32 (anything else is cast to float32 first).

    Returns
    -------
    numpy.ndarray of uint16 with the same shape.
    """
    f32 = np.ascontiguousarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    bf16 = (rounded >> np.uint32(16)).astype(np.uint16)
    nan_mask = np.isnan(f32)
    if nan_mask.any():
        bf16 = np.where(nan_mask, QUIET_NAN, bf16)
    return bf16


def bf16_to_f32(bits: np.ndarray) -> np.ndarray:
    """Convert BF16 bit patterns (uint16) back to float32 values exactly."""
    u16 = _as_u16(bits)
    return (u16.astype(np.uint32) << np.uint32(16)).view(np.float32)


def sign_field(bits: np.ndarray) -> np.ndarray:
    """Extract the sign bit (0 or 1) from BF16 bit patterns."""
    return (_as_u16(bits) >> np.uint16(_SIGN_SHIFT)).astype(np.uint8)


def exponent_field(bits: np.ndarray) -> np.ndarray:
    """Extract the raw 8-bit exponent field (0..255) from BF16 bit patterns."""
    return ((_as_u16(bits) & _EXP_MASK) >> np.uint16(_EXP_SHIFT)).astype(np.uint8)


def mantissa_field(bits: np.ndarray) -> np.ndarray:
    """Extract the 7-bit mantissa field (0..127) from BF16 bit patterns."""
    return (_as_u16(bits) & _MANT_MASK).astype(np.uint8)


def assemble(
    sign: np.ndarray, exponent: np.ndarray, mantissa: np.ndarray
) -> np.ndarray:
    """Assemble BF16 bit patterns from their three fields.

    This is the ``MakeBF16`` step of Algorithm 2: a shift-or of the sign bit,
    the reconstructed exponent, and the stored mantissa.
    """
    s = np.asarray(sign, dtype=np.uint16)
    e = np.asarray(exponent, dtype=np.uint16)
    m = np.asarray(mantissa, dtype=np.uint16)
    if (e > 0xFF).any():
        raise ValueError("exponent field out of range [0, 255]")
    if (m > 0x7F).any():
        raise ValueError("mantissa field out of range [0, 127]")
    if (s > 1).any():
        raise ValueError("sign field must be 0 or 1")
    return (
        (s << np.uint16(_SIGN_SHIFT)) | (e << np.uint16(_EXP_SHIFT)) | m
    ).astype(np.uint16)


def pack_sign_mantissa(bits: np.ndarray) -> np.ndarray:
    """Pack sign and mantissa of BF16 words into one byte each.

    The TCA-TBE high-frequency buffer stores exactly this byte per element::

        bit:   7 | 6 .. 0
               S | mantissa
    """
    u16 = _as_u16(bits)
    return (
        ((u16 >> np.uint16(8)) & np.uint16(0x80)) | (u16 & _MANT_MASK)
    ).astype(np.uint8)


def unpack_sign_mantissa(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed sign+mantissa bytes back into (sign, mantissa) fields."""
    p = np.asarray(packed, dtype=np.uint8)
    sign = (p >> np.uint8(7)).astype(np.uint8)
    mantissa = (p & np.uint8(0x7F)).astype(np.uint8)
    return sign, mantissa


def _as_u16(bits: np.ndarray) -> np.ndarray:
    array = np.asarray(bits)
    if array.dtype != np.uint16:
        raise ShapeError(
            f"BF16 bit patterns must be uint16 arrays, got dtype {array.dtype}"
        )
    return array
