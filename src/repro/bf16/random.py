"""Synthetic BF16 weight generation.

The paper's Appendix A models LLM weights in a layer as ``w ~ N(0, sigma^2)``
and proves that the resulting BF16 exponent distribution is unimodal (hence
top-K contiguous) and highly skewed.  Because we have no pretrained
checkpoints in this environment, every experiment that needs weight *values*
samples them from this model; experiments that only need weight *shapes* use
:mod:`repro.serving.models` directly.
"""

from __future__ import annotations

import numpy as np

from .dtype import f32_to_bf16


def gaussian_bf16_sample(
    n: int, sigma: float = 0.02, seed: int | None = 0
) -> np.ndarray:
    """Sample ``n`` BF16 bit patterns from N(0, sigma^2).

    Parameters
    ----------
    n:
        Number of samples.
    sigma:
        Standard deviation of the Gaussian; typical trained LLM layers fall
        in the 0.01–0.04 range.
    seed:
        Seed for reproducibility; ``None`` draws fresh entropy.

    Returns
    -------
    numpy.ndarray of uint16, shape ``(n,)``.
    """
    if n < 0:
        raise ValueError(f"sample count must be non-negative, got {n}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, sigma, size=n).astype(np.float32)
    return f32_to_bf16(values)


def gaussian_bf16_matrix(
    rows: int, cols: int, sigma: float = 0.02, seed: int | None = 0
) -> np.ndarray:
    """Sample a ``rows x cols`` BF16 weight matrix from N(0, sigma^2)."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"matrix dims must be positive, got {rows}x{cols}")
    flat = gaussian_bf16_sample(rows * cols, sigma=sigma, seed=seed)
    return flat.reshape(rows, cols)
