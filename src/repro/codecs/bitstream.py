"""Vectorised variable-length bit packing and reading.

The baselines' bitstreams are MSB-first: the first symbol occupies the highest
bits of the first byte.  Packing a million variable-length codes one at a time
in Python would be hopeless, so :func:`pack_bits` places every code with a
single scatter-add — codes never overlap bit-wise, so add equals bitwise-or.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

#: Longest supported code in bits; a (shift<=7 + length<=24) window fits in
#: a 32-bit word spanning at most four bytes.
MAX_CODE_BITS = 24


def pack_bits(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack variable-length codes into an MSB-first bitstream.

    Parameters
    ----------
    codes:
        Integer code values; code ``i`` occupies ``lengths[i]`` bits.
    lengths:
        Bit length per code, each in ``[1, MAX_CODE_BITS]``.

    Returns
    -------
    (buffer, total_bits):
        ``buffer`` is a uint8 array padded with four trailing bytes so that a
        4-byte window read never runs off the end; ``total_bits`` is the
        number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise CodecError("codes and lengths must have the same shape")
    if codes.size == 0:
        return np.zeros(4, dtype=np.uint8), 0
    if lengths.min() < 1 or lengths.max() > MAX_CODE_BITS:
        raise CodecError(
            f"code lengths must be in [1, {MAX_CODE_BITS}],"
            f" got range [{lengths.min()}, {lengths.max()}]"
        )
    if (codes >> lengths.astype(np.uint64)).any():
        raise CodecError("a code value does not fit in its declared length")

    ends = np.cumsum(lengths)
    offsets = ends - lengths
    total_bits = int(ends[-1])
    nbytes = (total_bits + 7) // 8 + 4

    byte_pos = (offsets >> 3).astype(np.int64)
    shift = (offsets & 7).astype(np.uint64)
    # Place each code at its bit offset inside a 32-bit big-endian window.
    window = codes << (np.uint64(32) - shift - lengths.astype(np.uint64))

    buffer = np.zeros(nbytes, dtype=np.uint8)
    for byte_index in range(4):
        part = ((window >> np.uint64(8 * (3 - byte_index))) & np.uint64(0xFF))
        np.add.at(buffer, byte_pos + byte_index, part.astype(np.uint8))
    return buffer, total_bits


class BitReader:
    """Random-access MSB-first bit reader over a packed buffer.

    Supports both scalar reads (sequential decode loops) and vectorised peeks
    at many independent offsets at once (the chunk-parallel decoders).
    """

    def __init__(self, buffer: np.ndarray, total_bits: int):
        buffer = np.asarray(buffer, dtype=np.uint8)
        if buffer.nbytes * 8 < total_bits:
            raise CodecError("buffer shorter than declared bit length")
        # Guarantee a 4-byte window read at any valid offset stays in bounds.
        self._buffer = np.concatenate([buffer, np.zeros(4, dtype=np.uint8)])
        self.total_bits = int(total_bits)

    def peek_vector(self, offsets: np.ndarray, nbits: int) -> np.ndarray:
        """Peek ``nbits`` (<= 16) starting at each bit offset, vectorised.

        Offsets may point anywhere in the stream (including past the last
        symbol, where padding zeros are returned); this mirrors how a GPU
        thread speculatively loads a word and masks it.
        """
        if not 1 <= nbits <= 16:
            raise CodecError("peek_vector supports 1..16 bits")
        offsets = np.asarray(offsets, dtype=np.int64)
        byte_pos = offsets >> 3
        shift = (offsets & 7).astype(np.uint64)
        b = self._buffer
        window = (
            (b[byte_pos].astype(np.uint64) << np.uint64(24))
            | (b[byte_pos + 1].astype(np.uint64) << np.uint64(16))
            | (b[byte_pos + 2].astype(np.uint64) << np.uint64(8))
            | b[byte_pos + 3].astype(np.uint64)
        )
        out = (window >> (np.uint64(32 - nbits) - shift)) & np.uint64(
            (1 << nbits) - 1
        )
        return out

    def peek(self, offset: int, nbits: int) -> int:
        """Scalar convenience wrapper over :meth:`peek_vector`."""
        return int(self.peek_vector(np.asarray([offset]), nbits)[0])

    @property
    def buffer(self) -> np.ndarray:
        """The padded backing buffer (read-only view)."""
        view = self._buffer.view()
        view.flags.writeable = False
        return view
