"""Entropy codecs used by the baseline lossless-compression systems.

The paper compares ZipServ against three entropy-coded systems:

* **DFloat11** — canonical Huffman over the BF16 exponent plane, decoded on
  GPU from a chunked bitstream (:class:`repro.codecs.huffman.HuffmanCodec`).
* **DietGPU** — interleaved rANS over byte planes
  (:class:`repro.codecs.rans.RansCodec`).
* **nvCOMP** — vendor rANS plus a separate BF16 reassembly pass
  (modelled in :mod:`repro.codecs.bf16_split`).

These are complete, working codecs (bit-exact round-trips), not mocks; their
measured symbol statistics feed the GPU divergence model.
"""

from .base import EncodedStream, get_byte_codec, register_byte_codec
from .bitstream import BitReader, pack_bits
from .bf16_split import (
    BF16_CODECS,
    BF16LosslessCodec,
    CompressedBF16,
    get_bf16_codec,
)
from .huffman import HuffmanCodec, huffman_code_lengths
from .rans import RansCodec

__all__ = [
    "BitReader",
    "pack_bits",
    "EncodedStream",
    "register_byte_codec",
    "get_byte_codec",
    "HuffmanCodec",
    "huffman_code_lengths",
    "RansCodec",
    "BF16LosslessCodec",
    "CompressedBF16",
    "BF16_CODECS",
    "get_bf16_codec",
]
