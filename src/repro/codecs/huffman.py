"""Canonical Huffman codec with a chunk-parallel container (DFloat11-style).

DFloat11 compresses the BF16 exponent plane with Huffman codes and decodes on
GPU by (1) partitioning the bitstream into chunks with recorded start offsets,
(2) extracting symbols through lookup tables, and (3) advancing a bit pointer
by the just-decoded symbol's length (§3.2 of the paper).  This module
implements exactly that container:

* canonical, length-limited Huffman codes (max 16 bits, matching a 16-bit
  peek LUT);
* chunked encoding with per-chunk bit offsets as side information;
* a chunk-parallel decoder that advances all chunks in lockstep — the Python
  analogue of one GPU thread per chunk, and the source of the divergence
  statistics used by the performance model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from .base import EncodedStream, as_u8, register_byte_codec
from .bitstream import BitReader, pack_bits

#: Default decode-table width; DFloat11 uses hierarchical LUTs, we use one
#: flat 2^16-entry table.
MAX_CODE_LEN = 16

#: Default number of symbols per independently-decodable chunk.
DEFAULT_CHUNK_SYMBOLS = 4096


def huffman_code_lengths(
    freqs: np.ndarray, max_len: int = MAX_CODE_LEN
) -> np.ndarray:
    """Compute length-limited Huffman code lengths for a 256-symbol alphabet.

    Standard two-queue/heap Huffman construction followed by a Kraft-sum
    repair pass that caps lengths at ``max_len`` (the approach used by
    practical coders such as zlib/zstd).

    Parameters
    ----------
    freqs:
        Symbol frequencies, shape ``(256,)``; zeros mean "symbol absent".
    max_len:
        Maximum permitted code length.

    Returns
    -------
    uint8 array of code lengths, 0 for absent symbols.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.shape != (256,):
        raise CodecError(f"freqs must have shape (256,), got {freqs.shape}")
    if (freqs < 0).any():
        raise CodecError("frequencies must be non-negative")

    present = np.flatnonzero(freqs > 0)
    lengths = np.zeros(256, dtype=np.uint8)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Heap of (weight, tiebreak, node); leaves are symbol ids, internal nodes
    # are lists of their leaf symbols so we can bump depths on merge.
    heap: list[tuple[int, int, list[int]]] = []
    counter = 0
    for sym in present:
        heap.append((int(freqs[sym]), counter, [int(sym)]))
        counter += 1
    heapq.heapify(heap)
    depth = np.zeros(256, dtype=np.int64)
    while len(heap) > 1:
        w1, _, leaves1 = heapq.heappop(heap)
        w2, _, leaves2 = heapq.heappop(heap)
        merged = leaves1 + leaves2
        depth[merged] += 1
        heapq.heappush(heap, (w1 + w2, counter, merged))
        counter += 1

    depth = np.minimum(depth, max_len)
    lengths[present] = depth[present].astype(np.uint8)

    # Kraft repair: clamping may overfill the code space.  Each increment of a
    # length ell < max_len frees 2^(max_len - ell - 1) units of 2^-max_len.
    unit = 1 << max_len
    kraft = int(np.sum(unit >> lengths[present].astype(np.int64)))
    while kraft > unit:
        candidates = lengths[present].astype(np.int64)
        candidates[candidates >= max_len] = -1  # not adjustable
        deepest = present[int(np.argmax(candidates))]
        if lengths[deepest] >= max_len:
            raise CodecError("cannot satisfy Kraft inequality")  # pragma: no cover
        kraft -= unit >> (int(lengths[deepest]) + 1)
        lengths[deepest] += 1
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical (lexicographic-by-length) codes for given lengths."""
    lengths = np.asarray(lengths, dtype=np.uint8)
    codes = np.zeros(256, dtype=np.uint32)
    order = sorted(np.flatnonzero(lengths > 0), key=lambda s: (lengths[s], s))
    code = 0
    prev_len = 0
    for sym in order:
        ell = int(lengths[sym])
        code <<= ell - prev_len
        codes[sym] = code
        code += 1
        prev_len = ell
    return codes


def build_decode_lut(
    lengths: np.ndarray, max_len: int = MAX_CODE_LEN
) -> tuple[np.ndarray, np.ndarray]:
    """Build a flat peek-LUT: ``max_len`` peeked bits -> (symbol, length)."""
    codes = canonical_codes(lengths)
    lut_sym = np.zeros(1 << max_len, dtype=np.uint8)
    lut_len = np.zeros(1 << max_len, dtype=np.uint8)
    for sym in np.flatnonzero(lengths > 0):
        ell = int(lengths[sym])
        start = int(codes[sym]) << (max_len - ell)
        end = start + (1 << (max_len - ell))
        lut_sym[start:end] = sym
        lut_len[start:end] = ell
    return lut_sym, lut_len


@dataclass
class HuffmanCodec:
    """Chunked canonical-Huffman byte codec."""

    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS
    max_len: int = MAX_CODE_LEN
    name: str = "huffman"

    def encode(self, data: np.ndarray) -> EncodedStream:
        """Encode a uint8 array; see the module docstring for the container."""
        data = as_u8(data)
        n = data.size
        if n == 0:
            return EncodedStream(
                codec=self.name,
                payload=np.zeros(0, dtype=np.uint8),
                n_symbols=0,
                header_nbytes=0,
                meta={"lengths": np.zeros(256, dtype=np.uint8)},
            )
        freqs = np.bincount(data, minlength=256)
        lengths = huffman_code_lengths(freqs, self.max_len)
        codes = canonical_codes(lengths)

        sym_lengths = lengths[data].astype(np.int64)
        buffer, total_bits = pack_bits(codes[data], sym_lengths)

        ends = np.cumsum(sym_lengths)
        starts = ends - sym_lengths
        chunk_starts = starts[:: self.chunk_symbols].astype(np.int64)

        # Container side info: 256-byte length table + one 32-bit offset per
        # chunk + a small fixed header.
        header_nbytes = 256 + 4 * chunk_starts.size + 16
        return EncodedStream(
            codec=self.name,
            payload=buffer,
            n_symbols=n,
            header_nbytes=header_nbytes,
            meta={
                "lengths": lengths,
                "chunk_bit_offsets": chunk_starts,
                "total_bits": int(total_bits),
                "chunk_symbols": int(self.chunk_symbols),
            },
        )

    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Chunk-parallel decode; bit-exact inverse of :meth:`encode`."""
        n = stream.n_symbols
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        lengths = stream.meta["lengths"]
        chunk_symbols = stream.meta["chunk_symbols"]
        offsets = stream.meta["chunk_bit_offsets"].astype(np.int64).copy()
        lut_sym, lut_len = build_decode_lut(lengths, self.max_len)
        reader = BitReader(stream.payload, stream.meta["total_bits"])

        n_chunks = offsets.size
        counts = np.full(n_chunks, chunk_symbols, dtype=np.int64)
        counts[-1] = n - chunk_symbols * (n_chunks - 1)
        base = np.arange(n_chunks, dtype=np.int64) * chunk_symbols

        out = np.empty(n, dtype=np.uint8)
        for step in range(int(counts.max())):
            active = counts > step
            peek = reader.peek_vector(offsets[active], self.max_len)
            syms = lut_sym[peek]
            lens = lut_len[peek]
            if (lens == 0).any():
                raise CodecError("corrupt Huffman stream: unknown code")
            out[base[active] + step] = syms
            offsets[active] += lens
        return out

    def symbol_lengths(self, data: np.ndarray) -> np.ndarray:
        """Per-symbol code lengths for ``data`` (feeds the divergence model)."""
        data = as_u8(data)
        if data.size == 0:
            return np.zeros(0, dtype=np.uint8)
        freqs = np.bincount(data, minlength=256)
        return huffman_code_lengths(freqs, self.max_len)[data]


register_byte_codec(HuffmanCodec())
