"""Symbol statistics shared by the compressibility analysis and perf model."""

from __future__ import annotations

import numpy as np

from .base import as_u8


def byte_entropy(data: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of a byte stream.

    §3.1 reports 2.57–2.74 bits for the exponent plane of contemporary LLMs.
    """
    data = as_u8(data)
    if data.size == 0:
        return 0.0
    counts = np.bincount(data, minlength=256).astype(np.float64)
    p = counts[counts > 0] / data.size
    return float(-(p * np.log2(p)).sum())


def histogram256(data: np.ndarray) -> np.ndarray:
    """256-bin histogram of a byte stream."""
    return np.bincount(as_u8(data), minlength=256).astype(np.int64)


def top_k_coverage(freqs: np.ndarray, k: int) -> float:
    """Fraction of symbols covered by the k most frequent values."""
    freqs = np.asarray(freqs, dtype=np.int64)
    total = freqs.sum()
    if total == 0:
        return 0.0
    return float(np.sort(freqs)[::-1][:k].sum() / total)


def code_length_stats(lengths: np.ndarray) -> dict[str, float]:
    """Mean/max/std of per-symbol code lengths (the divergence driver).

    Variable-length codes force warp lanes to wait for the slowest symbol;
    the ratio mean/max is a first-order bound on SIMT efficiency (§3.2).
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.size == 0:
        return {"mean": 0.0, "max": 0.0, "std": 0.0, "min": 0.0}
    return {
        "mean": float(lengths.mean()),
        "max": float(lengths.max()),
        "std": float(lengths.std()),
        "min": float(lengths.min()),
    }
