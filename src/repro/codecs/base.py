"""Common codec interfaces and the byte-codec registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import CodecError


@dataclass
class EncodedStream:
    """An entropy-coded byte stream plus the metadata needed to decode it.

    Attributes
    ----------
    codec:
        Registered name of the codec that produced the stream.
    payload:
        The compressed bits, as a uint8 array.
    n_symbols:
        Number of source symbols (bytes) encoded.
    header_nbytes:
        Size of the side information a real container would store (frequency
        tables, chunk offsets, stream states...).  Counted into
        :attr:`compressed_nbytes` so compression ratios are honest.
    meta:
        Codec-specific decoding state (tables, offsets, ...).  Not counted
        beyond ``header_nbytes``.
    """

    codec: str
    payload: np.ndarray
    n_symbols: int
    header_nbytes: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload.dtype != np.uint8:
            raise CodecError("EncodedStream payload must be uint8")
        if self.n_symbols < 0:
            raise CodecError("n_symbols must be non-negative")
        if self.header_nbytes < 0:
            raise CodecError("header_nbytes must be non-negative")

    @property
    def compressed_nbytes(self) -> int:
        """Total on-device footprint: payload plus container metadata."""
        return int(self.payload.nbytes) + int(self.header_nbytes)

    @property
    def ratio(self) -> float:
        """Compression ratio (source bytes / compressed bytes)."""
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.n_symbols / self.compressed_nbytes


class ByteCodec(Protocol):
    """Protocol for codecs over byte alphabets (the exponent plane)."""

    name: str

    def encode(self, data: np.ndarray) -> EncodedStream:
        """Encode a uint8 array into an :class:`EncodedStream`."""
        ...

    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Decode back the exact original uint8 array."""
        ...


_BYTE_CODECS: dict[str, ByteCodec] = {}


def register_byte_codec(codec: ByteCodec) -> ByteCodec:
    """Register a byte codec instance under ``codec.name``."""
    _BYTE_CODECS[codec.name] = codec
    return codec


def get_byte_codec(name: str) -> ByteCodec:
    """Look up a registered byte codec by name."""
    try:
        return _BYTE_CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown byte codec {name!r}; known: {sorted(_BYTE_CODECS)}"
        ) from None


def as_u8(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate and flatten a uint8 input array."""
    array = np.asarray(data)
    if array.dtype != np.uint8:
        raise CodecError(f"{name} must be uint8, got {array.dtype}")
    return np.ascontiguousarray(array).ravel()
