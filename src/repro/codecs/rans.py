"""Interleaved range-ANS codec (DietGPU / nvCOMP-style).

DietGPU decodes floating-point tensors with a GPU-native rANS coder: the
symbol stream is split across many independent ANS states that renormalise in
16-bit words, one state per GPU lane.  This module implements the same
construction with the lane dimension vectorised in numpy:

* frequencies normalised to a 2^12 probability scale;
* ``num_streams`` interleaved encoders, symbol ``i`` belonging to stream
  ``i % num_streams``;
* 32-bit states, 16-bit renormalisation (at most one word in or out per
  symbol, which is what makes the lane loop vectorisable).

Round-trips are bit-exact.  The codec's GPU *cost* (table gathers, scattered
payload reads) is modelled separately in :mod:`repro.kernels.decompress`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from .base import EncodedStream, as_u8, register_byte_codec
from ..utils import ceil_div, round_up

#: Probability resolution: frequencies are scaled to sum to 2^PROB_BITS.
PROB_BITS = 12
PROB_SCALE = 1 << PROB_BITS

#: Lower bound of the ANS state interval [2^16, 2^32).
STATE_LOW = np.uint64(1) << np.uint64(16)


def normalize_freqs(freqs: np.ndarray, prob_scale: int = PROB_SCALE) -> np.ndarray:
    """Scale raw counts so they sum to ``prob_scale``, keeping present >= 1."""
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.shape != (256,):
        raise CodecError(f"freqs must have shape (256,), got {freqs.shape}")
    total = int(freqs.sum())
    if total == 0:
        return np.zeros(256, dtype=np.int64)
    scaled = np.floor(freqs * (prob_scale / total) + 0.5).astype(np.int64)
    scaled[(freqs > 0) & (scaled == 0)] = 1
    diff = prob_scale - int(scaled.sum())
    while diff != 0:
        if diff > 0:
            idx = int(np.argmax(scaled))
            scaled[idx] += 1
            diff -= 1
        else:
            adjustable = np.where(scaled > 1, scaled, -1)
            idx = int(np.argmax(adjustable))
            if adjustable[idx] <= 1:
                raise CodecError("cannot normalise frequency table")
            scaled[idx] -= 1
            diff += 1
    return scaled


def _auto_streams(n: int) -> int:
    """Pick a lane count: multiples of a warp, ~512 symbols per lane."""
    if n == 0:
        return 32
    return min(4096, max(32, round_up(ceil_div(n, 512), 32)))


@dataclass
class RansCodec:
    """Interleaved rANS byte codec."""

    num_streams: int | None = None
    prob_bits: int = PROB_BITS
    name: str = "rans"

    def encode(self, data: np.ndarray) -> EncodedStream:
        """Encode a uint8 array into interleaved rANS streams."""
        data = as_u8(data)
        n = data.size
        k = self.num_streams or _auto_streams(n)
        prob_scale = 1 << self.prob_bits
        if n == 0:
            return EncodedStream(
                codec=self.name,
                payload=np.zeros(0, dtype=np.uint8),
                n_symbols=0,
                header_nbytes=0,
                meta={"num_streams": k},
            )
        freqs = normalize_freqs(np.bincount(data, minlength=256), prob_scale)
        cum = np.concatenate([[0], np.cumsum(freqs)])[:256].astype(np.uint64)
        freqs_u = freqs.astype(np.uint64)

        # Lay out symbols as (streams, steps); pad the ragged tail.
        steps = ceil_div(n, k)
        padded = np.zeros(k * steps, dtype=np.uint8)
        padded[:n] = data
        lanes = padded.reshape(steps, k).T  # (k, steps)
        valid = (np.arange(k)[:, None] + np.arange(steps)[None, :] * k) < n

        x = np.full(k, STATE_LOW, dtype=np.uint64)
        emit_stream: list[np.ndarray] = []
        emit_word: list[np.ndarray] = []
        shift16 = np.uint64(16)
        pbits = np.uint64(self.prob_bits)
        # Encode in reverse symbol order so the decoder runs forward.
        for step in range(steps - 1, -1, -1):
            syms = lanes[:, step].astype(np.int64)
            active = valid[:, step]
            # Inactive (padding) lanes may map to zero-frequency symbols;
            # substitute 1 so the vectorised division is well-defined (their
            # state update is discarded by the mask below).
            f = np.where(active, freqs_u[syms], np.uint64(1))
            x_max = (f << np.uint64(20)) if self.prob_bits == 12 else (
                (STATE_LOW >> pbits) << shift16
            ) * f
            renorm = active & (x >= x_max)
            if renorm.any():
                emit_stream.append(np.flatnonzero(renorm).astype(np.int64))
                emit_word.append((x[renorm] & np.uint64(0xFFFF)).astype(np.uint16))
                x[renorm] >>= shift16
            q = x // f
            r = x - q * f
            x_new = (q << pbits) + r + cum[syms]
            x = np.where(active, x_new, x)

        if emit_stream:
            streams_cat = np.concatenate(emit_stream)
            words_cat = np.concatenate(emit_word)
        else:
            streams_cat = np.zeros(0, dtype=np.int64)
            words_cat = np.zeros(0, dtype=np.uint16)
        # Per-stream payload in decode (reverse-of-emission) order.
        order = np.argsort(streams_cat, kind="stable")
        counts = np.bincount(streams_cat, minlength=k)
        sorted_words = words_cat[order]
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        payload_words = np.empty_like(sorted_words)
        for j in range(k):
            seg = sorted_words[offsets[j]:offsets[j + 1]]
            payload_words[offsets[j]:offsets[j + 1]] = seg[::-1]

        header_nbytes = 512 + 8 * k + 16  # freq table + per-stream state/offset
        return EncodedStream(
            codec=self.name,
            payload=payload_words.view(np.uint8).copy(),
            n_symbols=n,
            header_nbytes=header_nbytes,
            meta={
                "num_streams": k,
                "freqs": freqs,
                "states": x.copy(),
                "word_offsets": offsets,
                "prob_bits": self.prob_bits,
            },
        )

    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Decode interleaved rANS streams; bit-exact inverse of encode."""
        n = stream.n_symbols
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        k = stream.meta["num_streams"]
        prob_bits = stream.meta["prob_bits"]
        prob_scale = 1 << prob_bits
        freqs = stream.meta["freqs"].astype(np.uint64)
        cum = np.concatenate([[0], np.cumsum(freqs)])[:256].astype(np.uint64)
        slot_to_sym = np.repeat(
            np.arange(256, dtype=np.uint8), freqs.astype(np.int64)
        )
        if slot_to_sym.size != prob_scale:
            raise CodecError("corrupt rANS frequency table")

        words = stream.payload.view(np.uint16)
        offsets = stream.meta["word_offsets"]
        cursor = offsets[:-1].astype(np.int64).copy()
        limit = offsets[1:].astype(np.int64)
        x = stream.meta["states"].astype(np.uint64).copy()

        steps = ceil_div(n, k)
        out = np.zeros((k, steps), dtype=np.uint8)
        mask = np.uint64(prob_scale - 1)
        pbits = np.uint64(prob_bits)
        shift16 = np.uint64(16)
        for step in range(steps):
            active = (np.arange(k) + step * k) < n
            slot = x & mask
            syms = slot_to_sym[slot.astype(np.int64)]
            f = freqs[syms]
            x_new = f * (x >> pbits) + slot - cum[syms]
            x = np.where(active, x_new, x)
            out[active, step] = syms[active]
            renorm = active & (x < STATE_LOW)
            if renorm.any():
                idx = np.flatnonzero(renorm)
                take = cursor[idx]
                if (take >= limit[idx]).any():
                    raise CodecError("corrupt rANS stream: payload underrun")
                x[idx] = (x[idx] << shift16) | words[take].astype(np.uint64)
                cursor[idx] += 1
        return out.T.reshape(-1)[:n].copy()


register_byte_codec(RansCodec())
