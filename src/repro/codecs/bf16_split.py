"""Lossless BF16 tensor codecs built from byte codecs (the baselines).

All three baseline systems exploit the same redundancy the paper identifies
(§3.1): the 8-bit exponent plane of BF16 weights is low-entropy while sign and
mantissa are incompressible.  Each baseline therefore:

1. splits every BF16 word into its exponent byte and a packed sign+mantissa
   byte;
2. entropy-codes the exponent plane (Huffman for DFloat11, rANS for DietGPU
   and nvCOMP);
3. stores the sign+mantissa plane raw.

nvCOMP lacks native BF16 support, so — as in the paper's methodology — its
pipeline needs an extra reassembly pass that recombines the decoded exponent
plane with the raw plane (``reassembly_passes = 1``); this costs memory
traffic in the performance model, not correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bf16 import exponent_field, pack_sign_mantissa
from ..errors import CodecError, UnknownSpecError
from .base import EncodedStream, get_byte_codec


@dataclass
class CompressedBF16:
    """A losslessly compressed BF16 tensor (baseline format)."""

    codec: str
    shape: tuple[int, ...]
    exponent_stream: EncodedStream
    sign_mantissa: np.ndarray
    header_nbytes: int = 32

    @property
    def n_elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n

    @property
    def original_nbytes(self) -> int:
        """Size of the uncompressed BF16 tensor."""
        return 2 * self.n_elements

    @property
    def compressed_nbytes(self) -> int:
        """Total compressed footprint including container metadata."""
        return (
            self.exponent_stream.compressed_nbytes
            + int(self.sign_mantissa.nbytes)
            + self.header_nbytes
        )

    @property
    def ratio(self) -> float:
        """Compression ratio = original bytes / compressed bytes."""
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bits_per_element(self) -> float:
        """Average storage cost per BF16 element in bits."""
        return 8.0 * self.compressed_nbytes / self.n_elements


@dataclass
class BF16LosslessCodec:
    """Split-plane BF16 codec parameterised by the exponent byte codec.

    Attributes
    ----------
    name:
        Baseline system name (``dfloat11`` / ``dietgpu`` / ``nvcomp``).
    byte_codec:
        Registered byte codec used on the exponent plane.
    reassembly_passes:
        Extra full-tensor passes the decompression pipeline performs after
        entropy decode (nvCOMP's BF16 reconstruction kernel).
    """

    name: str
    byte_codec: str
    reassembly_passes: int = 0
    extra: dict = field(default_factory=dict)

    def compress(self, weights: np.ndarray) -> CompressedBF16:
        """Compress a BF16 (uint16) tensor losslessly."""
        weights = np.asarray(weights)
        if weights.dtype != np.uint16:
            raise CodecError("weights must be BF16 bit patterns (uint16)")
        flat = np.ascontiguousarray(weights).ravel()
        exponents = exponent_field(flat)
        stream = get_byte_codec(self.byte_codec).encode(exponents)
        return CompressedBF16(
            codec=self.name,
            shape=tuple(weights.shape),
            exponent_stream=stream,
            sign_mantissa=pack_sign_mantissa(flat),
        )

    def decompress(self, blob: CompressedBF16) -> np.ndarray:
        """Recover the exact BF16 tensor."""
        if blob.codec != self.name:
            raise CodecError(
                f"blob was produced by {blob.codec!r}, not {self.name!r}"
            )
        exponents = get_byte_codec(self.byte_codec).decode(blob.exponent_stream)
        sm = blob.sign_mantissa
        if exponents.size != sm.size:
            raise CodecError("plane size mismatch in compressed blob")
        word = (
            ((sm.astype(np.uint16) & np.uint16(0x80)) << np.uint16(8))
            | (exponents.astype(np.uint16) << np.uint16(7))
            | (sm.astype(np.uint16) & np.uint16(0x7F))
        )
        return word.reshape(blob.shape)


#: The baseline systems benchmarked by the paper (§6).
BF16_CODECS: dict[str, BF16LosslessCodec] = {
    "dfloat11": BF16LosslessCodec(name="dfloat11", byte_codec="huffman"),
    "dietgpu": BF16LosslessCodec(name="dietgpu", byte_codec="rans"),
    "nvcomp": BF16LosslessCodec(
        name="nvcomp", byte_codec="rans", reassembly_passes=1
    ),
}


def get_bf16_codec(name: str) -> BF16LosslessCodec:
    """Look up a baseline BF16 codec by system name."""
    try:
        return BF16_CODECS[name]
    except KeyError:
        raise UnknownSpecError("bf16 codec", name, list(BF16_CODECS)) from None
