"""repro — a reproduction of ZipServ (ASPLOS'26).

*ZipServ: Fast and Memory-Efficient LLM Inference with Hardware-Aware
Lossless Compression*, Fan et al.

The package implements the paper's two co-designed contributions and every
substrate they depend on:

* :mod:`repro.tcatbe` — the TCA-TBE lossless format (Algorithms 1 and 2);
* :mod:`repro.kernels` — bit-exact fused execution plus analytical GPU cost
  models for ZipGEMM, cuBLAS, the standalone decompressors and attention;
* :mod:`repro.codecs` — working Huffman/rANS baseline codecs (DFloat11,
  DietGPU, nvCOMP analogues);
* :mod:`repro.gpu` — device specs, roofline, SIMT divergence, bank conflicts,
  tensor-core fragment layouts;
* :mod:`repro.serving` — model zoo, paged KV cache, scheduler, tensor
  parallelism and the end-to-end inference engine;
* :mod:`repro.experiments` — one driver per paper figure (see DESIGN.md).

Quick start::

    from repro import ZipServ

    zs = ZipServ(model="llama3.1-8b", gpu="rtx4090")
    print(zs.compression_report().summary())
    print(zs.generate(batch_size=32, prompt_len=128, output_len=256))
"""

from .core import ZipServ, ZipServConfig, compress_weights, decompress_weights
from .errors import (
    CapacityError,
    CodecError,
    ConfigError,
    FormatError,
    ReproError,
    SchedulingError,
    ShapeError,
    UnknownSpecError,
)
from .gpu.specs import GPUS, get_gpu
from .serving.backends import BACKENDS, get_backend
from .serving.models import MODELS, get_model

__version__ = "1.0.0"

__all__ = [
    "ZipServ",
    "ZipServConfig",
    "compress_weights",
    "decompress_weights",
    "GPUS",
    "get_gpu",
    "MODELS",
    "get_model",
    "BACKENDS",
    "get_backend",
    "ReproError",
    "FormatError",
    "CodecError",
    "ShapeError",
    "ConfigError",
    "UnknownSpecError",
    "CapacityError",
    "SchedulingError",
    "__version__",
]
