"""Figure 12: micro-level analysis of the fused kernel (NCU-style).

Three panels, all *derived* from the executed implementation rather than
asserted: (a) the decode instruction mix, from the warp-level Algorithm-2
reference; (b) ALU / tensor-core busy fractions and the DRAM-read reduction,
from the ZipGEMM cost model; (c) shared-memory bank conflicts, from
replaying the access patterns of TCA-TBE decoding vs a DietGPU-style LUT
gather against the 32-bank model.
"""

from __future__ import annotations

from ..bf16 import gaussian_bf16_matrix
from ..gpu.memory import (
    lut_gather_addresses,
    simulate_bank_conflicts,
    tcatbe_decode_addresses,
)
from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.zipgemm import zipgemm
from ..tcatbe import compress
from ..tcatbe.layout import FRAG_ELEMS
from ..tcatbe.warp_ref import average_instruction_mix
from .common import ExperimentResult, experiment

#: The paper's profiled shape.
M, K, N = 28672, 4096, 32


@experiment("fig12")
def run(quick: bool = False) -> ExperimentResult:
    """Instruction mix, utilisation and bank conflicts for the NCU shape."""
    gpu = get_gpu("rtx4090")

    # Panel (a): instruction mix measured from the warp reference, scaled to
    # the full workload.
    sample = compress(gaussian_bf16_matrix(64, 64, sigma=0.02, seed=7))
    tiles_in_workload = (M * K) // FRAG_ELEMS
    mix = average_instruction_mix(sample, max_tiles=16 if quick else 64)
    per_tile = {op: c / min(64, sample.n_tiles) for op, c in mix.counts.items()}
    rows = [
        (op, per_tile[op], per_tile[op] * tiles_in_workload)
        for op in sorted(per_tile, key=lambda o: -per_tile[o])
    ]

    # Panel (b): utilisation and traffic from the kernel models.
    zg = zipgemm(gpu, M, K, N)
    cb = cublas_gemm(gpu, M, K, N)
    dram_read_reduction = 1.0 - zg.traffic.dram_read / cb.traffic.dram_read
    # Fraction of mma issue capacity the fused kernel preserves while decode
    # instructions share the issue stage (the paper's "TC utilisation
    # maintained at 71.6% of the cuBLAS baseline").
    from ..analysis.calibration import ISSUE_CONTENTION

    tc_util_vs_cublas = zg.details["tc_time_s"] / (
        zg.details["tc_time_s"]
        + ISSUE_CONTENTION * zg.details["alu_time_s"]
    )

    # Panel (c): bank conflicts over an equal number of warp requests.
    n_tiles_sim = 64 if quick else 256
    zip_report = simulate_bank_conflicts(tcatbe_decode_addresses(n_tiles_sim))
    # A LUT decoder issues roughly one gather per element.
    n_gathers = n_tiles_sim * FRAG_ELEMS // 32
    lut_report = simulate_bank_conflicts(
        lut_gather_addresses(n_gathers, table_bytes=4096)
    )
    # Scale conflict counts to the full workload.
    scale = tiles_in_workload / n_tiles_sim
    zip_conflicts = zip_report.n_conflict_cycles * scale
    lut_conflicts = lut_report.n_conflict_cycles * scale

    return ExperimentResult(
        experiment="fig12",
        title=f"Micro-level analysis, M={M} K={K} N={N} on RTX4090",
        columns=["instruction", "per_tile", "per_workload"],
        rows=rows,
        summary={
            "dram_read_reduction": dram_read_reduction,
            "alu_busy_frac": zg.details["alu_busy_frac"],
            "tc_util_vs_cublas": tc_util_vs_cublas,
            "zip_bank_conflicts": zip_conflicts,
            "lut_bank_conflicts": lut_conflicts,
            "zip_conflict_rate": zip_report.conflict_rate,
            "lut_conflict_rate": lut_report.conflict_rate,
        },
        paper={
            "dram_read_reduction": 0.293,
            "alu_busy_frac": 0.66,
            "tc_util_vs_cublas": 0.716,
            "zip_bank_conflicts": 4.7e3,
            "lut_bank_conflicts": 2e6,
        },
        notes=(
            "Instruction counts come from executing Algorithm 2 lane by"
            " lane; conflicts from replaying access patterns against the"
            " 32-bank shared-memory model."
        ),
    )
