"""Extension experiment: disaggregated prefill/decode with KV transfer.

The paper's end-to-end serving results (fig16/fig18) colocate prefill and
decode; production stacks increasingly split them into separate pools and
ship each request's KV cache across an interconnect.  On that path
lossless KV compression pays twice — in HBM *and* on the wire (the
SplitZip observation).  This experiment replays the multi-tenant trace
through three topologies on the same hardware:

1. **colocated** — today's chunked-prefill :class:`ServingCore`;
2. **disaggregated / raw** — prefill pool → bandwidth-constrained link →
   decode pool, shipping raw BF16 KV;
3. **disaggregated / kvcomp** — the same link, shipping
   Vector-TBE-compressed KV at the analytic activation ratio.

The headline is the SplitZip effect: compressed transfer cuts wire bytes
by the KV ratio and, on a saturated link, turns that into lower transfer
queueing, lower tail latency and a shorter makespan.

A second section sweeps **decode→prefill backpressure** (the event-kernel
scenario the sequential PR 2 pipeline could not express): on a
deliberately small decode pool, the feedback-free pipeline drives decode
KV occupancy to 1.0 and pays a preemption storm, while a
``BackpressureConfig(min_free_kv_frac=w)`` watermark stalls prefill
admission early enough that peak occupancy stays bounded near ``1 - w``
(plus in-flight decode growth) with zero preemptions.
"""

from __future__ import annotations

from dataclasses import replace

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.disagg import DisaggregatedCore
from ..serving.engine import InferenceEngine
from ..serving.metrics import SLOTarget
from ..serving.models import get_model
from ..serving.serve import BackpressureConfig, DisaggConfig, ServingConfig
from ..serving.trace import DEFAULT_TENANTS, multi_tenant_trace
from .common import ExperimentResult, experiment

#: Deliberately starved interconnect (~1 Gb/s effective) so the transfer
#: stage, not the decode pool, is the bottleneck the codec relieves.
LINK_GB_PER_S = 0.125
SLO = SLOTarget(ttft_s=1.0, tpot_s=0.1)
SEED = 7
#: Backpressure section: shrink the decode pool to this fraction of the
#: engine's KV budget so admission pressure is real, and sweep these
#: free-KV watermarks against the feedback-free baseline.
BP_KV_SCALE = 0.04
BP_WATERMARKS = (0.1, 0.3, 0.5)
#: Decode-side token growth keeps pushing occupancy a little past the
#: admission-time bound; the sweep's boundedness claim carries this
#: margin (preemption, not the watermark, caps the baseline at 1.0).
BP_GROWTH_MARGIN = 0.12


def _scenarios() -> list[tuple[str, ServingConfig]]:
    base = dict(policy="fcfs", prefill_mode="chunked", slo=SLO)
    return [
        ("colocated", ServingConfig(**base)),
        ("disagg/raw", ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S, transfer_codec="none"),
            **base,
        )),
        ("disagg/kvcomp", ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S,
                                transfer_codec="kvcomp"),
            **base,
        )),
    ]


def _trace(quick: bool):
    if not quick:
        return multi_tenant_trace(seed=SEED)
    tenants = {
        name: replace(spec, n_requests=max(2, spec.n_requests // 4))
        for name, spec in DEFAULT_TENANTS.items()
    }
    return multi_tenant_trace(tenants, seed=SEED)


def _backpressure_runs(
    engine: InferenceEngine, quick: bool
) -> list[tuple[str, float | None, object]]:
    """The watermark sweep on a deliberately small decode pool."""
    kv_bytes = engine.plan.kv_bytes * BP_KV_SCALE
    runs: list[tuple[str, float | None, object]] = []
    for watermark in (None,) + BP_WATERMARKS:
        backpressure = (
            None if watermark is None
            else BackpressureConfig(min_free_kv_frac=watermark)
        )
        config = ServingConfig(
            mode="disaggregated", slo=SLO,
            disagg=DisaggConfig(backpressure=backpressure),
        )
        core = DisaggregatedCore(
            engine.costs, engine.kv_spec, kv_bytes, config
        )
        name = (
            "bp/off" if watermark is None else f"bp/wm={watermark}"
        )
        runs.append((name, watermark, core.serve(_trace(quick))))
    return runs


@experiment("ext_disagg")
def run(quick: bool = False) -> ExperimentResult:
    """Colocated vs disaggregated vs compressed-KV, plus backpressure."""
    engine = InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"),
        get_backend("zipserv"),
    )
    n = len(_trace(quick))

    rows = []
    results = {}
    for name, config in _scenarios():
        result = engine.serve(_trace(quick), config=config)
        results[name] = result
        m = result.metrics
        xfer = result.transfer
        rows.append((
            name, result.makespan_s, result.throughput_tok_s,
            m.ttft.p95_s, m.tpot.p95_s, m.latency.p95_s, m.goodput_rps,
            xfer.time.p95_s * 1e3 if xfer else 0.0,
            xfer.queue.p95_s * 1e3 if xfer else 0.0,
            result.pool("prefill").utilization if result.pools else 1.0,
            result.pool("decode").utilization if result.pools else 1.0,
            result.pool("decode").peak_kv_frac if result.pools else 0.0,
            result.pool("prefill").stall_s if result.pools else 0.0,
            result.n_preemptions,
        ))

    bp_runs = _backpressure_runs(engine, quick)
    for name, _, result in bp_runs:
        m = result.metrics
        xfer = result.transfer
        rows.append((
            name, result.makespan_s, result.throughput_tok_s,
            m.ttft.p95_s, m.tpot.p95_s, m.latency.p95_s, m.goodput_rps,
            xfer.time.p95_s * 1e3, xfer.queue.p95_s * 1e3,
            result.pool("prefill").utilization,
            result.pool("decode").utilization,
            result.pool("decode").peak_kv_frac,
            result.pool("prefill").stall_s,
            result.n_preemptions,
        ))

    raw = results["disagg/raw"]
    comp = results["disagg/kvcomp"]
    bp_base = bp_runs[0][2]
    gated = bp_runs[1:]
    peaks = [r.pool("decode").peak_kv_frac for _, _, r in gated]
    bounded = all(
        r.pool("decode").peak_kv_frac <= (1.0 - wm) + BP_GROWTH_MARGIN
        for _, wm, r in gated
    )
    # Tighter watermarks must not raise the occupancy ceiling.
    monotone = all(a >= b for a, b in zip(peaks, peaks[1:]))
    return ExperimentResult(
        experiment="ext_disagg",
        title=(
            f"Disaggregated serving, {n}-request multi-tenant trace,"
            f" {LINK_GB_PER_S} GB/s KV link; backpressure sweep at"
            f" {BP_KV_SCALE:.0%} decode KV"
        ),
        columns=["scenario", "makespan_s", "tput_tok_s", "ttft_p95_s",
                 "tpot_p95_s", "latency_p95_s", "goodput_rps",
                 "xfer_p95_ms", "queue_p95_ms", "prefill_util",
                 "decode_util", "decode_peak_kv", "prefill_stall_s",
                 "preemptions"],
        rows=rows,
        summary={
            "wire_bytes_cut": 1.0 - comp.transfer.total_bytes
            / raw.transfer.total_bytes,
            "transfer_ratio": comp.transfer.compression_ratio,
            "makespan_cut": 1.0 - comp.makespan_s / raw.makespan_s,
            "queue_p95_cut": 1.0 - comp.transfer.queue.p95_s
            / max(raw.transfer.queue.p95_s, 1e-12),
            "all_requests_served": float(all(
                r.n_requests == n for r in results.values()
            ) and all(r.n_requests == n for _, _, r in bp_runs)),
            "bp_baseline_peak_kv": bp_base.pool("decode").peak_kv_frac,
            "bp_tightest_peak_kv": peaks[-1],
            "bp_peaks_bounded_by_watermark": float(bounded),
            "bp_peaks_monotone": float(monotone),
            "bp_stall_engaged": float(all(
                r.pool("prefill").stall_s > 0.0
                for _, _, r in gated[-1:]
            )),
        },
        paper={},
        notes=(
            "No paper counterpart (fig16/fig18 colocate the phases); the"
            " expected shape is SplitZip's: wire bytes drop by the KV"
            " compression ratio, and on a link-bound configuration that"
            " shows up as lower transfer queueing delay, lower p95"
            " latency and a shorter makespan.  TTFT is pool-local"
            " (prefill emits the first token), so disaggregation shields"
            " it from the link entirely.  The backpressure sweep runs the"
            " same trace against a decode pool squeezed to"
            f" {BP_KV_SCALE:.0%} of the engine's KV: the feedback-free"
            " baseline saturates decode KV and preempts, while each"
            " watermark bounds peak occupancy near (1 - watermark) plus"
            " in-flight decode growth, trading stall time for stability."
        ),
    )
