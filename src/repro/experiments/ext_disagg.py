"""Extension experiment: disaggregated prefill/decode with KV transfer.

The paper's end-to-end serving results (fig16/fig18) colocate prefill and
decode; production stacks increasingly split them into separate pools and
ship each request's KV cache across an interconnect.  On that path
lossless KV compression pays twice — in HBM *and* on the wire (the
SplitZip observation).  This experiment replays the multi-tenant trace
through three topologies on the same hardware:

1. **colocated** — today's chunked-prefill :class:`ServingCore`;
2. **disaggregated / raw** — prefill pool → bandwidth-constrained link →
   decode pool, shipping raw BF16 KV;
3. **disaggregated / kvcomp** — the same link, shipping
   Vector-TBE-compressed KV at the analytic activation ratio.

The headline is the SplitZip effect: compressed transfer cuts wire bytes
by the KV ratio and, on a saturated link, turns that into lower transfer
queueing, lower tail latency and a shorter makespan.
"""

from __future__ import annotations

from dataclasses import replace

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.metrics import SLOTarget
from ..serving.models import get_model
from ..serving.serve import DisaggConfig, ServingConfig
from ..serving.trace import DEFAULT_TENANTS, multi_tenant_trace
from .common import ExperimentResult, experiment

#: Deliberately starved interconnect (~1 Gb/s effective) so the transfer
#: stage, not the decode pool, is the bottleneck the codec relieves.
LINK_GB_PER_S = 0.125
SLO = SLOTarget(ttft_s=1.0, tpot_s=0.1)
SEED = 7


def _scenarios() -> list[tuple[str, ServingConfig]]:
    base = dict(policy="fcfs", prefill_mode="chunked", slo=SLO)
    return [
        ("colocated", ServingConfig(**base)),
        ("disagg/raw", ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S, transfer_codec="none"),
            **base,
        )),
        ("disagg/kvcomp", ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S,
                                transfer_codec="kvcomp"),
            **base,
        )),
    ]


def _trace(quick: bool):
    if not quick:
        return multi_tenant_trace(seed=SEED)
    tenants = {
        name: replace(spec, n_requests=max(2, spec.n_requests // 4))
        for name, spec in DEFAULT_TENANTS.items()
    }
    return multi_tenant_trace(tenants, seed=SEED)


@experiment("ext_disagg")
def run(quick: bool = False) -> ExperimentResult:
    """Colocated vs disaggregated vs disaggregated+compressed-KV."""
    engine = InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"),
        get_backend("zipserv"),
    )
    n = len(_trace(quick))

    rows = []
    results = {}
    for name, config in _scenarios():
        result = engine.serve(_trace(quick), config=config)
        results[name] = result
        m = result.metrics
        xfer = result.transfer
        rows.append((
            name, result.makespan_s, result.throughput_tok_s,
            m.ttft.p95_s, m.tpot.p95_s, m.latency.p95_s, m.goodput_rps,
            xfer.time.p95_s * 1e3 if xfer else 0.0,
            xfer.queue.p95_s * 1e3 if xfer else 0.0,
            result.pool("prefill").utilization if result.pools else 1.0,
            result.pool("decode").utilization if result.pools else 1.0,
        ))

    raw = results["disagg/raw"]
    comp = results["disagg/kvcomp"]
    return ExperimentResult(
        experiment="ext_disagg",
        title=(
            f"Disaggregated serving, {n}-request multi-tenant trace,"
            f" {LINK_GB_PER_S} GB/s KV link"
        ),
        columns=["scenario", "makespan_s", "tput_tok_s", "ttft_p95_s",
                 "tpot_p95_s", "latency_p95_s", "goodput_rps",
                 "xfer_p95_ms", "queue_p95_ms", "prefill_util",
                 "decode_util"],
        rows=rows,
        summary={
            "wire_bytes_cut": 1.0 - comp.transfer.total_bytes
            / raw.transfer.total_bytes,
            "transfer_ratio": comp.transfer.compression_ratio,
            "makespan_cut": 1.0 - comp.makespan_s / raw.makespan_s,
            "queue_p95_cut": 1.0 - comp.transfer.queue.p95_s
            / max(raw.transfer.queue.p95_s, 1e-12),
            "all_requests_served": float(all(
                r.n_requests == n for r in results.values()
            )),
        },
        paper={},
        notes=(
            "No paper counterpart (fig16/fig18 colocate the phases); the"
            " expected shape is SplitZip's: wire bytes drop by the KV"
            " compression ratio, and on a link-bound configuration that"
            " shows up as lower transfer queueing delay, lower p95"
            " latency and a shorter makespan.  TTFT is pool-local"
            " (prefill emits the first token), so disaggregation shields"
            " it from the link entirely."
        ),
    )
