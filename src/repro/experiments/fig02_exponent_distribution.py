"""Figure 2 / §3.1: exponent skew, entropy and top-K contiguity.

Reproduces the compressibility study: exponent histograms of representative
layers (sampled from the Appendix-A Gaussian model), top-3 / top-7 coverage,
exponent entropy, the implied lossless bound, and a contiguity survey across
every linear layer of the model zoo.
"""

from __future__ import annotations

from ..bf16 import gaussian_bf16_matrix
from ..codecs.stats import top_k_coverage
from ..serving.models import MODELS, get_model
from ..serving.weights import layer_sigma
from ..tcatbe.analysis import (
    exponent_entropy,
    exponent_histogram,
    select_window,
    theoretical_ratio,
    top_k_contiguous,
)
from .common import ExperimentResult, experiment

HIST_MODELS = ("llama3.1-8b", "mistral-24b", "qwen2.5-32b")

#: Sampled elements per surveyed layer (enough for stable histograms).
SAMPLE_ROWS, SAMPLE_COLS = 256, 1024


def _sample_layer(m: int, k: int, kind: str, seed: int):
    sigma = layer_sigma(kind, m, k)
    return gaussian_bf16_matrix(SAMPLE_ROWS, SAMPLE_COLS, sigma, seed=seed)


@experiment("fig02")
def run(quick: bool = False) -> ExperimentResult:
    """Exponent statistics per model plus a zoo-wide contiguity survey."""
    rows = []
    entropies = []
    top7s = []
    for idx, model_name in enumerate(HIST_MODELS):
        model = get_model(model_name)
        layer = model.linear_layers()[2]  # GateUp, the largest projection
        weights = _sample_layer(layer.m, layer.k, layer.kind, seed=idx)
        hist = exponent_histogram(weights)
        entropy = exponent_entropy(hist)
        top3 = top_k_coverage(hist, 3)
        top7 = top_k_coverage(hist, 7)
        window = select_window(hist)
        entropies.append(entropy)
        top7s.append(top7)
        rows.append((
            model_name, top3, top7, window.coverage, entropy,
            theoretical_ratio(entropy),
        ))

    # Contiguity survey across every linear layer of every model.
    survey_models = list(MODELS)[:3] if quick else list(MODELS)
    n_layers = 0
    n_contiguous = 0
    window_covers = []
    seed = 100
    for model_name in survey_models:
        model = get_model(model_name)
        for layer in model.linear_layers():
            seed += 1
            weights = _sample_layer(layer.m, layer.k, layer.kind, seed=seed)
            hist = exponent_histogram(weights)
            n_layers += 1
            n_contiguous += bool(top_k_contiguous(hist, 7))
            window_covers.append(select_window(hist).coverage)

    return ExperimentResult(
        experiment="fig02",
        title="Exponent distribution statistics (sampled Gaussian layers)",
        columns=["model", "top3_cov", "top7_cov", "window7_cov",
                 "entropy_bits", "ratio_bound"],
        rows=rows,
        summary={
            "min_top3_coverage": min(r[1] for r in rows),
            "min_top7_coverage": min(top7s),
            "entropy_bits_min": min(entropies),
            "entropy_bits_max": max(entropies),
            "contiguity_rate": n_contiguous / n_layers,
            "avg_window_coverage": sum(window_covers) / len(window_covers),
        },
        paper={
            "min_top3_coverage": 0.67,
            "min_top7_coverage": 0.95,
            "entropy_bits_min": 2.57,
            "entropy_bits_max": 2.74,
            "contiguity_rate": 0.996,
            "avg_window_coverage": 0.971,
        },
        notes=(
            f"Contiguity survey: {n_contiguous}/{n_layers} layers have a"
            " numerically contiguous top-7 exponent set."
        ),
    )
