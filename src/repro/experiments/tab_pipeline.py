"""Figures 8/10: the hierarchical software pipeline, simulated event by event.

The analytic ZipGEMM model assumes the two-level pipeline hides decode
latency (kernel time = max of the engine times, §4.3.3).  This experiment
*checks* that assumption with the discrete-event simulation: per GPU, one
CTA's K loop with measured decode costs, reporting overlap efficiency with
double buffering, the single-buffer ablation, and which engine bounds each
device — the §7 consumer-vs-datacenter story at CTA granularity.
"""

from __future__ import annotations

from ..analysis.calibration import decode_cycles_per_element
from ..gpu.pipeline_sim import simulate_zipgemm_pipeline, zipgemm_cta_pipeline
from ..gpu.specs import get_gpu
from .common import ExperimentResult, experiment

GPUS = ("rtx4090", "l40s", "rtx5090", "a100", "h800")
K_EXTENT = 4096
N_COLS = 32
COMPRESSED_FRACTION = 0.71


@experiment("tab_pipeline")
def run(quick: bool = False) -> ExperimentResult:
    """Simulate the CTA pipeline on every GPU; ablate the double buffer."""
    cycles = decode_cycles_per_element()
    rows = []
    effs = []
    bound_map = {}
    for gpu_name in (GPUS[:2] if quick else GPUS):
        gpu = get_gpu(gpu_name)
        report = zipgemm_cta_pipeline(
            gpu, K_EXTENT, N_COLS, COMPRESSED_FRACTION, cycles
        )
        busy = {
            "copy": report.copy_busy,
            "decode": report.decode_busy,
            "mma": report.mma_busy,
        }
        bound = max(busy, key=busy.get)
        bound_map[gpu_name] = bound
        effs.append(report.overlap_efficiency)
        rows.append((
            gpu_name, report.copy_busy, report.decode_busy,
            report.mma_busy, report.total_cycles,
            report.overlap_efficiency, bound,
        ))

    # Double-buffer ablation on a neutral synthetic workload.
    double = simulate_zipgemm_pipeline(64, 4, 100.0, 30.0, 40.0, n_buffers=2)
    single = simulate_zipgemm_pipeline(64, 4, 100.0, 30.0, 40.0, n_buffers=1)

    return ExperimentResult(
        experiment="tab_pipeline",
        title="CTA pipeline simulation (cycles per engine, one K loop)",
        columns=["gpu", "copy_busy", "decode_busy", "mma_busy",
                 "total", "overlap_eff", "bound_by"],
        rows=rows,
        summary={
            "min_overlap_efficiency": min(effs),
            "double_buffer_eff": double.overlap_efficiency,
            "single_buffer_eff": single.overlap_efficiency,
            "consumer_copy_bound": float(bound_map.get("rtx4090") == "copy"),
            "datacenter_decode_bound": float(
                bound_map.get("a100", "decode") == "decode"
            ),
        },
        paper={},
        notes=(
            "Validates the analytic model's max() assumption: >=96% overlap"
            " efficiency with double buffering; GDDR devices are copy"
            " (memory) bound while HBM devices become decode (ALU) bound —"
            " the §7 mechanism at CTA scale."
        ),
    )
