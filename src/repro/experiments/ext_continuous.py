"""Extension experiment: continuous-batching serving under an arrival trace.

The paper benchmarks fixed batches (§6.5); production serving is continuous
batching, where the KV capacity freed by weight compression becomes
*admissible concurrency*.  This experiment replays the same Poisson-ish
arrival trace through vLLM-style and ZipServ-style engines and compares
goodput and latency percentiles.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.models import get_model
from ..serving.scheduler import Request, SchedulerLimits
from .common import ExperimentResult, experiment

N_REQUESTS = 48
PROMPT, OUTPUT = 256, 256
ARRIVAL_GAP_S = 0.04


def _trace(n: int) -> list[Request]:
    return [
        Request(i, prompt_len=PROMPT, max_new_tokens=OUTPUT,
                arrival_s=i * ARRIVAL_GAP_S)
        for i in range(n)
    ]


@experiment("ext_continuous")
def run(quick: bool = False) -> ExperimentResult:
    """Replay one trace through both backends."""
    model = get_model("llama3.1-8b")
    gpu = get_gpu("rtx4090")
    n = 16 if quick else N_REQUESTS
    limits = SchedulerLimits(max_num_seqs=64, max_batched_tokens=8192)

    rows = []
    results = {}
    for backend_name in ("vllm", "zipserv"):
        engine = InferenceEngine(model, gpu, get_backend(backend_name))
        result = engine.run_continuous(_trace(n), limits)
        results[backend_name] = result
        rows.append((
            backend_name, result.makespan_s, result.throughput_tok_s,
            result.peak_running, result.latency_p50_s, result.latency_max_s,
        ))

    vllm = results["vllm"]
    zipserv = results["zipserv"]
    return ExperimentResult(
        experiment="ext_continuous",
        title=f"Continuous batching, {n} requests, {PROMPT}+{OUTPUT} tokens",
        columns=["backend", "makespan_s", "tput_tok_s", "peak_batch",
                 "p50_latency_s", "max_latency_s"],
        rows=rows,
        summary={
            "throughput_gain": (
                zipserv.throughput_tok_s / vllm.throughput_tok_s
            ),
            "p50_latency_cut": 1.0 - zipserv.latency_p50_s / vllm.latency_p50_s,
            "all_requests_served": float(
                vllm.n_requests == n and zipserv.n_requests == n
            ),
        },
        paper={},
        notes=(
            "No direct paper counterpart (the paper uses static batches);"
            " the expected shape is a throughput gain at least as large as"
            " the static-batch 1.22x, since compression also lifts the"
            " admission ceiling."
        ),
    )
