"""Extension experiment: continuous-batching serving under an arrival trace.

The paper benchmarks fixed batches (§6.5); production serving is continuous
batching, where the KV capacity freed by weight compression becomes
*admissible concurrency*.  This experiment replays the same arrival trace
through vLLM-style and ZipServ-style engines in three serving modes of the
event-driven core — seed-style group prefill, chunked prefill (FCFS), and
chunked prefill under the SJF policy — and compares throughput, TTFT/TPOT
percentiles and SLO goodput across all of them.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.metrics import SLOTarget
from ..serving.models import get_model
from ..serving.scheduler import Request, SchedulerLimits
from ..serving.serve import ServingConfig
from .common import ExperimentResult, experiment

N_REQUESTS = 48
PROMPT, OUTPUT = 256, 256
ARRIVAL_GAP_S = 0.04
SLO = SLOTarget(ttft_s=0.5, tpot_s=0.05)
LIMITS = SchedulerLimits(max_num_seqs=64, max_batched_tokens=8192)

#: (label, ServingConfig) — the serving modes under comparison.
MODES = (
    ("group/fcfs", ServingConfig(policy="fcfs", prefill_mode="group",
                                 limits=LIMITS, slo=SLO)),
    ("chunked/fcfs", ServingConfig(policy="fcfs", prefill_mode="chunked",
                                   limits=LIMITS, slo=SLO)),
    ("chunked/sjf", ServingConfig(policy="sjf", prefill_mode="chunked",
                                  limits=LIMITS, slo=SLO)),
)


def _trace(n: int) -> list[Request]:
    return [
        Request(i, prompt_len=PROMPT, max_new_tokens=OUTPUT,
                arrival_s=i * ARRIVAL_GAP_S)
        for i in range(n)
    ]


@experiment("ext_continuous")
def run(quick: bool = False) -> ExperimentResult:
    """Replay one trace through both backends and three serving modes."""
    model = get_model("llama3.1-8b")
    gpu = get_gpu("rtx4090")
    n = 16 if quick else N_REQUESTS

    rows = []
    results = {}
    for backend_name in ("vllm", "zipserv"):
        engine = InferenceEngine(model, gpu, get_backend(backend_name))
        for mode_name, config in MODES:
            result = engine.serve(_trace(n), config=config)
            results[(backend_name, mode_name)] = result
            m = result.metrics
            rows.append((
                backend_name, mode_name, result.makespan_s,
                result.throughput_tok_s, result.peak_running,
                m.ttft.p95_s, m.tpot.p95_s, m.latency.p99_s,
                m.goodput_rps,
            ))

    vllm = results[("vllm", "group/fcfs")]
    zipserv = results[("zipserv", "group/fcfs")]
    z_chunk = results[("zipserv", "chunked/fcfs")]
    return ExperimentResult(
        experiment="ext_continuous",
        title=f"Continuous batching, {n} requests, {PROMPT}+{OUTPUT} tokens",
        columns=["backend", "mode", "makespan_s", "tput_tok_s", "peak_batch",
                 "ttft_p95_s", "tpot_p95_s", "latency_p99_s", "goodput_rps"],
        rows=rows,
        summary={
            "throughput_gain": (
                zipserv.throughput_tok_s / vllm.throughput_tok_s
            ),
            "p50_latency_cut": 1.0 - zipserv.latency_p50_s / vllm.latency_p50_s,
            "all_requests_served": float(all(
                r.n_requests == n for r in results.values()
            )),
            "chunked_ttft_p95_cut": (
                1.0 - z_chunk.metrics.ttft.p95_s / zipserv.metrics.ttft.p95_s
            ),
            "goodput_gain_zipserv": (
                results[("zipserv", "chunked/fcfs")].metrics.goodput_rps
                / max(results[("vllm", "chunked/fcfs")].metrics.goodput_rps,
                      1e-9)
            ),
        },
        paper={},
        notes=(
            "No direct paper counterpart (the paper uses static batches);"
            " the expected shape is a throughput gain at least as large as"
            " the static-batch 1.22x, since compression also lifts the"
            " admission ceiling.  Chunked prefill should cut TTFT p95"
            " relative to group prefill by unblocking decode behind long"
            " prompts."
        ),
    )
