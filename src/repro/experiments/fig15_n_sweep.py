"""Figure 15 / §6.4 runtime overhead: ZipServ across N settings.

Small N (decode): the fused kernel wins outright — decompression hides
inside the memory-bound kernel.  Large N (prefill): the engine switches to
the decoupled path, whose decompression overhead amortises to ~4% / ~2% of
the GEMM at N = 8192 / 16384.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.pipeline import stage_aware_linear, zipserv_decoupled
from ..kernels.zipgemm import zipgemm
from ..serving.models import get_model
from ..serving.weights import estimate_layer_compression, layer_sigma
from .common import ExperimentResult, experiment

NS = (1, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
QUICK_NS = (8, 32, 128, 8192, 16384)


@experiment("fig15")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep N on the LLaMA-8B GateUp shape (RTX4090)."""
    gpu = get_gpu("rtx4090")
    model = get_model("llama3.1-8b")
    layer = next(l for l in model.linear_layers() if l.kind == "gateup_proj")
    comp = estimate_layer_compression(
        layer.m, layer.k, layer_sigma(layer.kind, layer.m, layer.k), "tcatbe"
    )
    rows = []
    summary = {}
    for n in (QUICK_NS if quick else NS):
        cb = cublas_gemm(gpu, layer.m, layer.k, n)
        fused = zipgemm(gpu, layer.m, layer.k, n, comp)
        auto = stage_aware_linear(gpu, layer.m, layer.k, n, comp)
        decoupled = zipserv_decoupled(gpu, layer.m, layer.k, n, comp)
        rows.append((
            n, cb.time_s * 1e3, fused.time_s * 1e3, decoupled.time_s * 1e3,
            auto.details["path"], cb.time_s / auto.time_s,
        ))
        if n in (8, 32, 64, 128):
            summary[f"fused_speedup_n{n}"] = cb.time_s / fused.time_s
        if n in (8192, 16384):
            summary[f"prefill_overhead_n{n}"] = (
                decoupled.time_s / cb.time_s - 1.0
            )
    return ExperimentResult(
        experiment="fig15",
        title="ZipServ vs cuBLAS across N (GateUp of LLaMA-8B, RTX4090)",
        columns=["N", "cublas_ms", "fused_ms", "decoupled_ms",
                 "stage_aware_path", "speedup_auto"],
        rows=rows,
        summary=summary,
        paper={
            "fused_speedup_n8": 1.3,
            "fused_speedup_n32": 1.3,
            "prefill_overhead_n8192": 0.04,
            "prefill_overhead_n16384": 0.02,
        },
        notes=(
            "Paper: fused incurs no overhead in the decode regime"
            " (N ~ 1-128); the decoupled prefill path costs ~4%/~2% of the"
            " GEMM at N = 8192/16384."
        ),
    )
