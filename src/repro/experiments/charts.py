"""Terminal line charts for experiment results.

The paper's evaluation figures are line/bar charts; the CLI can render the
same series as ASCII so `python -m repro.experiments fig16 --chart` gives a
visual read without a plotting stack (nothing beyond numpy is available
offline).
"""

from __future__ import annotations

import math

from ..errors import ConfigError

#: Plot glyphs per series, cycled.
_GLYPHS = "ox+*#@"


def ascii_line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = False,
) -> str:
    """Render (x, y) series as a fixed-size ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to (x, y) points.
    width, height:
        Plot area size in characters.
    log_x:
        Logarithmic x axis (the paper's N sweeps span 1..16384).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigError("chart needs at least one point")
    if width < 8 or height < 4:
        raise ConfigError("chart area too small")

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    xs = [tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:>10.4g} +" + "-" * width + "+")
    x_label_lo = 10 ** x_lo if log_x else x_lo
    x_label_hi = 10 ** x_hi if log_x else x_hi
    lines.append(
        " " * 12 + f"{x_label_lo:<.4g}" + " " * (width - 16)
        + f"{x_label_hi:>.4g}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def chart_for_result(result) -> str | None:
    """Best-effort chart for an :class:`ExperimentResult`.

    Recognises the two sweep-shaped experiments: ``fig15`` (time vs N) and
    ``fig16`` (throughput vs output length per backend); returns ``None``
    for tabular experiments.
    """
    if result.experiment == "fig15":
        series = {
            "cublas_ms": [(row[0], row[1]) for row in result.rows],
            "zipserv_ms": [
                (row[0], row[2] if row[4] == "fused" else row[3])
                for row in result.rows
            ],
        }
        return ascii_line_chart(
            series, title=result.title, log_x=True
        )
    if result.experiment == "fig16":
        series: dict[str, list[tuple[float, float]]] = {}
        for row in result.rows:
            model, tp, backend, batch, out_len, _lat, tput = row
            if model == result.rows[0][0] and batch == 32:
                series.setdefault(backend, []).append((out_len, tput))
        if not series:
            return None
        return ascii_line_chart(
            series,
            title=f"{result.rows[0][0]} throughput (tok/s) vs output length",
        )
    return None
