"""§6.5 memory accounting: model weight footprints, dense vs TCA-TBE.

Paper: LLaMA3.1-8B / Mistral-24B / LLaMA3.1-70B shrink from
14.96 / 43.92 / 131.56 GiB to 10.83 (72.4%) / 31.30 (71.3%) / 93.52 (71.1%).
"""

from __future__ import annotations

from ..serving.models import get_model
from ..serving.weights import model_compression_report
from .common import ExperimentResult, experiment

MODELS = ("llama3.1-8b", "mistral-24b", "llama3.1-70b")


@experiment("tab_memory")
def run(quick: bool = False) -> ExperimentResult:
    """Whole-model compression footprints (input embedding stays dense)."""
    rows = []
    summary = {}
    for model_name in MODELS:
        report = model_compression_report(get_model(model_name))
        rows.append((
            model_name, report["dense_gib"], report["compressed_gib"],
            report["fraction"],
        ))
        tag = model_name.replace("llama3.1-", "").replace("mistral-", "m")
        summary[f"fraction_{tag}"] = report["fraction"]
        summary[f"dense_gib_{tag}"] = report["dense_gib"]
    return ExperimentResult(
        experiment="tab_memory",
        title="Weight footprint: dense BF16 vs TCA-TBE (GiB)",
        columns=["model", "dense_gib", "compressed_gib", "fraction"],
        rows=rows,
        summary=summary,
        paper={
            "fraction_8b": 0.724,
            "fraction_m24b": 0.713,
            "fraction_70b": 0.711,
            "dense_gib_8b": 14.96,
            "dense_gib_m24b": 43.92,
            "dense_gib_70b": 131.56,
        },
    )
