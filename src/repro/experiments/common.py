"""Experiment infrastructure: result type, registry, table rendering.

Every paper figure/table has a driver module exposing ``run(quick=False)``
returning an :class:`ExperimentResult`; the registry powers the CLI
(``python -m repro.experiments``) and the benchmark suite.  Results carry
both the measured headline numbers and the paper's, so EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import UnknownSpecError


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[tuple]
    summary: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def table(self, max_rows: int | None = None) -> str:
        """Render rows as an aligned text table."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[_fmt(c) for c in row] for row in rows]
        widths = [
            max([len(h)] + [len(r[i]) for r in cells])
            for i, h in enumerate(self.columns)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for EXPERIMENTS.md regeneration)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "summary": dict(self.summary),
            "paper": dict(self.paper),
            "notes": self.notes,
        }

    def report(self) -> str:
        """Full human-readable report: title, table, headline comparison."""
        parts = [f"== {self.experiment}: {self.title} ==", self.table(40)]
        if self.summary:
            parts.append("")
            parts.append("headline (measured vs paper):")
            for key, value in self.summary.items():
                paper = self.paper.get(key)
                paper_txt = f"  paper={_fmt(paper)}" if paper is not None else ""
                parts.append(f"  {key} = {_fmt(value)}{paper_txt}")
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def experiment(name: str):
    """Decorator: register an experiment driver under ``name``."""

    def decorate(fn: Callable[..., ExperimentResult]):
        _REGISTRY[name] = fn
        return fn

    return decorate


def list_experiments() -> list[str]:
    """Registered experiment names, sorted."""
    return sorted(_REGISTRY)


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one registered experiment by name."""
    if name not in _REGISTRY:
        raise UnknownSpecError("experiment", name, list(_REGISTRY))
    return _REGISTRY[name](quick=quick)
