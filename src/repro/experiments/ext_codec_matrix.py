"""Extension experiment: the {weight, kv, wire} codec matrix.

The unified compression registry (:mod:`repro.compression`) makes every
compression slot of the serving stack independently configurable:
``ServingConfig(weight_codec=..., kv_codec=..., transfer_codec=...)``
accepts any registered codec in any combination, across both serving
topologies.  This experiment sweeps that space on one (model, gpu) pair
and a bandwidth-starved disaggregation link, demonstrating deployments
the old hardcoded plumbing could not express — most pointedly *raw
weights + compressed KV + compressed wire*, where compression earns its
keep twice (HBM capacity and interconnect bytes) without touching the
weight path at all.

Expected shape:

* weight compression (``tcatbe``) buys KV budget (smaller weights →
  more blocks) and faster memory-bound decode — the paper's core claim;
* KV residency compression (``kvcomp``) multiplies token capacity by the
  activation ratio and trims decode attention traffic;
* wire compression cuts transfer bytes by the codec ratio, which on a
  starved link shows up as queueing delay and makespan (SplitZip);
* the effects compose: the full stack beats every partial configuration
  on the disaggregated topology.
"""

from __future__ import annotations

from dataclasses import replace

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.models import get_model
from ..serving.serve import DisaggConfig, ServingConfig
from ..serving.trace import DEFAULT_TENANTS, multi_tenant_trace
from .common import ExperimentResult, experiment

#: Same deliberately starved interconnect as ``ext_disagg``.
LINK_GB_PER_S = 0.125
SEED = 7

#: (label, mode, weight_codec, kv_codec, transfer_codec)
COMBOS: list[tuple[str, str, str, str, str]] = [
    ("dense colocated", "colocated", "none", "none", "none"),
    ("weights only", "colocated", "tcatbe", "none", "none"),
    ("weights+kv", "colocated", "tcatbe", "kvcomp", "none"),
    ("raw disagg", "disaggregated", "none", "none", "none"),
    ("kv+wire, raw weights", "disaggregated", "none", "kvcomp", "kvcomp"),
    ("full stack", "disaggregated", "tcatbe", "kvcomp", "kvcomp"),
    ("entropy wire", "disaggregated", "tcatbe", "kvcomp", "dfloat11"),
    ("lossy+lossless", "disaggregated", "zipquant", "kvcomp", "kvcomp"),
]


def _config(mode: str, weight: str, kv: str, wire: str) -> ServingConfig:
    return ServingConfig(
        policy="fcfs",
        prefill_mode="chunked",
        mode=mode,
        disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S),
        weight_codec=weight,
        kv_codec=kv,
        transfer_codec=wire,
    )


def _trace(quick: bool):
    if not quick:
        return multi_tenant_trace(seed=SEED)
    tenants = {
        name: replace(spec, n_requests=max(2, spec.n_requests // 4))
        for name, spec in DEFAULT_TENANTS.items()
    }
    return multi_tenant_trace(tenants, seed=SEED)


@experiment("ext_codec_matrix")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep {weight, kv, wire} codec combinations across topologies."""
    engine = InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("rtx4090"),
        get_backend("zipserv"),
    )
    n = len(_trace(quick))

    rows = []
    results = {}
    for label, mode, weight, kv, wire in COMBOS:
        result = engine.serve(
            _trace(quick), config=_config(mode, weight, kv, wire)
        )
        results[label] = result
        xfer = result.transfer
        rows.append((
            label, mode, weight, kv, wire,
            result.makespan_s, result.throughput_tok_s,
            result.metrics.ttft.p95_s, result.metrics.latency.p95_s,
            xfer.compression_ratio if xfer else 1.0,
            xfer.queue.p95_s * 1e3 if xfer else 0.0,
        ))

    dense = results["dense colocated"]
    weights_only = results["weights only"]
    raw_disagg = results["raw disagg"]
    kv_wire = results["kv+wire, raw weights"]
    full = results["full stack"]
    return ExperimentResult(
        experiment="ext_codec_matrix",
        title=(
            f"{{weight, kv, wire}} codec matrix, {n}-request"
            f" multi-tenant trace, {LINK_GB_PER_S} GB/s KV link"
        ),
        columns=["scenario", "mode", "weight", "kv", "wire", "makespan_s",
                 "tput_tok_s", "ttft_p95_s", "latency_p95_s", "wire_ratio",
                 "queue_p95_ms"],
        rows=rows,
        summary={
            "weights_only_makespan_cut": 1.0
            - weights_only.makespan_s / dense.makespan_s,
            "kv_wire_vs_raw_disagg_cut": 1.0
            - kv_wire.makespan_s / raw_disagg.makespan_s,
            "full_vs_raw_disagg_cut": 1.0
            - full.makespan_s / raw_disagg.makespan_s,
            # Measured on the actual serving path (not re-derived from
            # the registry), so a broken transfer wiring fails the band.
            "wire_ratio_kvcomp": full.transfer.compression_ratio,
            "n_combos": float(len(COMBOS)),
            "all_requests_served": float(all(
                r.n_requests == n for r in results.values()
            )),
        },
        paper={},
        notes=(
            "No paper counterpart: the registry makes slots orthogonal,"
            " so this sweeps deployments the paper's fixed stack could"
            " not express (e.g. raw weights with compressed KV residency"
            " and wire).  Expected shape: each codec slot contributes an"
            " independent win — weight codecs buy KV budget and decode"
            " bandwidth, KV codecs buy token capacity, wire codecs buy"
            " link bytes — and the full stack composes them."
        ),
    )
