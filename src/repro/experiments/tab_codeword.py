"""§4.2 codeword-length trade-off: AverageBits(n) for n = 2, 3, 4.

The 3-bit codeword is the sweet spot: with measured top-(2^n - 1) window
coverage, expected storage is ~11.3 bits/element, against 12.4 (2-bit) and
12.1 (4-bit), and close to the 10.6-bit entropy bound.
"""

from __future__ import annotations

from ..bf16 import gaussian_bf16_matrix
from ..tcatbe.analysis import (
    average_bits,
    exponent_entropy,
    exponent_histogram,
    select_window,
)
from .common import ExperimentResult, experiment

CODEWORD_BITS = (2, 3, 4)


@experiment("tab_codeword")
def run(quick: bool = False) -> ExperimentResult:
    """Measure AverageBits(n) on a representative Gaussian layer."""
    size = 256 if quick else 1024
    weights = gaussian_bf16_matrix(size, 1024, sigma=0.015, seed=42)
    hist = exponent_histogram(weights)
    entropy = exponent_entropy(hist)
    rows = []
    bits_by_n = {}
    for n in CODEWORD_BITS:
        window = select_window(hist, size=(1 << n) - 1)
        bits = average_bits(n, window.coverage)
        bits_by_n[n] = bits
        rows.append((n, (1 << n) - 1, window.coverage, bits))
    return ExperimentResult(
        experiment="tab_codeword",
        title="Expected storage per element vs codeword length",
        columns=["codeword_bits", "window_size", "coverage", "avg_bits"],
        rows=rows,
        summary={
            "avg_bits_2": bits_by_n[2],
            "avg_bits_3": bits_by_n[3],
            "avg_bits_4": bits_by_n[4],
            "entropy_bound_bits": 8.0 + entropy,
        },
        paper={
            "avg_bits_2": 12.4,
            "avg_bits_3": 11.3,
            "avg_bits_4": 12.1,
            "entropy_bound_bits": 10.6,
        },
    )
