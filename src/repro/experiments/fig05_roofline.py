"""Figure 5 / §3.3: roofline analysis of the three execution models.

Evaluates equations (1)-(3) for M = K = 4096 at decode batch sizes and
reports the CI degradation of the decoupled pipeline (paper: ~62%) and the
CI gain of the fused design (paper: ~+50%) together with roofline-attainable
throughput on the RTX4090.
"""

from __future__ import annotations

from ..gpu.roofline import (
    attainable_tflops,
    ci_decoupled,
    ci_degradation,
    ci_gain,
    ci_gemm,
    ci_zipserv,
)
from ..gpu.specs import get_gpu
from .common import ExperimentResult, experiment

M = K = 4096
BATCHES = (8, 16, 32, 64)


@experiment("fig05")
def run(quick: bool = False) -> ExperimentResult:
    """Tabulate CI and attainable TFLOP/s per execution model."""
    gpu = get_gpu("rtx4090")
    rows = []
    degradations = []
    gains = []
    for n in BATCHES:
        base = ci_gemm(M, K, n)
        dec = ci_decoupled(M, K, n)
        fused = ci_zipserv(M, K, n)
        degradations.append(ci_degradation(M, K, n))
        gains.append(ci_gain(M, K, n))
        rows.append((
            n, base, dec, fused,
            attainable_tflops(gpu, base),
            attainable_tflops(gpu, dec),
            attainable_tflops(gpu, fused),
        ))
    return ExperimentResult(
        experiment="fig05",
        title="Roofline CI analysis, M=K=4096 on RTX4090",
        columns=["N", "ci_gemm", "ci_decoupled", "ci_zipserv",
                 "tflops_gemm", "tflops_decoupled", "tflops_zipserv"],
        rows=rows,
        summary={
            "ci_degradation_n8": degradations[0],
            "ci_degradation_n64": degradations[-1],
            "ci_gain_avg": sum(gains) / len(gains),
        },
        paper={
            "ci_degradation_n8": 0.623,
            "ci_degradation_n64": 0.617,
            "ci_gain_avg": 0.50,
        },
        notes=(
            "Paper: decoupled CI drops 62.3/62.2/62.0/61.7% for N=8/16/32/64;"
            " the fused kernel's CI is ~50% above the uncompressed GEMM."
        ),
    )
