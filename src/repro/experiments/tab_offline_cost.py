"""§6.4 offline compression cost.

The paper compresses LLaMA-3.1-8B in ~2.5 minutes on a 16-core Xeon.  We
measure our vectorised compressor's throughput on sampled layers and
extrapolate to the full 8B model (single Python process — the figure is the
one-time offline cost, not a kernel result).
"""

from __future__ import annotations

import time

from ..serving.models import get_model
from ..serving.weights import materialize_layer
from ..tcatbe import compress
from .common import ExperimentResult, experiment


@experiment("tab_offline_cost")
def run(quick: bool = False) -> ExperimentResult:
    """Time the compressor on sampled layers; extrapolate to the model."""
    shapes = [(1024, 1024)] if quick else [(1024, 1024), (2048, 4096)]
    rows = []
    throughputs = []
    for idx, (m, k) in enumerate(shapes):
        weights = materialize_layer(m, k, seed=idx)
        start = time.perf_counter()
        matrix = compress(weights)
        elapsed = time.perf_counter() - start
        params_per_s = m * k / elapsed
        throughputs.append(params_per_s)
        rows.append((f"{m}x{k}", elapsed, params_per_s / 1e6, matrix.ratio))

    model = get_model("llama3.1-8b")
    total_params = model.param_count() - model.embedding_params
    mean_tput = sum(throughputs) / len(throughputs)
    extrapolated_minutes = total_params / mean_tput / 60.0
    return ExperimentResult(
        experiment="tab_offline_cost",
        title="Offline compressor throughput (single process)",
        columns=["layer", "seconds", "Mparams_per_s", "ratio"],
        rows=rows,
        summary={
            "throughput_mparams_s": mean_tput / 1e6,
            "extrapolated_8b_minutes": extrapolated_minutes,
        },
        paper={"extrapolated_8b_minutes": 2.5},
        notes=(
            "Paper measured ~2.5 min on a 16-core CPU with the C++"
            " compressor; the number here is a one-time offline cost, not a"
            " serving-path quantity."
        ),
    )
