"""Figure 16: end-to-end latency and throughput across serving systems.

The paper's headline serving result: across LLaMA3.1-8B (1x RTX4090),
Mistral-24B (2x L40S) and LLaMA3.1-70B (4x L40S), batch sizes 8/32, output
lengths 128-2048, ZipServ averages 1.22x the throughput of vLLM, 3.18x of
Transformers and 8.52x of DFloat11, with -17.6% / -60.8% / -82.1% latency.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.metrics import SLOTarget
from ..serving.models import get_model
from ..serving.serve import ServingConfig
from ..serving.trace import LengthDistribution, poisson_trace
from ..utils import geometric_mean
from .common import ExperimentResult, experiment

#: (model, gpu, tensor_parallel) — the paper's three hardware configs.
CONFIGS = (
    ("llama3.1-8b", "rtx4090", 1),
    ("mistral-24b", "l40s", 2),
    ("llama3.1-70b", "l40s", 4),
)
BATCHES = (8, 32)
OUTPUT_LENS = (128, 256, 512, 1024, 2048)
QUICK_OUTPUT_LENS = (128, 1024)
PROMPT_LEN = 128
BACKENDS = ("zipserv", "vllm", "transformers", "dfloat11")


def _make_engine(backend_name: str, model, gpu, tp: int) -> InferenceEngine:
    backend = get_backend(backend_name)
    if backend.supports_tensor_parallel or tp == 1:
        return InferenceEngine(model, gpu, backend, tensor_parallel=tp)
    # DFloat11 shards big models with a device map: pipeline parallelism.
    return InferenceEngine(model, gpu, backend, pipeline_parallel=tp)


def _continuous_goodput(engines: dict, n_requests: int) -> dict[str, float]:
    """SLO goodput of zipserv vs vllm on a shared chat trace.

    Runs the event-driven core with chunked prefill — the serving mode in
    which freed KV memory turns into admissible concurrency — and reports
    requests/s inside a chat-interactive SLO.
    """
    config = ServingConfig(
        policy="fcfs",
        prefill_mode="chunked",
        slo=SLOTarget(ttft_s=0.5, tpot_s=0.05),
    )
    out = {}
    for name in ("zipserv", "vllm"):
        trace = poisson_trace(
            n_requests, rate_rps=12.0, seed=16,
            prompts=LengthDistribution(256, 0.6, 32, 1024),
            outputs=LengthDistribution(128, 0.8, 16, 512),
        )
        result = engines[name].serve(trace, config=config)
        out[f"goodput_rps_{name}"] = result.metrics.goodput_rps
    return out


@experiment("fig16")
def run(quick: bool = False) -> ExperimentResult:
    """Run the full serving sweep and aggregate speedups."""
    configs = CONFIGS[:1] if quick else CONFIGS
    out_lens = QUICK_OUTPUT_LENS if quick else OUTPUT_LENS
    batches = (32,) if quick else BATCHES

    rows = []
    goodput: dict[str, float] = {}
    speedups: dict[str, list[float]] = {b: [] for b in BACKENDS if b != "zipserv"}
    latency_cuts: dict[str, list[float]] = {
        b: [] for b in BACKENDS if b != "zipserv"
    }
    tput_8b_2048 = None
    for model_name, gpu_name, tp in configs:
        model = get_model(model_name)
        gpu = get_gpu(gpu_name)
        engines = {
            name: _make_engine(name, model, gpu, tp) for name in BACKENDS
        }
        if model_name == "llama3.1-8b":
            goodput = _continuous_goodput(engines, 12 if quick else 32)
        for batch in batches:
            for out_len in out_lens:
                results = {
                    name: engine.run(batch, PROMPT_LEN, out_len)
                    for name, engine in engines.items()
                }
                zip_result = results["zipserv"]
                if (model_name, batch, out_len) == ("llama3.1-8b", 32, 2048):
                    tput_8b_2048 = zip_result.throughput_tok_s
                for name, result in results.items():
                    rows.append((
                        model_name, tp, name, batch, out_len,
                        result.latency_s, result.throughput_tok_s,
                    ))
                    if name != "zipserv":
                        speedups[name].append(
                            zip_result.throughput_tok_s
                            / result.throughput_tok_s
                        )
                        latency_cuts[name].append(
                            1.0 - zip_result.latency_s / result.latency_s
                        )

    summary = {}
    for name in speedups:
        summary[f"throughput_vs_{name}"] = geometric_mean(speedups[name])
        summary[f"latency_cut_vs_{name}"] = (
            sum(latency_cuts[name]) / len(latency_cuts[name])
        )
    if tput_8b_2048 is not None:
        summary["tput_8b_bs32_len2048"] = tput_8b_2048
    summary.update(goodput)

    return ExperimentResult(
        experiment="fig16",
        title="End-to-end serving comparison (latency s, throughput tok/s)",
        columns=["model", "tp", "backend", "batch", "out_len",
                 "latency_s", "tput_tok_s"],
        rows=rows,
        summary=summary,
        paper={
            "throughput_vs_vllm": 1.22,
            "throughput_vs_transformers": 3.18,
            "throughput_vs_dfloat11": 8.52,
            "latency_cut_vs_vllm": 0.176,
            "latency_cut_vs_transformers": 0.608,
            "latency_cut_vs_dfloat11": 0.821,
            "tput_8b_bs32_len2048": 1105.0,
        },
    )
