"""Figure 11: kernel benchmarks across the model zoo (RTX4090 + L40S).

For every linear layer of every model family at batch sizes 8/16/32, compare
ZipGEMM and the three decoupled baselines against cuBLAS_TC.  The paper's
headline: ZipGEMM averages 1.31x (RTX4090) and 1.36x (L40S) with peaks of
1.71x / 2.21x, while the decoupled baselines average 0.17-0.34x; small layers
such as LLaMA-8B's O_proj can dip to ~0.79x (panel c).
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.pipeline import decoupled_pipeline
from ..kernels.zipgemm import zipgemm
from ..serving.models import MODELS, get_model
from ..serving.weights import estimate_layer_compression, layer_sigma
from ..utils import geometric_mean
from .common import ExperimentResult, experiment

GPUS = ("rtx4090", "l40s")
BATCHES = (8, 16, 32)
BASELINES = ("dietgpu", "nvcomp", "dfloat11")

QUICK_MODELS = ("llama3.1-8b", "mistral-24b")


@experiment("fig11")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep all (gpu, model, layer, batch) and aggregate speedups."""
    model_names = QUICK_MODELS if quick else tuple(MODELS)
    batches = (32,) if quick else BATCHES
    rows = []
    zip_speedups: dict[str, list[float]] = {g: [] for g in GPUS}
    base_speedups: dict[tuple[str, str], list[float]] = {
        (g, b): [] for g in GPUS for b in BASELINES
    }
    layer_speedups: dict[str, list[float]] = {}

    for gpu_name in GPUS:
        gpu = get_gpu(gpu_name)
        for model_name in model_names:
            model = get_model(model_name)
            for layer in model.linear_layers():
                sigma = layer_sigma(layer.kind, layer.m, layer.k)
                comp = estimate_layer_compression(
                    layer.m, layer.k, sigma, "tcatbe"
                )
                for n in batches:
                    ref = cublas_gemm(gpu, layer.m, layer.k, n)
                    zg = zipgemm(gpu, layer.m, layer.k, n, comp)
                    zip_speedup = zg.speedup_over(ref)
                    zip_speedups[gpu_name].append(zip_speedup)
                    layer_speedups.setdefault(
                        f"{gpu_name}/{layer.kind}", []
                    ).append(zip_speedup)
                    row = [gpu_name, model_name, layer.kind, n, zip_speedup]
                    for codec in BASELINES:
                        bcomp = estimate_layer_compression(
                            layer.m, layer.k, sigma, codec
                        )
                        pipe = decoupled_pipeline(
                            gpu, layer.m, layer.k, n, codec, bcomp
                        )
                        speedup = ref.time_s / pipe.time_s
                        base_speedups[(gpu_name, codec)].append(speedup)
                        row.append(speedup)
                    rows.append(tuple(row))

    summary = {}
    for gpu_name in GPUS:
        summary[f"zipgemm_avg_{gpu_name}"] = geometric_mean(
            zip_speedups[gpu_name]
        )
        summary[f"zipgemm_peak_{gpu_name}"] = max(zip_speedups[gpu_name])
        summary[f"zipgemm_min_{gpu_name}"] = min(zip_speedups[gpu_name])
        for codec in BASELINES:
            summary[f"{codec}_avg_{gpu_name}"] = geometric_mean(
                base_speedups[(gpu_name, codec)]
            )
    for key in ("l40s/gateup_proj", "l40s/down_proj", "l40s/o_proj"):
        if key in layer_speedups:
            summary[f"layer_{key.replace('/', '_')}"] = geometric_mean(
                layer_speedups[key]
            )

    return ExperimentResult(
        experiment="fig11",
        title="Kernel speedups vs cuBLAS_TC across models and layers",
        columns=["gpu", "model", "layer", "N", "zipgemm",
                 *BASELINES],
        rows=rows,
        summary=summary,
        paper={
            "zipgemm_avg_rtx4090": 1.31,
            "zipgemm_peak_rtx4090": 1.71,
            "zipgemm_avg_l40s": 1.36,
            "zipgemm_peak_l40s": 2.21,
            "dietgpu_avg_rtx4090": 0.17,
            "dietgpu_avg_l40s": 0.20,
            "nvcomp_avg_rtx4090": 0.19,
            "nvcomp_avg_l40s": 0.23,
            "dfloat11_avg_rtx4090": 0.28,
            "dfloat11_avg_l40s": 0.34,
            "layer_l40s_gateup_proj": 1.39,
            "layer_l40s_down_proj": 1.64,
            "layer_l40s_o_proj": 0.9,
        },
        notes=(
            "Layer-wise L40S panel (Figure 11c): GateUp 1.39x, Down 1.64x,"
            " small O_proj layers can fall below 1x (paper: 0.79x on"
            " LLaMA3.1-8B)."
        ),
    )
