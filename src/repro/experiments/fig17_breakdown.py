"""Figure 17: latency and memory breakdown, LLaMA-8B on RTX4090 (BS=32).

The paper decomposes the vLLM decode step (GEMM 24.99 ms = 83.6% of
latency) and shows ZipServ cutting the linear-layer time to 14.76 ms (1.69x)
while attention (3.02 ms) and other overheads (1.88 ms) stay constant; on the
memory side, compressed weights free 3.78 GiB that the manager turns into a
1.70x larger KV cache.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.models import get_model
from .common import ExperimentResult, experiment

BATCH = 32
PROMPT = 128
OUTPUT = 1024


@experiment("fig17")
def run(quick: bool = False) -> ExperimentResult:
    """Step-time and memory decomposition for vLLM vs ZipServ."""
    model = get_model("llama3.1-8b")
    gpu = get_gpu("rtx4090")
    out_len = 256 if quick else OUTPUT
    rows = []
    data = {}
    for backend_name in ("vllm", "zipserv"):
        engine = InferenceEngine(model, gpu, get_backend(backend_name))
        result = engine.run(BATCH, PROMPT, out_len)
        step = result.avg_step
        data[backend_name] = (step, result)
        rows.append((
            backend_name,
            step.linear_s * 1e3,
            step.attention_s * 1e3,
            (step.other_s + step.dispatch_s) * 1e3,
            step.total_s * 1e3,
            result.memory.weight_gib,
            result.memory.kv_gib,
        ))
    vllm_step, vllm_res = data["vllm"]
    zip_step, zip_res = data["zipserv"]
    return ExperimentResult(
        experiment="fig17",
        title="Decode-step and memory breakdown (LLaMA-8B, RTX4090, BS=32)",
        columns=["backend", "linear_ms", "attn_ms", "other_ms",
                 "step_ms", "weights_gib", "kv_gib"],
        rows=rows,
        summary={
            "vllm_linear_ms": vllm_step.linear_s * 1e3,
            "zipserv_linear_ms": zip_step.linear_s * 1e3,
            "linear_speedup": vllm_step.linear_s / zip_step.linear_s,
            "attention_ms": zip_step.attention_s * 1e3,
            "vllm_weights_gib": vllm_res.memory.weight_gib,
            "zipserv_weights_gib": zip_res.memory.weight_gib,
            "vllm_kv_gib": vllm_res.memory.kv_gib,
            "zipserv_kv_gib": zip_res.memory.kv_gib,
            "kv_expansion": zip_res.memory.kv_bytes / vllm_res.memory.kv_bytes,
        },
        paper={
            "vllm_linear_ms": 24.99,
            "zipserv_linear_ms": 14.76,
            "linear_speedup": 1.69,
            "attention_ms": 3.02,
            "vllm_weights_gib": 14.96,
            "zipserv_weights_gib": 11.18,
            "vllm_kv_gib": 5.07,
            "zipserv_kv_gib": 8.60,
            "kv_expansion": 1.70,
        },
    )
