"""Figure 13: standalone decompression of a full transformer block.

Total time to decompress every weight matrix of one block of LLaMA3.1-8B and
Mistral-24B, ZipServ-Decomp vs DietGPU / nvCOMP / DFloat11.  Paper averages:
2.14x, 1.83x and 1.10x faster respectively.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.decompress import baseline_decompress, zipserv_decompress
from ..serving.models import get_model
from ..serving.weights import estimate_layer_compression, layer_sigma
from ..utils import geometric_mean
from .common import ExperimentResult, experiment

MODELS = ("llama3.1-8b", "mistral-24b")
BASELINES = ("dietgpu", "nvcomp", "dfloat11")


def _block_layers(model_name: str):
    model = get_model(model_name)
    return [l for l in model.linear_layers() if l.kind != "lm_head"]


@experiment("fig13")
def run(quick: bool = False) -> ExperimentResult:
    """Sum per-layer decompression times over one transformer block."""
    gpu = get_gpu("l40s")
    rows = []
    speedups: dict[str, list[float]] = {b: [] for b in BASELINES}
    for model_name in MODELS:
        zip_total = 0.0
        base_totals = dict.fromkeys(BASELINES, 0.0)
        for layer in _block_layers(model_name):
            sigma = layer_sigma(layer.kind, layer.m, layer.k)
            comp = estimate_layer_compression(layer.m, layer.k, sigma, "tcatbe")
            zip_total += zipserv_decompress(gpu, layer.m, layer.k, comp).time_s
            for codec in BASELINES:
                bcomp = estimate_layer_compression(
                    layer.m, layer.k, sigma, codec
                )
                base_totals[codec] += baseline_decompress(
                    gpu, layer.m, layer.k, codec, bcomp
                ).time_s
        row = [model_name, zip_total * 1e3]
        for codec in BASELINES:
            row.append(base_totals[codec] * 1e3)
            speedups[codec].append(base_totals[codec] / zip_total)
        rows.append(tuple(row))

    summary = {
        f"speedup_vs_{codec}": geometric_mean(speedups[codec])
        for codec in BASELINES
    }
    return ExperimentResult(
        experiment="fig13",
        title="Transformer-block decompression time on L40S (ms)",
        columns=["model", "zipserv_ms", *[f"{b}_ms" for b in BASELINES]],
        rows=rows,
        summary=summary,
        paper={
            "speedup_vs_dietgpu": 2.14,
            "speedup_vs_nvcomp": 1.83,
            "speedup_vs_dfloat11": 1.10,
        },
    )
