"""Figure 18 / §7: training-oriented GPUs and the lossy comparison.

On A100/H800, abundant HBM bandwidth removes the bottleneck ZipGEMM
exploits while lower clocks make the decode ALU work harder to hide, so the
fused kernel may trail cuBLAS — yet ZipServ-Decomp stays the fastest
decompressor (paper: up to 2.64x over the best baseline).  The section also
benchmarks Marlin W8A16: the latency gap tracks the effective bit-width
ratio (~11.3 vs 8 bits).

On top of the kernel story, a datacenter *serving* slice: a multi-tenant
trace (interactive chat + bulk batch) replayed on the A100 through the
event-driven serving core, comparing the priority scheduler against FCFS
on the chat tenant's TTFT — the scheduling headroom a datacenter GPU's
KV capacity buys.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.decompress import baseline_decompress, zipserv_decompress
from ..kernels.gemm import cublas_gemm
from ..kernels.marlin import marlin_w8a16_gemm
from ..kernels.zipgemm import zipgemm
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.metrics import SLOTarget, percentile
from ..serving.models import get_model
from ..serving.scheduler import SchedulerLimits
from ..serving.serve import ServingConfig
from ..serving.trace import multi_tenant_trace
from ..serving.weights import estimate_layer_compression, layer_sigma
from .common import ExperimentResult, experiment

MODELS = ("llama3.1-8b", "mistral-24b")
GPUS = ("a100", "h800")
BATCH = 32
BASELINES = ("dietgpu", "nvcomp", "dfloat11")


def _serving_slice(quick: bool) -> dict[str, float]:
    """Priority vs FCFS on a multi-tenant trace (zipserv on one A100)."""
    engine = InferenceEngine(
        get_model("llama3.1-8b"), get_gpu("a100"), get_backend("zipserv")
    )
    # Tight limits so the queue actually forms — the policy only matters
    # under contention.
    trace_seed = 18
    limits = SchedulerLimits(max_num_seqs=4 if quick else 8,
                             max_batched_tokens=1024)
    slo = SLOTarget(ttft_s=0.5, tpot_s=0.05)
    chat_ttft_p95 = {}
    goodput = {}
    for policy in ("fcfs", "priority"):
        trace = multi_tenant_trace(seed=trace_seed)
        if quick:
            trace = trace[: len(trace) // 2]
        result = engine.serve(trace, config=ServingConfig(
            policy=policy, prefill_mode="chunked", limits=limits, slo=slo,
        ))
        chat = [t.ttft_s for t in result.tenant_timings("chat")]
        chat_ttft_p95[policy] = percentile(chat, 95) if chat else 0.0
        goodput[policy] = result.metrics.goodput_rps
    return {
        "a100_goodput_rps_priority": goodput["priority"],
        "a100_chat_ttft_p95_fcfs": chat_ttft_p95["fcfs"],
        "a100_chat_ttft_p95_priority": chat_ttft_p95["priority"],
    }


@experiment("fig18")
def run(quick: bool = False) -> ExperimentResult:
    """Datacenter-GPU kernel comparison plus the Marlin W8A16 gap."""
    rows = []
    summary = {}
    best_decomp_speedup = 0.0
    zip_vs_cublas = []
    for gpu_name in GPUS:
        gpu = get_gpu(gpu_name)
        for model_name in MODELS:
            model = get_model(model_name)
            layer = next(
                l for l in model.linear_layers() if l.kind == "gateup_proj"
            )
            sigma = layer_sigma(layer.kind, layer.m, layer.k)
            comp = estimate_layer_compression(layer.m, layer.k, sigma, "tcatbe")
            cb = cublas_gemm(gpu, layer.m, layer.k, BATCH)
            zg = zipgemm(gpu, layer.m, layer.k, BATCH, comp)
            zd = zipserv_decompress(gpu, layer.m, layer.k, comp)
            ratio = cb.time_s / zg.time_s
            zip_vs_cublas.append(ratio)
            for codec in BASELINES:
                bcomp = estimate_layer_compression(
                    layer.m, layer.k, sigma, codec
                )
                bd = baseline_decompress(gpu, layer.m, layer.k, codec, bcomp)
                best_decomp_speedup = max(
                    best_decomp_speedup, bd.time_s / zd.time_s
                )
            rows.append((
                gpu_name, model_name, cb.time_s * 1e3, zg.time_s * 1e3, ratio,
            ))
    summary["zipgemm_vs_cublas_min"] = min(zip_vs_cublas)
    summary["zipgemm_vs_cublas_max"] = max(zip_vs_cublas)
    summary["best_decomp_speedup"] = best_decomp_speedup

    # §7: Marlin W8A16 on the paper's representative shape, RTX4090.
    gpu = get_gpu("rtx4090")
    m, k = 28672, 4096
    comp = estimate_layer_compression(
        m, k, layer_sigma("gateup_proj", m, k), "tcatbe"
    )
    marlin = marlin_w8a16_gemm(gpu, m, k, BATCH)
    zg = zipgemm(gpu, m, k, BATCH, comp)
    summary["marlin_gap"] = zg.time_s / marlin.time_s
    summary["bitwidth_ratio"] = (16.0 / comp.ratio) / 8.0
    rows.append(("rtx4090", "marlin_w8a16", marlin.time_s * 1e3,
                 zg.time_s * 1e3, marlin.time_s / zg.time_s))

    # Datacenter serving: multi-tenant trace, priority vs FCFS on the A100.
    summary.update(_serving_slice(quick))

    return ExperimentResult(
        experiment="fig18",
        title="Training-GPU kernel comparison and the lossy baseline",
        columns=["gpu", "model", "cublas_ms", "zipgemm_ms", "speedup"],
        rows=rows,
        summary=summary,
        paper={
            "zipgemm_vs_cublas_min": 0.8,
            "zipgemm_vs_cublas_max": 1.0,
            "best_decomp_speedup": 2.64,
            "marlin_gap": 1.36,
            "bitwidth_ratio": 1.41,
        },
        notes=(
            "Paper: ZipGEMM may trail cuBLAS on HBM GPUs (hardware-software"
            " mismatch, §7) but the standalone decompressor stays up to"
            " 2.64x ahead of the best baseline; the Marlin gap (1.36x)"
            " matches the ~11.3-vs-8-bit effective width ratio."
        ),
    )
