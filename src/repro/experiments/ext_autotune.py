"""Extension experiment: measured calibration + codec-policy autotune.

The calibration subsystem (:mod:`repro.compression.calibrate`) replaces
the registry's analytic ratio estimators with *measured* ratios — the
real bit-exact codecs run over sampled tensors per tensor class — and
the policy layer (:mod:`repro.compression.policy`) turns those
measurements into per-class codec choices through
``ServingConfig(weight_codec="auto", kv_codec="auto",
transfer_codec="auto", codec_policy=...)``.

This experiment asks the two questions that justify the subsystem:

1. **How far off are the analytic estimators?**  Per codec x placement,
   the measured/analytic gap (ZipNN's observation: real compressibility
   is not what a Gaussian model says — here the gap is small because
   the synthetic weights *are* Gaussian, but container overheads and
   integer codeword losses still move ratios by up to ~5%).
2. **Does hardware-aware auto-selection beat a fixed stack end to
   end?**  Policies x placements are swept on the starved-link
   disaggregated trace against the single-codec ``kvcomp``-everywhere
   configuration.  Expected shape: ``best_ratio`` keeps the fused TBE
   weight path (decoupled baselines fail the hot-path feasibility gate)
   but switches KV residency and the wire to the higher-measured-ratio
   entropy codec, cutting wire bytes and KV pressure — strictly better
   makespan *and* SLO goodput; ``best_throughput`` surrenders ratio for
   the fastest hot paths; ``balanced`` interpolates.
"""

from __future__ import annotations

from dataclasses import replace

from ..compression import calibrate, tensor_classes_for_model
from ..gpu.specs import get_gpu
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.models import get_model
from ..serving.serve import DisaggConfig, ServingConfig
from ..serving.trace import DEFAULT_TENANTS, multi_tenant_trace
from .common import ExperimentResult, experiment

#: Same deliberately starved interconnect as ``ext_disagg`` /
#: ``ext_codec_matrix`` — the wire codec has to matter.
LINK_GB_PER_S = 0.125
SEED = 7
CALIBRATION_SEED = 0

#: (label, codec_policy, use measured calibration) for the auto rows.
POLICY_ROWS: list[tuple[str, str, bool]] = [
    ("auto best_ratio", "best_ratio", True),
    ("auto best_ratio (analytic)", "best_ratio", False),
    ("auto best_throughput", "best_throughput", True),
    ("auto balanced(0.5)", "balanced(0.5)", True),
    ("auto balanced(0.9)", "balanced(0.9)", True),
]


def _trace(quick: bool):
    if not quick:
        return multi_tenant_trace(seed=SEED)
    tenants = {
        name: replace(spec, n_requests=max(2, spec.n_requests // 4))
        for name, spec in DEFAULT_TENANTS.items()
    }
    return multi_tenant_trace(tenants, seed=SEED)


def _config(**codec_slots) -> ServingConfig:
    return ServingConfig(
        policy="fcfs",
        prefill_mode="chunked",
        mode="disaggregated",
        disagg=DisaggConfig(link_gb_per_s=LINK_GB_PER_S),
        **codec_slots,
    )


@experiment("ext_autotune")
def run(quick: bool = False) -> ExperimentResult:
    """Sweep codec policies x placements vs the fixed kvcomp stack."""
    model = get_model("llama3.1-8b")
    engine = InferenceEngine(model, get_gpu("rtx4090"),
                             get_backend("zipserv"))
    profile = calibrate(
        classes=tensor_classes_for_model(model), seed=CALIBRATION_SEED
    )

    # Per-placement measured-vs-analytic gap (the calibration headline).
    gap_by_placement = {p: 0.0 for p in ("weight", "kv", "wire", "prefix")}
    for rec in profile.records:
        gap_by_placement[rec.placement] = max(
            gap_by_placement[rec.placement], abs(rec.analytic_gap)
        )

    n = len(_trace(quick))
    rows = []
    results = {}

    def serve(label: str, config: ServingConfig):
        selection = engine.resolve_codecs(config)
        result = engine.serve(_trace(quick), config=config)
        results[label] = result
        weight_names = sorted(
            {s.codec for s in selection["weight"].values()}
        )
        rows.append((
            label,
            "+".join(weight_names),
            selection["kv"].codec,
            selection["transfer"].codec,
            result.makespan_s,
            result.throughput_tok_s,
            result.metrics.goodput_rps,
            result.metrics.ttft.p95_s,
            result.transfer.compression_ratio,
        ))
        return result

    serve("kvcomp everywhere", _config(
        weight_codec="kvcomp", kv_codec="kvcomp", transfer_codec="kvcomp",
    ))
    for label, policy, measured in POLICY_ROWS:
        serve(label, _config(
            weight_codec="auto", kv_codec="auto", transfer_codec="auto",
            codec_policy=policy,
            calibration=profile if measured else None,
        ))

    fixed = results["kvcomp everywhere"]
    best_ratio = results["auto best_ratio"]
    analytic = results["auto best_ratio (analytic)"]
    return ExperimentResult(
        experiment="ext_autotune",
        title=(
            f"codec-policy autotune vs fixed kvcomp stack, {n}-request"
            f" multi-tenant trace, {LINK_GB_PER_S} GB/s KV link"
        ),
        columns=["scenario", "weight", "kv", "wire", "makespan_s",
                 "tput_tok_s", "goodput_rps", "ttft_p95_s", "wire_ratio"],
        rows=rows,
        summary={
            # The acceptance claim: auto best_ratio strictly beats the
            # single-codec stack end to end (both must be > 0).
            "best_ratio_vs_kvcomp_makespan_cut": 1.0
            - best_ratio.makespan_s / fixed.makespan_s,
            "best_ratio_vs_kvcomp_goodput_gain":
            best_ratio.metrics.goodput_rps / fixed.metrics.goodput_rps
            - 1.0,
            # Measured calibration matters beyond the analytic registry.
            "measured_vs_analytic_makespan_delta": 1.0
            - best_ratio.makespan_s / analytic.makespan_s,
            "max_gap_weight": gap_by_placement["weight"],
            "max_gap_kv": gap_by_placement["kv"],
            "max_gap_wire": gap_by_placement["wire"],
            "n_calibration_records": float(len(profile)),
            "all_requests_served": float(all(
                r.n_requests == n for r in results.values()
            )),
        },
        paper={},
        notes=(
            "No paper counterpart: ZipServ fixes one codec per"
            " placement; this subsystem calibrates measured ratios per"
            " tensor class (ZipNN's observation) and lets a"
            " hardware-aware policy pick each slot.  Expected shape:"
            " best_ratio keeps fused TBE weights (decompress-per-use"
            " baselines fail the hot-path gate) but moves KV/wire to"
            " the higher-measured-ratio entropy codec and beats the"
            " fixed kvcomp stack on makespan and goodput; the analytic"
            " row shows what selection would do without measurement."
        ),
    )
