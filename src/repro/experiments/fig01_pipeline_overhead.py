"""Figure 1: decoupled lossless pipelines vs the core GEMM (L40S, GateUp).

The paper's motivating measurement: on GateUp projections, the decompression
step *alone* costs 1.56-3.44x the inference GEMM, so decoupled lossless
compression slows serving down instead of speeding it up.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.pipeline import decoupled_pipeline
from ..serving.models import get_model
from ..serving.weights import estimate_layer_compression, layer_sigma
from .common import ExperimentResult, experiment

MODELS = ("llama3.1-8b", "mistral-24b", "qwen2.5-32b")
CODECS = ("dfloat11", "dietgpu", "nvcomp")
BATCH = 32


@experiment("fig01")
def run(quick: bool = False) -> ExperimentResult:
    """Measure decompression-to-GEMM time ratios on GateUp layers."""
    gpu = get_gpu("l40s")
    models = MODELS[:1] if quick else MODELS
    rows = []
    ratios = []
    for model_name in models:
        model = get_model(model_name)
        layer = next(
            l for l in model.linear_layers() if l.kind == "gateup_proj"
        )
        gemm = cublas_gemm(gpu, layer.m, layer.k, BATCH)
        for codec in CODECS:
            comp = estimate_layer_compression(
                layer.m, layer.k, layer_sigma(layer.kind, layer.m, layer.k),
                codec,
            )
            pipe = decoupled_pipeline(gpu, layer.m, layer.k, BATCH, codec, comp)
            ratio = pipe.details["decomp_over_gemm"]
            ratios.append(ratio)
            rows.append((
                model_name, codec,
                pipe.details["decomp_time_s"] * 1e3,
                pipe.details["gemm_time_s"] * 1e3,
                ratio,
            ))
    return ExperimentResult(
        experiment="fig01",
        title="Decoupled lossless pipelines on L40S GateUp layers (N=32)",
        columns=["model", "codec", "decomp_ms", "gemm_ms", "decomp/gemm"],
        rows=rows,
        summary={
            "decomp_over_gemm_min": min(ratios),
            "decomp_over_gemm_max": max(ratios),
        },
        paper={"decomp_over_gemm_min": 1.56, "decomp_over_gemm_max": 3.44},
        notes=(
            "Paper: the decoupled decompression step alone takes 1.56-3.44x"
            " the core GEMM time."
        ),
    )
