"""Extension experiment: lossless compression atop INT8 quantisation (§7).

Places the whole precision/performance spectrum on one axis for the paper's
representative shape (28672 x 4096, N = 32, RTX4090): dense cuBLAS, lossless
ZipGEMM (~11.3 bits), Marlin W8A16 (8 bits), and the combined
entropy-over-INT8 kernel (~7.4 bits) — §7's observation that the latency gap
tracks effective bit-width.
"""

from __future__ import annotations

import numpy as np

from ..bf16 import gaussian_bf16_matrix
from ..extensions.quant_combo import (
    compress_quantized,
    decompress_quantized,
    quantize_int8,
    zipquant_gemm,
)
from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.marlin import marlin_w8a16_gemm
from ..kernels.zipgemm import zipgemm
from .common import ExperimentResult, experiment

M, K, N = 28672, 4096, 32


@experiment("ext_quant")
def run(quick: bool = False) -> ExperimentResult:
    """Measure residual redundancy and the four-point latency spectrum."""
    gpu = get_gpu("rtx4090")

    # Functional: INT8-lossless compression of a quantised layer.
    size = 256 if quick else 1024
    weights = gaussian_bf16_matrix(size, 1024, sigma=0.015, seed=5)
    quantised = quantize_int8(weights)
    blob = compress_quantized(quantised)
    restored = decompress_quantized(blob)
    assert np.array_equal(restored.q, quantised.q)

    cb = cublas_gemm(gpu, M, K, N)
    zg = zipgemm(gpu, M, K, N)
    ml = marlin_w8a16_gemm(gpu, M, K, N)
    zq = zipquant_gemm(gpu, M, K, N, bits_per_weight=blob.bits_per_weight)

    rows = [
        ("cublas_bf16", 16.0, cb.time_s * 1e3, 1.0),
        ("zipgemm_lossless", 16.0 / zg.details["compression_ratio"],
         zg.time_s * 1e3, cb.time_s / zg.time_s),
        ("marlin_w8a16", 8.0, ml.time_s * 1e3, cb.time_s / ml.time_s),
        ("zipquant_combo", blob.bits_per_weight, zq.time_s * 1e3,
         cb.time_s / zq.time_s),
    ]
    return ExperimentResult(
        experiment="ext_quant",
        title="Precision/latency spectrum (28672x4096, N=32, RTX4090)",
        columns=["kernel", "bits_per_weight", "time_ms", "speedup_vs_cublas"],
        rows=rows,
        summary={
            "residual_ratio_vs_int8": blob.ratio_vs_int8,
            "combo_bits_per_weight": blob.bits_per_weight,
            "marlin_gap_vs_zipgemm": zg.time_s / ml.time_s,
            "combo_speedup_vs_marlin": ml.time_s / zq.time_s,
        },
        paper={
            "marlin_gap_vs_zipgemm": 1.36,
        },
        notes=(
            "§7: the ZipGEMM-vs-Marlin gap (paper 1.36x) tracks the"
            " ~11.3/8-bit width ratio; stacking entropy coding on INT8"
            " yields a further modest, strictly lossless-at-INT8 gain."
        ),
    )
