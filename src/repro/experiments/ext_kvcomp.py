"""Extension experiment: lossless KV-cache compression (§7, direction 1).

Quantifies the paper's first future-work direction on top of the serving
engine: Vector-TBE-compressed KV blocks multiply token capacity ~1.4x and
cut decode-attention traffic, which compounds with the weight-compression
gains at long contexts.
"""

from __future__ import annotations

import numpy as np

from ..bf16 import gaussian_bf16_matrix
from ..extensions.kvcomp import (
    compress_kv_block,
    decompress_kv_block,
    kv_compression_ratio,
    paged_attention_decode_compressed,
)
from ..gpu.specs import get_gpu
from ..kernels.attention import paged_attention_decode
from ..serving.backends import get_backend
from ..serving.engine import InferenceEngine
from ..serving.models import get_model
from .common import ExperimentResult, experiment

CONTEXTS = (1024, 4096, 16384)
BATCH = 16


@experiment("ext_kvcomp")
def run(quick: bool = False) -> ExperimentResult:
    """Functional ratio, attention kernel gain, and end-to-end effect."""
    model = get_model("llama3.1-8b")
    gpu = get_gpu("rtx4090")

    # Functional: measured block-level ratio, bit-exact round trip.
    block = gaussian_bf16_matrix(16, model.n_kv_heads * model.head_dim * 2,
                                 sigma=0.05, seed=1)
    blob = compress_kv_block(block)
    assert np.array_equal(decompress_kv_block(blob, block.shape), block)
    measured_ratio = blob.ratio
    analytic_ratio = kv_compression_ratio()

    # Kernel: compressed vs plain paged attention across contexts.
    rows = []
    for ctx in (CONTEXTS[:1] if quick else CONTEXTS):
        plain = paged_attention_decode(
            gpu, BATCH, ctx, model.n_heads, model.n_kv_heads, model.head_dim
        )
        comp = paged_attention_decode_compressed(
            gpu, BATCH, ctx, model.n_heads, model.n_kv_heads,
            model.head_dim, ratio=analytic_ratio,
        )
        rows.append((
            ctx, plain.time_s * 1e6, comp.time_s * 1e6,
            plain.time_s / comp.time_s,
        ))

    # End to end: long-context run with and without KV compression.
    out_len = 512 if quick else 2048
    base = InferenceEngine(model, gpu, get_backend("zipserv"))
    comp_eng = InferenceEngine(
        model, gpu, get_backend("zipserv"),
        kv_compression_ratio=analytic_ratio,
    )
    base_res = base.run(32, 128, out_len)
    comp_res = comp_eng.run(32, 128, out_len)

    return ExperimentResult(
        experiment="ext_kvcomp",
        title="KV-cache compression: attention time (us) per layer",
        columns=["ctx", "plain_us", "compressed_us", "speedup"],
        rows=rows,
        summary={
            "block_ratio_measured": measured_ratio,
            "block_ratio_analytic": analytic_ratio,
            "attention_speedup_longctx": rows[-1][3],
            "capacity_gain": comp_eng.plan.kv_tokens / base.plan.kv_tokens,
            "e2e_throughput_gain": (
                comp_res.throughput_tok_s / base_res.throughput_tok_s
            ),
        },
        paper={},
        notes=(
            "No paper numbers exist (future work); acceptance is internal"
            " consistency: capacity and attention gains must track the"
            " measured block-level ratio."
        ),
    )
