"""Figure 14: cross-generation and consumer-vs-datacenter comparison.

Two claims: (1) ZipGEMM ports forward to Blackwell (RTX5090) with solid
speedups (paper: 1.34x on LLaMA-8B, 1.87x on Mistral-24B GateUp); (2) it
narrows the consumer/datacenter divide — a 4090 running ZipGEMM lands in the
class of an A100 running cuBLAS, and a 5090's deficit against the H800
shrinks substantially.
"""

from __future__ import annotations

from ..gpu.specs import get_gpu
from ..kernels.gemm import cublas_gemm
from ..kernels.zipgemm import zipgemm
from ..serving.models import get_model
from ..serving.weights import estimate_layer_compression, layer_sigma
from .common import ExperimentResult, experiment

MODELS = ("llama3.1-8b", "mistral-24b")
BATCH = 32


def _gateup(model_name: str):
    model = get_model(model_name)
    return next(l for l in model.linear_layers() if l.kind == "gateup_proj")


@experiment("fig14")
def run(quick: bool = False) -> ExperimentResult:
    """GateUp kernel times across GPU generations and tiers."""
    rows = []
    summary = {}
    for model_name in MODELS:
        layer = _gateup(model_name)
        comp = estimate_layer_compression(
            layer.m, layer.k,
            layer_sigma(layer.kind, layer.m, layer.k), "tcatbe",
        )
        times = {}
        for gpu_name in ("rtx4090", "rtx5090", "a100", "h800"):
            gpu = get_gpu(gpu_name)
            cb = cublas_gemm(gpu, layer.m, layer.k, BATCH)
            zg = zipgemm(gpu, layer.m, layer.k, BATCH, comp)
            times[(gpu_name, "cublas")] = cb.time_s
            times[(gpu_name, "zipgemm")] = zg.time_s
            rows.append((
                model_name, gpu_name, cb.time_s * 1e3, zg.time_s * 1e3,
                cb.time_s / zg.time_s,
            ))
        tag = model_name.split("-")[0]
        summary[f"rtx5090_speedup_{tag}"] = (
            times[("rtx5090", "cublas")] / times[("rtx5090", "zipgemm")]
        )
        # Consumer-vs-datacenter: 4090+ZipGEMM against A100 cuBLAS.
        summary[f"rtx4090zip_vs_a100cublas_{tag}"] = (
            times[("a100", "cublas")] / times[("rtx4090", "zipgemm")]
        )
        # 5090 deficit against H800, standard vs ZipGEMM.
        summary[f"rtx5090_deficit_std_{tag}"] = (
            times[("rtx5090", "cublas")] / times[("h800", "cublas")] - 1.0
        )
        summary[f"rtx5090_deficit_zip_{tag}"] = (
            times[("rtx5090", "zipgemm")] / times[("h800", "cublas")] - 1.0
        )
    return ExperimentResult(
        experiment="fig14",
        title="Cross-generation GateUp kernel comparison (N=32)",
        columns=["model", "gpu", "cublas_ms", "zipgemm_ms", "speedup"],
        rows=rows,
        summary=summary,
        paper={
            "rtx5090_speedup_llama3.1": 1.34,
            "rtx5090_speedup_mistral": 1.87,
            "rtx4090zip_vs_a100cublas_llama3.1": 1.093,
            "rtx4090zip_vs_a100cublas_mistral": 0.973,
            "rtx5090_deficit_std_llama3.1": 0.533,
            "rtx5090_deficit_zip_llama3.1": 0.141,
            "rtx5090_deficit_std_mistral": 1.257,
            "rtx5090_deficit_zip_mistral": 0.208,
        },
        notes=(
            "Paper: 4090+ZipGEMM beats A100 cuBLAS on LLaMA-8B"
            " (0.195 vs 0.215 ms) and trails 2.7% on Mistral-24B; ZipGEMM"
            " cuts the 5090-vs-H800 deficit from 53.3%/125.7% to"
            " 14.1%/20.8%."
        ),
    )
