"""Experiment drivers: one per paper figure / table (see DESIGN.md).

Importing this package registers every driver; use::

    from repro.experiments import run_experiment, list_experiments
    result = run_experiment("fig11", quick=True)
    print(result.report())

or the CLI: ``python -m repro.experiments fig11``.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    ext_autotune,
    ext_codec_matrix,
    ext_continuous,
    ext_disagg,
    ext_kvcomp,
    ext_quant,
    fig01_pipeline_overhead,
    fig02_exponent_distribution,
    fig05_roofline,
    fig11_kernel_speedups,
    fig12_micro_analysis,
    fig13_decompression,
    fig14_cross_generation,
    fig15_n_sweep,
    fig16_end_to_end,
    fig17_breakdown,
    fig18_datacenter,
    tab_codeword,
    tab_memory,
    tab_offline_cost,
    tab_pipeline,
    tab_theory,
)
from .common import ExperimentResult, list_experiments, run_experiment

__all__ = ["ExperimentResult", "list_experiments", "run_experiment"]
