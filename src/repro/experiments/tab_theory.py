"""Appendix A validation: unimodality, contiguity, analytic coverage.

Checks the closed-form exponent pmf against its two theorems over a sweep of
sigma values spanning the realistic LLM range, and compares analytic window
coverage with sampled measurement.
"""

from __future__ import annotations

import numpy as np

from ..analysis.theory import (
    exponent_pmf_gaussian,
    gaussian_exponent_entropy,
    pmf_is_unimodal,
    top_k_is_contiguous,
    window_coverage_gaussian,
)
from ..bf16 import gaussian_bf16_sample
from ..tcatbe.analysis import exponent_histogram, select_window
from .common import ExperimentResult, experiment

SIGMAS = (0.005, 0.01, 0.015, 0.02, 0.03, 0.05)


@experiment("tab_theory")
def run(quick: bool = False) -> ExperimentResult:
    """Verify Theorems A.1 / A.2 numerically and cross-check coverage."""
    sigmas = SIGMAS[:3] if quick else SIGMAS
    rows = []
    all_unimodal = True
    all_contiguous = True
    coverage_errors = []
    for idx, sigma in enumerate(sigmas):
        pmf = exponent_pmf_gaussian(sigma)
        unimodal = pmf_is_unimodal(pmf)
        contiguous = top_k_is_contiguous(pmf, 7)
        analytic_cov = window_coverage_gaussian(sigma)
        sample = gaussian_bf16_sample(200_000, sigma, seed=idx)
        hist = exponent_histogram(sample)
        sampled_cov = select_window(hist).coverage
        coverage_errors.append(abs(analytic_cov - sampled_cov))
        all_unimodal &= unimodal
        all_contiguous &= contiguous
        rows.append((
            sigma, unimodal, contiguous, analytic_cov, sampled_cov,
            gaussian_exponent_entropy(sigma),
        ))
    return ExperimentResult(
        experiment="tab_theory",
        title="Appendix A: Gaussian exponent pmf properties",
        columns=["sigma", "unimodal", "top7_contiguous",
                 "coverage_analytic", "coverage_sampled", "entropy_bits"],
        rows=rows,
        summary={
            "all_unimodal": float(all_unimodal),
            "all_top7_contiguous": float(all_contiguous),
            "max_coverage_error": float(np.max(coverage_errors)),
        },
        paper={
            "all_unimodal": 1.0,
            "all_top7_contiguous": 1.0,
        },
    )
