"""CLI for the experiment drivers.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig11 [--quick]
    python -m repro.experiments all [--quick]
"""

from __future__ import annotations

import argparse
import sys

from . import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Run ZipServ reproduction experiments",
    )
    parser.add_argument(
        "name", nargs="?", default=None,
        help="experiment name, or 'all' to run every one",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweeps for fast smoke runs",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render an ASCII chart for sweep-shaped experiments",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write results as JSON to PATH",
    )
    args = parser.parse_args(argv)

    if args.list or args.name is None:
        for name in list_experiments():
            print(name)
        return 0

    names = list_experiments() if args.name == "all" else [args.name]
    collected = []
    for name in names:
        result = run_experiment(name, quick=args.quick)
        collected.append(result)
        print(result.report())
        if args.chart:
            from .charts import chart_for_result

            chart = chart_for_result(result)
            if chart:
                print()
                print(chart)
        print()

    if args.json:
        import json
        from pathlib import Path

        payload = {r.experiment: r.to_dict() for r in collected}
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {len(collected)} result(s) to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
