"""Lossless compression atop lossy quantisation (§7).

"ZipServ is orthogonal to lossy methods and can be applied atop quantized
weights to exploit residual redundancy."  INT8 weights of a Gaussian layer
are not quite uniform — row-wise absmax quantisation leaves ~7.2-7.7 bits
of entropy — so an entropy coder shaves a further ~5-10% off the already-
quantised model, and a fused dequant+decode GEMM keeps the bandwidth win.

* functional: row-wise absmax INT8 quantisation, rANS compression of the
  quantised plane, exact round-trip *at the INT8 level* (the quantisation
  itself is lossy by definition; the compression adds zero further error);
* performance: :func:`zipquant_gemm`, a Marlin-with-compressed-weights
  kernel model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.calibration import SATURATION_CTAS_FRAC_FUSED, TC_EFFICIENCY, decode_cycles_per_element
from ..bf16 import bf16_to_f32, f32_to_bf16
from ..codecs.base import EncodedStream
from ..codecs.rans import RansCodec
from ..errors import ConfigError, FormatError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from ..kernels.base import KernelProfile, saturation_fraction
from ..utils import ceil_div

_RANS = RansCodec()


@dataclass
class QuantizedLayer:
    """Row-wise absmax INT8 quantisation of a BF16 weight matrix."""

    q: np.ndarray       # int8 (m, k)
    scales: np.ndarray  # float32 (m,)

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self.q.shape)

    @property
    def nbytes(self) -> int:
        """INT8 plane + scales."""
        return int(self.q.nbytes + self.scales.nbytes)


def quantize_int8(weights: np.ndarray) -> QuantizedLayer:
    """Row-wise absmax INT8 quantisation of BF16 (uint16) weights."""
    weights = np.asarray(weights)
    if weights.dtype != np.uint16 or weights.ndim != 2:
        raise FormatError("weights must be a 2-D BF16 (uint16) matrix")
    values = bf16_to_f32(weights)
    absmax = np.abs(values).max(axis=1)
    scales = np.where(absmax > 0, absmax / 127.0, 1.0).astype(np.float32)
    q = np.clip(
        np.rint(values / scales[:, None]), -127, 127
    ).astype(np.int8)
    return QuantizedLayer(q=q, scales=scales)


def dequantize_int8(layer: QuantizedLayer) -> np.ndarray:
    """INT8 -> BF16 dequantisation (the lossy inverse)."""
    values = layer.q.astype(np.float32) * layer.scales[:, None]
    return f32_to_bf16(values)


@dataclass
class CompressedQuantizedLayer:
    """Entropy-compressed INT8 layer (lossless w.r.t. the INT8 plane)."""

    shape: tuple[int, int]
    stream: EncodedStream
    scales: np.ndarray

    @property
    def compressed_nbytes(self) -> int:
        """Entropy-coded plane + scales."""
        return self.stream.compressed_nbytes + int(self.scales.nbytes)

    @property
    def int8_nbytes(self) -> int:
        """Uncompressed INT8 footprint."""
        return self.shape[0] * self.shape[1] + int(self.scales.nbytes)

    @property
    def ratio_vs_int8(self) -> float:
        """Residual-redundancy gain on top of quantisation."""
        return self.int8_nbytes / max(self.compressed_nbytes, 1)

    @property
    def bits_per_weight(self) -> float:
        """Effective storage per weight after both stages."""
        return 8.0 * self.compressed_nbytes / (self.shape[0] * self.shape[1])


def compress_quantized(layer: QuantizedLayer) -> CompressedQuantizedLayer:
    """rANS-compress the INT8 plane (bias to unsigned bytes first)."""
    as_bytes = (layer.q.astype(np.int16) + 128).astype(np.uint8).ravel()
    return CompressedQuantizedLayer(
        shape=layer.shape,
        stream=_RANS.encode(as_bytes),
        scales=layer.scales,
    )


def decompress_quantized(blob: CompressedQuantizedLayer) -> QuantizedLayer:
    """Exact inverse of :func:`compress_quantized`."""
    as_bytes = _RANS.decode(blob.stream)
    q = (as_bytes.astype(np.int16) - 128).astype(np.int8).reshape(blob.shape)
    return QuantizedLayer(q=q, scales=blob.scales)


def zipquant_gemm(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    bits_per_weight: float = 7.4,
) -> KernelProfile:
    """Fused decode + dequant + GEMM over compressed INT8 weights.

    Marlin-style mixed-precision kernel whose weight stream carries
    ``bits_per_weight`` (entropy-coded INT8, ~7.4 bits measured on Gaussian
    layers) instead of 8.
    """
    if min(m, k, n) <= 0:
        raise ConfigError("GEMM dims must be positive")
    if not 1.0 <= bits_per_weight <= 8.0:
        raise ConfigError("bits_per_weight must be in [1, 8]")
    ctas = ceil_div(m, 64) * ceil_div(n, 128)
    sat = saturation_fraction(spec, ctas, SATURATION_CTAS_FRAC_FUSED)
    w_bytes = m * k * bits_per_weight / 8.0
    x_bytes = 2.0 * k * n
    y_bytes = 2.0 * m * n
    mem_time = (w_bytes + x_bytes + y_bytes) / (
        spec.dram_bytes_per_s * spec.fused_bw_frac * sat
    )
    # Decode (entropy + dequant) costs slightly more ALU than TCA-TBE.
    alu_time = (
        float(m) * k * 1.2 * decode_cycles_per_element()
        / spec.sm_cycles_per_s
    )
    flops = 2.0 * m * n * k
    tc_time = flops / (spec.tc_flops * TC_EFFICIENCY)
    time_s = max(mem_time, alu_time, tc_time) + spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="zipquant_gemm",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=w_bytes + x_bytes,
                              dram_write=y_bytes),
        flops=flops,
        details={
            "mem_time_s": mem_time,
            "alu_time_s": alu_time,
            "tc_time_s": tc_time,
            "bits_per_weight": bits_per_weight,
        },
    )
