"""Lossless KV-cache compression (§7, extension direction 1).

The KV cache dominates memory in long-context serving; its BF16 entries are
activations whose exponents are as skewed as weights', so the same
fixed-length encoding applies.  This module provides:

* **functional layer** — bit-exact compression of KV blocks with the 1-D
  Vector-TBE format (:mod:`repro.tcatbe.vector`);
* **capacity layer** — :class:`CompressedKVCacheSpec`, a drop-in KV spec
  whose bytes/token shrink by the measured ratio (more tokens per GiB);
* **kernel layer** — a fused paged-attention model that streams the cache
  compressed and decodes in-kernel, the same load-compressed /
  compute-decompressed trade as ZipGEMM: less DRAM traffic, a bounded ALU
  decode cost per token;
* **cost layer** — :func:`compressed_cost_model`, a ready-made
  :class:`~repro.serving.costs.EngineCostModel` whose decode attention
  streams the compressed cache, pluggable straight into the event-driven
  serving core (:class:`~repro.serving.serve.ServingCore`).

Compression happens once per filled block (blocks are immutable after the
16th token), so the online compression cost is one Vector-TBE encode per
block per sequence — negligible next to a decode step.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..analysis.calibration import decode_cycles_per_element
from ..analysis.theory import window_coverage_gaussian
from ..errors import ConfigError, FormatError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from ..kernels.base import KernelProfile
from ..serving.kvcache import KVCacheSpec
from ..tcatbe.analysis import average_bits
from ..tcatbe.vector import VecTbe, compress_vector, decompress_vector

#: Activations are spikier than weights; a mild outlier share on top of the
#: Gaussian bulk lowers coverage slightly relative to weights.
_ACTIVATION_OUTLIER_FRACTION = 0.02

#: Streaming efficiency of the compressed paged-attention gather.
_PAGED_BW_FRAC = 0.80


def compress_kv_block(block: np.ndarray) -> VecTbe:
    """Losslessly compress one KV block (``tokens x kv_dim`` BF16/uint16)."""
    block = np.asarray(block)
    if block.dtype != np.uint16:
        raise FormatError("KV block must be BF16 bit patterns (uint16)")
    return compress_vector(block.ravel())


def decompress_kv_block(blob: VecTbe, shape: tuple[int, int]) -> np.ndarray:
    """Recover the exact KV block."""
    flat = decompress_vector(blob)
    if flat.size != shape[0] * shape[1]:
        raise FormatError(
            f"blob holds {flat.size} elements, expected {shape}"
        )
    return flat.reshape(shape)


@lru_cache(maxsize=256)
def kv_compression_ratio(sigma: float = 0.05) -> float:
    """Analytic KV compression ratio for activation scale ``sigma``.

    Same AverageBits(3) computation as weights, with coverage derated by the
    activation outlier share; lands around 1.35-1.4x.
    """
    if sigma <= 0:
        raise ConfigError("activation sigma must be positive")
    coverage = window_coverage_gaussian(sigma, k=7)
    coverage *= 1.0 - _ACTIVATION_OUTLIER_FRACTION
    bits = average_bits(3, coverage) + 24.0 * 8.0 / 4096.0
    return 16.0 / bits


def compressed_cost_model(
    model,
    gpu: GpuSpec,
    backend,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
    ratio: float | None = None,
):
    """A step cost model serving over a Vector-TBE-compressed KV cache.

    Convenience constructor for the serving stack's cost layer: decode
    attention streams the cache at ``1/ratio`` of the plain traffic (via
    :func:`paged_attention_decode_compressed`); pair it with a
    :class:`CompressedKVCacheSpec`-scaled block budget to also model the
    capacity side.  ``ratio=None`` uses the analytic activation ratio.
    """
    from ..serving.costs import EngineCostModel

    return EngineCostModel(
        model, gpu, backend,
        tensor_parallel=tensor_parallel,
        pipeline_parallel=pipeline_parallel,
        kv_compression_ratio=(
            ratio if ratio is not None else kv_compression_ratio()
        ),
    )


@dataclass(frozen=True)
class CompressedKVCacheSpec:
    """KV geometry with Vector-TBE-compressed blocks.

    Wraps a :class:`~repro.serving.kvcache.KVCacheSpec`; bytes per token
    shrink by ``ratio``, which the block allocator and memory planner then
    turn into proportionally more token capacity.
    """

    inner: KVCacheSpec
    ratio: float

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ConfigError("KV compression ratio must be >= 1")

    @property
    def bytes_per_token(self) -> int:
        """Compressed K+V bytes per token (ceil, per-block container)."""
        return max(1, int(np.ceil(self.inner.bytes_per_token / self.ratio)))

    @property
    def bytes_per_block(self) -> int:
        """Compressed bytes of one block."""
        return self.bytes_per_token * self.inner.block_size

    @property
    def capacity_gain(self) -> float:
        """Token-capacity multiplier at equal memory."""
        return self.inner.bytes_per_token / self.bytes_per_token


def paged_attention_decode_compressed(
    spec: GpuSpec,
    batch: int,
    ctx: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
    ratio: float | None = None,
) -> KernelProfile:
    """Fused decode attention over a compressed KV cache (per layer).

    Streams ``2 * ctx * kv_dim / ratio`` bytes per sequence and pays the
    Vector-TBE decode ALU cost per element — the attention-side analogue of
    ZipGEMM's trade.
    """
    if min(batch, ctx, heads, kv_heads, head_dim) <= 0:
        raise ConfigError("attention dims must be positive")
    if heads % kv_heads:
        raise ConfigError("query heads must divide by kv heads")
    r = ratio if ratio is not None else kv_compression_ratio()

    elements = 2.0 * batch * ctx * kv_heads * head_dim
    kv_bytes = elements * 2.0 / r
    io_bytes = 2.0 * batch * heads * head_dim * 2.0
    flops = 2.0 * 2.0 * batch * heads * ctx * head_dim

    mem_time = (kv_bytes + io_bytes) / (
        spec.dram_bytes_per_s * _PAGED_BW_FRAC
    )
    alu_time = elements * decode_cycles_per_element() / spec.sm_cycles_per_s
    compute_time = flops / (spec.tc_flops * 0.6)
    time_s = (
        max(mem_time, alu_time, compute_time)
        + spec.launch_overhead_us * 1e-6
    )
    return KernelProfile(
        kernel="paged_attention_compressed",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=kv_bytes + io_bytes / 2,
                              dram_write=io_bytes / 2),
        flops=flops,
        details={
            "mem_time_s": mem_time,
            "alu_time_s": alu_time,
            "compute_time_s": compute_time,
            "kv_ratio": r,
        },
    )
