"""Lossless KV-cache compression (§7, extension direction 1).

The KV cache dominates memory in long-context serving; its BF16 entries are
activations whose exponents are as skewed as weights', so the same
fixed-length encoding applies.  Since the unified compression registry
(:mod:`repro.compression`) landed, this module is the *named entry point*
for the Vector-TBE KV direction rather than a parallel universe: the
functional round-trip, the analytic ratio, the compressed-attention kernel
and the capacity-side spec all live in registry-resolved layers
(``vector_tbe`` codec — alias ``"kvcomp"`` —,
:func:`repro.kernels.attention.paged_attention_decode_compressed`,
:class:`repro.serving.kvcache.CompressedKVCacheSpec`), and this module
keeps the historical API surface on top of them:

* **functional layer** — bit-exact compression of KV blocks with the 1-D
  Vector-TBE format (:mod:`repro.tcatbe.vector`);
* **capacity layer** — :class:`CompressedKVCacheSpec`, a drop-in KV spec
  whose bytes/token shrink by the measured ratio (more tokens per GiB);
* **kernel layer** — a fused paged-attention model that streams the cache
  compressed and decodes in-kernel, the same load-compressed /
  compute-decompressed trade as ZipGEMM;
* **cost layer** — :func:`compressed_cost_model`, a ready-made
  :class:`~repro.serving.costs.EngineCostModel` whose decode attention
  streams the compressed cache.

Compression happens once per filled block (blocks are immutable after the
16th token), so the online compression cost is one Vector-TBE encode per
block per sequence — negligible next to a decode step.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..compression import get_codec
from ..errors import ConfigError, FormatError
from ..gpu.specs import GpuSpec
from ..kernels.attention import paged_attention_decode_compressed as _fused
from ..kernels.base import KernelProfile
from ..serving.kvcache import CompressedKVCacheSpec
from ..tcatbe.vector import VecTbe, compress_vector, decompress_vector

__all__ = [
    "CompressedKVCacheSpec",
    "compress_kv_block",
    "compressed_cost_model",
    "decompress_kv_block",
    "kv_compression_ratio",
    "paged_attention_decode_compressed",
]


def compress_kv_block(block: np.ndarray) -> VecTbe:
    """Losslessly compress one KV block (``tokens x kv_dim`` BF16/uint16)."""
    block = np.asarray(block)
    if block.dtype != np.uint16:
        raise FormatError("KV block must be BF16 bit patterns (uint16)")
    return compress_vector(block.ravel())


def decompress_kv_block(blob: VecTbe, shape: tuple[int, int]) -> np.ndarray:
    """Recover the exact KV block."""
    flat = decompress_vector(blob)
    if flat.size != shape[0] * shape[1]:
        raise FormatError(
            f"blob holds {flat.size} elements, expected {shape}"
        )
    return flat.reshape(shape)


@lru_cache(maxsize=256)
def kv_compression_ratio(sigma: float = 0.05) -> float:
    """Analytic KV compression ratio for activation scale ``sigma``.

    Delegates to the registry's ``vector_tbe`` estimator (AverageBits(3)
    with coverage derated by the activation outlier share); lands around
    1.35-1.4x.
    """
    if sigma <= 0:
        raise ConfigError("activation sigma must be positive")
    return get_codec("vector_tbe").ratio("kv", sigma)


def compressed_cost_model(
    model,
    gpu: GpuSpec,
    backend,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
    ratio: float | None = None,
):
    """A step cost model serving over a Vector-TBE-compressed KV cache.

    Convenience constructor for the serving stack's cost layer: decode
    attention streams the cache at ``1/ratio`` of the plain traffic; pair
    it with a :class:`CompressedKVCacheSpec`-scaled block budget to also
    model the capacity side.  ``ratio=None`` uses the analytic activation
    ratio.
    """
    from ..serving.costs import EngineCostModel

    return EngineCostModel(
        model, gpu, backend,
        tensor_parallel=tensor_parallel,
        pipeline_parallel=pipeline_parallel,
        kv_codec="vector_tbe",
        kv_compression_ratio=ratio,
    )


def paged_attention_decode_compressed(
    spec: GpuSpec,
    batch: int,
    ctx: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
    ratio: float | None = None,
) -> KernelProfile:
    """Fused decode attention over a Vector-TBE-compressed KV cache.

    Historical signature kept for callers of the extension: ``ratio=None``
    resolves the analytic activation ratio.  The kernel model itself lives
    in :func:`repro.kernels.attention.paged_attention_decode_compressed`,
    parameterised by registry codec hooks.
    """
    r = ratio if ratio is not None else kv_compression_ratio()
    return _fused(spec, batch, ctx, heads, kv_heads, head_dim, ratio=r)
