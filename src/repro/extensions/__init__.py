"""Extensions: the paper's §7 future-work directions, implemented.

Three directions the paper sketches beyond the core system:

* :mod:`repro.extensions.kvcomp` — lossless KV-cache compression with the
  1-D TCA-TBE adaptation, fused into the paged-attention path;
* :mod:`repro.extensions.checkpoint` — model checkpointing and incremental
  (delta) snapshots over compressed weights (the LMC/ZipNN use case);
* :mod:`repro.extensions.quant_combo` — lossless entropy compression *on
  top of* lossy INT8 quantisation, exploiting residual redundancy.
"""

from .checkpoint import (
    Checkpoint,
    DeltaSnapshot,
    delta_snapshot,
    load_checkpoint,
    restore_snapshot,
    save_checkpoint,
)
from .kvcomp import (
    CompressedKVCacheSpec,
    compress_kv_block,
    compressed_cost_model,
    decompress_kv_block,
    kv_compression_ratio,
    paged_attention_decode_compressed,
)
from .quant_combo import (
    QuantizedLayer,
    compress_quantized,
    decompress_quantized,
    quantize_int8,
    dequantize_int8,
    zipquant_gemm,
)

__all__ = [
    "compress_kv_block",
    "decompress_kv_block",
    "kv_compression_ratio",
    "CompressedKVCacheSpec",
    "compressed_cost_model",
    "paged_attention_decode_compressed",
    "Checkpoint",
    "DeltaSnapshot",
    "save_checkpoint",
    "load_checkpoint",
    "delta_snapshot",
    "restore_snapshot",
    "QuantizedLayer",
    "quantize_int8",
    "dequantize_int8",
    "compress_quantized",
    "decompress_quantized",
    "zipquant_gemm",
]
