"""Compressed model checkpointing and incremental snapshots (§7).

The paper's third extension direction points at efficient checkpointing
(LMC / ZipNN territory): store models compressed, and store *training
snapshots* as deltas, because consecutive checkpoints differ in a sparse,
low-entropy way.

* :func:`save_checkpoint` / :func:`load_checkpoint` — a multi-tensor
  container of TCA-TBE-compressed BF16 tensors (bit-exact).
* :func:`delta_snapshot` / :func:`restore_snapshot` — incremental snapshots:
  the XOR of consecutive BF16 bit patterns is mostly zero bytes and low-order
  mantissa flips, which the rANS byte codec squeezes hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..codecs.base import EncodedStream
from ..codecs.rans import RansCodec
from ..errors import FormatError
from ..tcatbe import TcaTbeMatrix, compress, decompress
from ..tcatbe.io import load_npz, save_npz

_RANS = RansCodec()


@dataclass
class Checkpoint:
    """A set of named, compressed BF16 tensors."""

    tensors: dict[str, TcaTbeMatrix]

    @property
    def original_nbytes(self) -> int:
        """Uncompressed footprint of all tensors."""
        return sum(t.original_nbytes for t in self.tensors.values())

    @property
    def compressed_nbytes(self) -> int:
        """Compressed footprint of all tensors."""
        return sum(t.compressed_nbytes for t in self.tensors.values())

    @property
    def ratio(self) -> float:
        """Aggregate compression ratio."""
        return self.original_nbytes / max(self.compressed_nbytes, 1)


def save_checkpoint(
    tensors: dict[str, np.ndarray], directory: str | Path
) -> Checkpoint:
    """Compress and persist a named tensor dict; returns the receipt."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    compressed = {}
    for name, weights in tensors.items():
        if "/" in name or name.startswith("."):
            raise FormatError(f"unsafe tensor name {name!r}")
        matrix = compress(weights)
        save_npz(matrix, directory / f"{name}.npz")
        compressed[name] = matrix
    return Checkpoint(tensors=compressed)


def load_checkpoint(directory: str | Path) -> dict[str, np.ndarray]:
    """Load and decompress every tensor saved by :func:`save_checkpoint`."""
    directory = Path(directory)
    out = {}
    for path in sorted(directory.glob("*.npz")):
        out[path.stem] = decompress(load_npz(path))
    if not out:
        raise FormatError(f"no checkpoint tensors found in {directory}")
    return out


@dataclass
class DeltaSnapshot:
    """An incremental snapshot: entropy-coded XOR against a base tensor."""

    name: str
    shape: tuple[int, ...]
    stream: EncodedStream

    @property
    def compressed_nbytes(self) -> int:
        """Footprint of the delta."""
        return self.stream.compressed_nbytes

    @property
    def original_nbytes(self) -> int:
        """Uncompressed footprint of the tensor."""
        n = 1
        for d in self.shape:
            n *= d
        return 2 * n

    @property
    def ratio(self) -> float:
        """Delta compression ratio (typically >> weight-level ratios)."""
        return self.original_nbytes / max(self.compressed_nbytes, 1)


def delta_snapshot(
    name: str, base: np.ndarray, current: np.ndarray
) -> DeltaSnapshot:
    """Encode ``current`` as an rANS-coded XOR delta against ``base``."""
    base = np.asarray(base)
    current = np.asarray(current)
    if base.dtype != np.uint16 or current.dtype != np.uint16:
        raise FormatError("snapshots operate on BF16 bit patterns (uint16)")
    if base.shape != current.shape:
        raise FormatError(
            f"shape mismatch: base {base.shape} vs current {current.shape}"
        )
    delta = (base ^ current).view(np.uint8).ravel()
    return DeltaSnapshot(
        name=name, shape=tuple(current.shape), stream=_RANS.encode(delta)
    )


def restore_snapshot(base: np.ndarray, snapshot: DeltaSnapshot) -> np.ndarray:
    """Exact inverse of :func:`delta_snapshot`."""
    base = np.asarray(base)
    if tuple(base.shape) != snapshot.shape:
        raise FormatError(
            f"base shape {base.shape} does not match snapshot"
            f" {snapshot.shape}"
        )
    delta_bytes = _RANS.decode(snapshot.stream)
    delta = delta_bytes.view(np.uint16).reshape(snapshot.shape)
    return (base ^ delta).astype(np.uint16)
