"""Common kernel-model types."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..errors import ConfigError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec


@dataclass
class KernelProfile:
    """Modelled outcome of one kernel (or short kernel sequence) launch."""

    kernel: str
    time_s: float
    traffic: TrafficRecord
    flops: float = 0.0
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("kernel time must be non-negative")

    @property
    def tflops(self) -> float:
        """Achieved TFLOP/s."""
        if self.time_s == 0:
            return 0.0
        return self.flops / self.time_s / 1e12

    @property
    def achieved_gbps(self) -> float:
        """Achieved DRAM bandwidth in GB/s."""
        if self.time_s == 0:
            return 0.0
        return self.traffic.dram_total / self.time_s / 1e9

    def speedup_over(self, other: "KernelProfile") -> float:
        """``other.time / self.time`` — how much faster this kernel is."""
        if self.time_s == 0:
            raise ConfigError("cannot compute speedup of a zero-time kernel")
        return other.time_s / self.time_s

    @staticmethod
    def combine(kernel: str, parts: list["KernelProfile"]) -> "KernelProfile":
        """Serial composition: times and traffic add up."""
        traffic = TrafficRecord()
        time_s = 0.0
        flops = 0.0
        for part in parts:
            time_s += part.time_s
            flops += part.flops
            traffic.add(part.traffic)
        return KernelProfile(
            kernel=kernel,
            time_s=time_s,
            traffic=traffic,
            flops=flops,
            details={"parts": [p.kernel for p in parts]},
        )


@dataclass(frozen=True)
class WeightCompression:
    """Compression statistics of a weight matrix, as the kernels see them.

    ``ratio`` is original bytes / compressed bytes *including* container
    metadata; ``coverage`` is the in-window element fraction (TCA-TBE only).
    """

    scheme: str
    ratio: float
    coverage: float = 0.0

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ConfigError(
                f"compression ratio must be >= 1, got {self.ratio}"
            )

    @property
    def compressed_fraction(self) -> float:
        """Compressed size as a fraction of the original."""
        return 1.0 / self.ratio

    @classmethod
    def from_tcatbe(cls, matrix) -> "WeightCompression":
        """Statistics of an actual compressed matrix."""
        return cls(
            scheme="tcatbe", ratio=matrix.ratio, coverage=matrix.coverage
        )

    @classmethod
    def identity(cls) -> "WeightCompression":
        """No compression (dense BF16)."""
        return cls(scheme="dense", ratio=1.0)


@lru_cache(maxsize=None)
def default_compression(scheme: str = "tcatbe") -> WeightCompression:
    """Measured compression statistics of a representative Gaussian layer.

    Compresses a sampled N(0, 0.02^2) matrix once per scheme and caches the
    result; used wherever a kernel model needs a ratio but the caller has no
    specific layer at hand.
    """
    from ..bf16 import gaussian_bf16_matrix

    sample = gaussian_bf16_matrix(512, 512, sigma=0.02, seed=99)
    if scheme == "tcatbe":
        from ..tcatbe import compress

        return WeightCompression.from_tcatbe(compress(sample))
    if scheme == "dense":
        return WeightCompression.identity()

    from ..codecs import get_bf16_codec

    blob = get_bf16_codec(scheme).compress(sample)
    return WeightCompression(scheme=scheme, ratio=blob.ratio)


def saturation_fraction(spec: GpuSpec, ctas: int, ctas_frac: float) -> float:
    """DRAM saturation achieved by ``ctas`` thread blocks.

    Streaming kernels need roughly ``ctas_frac x SM-count`` resident CTAs to
    reach peak bandwidth; below that, achieved bandwidth scales ~linearly.
    """
    if ctas <= 0:
        raise ConfigError("CTA count must be positive")
    return min(1.0, ctas / (ctas_frac * spec.sm_count))
