"""Bit-exact functional GEMM executors (correctness layer of ZipGEMM).

Performance is modelled analytically elsewhere; *values* are computed here.
Both executors run the exact same tiled schedule — one FragTile-sized
``(8,8) @ (8,N)`` multiply-accumulate per step, in canonical tile order — and
differ only in where the fragment comes from:

* :func:`dense_gemm_tiled` slices it from the uncompressed weights;
* :func:`zipgemm_execute` decodes it from the TCA-TBE buffers immediately
  before use ("load-compressed, compute-decompressed", §4.3).

Because TCA-TBE is lossless and the schedules are identical, the outputs are
bit-identical float32 arrays — the paper's "bit-exact inference" property,
asserted directly in the tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..bf16 import bf16_to_f32
from ..errors import ShapeError
from ..tcatbe.decompressor import decompress_tile
from ..tcatbe.format import TcaTbeMatrix
from ..tcatbe.layout import FRAG_TILE, pad_matrix, padded_shape, tile_base_coords
from ..utils import require_2d

#: Type of a fragment source: tile index -> (8, 8) float32 fragment.
FragProvider = Callable[[int], np.ndarray]


def _pad_activations(x: np.ndarray, k_padded: int) -> np.ndarray:
    if x.dtype != np.float32:
        raise ShapeError("activations must be float32")
    require_2d(x, "activations")
    if x.shape[0] == k_padded:
        return x
    out = np.zeros((k_padded, x.shape[1]), dtype=np.float32)
    out[: x.shape[0]] = x
    return out


def _tiled_gemm(
    frag_provider: FragProvider,
    shape: tuple[int, int],
    shape_padded: tuple[int, int],
    x: np.ndarray,
) -> np.ndarray:
    """Shared tiled schedule: accumulate FragTile products in canonical order.

    The canonical tile order visits, for each output row strip, its K slices
    in ascending K — mirroring the kernel's split-K chunk loop.  Both the
    dense reference and the fused path call this exact function, so their
    floating-point operation order is identical.
    """
    m, k = shape
    mp, kp = shape_padded
    if x.shape[0] != k:
        raise ShapeError(f"K mismatch: weights {m}x{k} vs activations {x.shape}")
    xp = _pad_activations(x, kp)
    out = np.zeros((mp, x.shape[1]), dtype=np.float32)
    for tile_index, (row0, col0) in enumerate(tile_base_coords(mp, kp)):
        frag = frag_provider(tile_index)
        out[row0:row0 + FRAG_TILE] += frag @ xp[col0:col0 + FRAG_TILE]
    return out[:m]


def dense_gemm_tiled(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Reference BF16 GEMM over uncompressed weights (uint16 MxK)."""
    require_2d(weights, "weights")
    if weights.dtype != np.uint16:
        raise ShapeError("weights must be BF16 bit patterns (uint16)")
    padded = pad_matrix(weights, 0)
    coords = tile_base_coords(*padded.shape)
    w32 = bf16_to_f32(padded)

    def provider(tile_index: int) -> np.ndarray:
        row0, col0 = coords[tile_index]
        # Contiguous copy: BLAS may pick a different (differently-ordered)
        # microkernel for strided views, which would break bit-equality with
        # the fused path's contiguous fragments.
        return np.ascontiguousarray(
            w32[row0:row0 + FRAG_TILE, col0:col0 + FRAG_TILE]
        )

    return _tiled_gemm(provider, weights.shape, padded.shape, x)


def zipgemm_execute(matrix: TcaTbeMatrix, x: np.ndarray) -> np.ndarray:
    """Fused execution: decode each FragTile on the fly, then accumulate."""

    def provider(tile_index: int) -> np.ndarray:
        bits = decompress_tile(matrix, tile_index)
        return bf16_to_f32(bits.reshape(FRAG_TILE, FRAG_TILE))

    return _tiled_gemm(provider, matrix.shape, matrix.padded_shape, x)


def dense_gemm_reference(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Plain ``W @ X`` in float32 (library order) for approximate checks."""
    require_2d(weights, "weights")
    if weights.dtype != np.uint16:
        raise ShapeError("weights must be BF16 bit patterns (uint16)")
    return bf16_to_f32(weights) @ x


def padded_shape_of(weights: np.ndarray) -> tuple[int, int]:
    """Convenience re-export for tests."""
    return padded_shape(*weights.shape)
