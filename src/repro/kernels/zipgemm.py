"""Fused decompression-GEMM (ZipGEMM) cost model (§4.3).

The kernel streams TCA-TBE weights from DRAM (compressed — this is the whole
point), decodes them in registers with integer ALU work, and feeds tensor
cores.  Three resources can bound it:

* **memory** — compressed weight bytes + activations + outputs, at the fused
  kernel's streaming efficiency and CTA saturation;
* **decode ALU** — ``cycles_per_element`` (measured from the Algorithm-2
  instruction mix) per decoded element, re-decoded once per 128-column
  output tile, spread over all SMs;
* **tensor cores** — plus the slice of decode instructions that steals issue
  slots from ``mma`` (ISSUE_CONTENTION), which is what eventually makes the
  fused path lose to a decoupled pipeline at prefill-sized N (Figure 15).

The paper's BlockTile is fixed at 64x64 with a coarse split-K heuristic
(§6.1 notes small layers would need per-shape tuning that is out of scope).
"""

from __future__ import annotations

from ..analysis.calibration import (
    ISSUE_CONTENTION,
    SATURATION_CTAS_FRAC_FUSED,
    TC_EFFICIENCY,
    decode_cycles_per_element,
)
from ..errors import ConfigError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from ..utils import ceil_div
from .base import KernelProfile, WeightCompression, default_compression, saturation_fraction

#: BlockTile rows per CTA (fixed by the format).
ZIP_TILE_M = 64

#: Output columns decoded per weight-tile pass: decode work repeats every
#: ceil(N / ZIP_TILE_N) column tiles.
ZIP_TILE_N = 128

_PARTIAL_BYTES = 4


def zip_splitk_heuristic(m: int, k: int) -> int:
    """The kernel's coarse split-K policy: one split per ~4096 of K.

    This is deliberately *not* a per-shape search — the paper states that
    fine-grained split-K tuning for small layers is beyond scope, and the
    small-layer slowdowns in Figure 11 follow from exactly this policy.
    """
    return max(1, min(8, k // 4096))


def zipgemm(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """Profile one fused ZipGEMM launch ``Y[M,N] = dec(Wc)[M,K] @ X[K,N]``."""
    if min(m, k, n) <= 0:
        raise ConfigError(f"GEMM dims must be positive, got {m}x{k}x{n}")
    comp = compression or default_compression("tcatbe")

    splitk = zip_splitk_heuristic(m, k)
    n_col_tiles = ceil_div(n, ZIP_TILE_N)
    ctas = ceil_div(m, ZIP_TILE_M) * n_col_tiles * splitk
    sat = saturation_fraction(spec, ctas, SATURATION_CTAS_FRAC_FUSED)

    w_bytes = 2.0 * m * k * comp.compressed_fraction
    x_bytes = 2.0 * k * n
    y_bytes = 2.0 * m * n
    partial_bytes = 0.0
    if splitk > 1:
        partial_bytes = 2.0 * _PARTIAL_BYTES * m * n * splitk
    dram = w_bytes + x_bytes + y_bytes + partial_bytes
    bw = spec.dram_bytes_per_s * spec.fused_bw_frac * sat
    mem_time = dram / bw

    # Decode ALU: every weight element is reconstructed once per column tile.
    cycles = decode_cycles_per_element()
    decoded_elements = float(m) * k * n_col_tiles
    alu_time = decoded_elements * cycles / spec.sm_cycles_per_s

    flops = 2.0 * m * n * k
    waves = ctas / spec.sm_count
    quantisation = ceil_div(ctas, spec.sm_count) / waves
    tc_time = flops / (spec.tc_flops * TC_EFFICIENCY) * quantisation
    # Decode instructions and mma share the issue stage.
    compute_time = tc_time + ISSUE_CONTENTION * alu_time

    launches = 1 + (1 if splitk > 1 else 0)
    time_s = (
        max(mem_time, alu_time, compute_time)
        + launches * spec.launch_overhead_us * 1e-6
    )

    traffic = TrafficRecord(
        dram_read=w_bytes + x_bytes + partial_bytes / 2.0,
        dram_write=y_bytes + partial_bytes / 2.0,
    )
    return KernelProfile(
        kernel="zipgemm",
        time_s=time_s,
        traffic=traffic,
        flops=flops,
        details={
            "splitk": splitk,
            "ctas": ctas,
            "saturation": sat,
            "mem_time_s": mem_time,
            "alu_time_s": alu_time,
            "tc_time_s": tc_time,
            "compute_time_s": compute_time,
            "alu_busy_frac": min(1.0, alu_time / max(time_s, 1e-30)),
            "tc_busy_frac": min(1.0, tc_time / max(time_s, 1e-30)),
            "cycles_per_element": cycles,
            "compression_ratio": comp.ratio,
        },
    )
