"""Kernel-level models: functional executors plus analytical cost models.

Each public function returns a :class:`~repro.kernels.base.KernelProfile`
describing one kernel launch (time, DRAM traffic, FLOPs, and the model's
internal terms).  The models are first-principles — traffic from the format
definitions, ALU cycles from the executed instruction mix, bandwidth
efficiencies from the device spec and the calibration table — so paper-shaped
results *emerge* rather than being hard-coded.
"""

from .attention import (
    eager_attention_decode,
    eager_attention_prefill,
    flash_attention_prefill,
    paged_attention_decode,
    paged_attention_decode_compressed,
)
from .base import KernelProfile, WeightCompression
from .decompress import baseline_decompress, zipserv_decompress
from .gemm import cublas_gemm
from .marlin import marlin_w8a16_gemm
from .pipeline import (
    decoupled_pipeline,
    fused_wins,
    linear_profile,
    stage_aware_linear,
)
from .zipgemm import zipgemm

__all__ = [
    "KernelProfile",
    "WeightCompression",
    "cublas_gemm",
    "zipgemm",
    "zipserv_decompress",
    "baseline_decompress",
    "decoupled_pipeline",
    "stage_aware_linear",
    "linear_profile",
    "fused_wins",
    "marlin_w8a16_gemm",
    "paged_attention_decode",
    "paged_attention_decode_compressed",
    "flash_attention_prefill",
    "eager_attention_decode",
    "eager_attention_prefill",
]
