"""cuBLAS-style dense BF16 tensor-core GEMM cost model.

Models ``Y[M,N] = W[M,K] @ X[K,N]`` the way cuBLAS executes it: a tiled
kernel chosen from a small config table (tile sizes trade per-CTA bandwidth
efficiency against grid occupancy), with optional 2-way split-K for skinny
problems.  Time is the max of the memory roof and the compute roof with
wave-quantisation, plus launch overhead — the standard performance model for
memory/compute-bound GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import SATURATION_CTAS_FRAC_DENSE, TC_EFFICIENCY
from ..errors import ConfigError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from ..utils import ceil_div
from .base import KernelProfile, saturation_fraction


@dataclass(frozen=True)
class TileConfig:
    """One entry of the kernel-selection table."""

    tile_m: int
    tile_n: int
    bw_derate: float  # smaller tiles vectorise worse
    tc_derate: float  # and keep tensor cores less busy


#: cuBLAS-like config table: large tiles stream best, small tiles fill the
#: grid for skinny shapes at lower efficiency.
TILE_CONFIGS: tuple[TileConfig, ...] = (
    TileConfig(256, 128, 1.00, 1.00),
    TileConfig(128, 128, 1.00, 1.00),
    TileConfig(128, 64, 0.97, 0.94),
    TileConfig(64, 64, 0.92, 0.88),
    TileConfig(64, 32, 0.85, 0.75),
    TileConfig(32, 32, 0.75, 0.62),
)

#: cuBLAS applies split-K conservatively (library heuristics).
CUBLAS_SPLITK: tuple[int, ...] = (1, 2)

#: Bytes of an FP32 split-K partial element (written then read back).
_PARTIAL_BYTES = 4


def _config_profile(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    cfg: TileConfig,
    splitk: int,
    weight_bytes: float,
) -> KernelProfile:
    ctas = ceil_div(m, cfg.tile_m) * ceil_div(n, cfg.tile_n) * splitk
    sat = saturation_fraction(spec, ctas, SATURATION_CTAS_FRAC_DENSE)

    x_bytes = 2.0 * k * n
    y_bytes = 2.0 * m * n
    partial_bytes = 0.0
    if splitk > 1:
        # Every split writes FP32 partials; the reduction re-reads them.
        partial_bytes = 2.0 * _PARTIAL_BYTES * m * n * splitk
    dram = weight_bytes + x_bytes + y_bytes + partial_bytes

    bw = spec.dram_bytes_per_s * spec.dense_bw_frac * cfg.bw_derate * sat
    mem_time = dram / bw

    flops = 2.0 * m * n * k
    waves = ctas / spec.sm_count
    quantisation = ceil_div(ctas, spec.sm_count) / waves
    tc_time = flops / (spec.tc_flops * TC_EFFICIENCY * cfg.tc_derate)
    tc_time *= quantisation

    launches = 1 + (1 if splitk > 1 else 0)
    time_s = max(mem_time, tc_time) + launches * spec.launch_overhead_us * 1e-6

    traffic = TrafficRecord(
        dram_read=weight_bytes + x_bytes + partial_bytes / 2.0,
        dram_write=y_bytes + partial_bytes / 2.0,
    )
    return KernelProfile(
        kernel="cublas_tc",
        time_s=time_s,
        traffic=traffic,
        flops=flops,
        details={
            "tile": (cfg.tile_m, cfg.tile_n),
            "splitk": splitk,
            "ctas": ctas,
            "mem_time_s": mem_time,
            "tc_time_s": tc_time,
            "saturation": sat,
        },
    )


def cublas_gemm(
    spec: GpuSpec, m: int, k: int, n: int, weight_dtype_bytes: float = 2.0
) -> KernelProfile:
    """Best-config dense GEMM profile (the paper's cuBLAS_TC baseline).

    Parameters
    ----------
    spec:
        Target GPU.
    m, k, n:
        GEMM dims: weights (m, k), activations (k, n).
    weight_dtype_bytes:
        2 for BF16; the decoupled pipelines reuse this model for the GEMM
        stage over the decompressed buffer.
    """
    if min(m, k, n) <= 0:
        raise ConfigError(f"GEMM dims must be positive, got {m}x{k}x{n}")
    weight_bytes = float(weight_dtype_bytes) * m * k
    best: KernelProfile | None = None
    for cfg in TILE_CONFIGS:
        for splitk in CUBLAS_SPLITK:
            profile = _config_profile(spec, m, k, n, cfg, splitk, weight_bytes)
            if best is None or profile.time_s < best.time_s:
                best = profile
    assert best is not None
    return best
