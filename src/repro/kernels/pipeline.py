"""Pipeline composition: decoupled baselines and the stage-aware strategy.

The baselines execute *decompress-then-GEMM* (Figure 4): the decompressed
weights round-trip through global memory before a standard cuBLAS GEMM
consumes them.  ZipServ's inference engine is stage-aware (§4.4): the
memory-bound decode phase uses the fused ZipGEMM, the compute-bound prefill
phase uses its own decompression kernel followed by cuBLAS, which amortises
to a few percent overhead at large N (Figure 15).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..gpu.specs import GpuSpec
from .base import KernelProfile, WeightCompression
from .decompress import baseline_decompress, zipserv_decompress
from .gemm import cublas_gemm
from .zipgemm import zipgemm

#: N at or below which the engine always picks the fused kernel; above, it
#: compares the two paths (the crossover in Figure 15 sits between 128 and
#: 256 on Ada GPUs).
FUSED_N_THRESHOLD = 128


def decoupled_pipeline(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    codec: str,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """Baseline pipeline: entropy decompression + dense GEMM, serialised."""
    decomp = baseline_decompress(spec, m, k, codec, compression)
    gemm = cublas_gemm(spec, m, k, n)
    profile = KernelProfile.combine(f"{codec}_pipeline", [decomp, gemm])
    profile.details["decomp_time_s"] = decomp.time_s
    profile.details["gemm_time_s"] = gemm.time_s
    profile.details["decomp_over_gemm"] = decomp.time_s / gemm.time_s
    return profile


def zipserv_decoupled(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """ZipServ's prefill path: TCA-TBE expansion + cuBLAS GEMM."""
    decomp = zipserv_decompress(spec, m, k, compression)
    gemm = cublas_gemm(spec, m, k, n)
    profile = KernelProfile.combine("zipserv_decoupled", [decomp, gemm])
    profile.details["decomp_time_s"] = decomp.time_s
    profile.details["gemm_time_s"] = gemm.time_s
    profile.details["overhead_frac"] = decomp.time_s / gemm.time_s
    return profile


def fused_wins(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    compression: WeightCompression | None = None,
) -> bool:
    """Stage-aware predicate: should this linear layer run fused?

    Decode-sized N always runs fused; otherwise the two modelled paths are
    compared (a deployment would make this decision offline per shape).
    """
    if n <= FUSED_N_THRESHOLD:
        return True
    fused = zipgemm(spec, m, k, n, compression)
    decoupled = zipserv_decoupled(spec, m, k, n, compression)
    return fused.time_s <= decoupled.time_s


def linear_profile(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    codec,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """Linear-layer execution for one registry codec (spec-driven).

    The stage-aware selection used to be keyed on backend strings; it now
    dispatches on the codec's declared ``linear_mode`` hook
    (:class:`repro.compression.Codec`): ``"cublas"`` runs the dense GEMM,
    ``"stage_aware"`` runs the fused-vs-decoupled ZipServ strategy, and
    ``"decoupled"`` runs the decompress-then-GEMM baseline pipeline named
    by ``codec.baseline_codec``.  ``codec`` is duck-typed (anything with
    ``linear_mode`` / ``baseline_codec`` attributes) so this module stays
    below the compression registry in the layer diagram.
    """
    if codec.linear_mode == "cublas":
        return cublas_gemm(spec, m, k, n)
    if codec.linear_mode == "stage_aware":
        return stage_aware_linear(spec, m, k, n, compression)
    if codec.linear_mode == "decoupled":
        return decoupled_pipeline(
            spec, m, k, n, codec.baseline_codec, compression
        )
    raise ConfigError(f"unknown linear mode {codec.linear_mode!r}")


def stage_aware_linear(
    spec: GpuSpec,
    m: int,
    k: int,
    n: int,
    compression: WeightCompression | None = None,
    mode: str = "auto",
) -> KernelProfile:
    """ZipServ's linear-layer execution under the stage-aware strategy.

    Parameters
    ----------
    mode:
        ``"auto"`` (stage-aware selection), ``"fused"`` or ``"decoupled"``
        to force a path (used by the ablation benches).
    """
    if mode not in ("auto", "fused", "decoupled"):
        raise ConfigError(f"unknown stage mode {mode!r}")
    if mode == "fused" or (
        mode == "auto" and fused_wins(spec, m, k, n, compression)
    ):
        profile = zipgemm(spec, m, k, n, compression)
        profile.details["path"] = "fused"
        return profile
    profile = zipserv_decoupled(spec, m, k, n, compression)
    profile.details["path"] = "decoupled"
    return profile
