"""Attention kernel cost models for the serving engine.

Two families:

* **vLLM-style**: PagedAttention for decode (KV-cache streaming bound) and
  FlashAttention for prefill (compute bound, no score materialisation);
* **HF-Transformers-style eager**: materialises the full score matrix in
  global memory, adding passes and launches — the main reason the
  Transformers baseline trails vLLM in Figure 16.
"""

from __future__ import annotations

import numpy as np

from ..analysis.calibration import decode_cycles_per_element
from ..errors import ConfigError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from .base import KernelProfile

#: Streaming efficiency of the paged-KV gather (block tables cost a bit).
#: Public: also the base fraction codec hooks derate for compressed
#: streaming (see ``paged_attention_decode_compressed`` and the cost layer).
PAGED_BW_FRAC = 0.80

#: Tensor-core efficiency of FlashAttention-style prefill kernels.
_FLASH_TC_FRAC = 0.60

#: Eager attention: softmax/matmul passes run at this streaming efficiency.
_EAGER_BW_FRAC = 0.70


def _check(batch: int, ctx: int, heads: int, kv_heads: int, head_dim: int):
    if min(batch, ctx, heads, kv_heads, head_dim) <= 0:
        raise ConfigError("attention dims must be positive")
    if heads % kv_heads:
        raise ConfigError(
            f"query heads {heads} not divisible by kv heads {kv_heads}"
        )


def paged_attention_decode(
    spec: GpuSpec,
    batch: int,
    ctx: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> KernelProfile:
    """One decode-step attention over a paged KV cache (per layer).

    Dominated by streaming K and V for every sequence in the batch:
    ``2 (K and V) * ctx * kv_heads * head_dim * 2 B`` per sequence.
    """
    _check(batch, ctx, heads, kv_heads, head_dim)
    kv_bytes = 2.0 * batch * ctx * kv_heads * head_dim * 2.0
    io_bytes = 2.0 * batch * heads * head_dim * 2.0  # q in, out
    flops = 2.0 * 2.0 * batch * heads * ctx * head_dim  # qk + av
    mem_time = (kv_bytes + io_bytes) / (
        spec.dram_bytes_per_s * PAGED_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    time_s = max(mem_time, compute_time) + spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="paged_attention",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=kv_bytes + io_bytes / 2,
                              dram_write=io_bytes / 2),
        flops=flops,
        details={"mem_time_s": mem_time, "compute_time_s": compute_time},
    )


def paged_attention_decode_compressed(
    spec: GpuSpec,
    batch: int,
    ctx: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
    ratio: float,
    cycles_per_element: float | None = None,
    bw_frac: float = PAGED_BW_FRAC,
) -> KernelProfile:
    """Fused decode attention over a compressed KV cache (per layer).

    Streams ``2 * ctx * kv_dim / ratio`` bytes per sequence and pays a
    per-element decode ALU cost — the attention-side analogue of
    ZipGEMM's load-compressed / compute-decompressed trade.  The codec
    plugs in through two registry hooks: ``cycles_per_element`` (the
    in-kernel decode cost; defaults to the calibrated TBE figure) and
    ``bw_frac`` (streaming efficiency of the compressed gather; entropy
    codecs derate it below the plain paged fraction).
    """
    _check(batch, ctx, heads, kv_heads, head_dim)
    if ratio < 1.0:
        raise ConfigError(f"compression ratio must be >= 1, got {ratio}")
    if cycles_per_element is None:
        cycles_per_element = decode_cycles_per_element()

    elements = 2.0 * batch * ctx * kv_heads * head_dim
    kv_bytes = elements * 2.0 / ratio
    io_bytes = 2.0 * batch * heads * head_dim * 2.0
    flops = 2.0 * 2.0 * batch * heads * ctx * head_dim

    mem_time = (kv_bytes + io_bytes) / (spec.dram_bytes_per_s * bw_frac)
    alu_time = elements * cycles_per_element / spec.sm_cycles_per_s
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    time_s = (
        max(mem_time, alu_time, compute_time)
        + spec.launch_overhead_us * 1e-6
    )
    return KernelProfile(
        kernel="paged_attention_compressed",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=kv_bytes + io_bytes / 2,
                              dram_write=io_bytes / 2),
        flops=flops,
        details={
            "mem_time_s": mem_time,
            "alu_time_s": alu_time,
            "compute_time_s": compute_time,
            "kv_ratio": ratio,
        },
    )


def _check_ctxs(ctxs: np.ndarray) -> None:
    if ctxs.ndim != 1:
        raise ConfigError("ctxs must be a 1-D array of context lengths")
    if ctxs.size and float(ctxs.min()) <= 0:
        raise ConfigError("attention dims must be positive")


def paged_attention_decode_batch(
    spec: GpuSpec,
    batch: int,
    ctxs: np.ndarray,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> np.ndarray:
    """Per-layer ``paged_attention_decode`` seconds over an array of contexts.

    Element ``i`` is bit-identical to
    ``paged_attention_decode(spec, batch, ctxs[i], ...).time_s``: the
    expression tree of the scalar kernel is preserved term for term, and
    float64 elementwise arithmetic performs the same operations in the
    same order as the scalar path.  Used by the cost layer to price a
    whole fast-forward window in one pass; the scalar variant remains
    the single-step and introspection path (profiles, traffic records).
    """
    ctxs = np.asarray(ctxs, dtype=np.float64)
    _check(batch, 1, heads, kv_heads, head_dim)
    _check_ctxs(ctxs)
    kv_bytes = 2.0 * batch * ctxs * kv_heads * head_dim * 2.0
    io_bytes = 2.0 * batch * heads * head_dim * 2.0
    flops = 2.0 * 2.0 * batch * heads * ctxs * head_dim
    mem_time = (kv_bytes + io_bytes) / (
        spec.dram_bytes_per_s * PAGED_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    return np.maximum(mem_time, compute_time) + spec.launch_overhead_us * 1e-6


def paged_attention_decode_compressed_batch(
    spec: GpuSpec,
    batch: int,
    ctxs: np.ndarray,
    heads: int,
    kv_heads: int,
    head_dim: int,
    ratio: float,
    cycles_per_element: float | None = None,
    bw_frac: float = PAGED_BW_FRAC,
) -> np.ndarray:
    """Per-layer ``paged_attention_decode_compressed`` seconds, vectorized.

    Elementwise bit-identical to the scalar kernel's ``time_s`` (same
    expression tree; ``max(a, b, c)`` becomes two nested
    ``np.maximum`` calls, identical for non-NaN floats).
    """
    ctxs = np.asarray(ctxs, dtype=np.float64)
    _check(batch, 1, heads, kv_heads, head_dim)
    _check_ctxs(ctxs)
    if ratio < 1.0:
        raise ConfigError(f"compression ratio must be >= 1, got {ratio}")
    if cycles_per_element is None:
        cycles_per_element = decode_cycles_per_element()
    elements = 2.0 * batch * ctxs * kv_heads * head_dim
    kv_bytes = elements * 2.0 / ratio
    io_bytes = 2.0 * batch * heads * head_dim * 2.0
    flops = 2.0 * 2.0 * batch * heads * ctxs * head_dim
    mem_time = (kv_bytes + io_bytes) / (spec.dram_bytes_per_s * bw_frac)
    alu_time = elements * cycles_per_element / spec.sm_cycles_per_s
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    return (
        np.maximum(np.maximum(mem_time, alu_time), compute_time)
        + spec.launch_overhead_us * 1e-6
    )


def eager_attention_decode_batch(
    spec: GpuSpec,
    batch: int,
    ctxs: np.ndarray,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> np.ndarray:
    """Per-layer ``eager_attention_decode`` seconds, vectorized.

    Elementwise bit-identical to the scalar kernel's ``time_s``.
    """
    ctxs = np.asarray(ctxs, dtype=np.float64)
    _check(batch, 1, heads, kv_heads, head_dim)
    _check_ctxs(ctxs)
    kv_bytes = 2.0 * batch * ctxs * kv_heads * head_dim * 2.0
    score_bytes = 4.0 * batch * heads * ctxs * 4.0
    flops = 2.0 * 2.0 * batch * heads * ctxs * head_dim
    mem_time = (kv_bytes + score_bytes) / (
        spec.dram_bytes_per_s * _EAGER_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    return (
        np.maximum(mem_time, compute_time)
        + 3 * spec.launch_overhead_us * 1e-6
    )


def flash_attention_prefill(
    spec: GpuSpec,
    batch: int,
    seq_len: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> KernelProfile:
    """Causal FlashAttention over a prompt (per layer)."""
    _check(batch, seq_len, heads, kv_heads, head_dim)
    # Causal masking halves the score work.
    flops = 2.0 * 2.0 * batch * heads * seq_len * seq_len * head_dim * 0.5
    qkv_bytes = 3.0 * batch * seq_len * heads * head_dim * 2.0
    out_bytes = batch * seq_len * heads * head_dim * 2.0
    mem_time = (qkv_bytes + out_bytes) / (
        spec.dram_bytes_per_s * PAGED_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    time_s = max(mem_time, compute_time) + spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="flash_attention",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=qkv_bytes, dram_write=out_bytes),
        flops=flops,
        details={"mem_time_s": mem_time, "compute_time_s": compute_time},
    )


def eager_attention_decode(
    spec: GpuSpec,
    batch: int,
    ctx: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> KernelProfile:
    """HF-eager decode attention: bmm + softmax + bmm with materialised
    scores (three launches, extra score traffic)."""
    _check(batch, ctx, heads, kv_heads, head_dim)
    kv_bytes = 2.0 * batch * ctx * kv_heads * head_dim * 2.0
    # FP32 score row per head: written by QK^T, read+written by softmax,
    # read by the AV matmul.
    score_bytes = 4.0 * batch * heads * ctx * 4.0
    flops = 2.0 * 2.0 * batch * heads * ctx * head_dim
    mem_time = (kv_bytes + score_bytes) / (
        spec.dram_bytes_per_s * _EAGER_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    time_s = max(mem_time, compute_time) + 3 * spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="eager_attention",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=kv_bytes + score_bytes * 0.6,
                              dram_write=score_bytes * 0.4),
        flops=flops,
        details={"mem_time_s": mem_time, "compute_time_s": compute_time},
    )


def eager_attention_prefill(
    spec: GpuSpec,
    batch: int,
    seq_len: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
) -> KernelProfile:
    """HF-eager prefill: materialises the full S x S score matrix."""
    _check(batch, seq_len, heads, kv_heads, head_dim)
    flops = 2.0 * 2.0 * batch * heads * seq_len * seq_len * head_dim * 0.5
    qkv_bytes = 4.0 * batch * seq_len * heads * head_dim * 2.0
    score_bytes = 4.0 * batch * heads * seq_len * seq_len * 4.0
    mem_time = (qkv_bytes + score_bytes) / (
        spec.dram_bytes_per_s * _EAGER_BW_FRAC
    )
    compute_time = flops / (spec.tc_flops * _FLASH_TC_FRAC)
    time_s = max(mem_time, compute_time) + 3 * spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="eager_attention_prefill",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=qkv_bytes + score_bytes * 0.6,
                              dram_write=score_bytes * 0.4),
        flops=flops,
        details={"mem_time_s": mem_time, "compute_time_s": compute_time},
    )
