"""Standalone decompression kernels: ZipServ-Decomp and the baselines (§6.2).

All decompressors move the same fundamental bytes — read the compressed
form, write the BF16 tensor — so what separates them is *achieved bandwidth*:

* **ZipServ-Decomp** is fixed-length, warp-aligned and branch-free; it runs
  at the device's coalesced-streaming efficiency.
* **DFloat11** (Huffman) pays serial bit-pointer advancement and LUT
  dependencies — 76.5% of peak (§3.2).
* **DietGPU** (rANS) pays scattered table gathers and per-lane
  renormalisation divergence — 43.7% of peak.
* **nvCOMP** additionally needs a second full pass to reassemble BF16 words
  from the decoded exponent plane, because it has no native BF16 mode.
"""

from __future__ import annotations

from ..analysis.calibration import (
    BASELINE_DECODE_BW_FRAC,
    decode_cycles_per_element,
)
from ..errors import ConfigError, UnknownSpecError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from .base import KernelProfile, WeightCompression, default_compression

#: Efficiency of the trivial nvCOMP reassembly pass (pure streaming).
_REASSEMBLY_BW_FRAC = 0.85


def zipserv_decompress(
    spec: GpuSpec,
    m: int,
    k: int,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """TCA-TBE -> BF16 expansion into a global-memory buffer.

    Used standalone (Figure 13) and as the first stage of the prefill
    decoupled pipeline (§4.4); it shares the per-thread decode logic — and
    hence the measured ALU cycle cost — with the fused kernel.
    """
    if min(m, k) <= 0:
        raise ConfigError(f"matrix dims must be positive, got {m}x{k}")
    comp = compression or default_compression("tcatbe")
    read = 2.0 * m * k * comp.compressed_fraction
    write = 2.0 * m * k
    mem_time = (read + write) / (
        spec.dram_bytes_per_s * spec.decomp_bw_frac
    )
    alu_time = (
        float(m) * k * decode_cycles_per_element() / spec.sm_cycles_per_s
    )
    time_s = max(mem_time, alu_time) + spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="zipserv_decomp",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=read, dram_write=write),
        details={
            "mem_time_s": mem_time,
            "alu_time_s": alu_time,
            "compression_ratio": comp.ratio,
        },
    )


def baseline_decompress(
    spec: GpuSpec,
    m: int,
    k: int,
    codec: str,
    compression: WeightCompression | None = None,
) -> KernelProfile:
    """Entropy-codec decompression kernel (DFloat11 / DietGPU / nvCOMP)."""
    if min(m, k) <= 0:
        raise ConfigError(f"matrix dims must be positive, got {m}x{k}")
    if codec not in BASELINE_DECODE_BW_FRAC:
        raise UnknownSpecError(
            "baseline codec", codec, list(BASELINE_DECODE_BW_FRAC)
        )
    comp = compression or default_compression(codec)
    elements = float(m) * k
    total_compressed = 2.0 * elements * comp.compressed_fraction
    # Split-plane layout: raw sign+mantissa plane is one byte per element,
    # the exponent stream is whatever remains of the compressed footprint.
    sm_plane = elements
    exp_stream = max(total_compressed - sm_plane, 0.0)
    eff = BASELINE_DECODE_BW_FRAC[codec] * spec.dram_bytes_per_s

    traffic = TrafficRecord()
    if codec == "nvcomp":
        # Pass 1: rANS-decode the exponent plane into scratch.
        pass1 = (exp_stream + elements) / eff
        # Pass 2: reassembly kernel reads both planes, writes BF16.
        pass2_bytes = elements + sm_plane + 2.0 * elements
        pass2 = pass2_bytes / (
            spec.dram_bytes_per_s * _REASSEMBLY_BW_FRAC
        )
        time_s = pass1 + pass2 + 2 * spec.launch_overhead_us * 1e-6
        traffic.dram_read = exp_stream + elements + sm_plane
        traffic.dram_write = elements + 2.0 * elements
        details = {"pass1_s": pass1, "pass2_s": pass2}
    else:
        # Single fused pass: read compressed planes, write BF16.
        read = exp_stream + sm_plane
        write = 2.0 * elements
        time_s = (read + write) / eff + spec.launch_overhead_us * 1e-6
        traffic.dram_read = read
        traffic.dram_write = write
        details = {}

    details.update({
        "bw_frac": BASELINE_DECODE_BW_FRAC[codec],
        "compression_ratio": comp.ratio,
    })
    return KernelProfile(
        kernel=f"{codec}_decomp",
        time_s=time_s,
        traffic=traffic,
        details=details,
    )
