"""Marlin-style W8A16 lossy GEMM comparator (§7).

The paper benchmarks ZipGEMM against the Marlin FP8-weight kernel to place
lossless compression on the lossy spectrum: Marlin reads 8 bits per weight
(vs TCA-TBE's ~11.3) and the latency gap tracks the effective bit-width
ratio.  The model mirrors :func:`repro.kernels.zipgemm.zipgemm` with a
1-byte weight stream and a trivial dequantisation ALU cost.
"""

from __future__ import annotations

from ..analysis.calibration import SATURATION_CTAS_FRAC_DENSE, TC_EFFICIENCY
from ..errors import ConfigError
from ..gpu.memory import TrafficRecord
from ..gpu.specs import GpuSpec
from ..utils import ceil_div
from .base import KernelProfile, saturation_fraction

#: FP8->BF16 dequantisation is a couple of byte-permute ops per element.
_DEQUANT_CYCLES_PER_ELEMENT = 0.05


def marlin_w8a16_gemm(
    spec: GpuSpec, m: int, k: int, n: int
) -> KernelProfile:
    """Profile a Marlin-style mixed-precision GEMM (8-bit weights)."""
    if min(m, k, n) <= 0:
        raise ConfigError(f"GEMM dims must be positive, got {m}x{k}x{n}")
    tile_m, tile_n = 128, 128
    ctas = ceil_div(m, tile_m) * ceil_div(n, tile_n)
    sat = saturation_fraction(spec, ctas, SATURATION_CTAS_FRAC_DENSE)

    w_bytes = 1.0 * m * k
    x_bytes = 2.0 * k * n
    y_bytes = 2.0 * m * n
    mem_time = (w_bytes + x_bytes + y_bytes) / (
        spec.dram_bytes_per_s * spec.fused_bw_frac * sat
    )
    flops = 2.0 * m * n * k
    tc_time = flops / (spec.tc_flops * TC_EFFICIENCY)
    alu_time = (
        float(m) * k * _DEQUANT_CYCLES_PER_ELEMENT / spec.sm_cycles_per_s
    )
    time_s = max(mem_time, tc_time, alu_time) + spec.launch_overhead_us * 1e-6
    return KernelProfile(
        kernel="marlin_w8a16",
        time_s=time_s,
        traffic=TrafficRecord(dram_read=w_bytes + x_bytes,
                              dram_write=y_bytes),
        flops=flops,
        details={"mem_time_s": mem_time, "tc_time_s": tc_time},
    )
