"""Small shared helpers used across the library."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .errors import ShapeError

#: Bytes per gibibyte; the paper reports weight footprints in GiB.
GIB = float(1 << 30)

#: Bytes per mebibyte.
MIB = float(1 << 20)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def human_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``'14.96 GiB'``."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(n)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Render a duration with an appropriate unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def require_2d(array: np.ndarray, name: str = "array") -> None:
    """Raise :class:`ShapeError` unless ``array`` is two-dimensional."""
    if array.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {array.shape}")


def require_dtype(array: np.ndarray, dtype: type, name: str = "array") -> None:
    """Raise :class:`ShapeError` unless ``array`` has the given dtype."""
    if array.dtype != np.dtype(dtype):
        raise ShapeError(
            f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}"
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; the paper averages speedups this way."""
    items = [float(v) for v in values]
    if not items:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def popcount64(values: np.ndarray) -> np.ndarray:
    """Vectorised population count for a uint64 array.

    numpy<2 lacks ``bit_count`` on arrays; this parallel-bit trick is portable
    and branch-free, mirroring the GPU ``__popc``/``POPC`` instruction used by
    the ZipGEMM decompressor.
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h = np.uint64(0x0101010101010101)
    v -= (v >> np.uint64(1)) & m1
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    return ((v * h) >> np.uint64(56)).astype(np.int64)
