"""Reporting types produced by the public API."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..serving.engine import ServeResult
from ..utils import GIB


@dataclass
class CompressionReport:
    """Whole-model compression summary (the offline compressor's receipt)."""

    model: str
    scheme: str
    dense_bytes: float
    compressed_bytes: float
    per_layer: dict = field(default_factory=dict)

    @property
    def dense_gib(self) -> float:
        """Uncompressed BF16 footprint in GiB."""
        return self.dense_bytes / GIB

    @property
    def compressed_gib(self) -> float:
        """Compressed footprint in GiB."""
        return self.compressed_bytes / GIB

    @property
    def ratio(self) -> float:
        """Compression ratio (dense / compressed)."""
        return self.dense_bytes / self.compressed_bytes

    @property
    def size_fraction(self) -> float:
        """Compressed size as a fraction of dense (paper: ~70-72%)."""
        return self.compressed_bytes / self.dense_bytes

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.model} [{self.scheme}]: {self.dense_gib:.2f} GiB ->"
            f" {self.compressed_gib:.2f} GiB"
            f" ({100 * self.size_fraction:.1f}%, {self.ratio:.2f}x)"
        )


@dataclass(frozen=True)
class ComparisonRow:
    """One backend's end-to-end result, normalised against a reference."""

    backend: str
    latency_s: float
    throughput_tok_s: float
    speedup_vs_reference: float


def compare_backends(
    results: dict[str, ServeResult], reference: str = "vllm"
) -> list[ComparisonRow]:
    """Normalise a set of :class:`ServeResult` against a reference backend."""
    if reference not in results:
        raise KeyError(f"reference backend {reference!r} not in results")
    ref_tput = results[reference].throughput_tok_s
    rows = []
    for name, result in sorted(results.items()):
        rows.append(
            ComparisonRow(
                backend=name,
                latency_s=result.latency_s,
                throughput_tok_s=result.throughput_tok_s,
                speedup_vs_reference=result.throughput_tok_s / ref_tput,
            )
        )
    return rows
