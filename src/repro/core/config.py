"""Top-level configuration for the :class:`~repro.core.api.ZipServ` facade."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..gpu.specs import GpuSpec, get_gpu
from ..serving.backends import BackendConfig, get_backend
from ..serving.memory_plan import DEFAULT_GPU_MEM_UTIL
from ..serving.models import ModelSpec, get_model


@dataclass(frozen=True)
class ZipServConfig:
    """Resolved configuration of one serving deployment."""

    model: ModelSpec
    gpu: GpuSpec
    backend: BackendConfig
    tensor_parallel: int = 1
    gpu_mem_util: float = DEFAULT_GPU_MEM_UTIL

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ConfigError("tensor_parallel must be >= 1")
        if not 0.0 < self.gpu_mem_util <= 1.0:
            raise ConfigError("gpu_mem_util must be in (0, 1]")

    @classmethod
    def resolve(
        cls,
        model: str | ModelSpec,
        gpu: str | GpuSpec,
        backend: str | BackendConfig = "zipserv",
        tensor_parallel: int = 1,
        gpu_mem_util: float = DEFAULT_GPU_MEM_UTIL,
    ) -> "ZipServConfig":
        """Build a config from names or already-resolved spec objects."""
        model_spec = model if isinstance(model, ModelSpec) else get_model(model)
        gpu_spec = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
        backend_cfg = (
            backend if isinstance(backend, BackendConfig)
            else get_backend(backend)
        )
        return cls(
            model=model_spec,
            gpu=gpu_spec,
            backend=backend_cfg,
            tensor_parallel=tensor_parallel,
            gpu_mem_util=gpu_mem_util,
        )
