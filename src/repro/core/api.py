"""The ZipServ facade: compress, plan, serve, report.

Bundles the offline compressor (TCA-TBE over every linear layer), the memory
planner, and the inference engine behind one object with the workflow of
Figure 6: *offline compressor* on the left, *online inference engine* on the
right.
"""

from __future__ import annotations

import numpy as np

from ..gpu.specs import GpuSpec
from ..kernels.pipeline import stage_aware_linear
from ..serving.backends import BackendConfig
from ..serving.engine import InferenceEngine, ServeResult, StepBreakdown
from ..serving.memory_plan import MemoryPlan, plan_memory
from ..serving.models import ModelSpec
from ..serving.weights import (
    estimate_layer_compression,
    layer_sigma,
    model_compression_report,
)
from ..tcatbe import TcaTbeMatrix, compress, decompress
from .config import ZipServConfig
from .report import CompressionReport


def compress_weights(weights: np.ndarray) -> TcaTbeMatrix:
    """Losslessly compress one BF16 (uint16) weight matrix with TCA-TBE."""
    return compress(weights)


def decompress_weights(matrix: TcaTbeMatrix) -> np.ndarray:
    """Recover the exact BF16 weights from a TCA-TBE matrix."""
    return decompress(matrix)


class ZipServ:
    """One serving deployment: model + GPU(s) + backend.

    Parameters
    ----------
    model, gpu, backend:
        Registry names (e.g. ``"llama3.1-8b"``, ``"rtx4090"``, ``"zipserv"``)
        or resolved spec objects.
    tensor_parallel:
        Number of GPUs the model is sharded across.
    """

    def __init__(
        self,
        model: str | ModelSpec,
        gpu: str | GpuSpec,
        backend: str | BackendConfig = "zipserv",
        tensor_parallel: int = 1,
    ):
        self.config = ZipServConfig.resolve(
            model, gpu, backend, tensor_parallel
        )
        self.engine = InferenceEngine(
            self.config.model,
            self.config.gpu,
            self.config.backend,
            tensor_parallel=self.config.tensor_parallel,
            gpu_mem_util=self.config.gpu_mem_util,
        )

    # ------------------------------------------------------------------
    # Offline side
    # ------------------------------------------------------------------
    def compression_report(self) -> CompressionReport:
        """Model-wide compression accounting under the backend's scheme."""
        scheme = self.config.backend.weight_scheme
        if scheme == "dense":
            dense = float(self.config.model.weight_bytes_bf16)
            return CompressionReport(
                model=self.config.model.name,
                scheme="dense",
                dense_bytes=dense,
                compressed_bytes=dense,
            )
        report = model_compression_report(self.config.model, scheme)
        gib = float(1 << 30)
        return CompressionReport(
            model=self.config.model.name,
            scheme=scheme,
            dense_bytes=report["dense_gib"] * gib,
            compressed_bytes=report["compressed_gib"] * gib,
            per_layer=report["per_layer"],
        )

    # ------------------------------------------------------------------
    # Online side
    # ------------------------------------------------------------------
    @property
    def memory_plan(self) -> MemoryPlan:
        """Per-GPU memory budget of this deployment."""
        return self.engine.plan

    def generate(
        self, batch_size: int, prompt_len: int, output_len: int
    ) -> ServeResult:
        """Simulate one fixed-batch generation benchmark (§6.5 setup)."""
        return self.engine.run(batch_size, prompt_len, output_len)

    def decode_step_breakdown(
        self, batch_size: int, context_len: int
    ) -> StepBreakdown:
        """Per-step time composition at a given context (Figure 17)."""
        return self.engine.decode_step(batch_size, context_len)

    def linear_layer_profile(self, kind: str, n_tokens: int):
        """Kernel profile of one named linear layer at ``n_tokens``.

        Only meaningful for the ZipServ backend (stage-aware execution);
        raises ``KeyError`` for unknown layer kinds.
        """
        for layer in self.config.model.linear_layers():
            if layer.kind == kind:
                comp = estimate_layer_compression(
                    layer.m, layer.k,
                    layer_sigma(layer.kind, layer.m, layer.k),
                    "tcatbe",
                )
                return stage_aware_linear(
                    self.config.gpu, layer.m, layer.k, n_tokens, comp
                )
        raise KeyError(f"unknown layer kind {kind!r}")

    def fits(self, batch_size: int, context_len: int) -> bool:
        """Whether a batch at the given context fits without preemption."""
        return self.engine.max_wave_batch(context_len) >= batch_size


def plan_for(
    model: str | ModelSpec,
    gpu: str | GpuSpec,
    backend: str | BackendConfig = "zipserv",
    tensor_parallel: int = 1,
) -> MemoryPlan:
    """Standalone memory planning without constructing an engine."""
    config = ZipServConfig.resolve(model, gpu, backend, tensor_parallel)
    return plan_memory(
        config.model,
        config.gpu,
        config.backend.weight_scheme,
        config.tensor_parallel,
        config.gpu_mem_util,
    )
