"""Public facade of the ZipServ reproduction.

Typical use::

    from repro.core import ZipServ

    zs = ZipServ(model="llama3.1-8b", gpu="rtx4090")
    report = zs.compression_report()
    result = zs.generate(batch_size=32, prompt_len=128, output_len=512)
    print(result.throughput_tok_s)
"""

from .api import ZipServ, compress_weights, decompress_weights
from .config import ZipServConfig
from .report import CompressionReport, ComparisonRow, compare_backends

__all__ = [
    "ZipServ",
    "ZipServConfig",
    "CompressionReport",
    "ComparisonRow",
    "compare_backends",
    "compress_weights",
    "decompress_weights",
]
