"""Built-in registry entries: every codec the stack ships with.

Each entry wraps an existing bit-exact implementation — TCA-TBE tiles
(:mod:`repro.tcatbe`), Vector-TBE streams (:mod:`repro.tcatbe.vector`),
the split-plane entropy baselines (:mod:`repro.codecs.bf16_split`) and
the lossy-then-lossless quant combo (:mod:`repro.extensions.quant_combo`)
— and pins down the analytic ratio math that used to be duplicated across
``serving/weights.py`` and ``extensions/kvcomp.py``:

* **weights** are Gaussian: window coverage (TBE family) or exponent
  entropy (byte-plane baselines) at the layer's Glorot sigma;
* **KV / wire** are activations: the same math derated by a mild outlier
  share (:data:`ACTIVATION_OUTLIER_FRACTION`), which is why KV ratios
  land a touch below weight ratios.

The floats produced here are *identical* to the pre-registry formulas —
``extensions.kvcomp.kv_compression_ratio`` and
``serving.weights.estimate_layer_compression`` now delegate to these
entries, so serving results stay bit-compatible.
"""

from __future__ import annotations

import numpy as np

from ..analysis.calibration import BASELINE_DECODE_BW_FRAC
from ..analysis.theory import (
    gaussian_exponent_entropy,
    window_coverage_gaussian,
)
from ..codecs.bf16_split import BF16_CODECS
from ..tcatbe import compress as tcatbe_compress
from ..tcatbe import decompress as tcatbe_decompress
from ..tcatbe.analysis import average_bits
from ..tcatbe.vector import compress_vector, decompress_vector
from .spec import Codec, register_codec

#: TCA-TBE per-element container overhead in bits: per 64x64 BlockTile the
#: format adds an 8 B offset entry plus ~16 B of alignment padding across
#: the two value segments (see tcatbe.format), i.e. ~24 B / 4096 elements.
TCATBE_OVERHEAD_BITS = 24.0 * 8.0 / 4096.0

#: Baseline container overhead in bits/element: chunk offsets, frequency
#: tables and stream states amortised over a large layer.
BASELINE_OVERHEAD_BITS = 0.06

#: Activations are spikier than weights; a mild outlier share on top of
#: the Gaussian bulk lowers coverage slightly relative to weights.
ACTIVATION_OUTLIER_FRACTION = 0.02

#: Relative ALU cost of the fused entropy-decode + dequant path (the
#: zipquant kernel decodes and rescales, slightly more work than TBE).
ZIPQUANT_CYCLES_FACTOR = 1.2

#: Effective bits/weight of entropy-coded row-wise INT8 (measured on
#: Gaussian layers; see extensions.quant_combo).
ZIPQUANT_BITS_PER_WEIGHT = 7.4


# ----------------------------------------------------------------------
# Analytic estimators (bits per element)
# ----------------------------------------------------------------------
def _tbe_weight_bits(sigma: float) -> float:
    coverage = window_coverage_gaussian(sigma, k=7)
    return average_bits(3, coverage) + TCATBE_OVERHEAD_BITS


def _tbe_kv_bits(sigma: float) -> float:
    coverage = window_coverage_gaussian(sigma, k=7)
    coverage *= 1.0 - ACTIVATION_OUTLIER_FRACTION
    return average_bits(3, coverage) + TCATBE_OVERHEAD_BITS


def _entropy_bits(sigma: float) -> float:
    return 8.0 + gaussian_exponent_entropy(sigma) + BASELINE_OVERHEAD_BITS


# ----------------------------------------------------------------------
# Encode / decode wrappers (non-empty uint16 arrays; registry handles
# shape bookkeeping and the empty case)
# ----------------------------------------------------------------------
def _tcatbe_encode(array: np.ndarray):
    matrix = array if array.ndim == 2 else array.reshape(1, -1)
    blob = tcatbe_compress(matrix)
    return blob, blob.compressed_nbytes


def _tcatbe_decode(blob, shape):
    return tcatbe_decompress(blob).reshape(shape)


def _vector_encode(array: np.ndarray):
    blob = compress_vector(array.ravel())
    return blob, blob.compressed_nbytes


def _vector_decode(blob, shape):
    return decompress_vector(blob).reshape(shape)


def _raw_encode(array: np.ndarray):
    blob = array.copy()
    return blob, blob.nbytes


def _raw_decode(blob, shape):
    return np.asarray(blob).reshape(shape)


def _bf16_split(name: str):
    codec = BF16_CODECS[name]

    def encode(array: np.ndarray):
        blob = codec.compress(array)
        return blob, blob.compressed_nbytes

    def decode(blob, shape):
        return codec.decompress(blob).reshape(shape)

    return encode, decode


def _zipquant_encode(array: np.ndarray):
    # Local import: extensions sit above serving in the layer diagram, so
    # the registry must not pull them in at import time.  This runs once
    # per tensor on the offline path, never in a serving loop.
    from ..extensions.quant_combo import compress_quantized, quantize_int8

    matrix = array if array.ndim == 2 else array.reshape(1, -1)
    blob = compress_quantized(quantize_int8(matrix))
    return blob, blob.compressed_nbytes


def _zipquant_decode(blob, shape):
    from ..extensions.quant_combo import decompress_quantized, dequantize_int8

    return dequantize_int8(decompress_quantized(blob)).reshape(shape)


# ----------------------------------------------------------------------
# The registry entries
# ----------------------------------------------------------------------
NONE = register_codec(Codec(
    name="none",
    aliases=("raw", "dense"),
    linear_mode="cublas",
    encode_fn=_raw_encode,
    decode_fn=_raw_decode,
))

TCATBE = register_codec(Codec(
    name="tcatbe",
    aliases=("tca-tbe", "zipserv"),
    linear_mode="stage_aware",
    decode_cycles_factor=1.0,
    encode_fn=_tcatbe_encode,
    decode_fn=_tcatbe_decode,
    weight_bits_fn=_tbe_weight_bits,
    kv_bits_fn=_tbe_kv_bits,
    extra={"coverage_fn": lambda sigma: window_coverage_gaussian(sigma, k=7)},
))

VECTOR_TBE = register_codec(Codec(
    name="vector_tbe",
    aliases=("kvcomp", "vector-tbe", "vectbe"),
    linear_mode="stage_aware",
    decode_cycles_factor=1.0,
    encode_fn=_vector_encode,
    decode_fn=_vector_decode,
    # Same TBE codeword math as the tile format; the 1-D container's
    # 16 B/vector header amortises to ~nothing on KV-block sizes.
    weight_bits_fn=_tbe_weight_bits,
    kv_bits_fn=_tbe_kv_bits,
    extra={"coverage_fn": lambda sigma: window_coverage_gaussian(sigma, k=7)},
))

_BASELINES = {}
for _name in ("dfloat11", "dietgpu", "nvcomp"):
    _enc, _dec = _bf16_split(_name)
    _BASELINES[_name] = register_codec(Codec(
        name=_name,
        linear_mode="decoupled",
        baseline_codec=_name,
        # Entropy decode is serial/table-driven: a fused streaming
        # consumer pays it as a bandwidth derate (the same calibrated
        # fractions the standalone decompressor models use), with the
        # baseline TBE cycle cost on top.
        decode_cycles_factor=1.0,
        stream_bw_frac=BASELINE_DECODE_BW_FRAC[_name],
        encode_fn=_enc,
        decode_fn=_dec,
        weight_bits_fn=_entropy_bits,
        kv_bits_fn=_entropy_bits,
    ))

ZIPQUANT = register_codec(Codec(
    name="zipquant",
    aliases=("quant_combo",),
    lossless=False,
    linear_mode="stage_aware",
    decode_cycles_factor=ZIPQUANT_CYCLES_FACTOR,
    encode_fn=_zipquant_encode,
    decode_fn=_zipquant_decode,
    weight_bits_fn=lambda sigma: ZIPQUANT_BITS_PER_WEIGHT,
    kv_bits_fn=lambda sigma: ZIPQUANT_BITS_PER_WEIGHT,
))
