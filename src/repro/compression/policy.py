"""Codec selection policies: pick a codec per tensor class, hardware-aware.

The registry makes every codec valid in every slot; this module decides
*which* codec each slot (and each tensor class inside the weight slot)
should actually run.  A :class:`CodecPolicy` scores candidates on two
axes and is the single place the trade-off lives:

* **ratio** — measured when a calibration profile
  (:mod:`repro.compression.calibrate`) is supplied, analytic otherwise;
* **hot-path time** — a per-element time proxy evaluated with the *same
  kernel models the cost layer prices steps with* (``linear_profile``
  for weights, the paged-attention pair for KV streams), driven by the
  registry's kernel-cost hooks (``linear_mode``, decode-cycles factor,
  stream bandwidth fraction) on a concrete :class:`~repro.gpu.specs
  .GpuSpec`.

Every policy first applies a **feasibility gate**: a codec whose hot
path is slower than :data:`MAX_HOT_PATH_SLOWDOWN` x the identity codec
is never auto-selected, whatever its ratio.  That is the paper's own
argument made operational — decompress-per-use baselines compress well
but cannot serve — and it is what keeps ``best_ratio`` from picking a
weight codec that triples every linear layer.

Three shipped policies (:func:`get_codec_policy` parses the names):

* ``"best_ratio"`` — maximise the (measured) ratio among feasible
  candidates;
* ``"best_throughput"`` — minimise the hot-path time proxy;
* ``"balanced"`` / ``"balanced(alpha)"`` — maximise
  ``alpha * log(ratio) + (1 - alpha) * log(speedup vs identity)``;
  ``alpha=1`` leans all the way to ratio, ``alpha=0`` to throughput
  (default ``alpha=0.5``).

Lossy codecs (``zipquant``) are excluded from the default candidate set:
auto-selection must never silently change numerics.  Pass them in
``candidates`` explicitly to opt in.
"""

from __future__ import annotations

import math
import re
from functools import lru_cache

from ..analysis.calibration import decode_cycles_per_element
from ..errors import ConfigError, UnknownSpecError
from ..gpu.specs import GpuSpec
from ..kernels.attention import (
    PAGED_BW_FRAC,
    paged_attention_decode,
    paged_attention_decode_compressed,
)
from ..kernels.base import WeightCompression
from ..kernels.pipeline import linear_profile
from .spec import (
    Codec,
    CompressionSpec,
    PLACEMENTS,
    get_codec,
    list_codecs,
    resolve_spec,
)

__all__ = [
    "MAX_HOT_PATH_SLOWDOWN",
    "CodecPolicy",
    "BestRatioPolicy",
    "BestThroughputPolicy",
    "BalancedPolicy",
    "CODEC_POLICIES",
    "get_codec_policy",
    "list_codec_policies",
    "default_candidates",
    "hot_path_time",
]

#: Feasibility gate: a codec slower than this many times the identity
#: codec on its placement's hot path is never auto-selected.  2.0 admits
#: every in-place streaming format (fused TBE, derated entropy streams)
#: and rejects the decompress-then-GEMM weight baselines, whose modelled
#: slowdown is >=3x on decode-shaped layers.
MAX_HOT_PATH_SLOWDOWN = 2.0

#: Representative decode-phase shapes the time proxies are evaluated at
#: (the policy optimises steady-state decode, the serving bottleneck):
#: a hidden-sized linear layer at a decode-sized batch, and a paged
#: attention step at GQA geometry over a mid-length context.
_PROXY_LINEAR = dict(m=4096, k=4096, n=16)
_PROXY_ATTENTION = dict(batch=16, ctx=1024, heads=32, kv_heads=8,
                        head_dim=128)


@lru_cache(maxsize=512)
def _hot_path_time_cached(
    codec_name: str, placement: str, ratio: float, gpu: GpuSpec
) -> float:
    codec = get_codec(codec_name)
    if placement == "weight":
        comp = (
            None if codec.identity
            else WeightCompression(
                scheme=codec.name, ratio=ratio, coverage=0.0
            )
        )
        profile = linear_profile(
            gpu, codec=codec, compression=comp, **_PROXY_LINEAR
        )
        return profile.time_s
    if placement == "kv":
        if ratio <= 1.0 and codec.identity:
            profile = paged_attention_decode(gpu, **_PROXY_ATTENTION)
        else:
            profile = paged_attention_decode_compressed(
                gpu, ratio=max(ratio, 1.0 + 1e-12),
                cycles_per_element=(
                    decode_cycles_per_element() * codec.decode_cycles_factor
                ),
                bw_frac=PAGED_BW_FRAC * codec.stream_bw_frac,
                **_PROXY_ATTENTION,
            )
        return profile.time_s
    if placement == "prefix":
        # Prefix-cache cold tier: a hit streams the compressed blocks out
        # of HBM (derated by the codec's stream bandwidth fraction), pays
        # the decode ALU cost per element, and writes the raw KV bytes
        # back so the batch reads them at full speed.  2 bytes/element
        # raw (fp16 KV), compressed at the measured ratio.
        stream_s = (
            (2.0 / max(ratio, 1.0))
            / (gpu.dram_bytes_per_s * codec.stream_bw_frac)
        )
        decode_s = (
            codec.decode_cycles_factor * decode_cycles_per_element()
            / gpu.sm_cycles_per_s
        )
        writeback_s = 2.0 / gpu.dram_bytes_per_s
        return stream_s + decode_s + writeback_s
    # Wire: serialization dominates — bytes per element over the link,
    # plus the receiver-side decode ALU cost (tiny, but it orders
    # equal-ratio codecs by their hooks).  Normalised to a 1 GB/s link;
    # the *ranking* is link-bandwidth-invariant.
    wire_s = (2.0 / max(ratio, 1.0)) / 1e9
    decode_s = (
        codec.decode_cycles_factor * decode_cycles_per_element()
        / gpu.sm_cycles_per_s
    )
    derate = (
        (1.0 / codec.stream_bw_frac - 1.0) * 2.0
        / gpu.dram_bytes_per_s
    )
    return wire_s + decode_s + derate


def hot_path_time(
    codec: str | Codec, placement: str, ratio: float, gpu: GpuSpec
) -> float:
    """Per-evaluation hot-path time proxy (seconds; lower is better).

    Weights: one decode-shaped linear layer through
    :func:`~repro.kernels.pipeline.linear_profile` under the codec's
    ``linear_mode``.  KV: one paged-attention decode step, compressed
    streaming priced by the codec's cycle/bandwidth hooks.  Prefix: a
    cold-tier cache hit — compressed HBM stream + decode ALU + raw
    writeback.  Wire: the serialized bytes per element plus the
    receiver decode cost.
    """
    if placement not in PLACEMENTS:
        raise ConfigError(
            f"placement must be one of {PLACEMENTS}, got {placement!r}"
        )
    return _hot_path_time_cached(
        get_codec(codec).name, placement, float(ratio), gpu
    )


def default_candidates() -> list[str]:
    """The codecs auto-selection considers: every registered lossless
    codec (lossy ones change numerics and must be opted into)."""
    return [n for n in list_codecs() if get_codec(n).lossless]


class CodecPolicy:
    """Base class: candidate scoring + per-class selection.

    Subclasses implement :meth:`score` (higher wins).  ``select``
    resolves each candidate's ratio through the full precedence chain
    (measured profile, then analytic at the class sigma), applies the
    feasibility gate, and returns the winning codec as a settled
    :class:`~repro.compression.spec.CompressionSpec`.  Ties break on
    the lower hot-path time, then the codec name — selection is fully
    deterministic.
    """

    name = "policy"

    def __init__(self, max_slowdown: float = MAX_HOT_PATH_SLOWDOWN):
        if max_slowdown < 1.0:
            raise ConfigError("max_slowdown must be >= 1")
        self.max_slowdown = max_slowdown

    # ------------------------------------------------------------------
    def score(self, ratio: float, time_s: float, identity_time_s: float
              ) -> float:
        """Candidate goodness (higher wins); see subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def select(
        self,
        placement: str,
        gpu: GpuSpec,
        profile=None,
        sigma: float | None = None,
        cls: str | None = None,
        candidates=None,
    ) -> CompressionSpec:
        """Pick the best codec for one placement (and tensor class).

        ``profile`` is a measured
        :class:`~repro.compression.calibrate.MeasuredRatioProfile`
        (ratios fall back to analytic estimates at ``sigma`` without
        one); ``cls`` narrows the measured lookup to one tensor class.
        The identity codec is always feasible, so selection never fails.
        """
        if candidates is None:
            candidates = default_candidates()
        identity_time = hot_path_time("none", placement, 1.0, gpu)
        best = None
        for name in candidates:
            spec = resolve_spec(
                name, placement, sigma=sigma, cls=cls, profile=profile
            )
            time_s = hot_path_time(name, placement, spec.ratio, gpu)
            codec_name = spec.codec
            if (
                codec_name != "none"
                and time_s > self.max_slowdown * identity_time
            ):
                continue
            key = (
                self.score(spec.ratio, time_s, identity_time),
                -time_s,
                codec_name,
            )
            if best is None or key > best[0]:
                best = (key, spec)
        if best is None:
            # Every non-identity candidate failed the gate and "none"
            # was not offered: fall back to the identity codec.
            return resolve_spec("none", placement, sigma=sigma,
                                cls=cls, profile=profile)
        return best[1]

    def select_for_classes(
        self,
        classes,
        gpu: GpuSpec,
        profile=None,
        candidates=None,
    ) -> dict[str, CompressionSpec]:
        """Per-tensor-class selection: one settled spec per
        :class:`~repro.compression.calibrate.TensorClass`."""
        return {
            tcls.name: self.select(
                tcls.placement, gpu, profile=profile, sigma=tcls.sigma,
                cls=tcls.name, candidates=candidates,
            )
            for tcls in classes
        }


class BestRatioPolicy(CodecPolicy):
    """Maximise the (measured) compression ratio among feasible codecs."""

    name = "best_ratio"

    def score(self, ratio, time_s, identity_time_s):
        return ratio


class BestThroughputPolicy(CodecPolicy):
    """Minimise the hot-path time proxy (capacity is a tie-breaker only
    through the ratio-blind score; ties break on time, then name)."""

    name = "best_throughput"

    def score(self, ratio, time_s, identity_time_s):
        return -time_s


class BalancedPolicy(CodecPolicy):
    """Geometric trade-off: ``alpha * log(ratio) + (1-alpha) *
    log(identity_time / time)``.  ``alpha=1`` reduces to ratio-seeking,
    ``alpha=0`` to throughput-seeking."""

    name = "balanced"

    def __init__(self, alpha: float = 0.5,
                 max_slowdown: float = MAX_HOT_PATH_SLOWDOWN):
        super().__init__(max_slowdown=max_slowdown)
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError(f"balanced alpha must be in [0, 1]: {alpha}")
        self.alpha = alpha
        self.name = f"balanced({alpha:g})"

    def score(self, ratio, time_s, identity_time_s):
        return (
            self.alpha * math.log(ratio)
            + (1.0 - self.alpha) * math.log(identity_time_s / time_s)
        )


#: Policy registry: name -> zero-arg factory.  ``balanced(alpha)`` is
#: parsed by :func:`get_codec_policy` on top of these.
CODEC_POLICIES: dict[str, type] = {
    "best_ratio": BestRatioPolicy,
    "best_throughput": BestThroughputPolicy,
    "balanced": BalancedPolicy,
}

_BALANCED_RE = re.compile(r"^balanced\(\s*([0-9.eE+-]+)\s*\)$")


def list_codec_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(CODEC_POLICIES)


def get_codec_policy(policy: str | CodecPolicy) -> CodecPolicy:
    """Resolve a policy by name (``"best_ratio"``, ``"best_throughput"``,
    ``"balanced"``, ``"balanced(0.3)"``) or pass an instance through."""
    if isinstance(policy, CodecPolicy):
        return policy
    key = str(policy).strip().lower()
    match = _BALANCED_RE.match(key)
    if match:
        return BalancedPolicy(alpha=float(match.group(1)))
    if key not in CODEC_POLICIES:
        raise UnknownSpecError(
            "codec policy", str(policy),
            list(CODEC_POLICIES) + ["balanced(<alpha>)"],
        )
    return CODEC_POLICIES[key]()
