"""Unified compression registry: codecs as a first-class serving layer.

Importing this package registers the built-in codecs::

    from repro.compression import get_codec, list_codecs, resolve_spec

    codec = get_codec("kvcomp")            # alias of vector_tbe
    spec = resolve_spec("tcatbe", "weight")
    enc = codec.encode(bf16_bits)          # bit-exact round trip
    assert (codec.decode(enc) == bf16_bits).all()

Consumers: the cost layer resolves weight and KV codecs once at
construction (:class:`repro.serving.costs.EngineCostModel`), the serving
config carries one codec name per slot
(:class:`repro.serving.serve.ServingConfig` — ``weight_codec`` /
``kv_codec`` / ``transfer_codec``), and the disaggregated link prices
wire bytes off the resolved transfer spec.  The ``ext_codec_matrix``
experiment sweeps the combination space.
"""

from . import builtin  # noqa: F401  (imported for registration side effects)
from .spec import (
    ACTIVATION_SIGMA,
    PLACEMENTS,
    Codec,
    CompressionSpec,
    EncodedTensor,
    get_codec,
    list_codecs,
    register_codec,
    resolve_spec,
)

__all__ = [
    "ACTIVATION_SIGMA",
    "PLACEMENTS",
    "Codec",
    "CompressionSpec",
    "EncodedTensor",
    "get_codec",
    "list_codecs",
    "register_codec",
    "resolve_spec",
]
