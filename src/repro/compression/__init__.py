"""Unified compression registry: codecs as a first-class serving layer.

Importing this package registers the built-in codecs::

    from repro.compression import get_codec, list_codecs, resolve_spec

    codec = get_codec("kvcomp")            # alias of vector_tbe
    spec = resolve_spec("tcatbe", "weight")
    enc = codec.encode(bf16_bits)          # bit-exact round trip
    assert (codec.decode(enc) == bf16_bits).all()

Consumers: the cost layer resolves weight and KV codecs once at
construction (:class:`repro.serving.costs.EngineCostModel`), the serving
config carries one codec name per slot
(:class:`repro.serving.serve.ServingConfig` — ``weight_codec`` /
``kv_codec`` / ``transfer_codec``), and the disaggregated link prices
wire bytes off the resolved transfer spec.  The ``ext_codec_matrix``
experiment sweeps the combination space.

Two subsystems sit on top of the registry:

* **measured calibration** (:mod:`repro.compression.calibrate`) — run
  the real codecs over sampled per-class tensors, persist the measured
  ratios as a :class:`MeasuredRatioProfile`, and feed them back into
  :func:`resolve_spec` (explicit ``ratio=`` > measured > analytic);
* **codec policies** (:mod:`repro.compression.policy`) — pick a codec
  per placement / tensor class by a hardware-aware objective
  (``best_ratio`` / ``best_throughput`` / ``balanced(alpha)``), wired
  into ``ServingConfig(weight_codec="auto", ...)``.  The
  ``ext_autotune`` experiment sweeps policies against fixed stacks.
"""

from . import builtin  # noqa: F401  (imported for registration side effects)
from .calibrate import (
    ANALYTIC_DRIFT_BOUND,
    MeasuredRatio,
    MeasuredRatioProfile,
    TensorClass,
    calibrate,
    default_tensor_classes,
    glorot_sigma,
    tensor_classes_for_model,
)
from .policy import (
    CODEC_POLICIES,
    MAX_HOT_PATH_SLOWDOWN,
    BalancedPolicy,
    BestRatioPolicy,
    BestThroughputPolicy,
    CodecPolicy,
    default_candidates,
    get_codec_policy,
    hot_path_time,
    list_codec_policies,
)
from .spec import (
    ACTIVATION_SIGMA,
    PLACEMENTS,
    Codec,
    CompressionSpec,
    EncodedTensor,
    get_codec,
    get_measured_profile,
    list_codecs,
    measured_profile,
    register_codec,
    resolve_spec,
    set_measured_profile,
)

__all__ = [
    "ACTIVATION_SIGMA",
    "ANALYTIC_DRIFT_BOUND",
    "PLACEMENTS",
    "Codec",
    "CompressionSpec",
    "EncodedTensor",
    "MeasuredRatio",
    "MeasuredRatioProfile",
    "TensorClass",
    "calibrate",
    "default_tensor_classes",
    "glorot_sigma",
    "tensor_classes_for_model",
    "CODEC_POLICIES",
    "MAX_HOT_PATH_SLOWDOWN",
    "BalancedPolicy",
    "BestRatioPolicy",
    "BestThroughputPolicy",
    "CodecPolicy",
    "default_candidates",
    "get_codec_policy",
    "hot_path_time",
    "list_codec_policies",
    "get_codec",
    "get_measured_profile",
    "list_codecs",
    "measured_profile",
    "register_codec",
    "resolve_spec",
    "set_measured_profile",
]
