"""The unified compression registry: codecs as a first-class layer.

ZipServ's thesis is that lossless compression is a *pervasive* property of
the serving stack — weights in HBM, KV blocks in the paged cache, KV bytes
on the disaggregation wire.  Before this module each consumer hardcoded its
codec (a ``("none", "kvcomp")`` tuple here, a lazy extension import there);
now every layer resolves codecs through one registry.

A registered :class:`Codec` bundles the four things a consumer may need:

* a **name** (plus aliases — ``"kvcomp"`` resolves to ``vector_tbe``);
* bit-exact **encode/decode** over BF16 bit patterns (uint16 arrays),
  normalised through :class:`EncodedTensor` so callers never touch
  codec-native blob types;
* an **analytic ratio estimator** per placement — Gaussian weights price
  differently from outlier-tinged activations (KV and wire);
* **kernel-cost hooks** — the decode-ALU cycle factor and streaming
  bandwidth fraction a fused kernel pays to consume the format in place,
  and the linear-layer execution mode (dense cuBLAS, fused stage-aware,
  or decompress-then-GEMM).

:class:`CompressionSpec` is the resolved form consumers carry around: a
codec pinned to a placement with its ratio settled once at config time —
no per-step registry lookups, no import-at-call in hot paths.

Ratio resolution is a three-level precedence (highest first):

1. an **explicit** ``ratio=`` argument — legacy knobs keep their exact
   semantics;
2. a **measured** ratio from a calibration profile
   (:mod:`repro.compression.calibrate` — the real codec run over sampled
   tensors), either passed as ``profile=`` or installed process-wide via
   :func:`set_measured_profile`;
3. the codec's **analytic** estimator at the placement's sigma.

With no profile installed and no explicit ratio, resolution is exactly
the historical analytic path — bit-compatible by construction.

Registry invariants (tested in ``tests/test_compression_registry.py``):

* every lossless codec round-trips bit-exactly on edge shapes (empty,
  1x1, non-tile-multiple, all-outlier input) — empty tensors are
  normalised here so individual codecs never see them;
* lossy codecs (``zipquant``) are projections: a second encode/decode of
  their own output is the identity;
* ``resolve_spec`` accepts every registered codec in every placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import CodecError, ConfigError, UnknownSpecError
from ..kernels.base import WeightCompression

#: Where a codec can be applied in the serving stack.  ``prefix`` is the
#: cold tier of the prefix cache: KV blocks held compressed at rest and
#: decompressed on hit, so it prices like KV (the bits are KV bits) but
#: is selected and calibrated as its own class.
PLACEMENTS = ("weight", "kv", "wire", "prefix")

#: Default activation scale for KV/wire ratio estimation (matches the
#: kvcomp extension's historical default).
ACTIVATION_SIGMA = 0.05

#: Default weight scale for placement-level weight ratio estimation (the
#: cost layer re-estimates per layer from the real fan-in/fan-out).
WEIGHT_SIGMA = 0.02


@dataclass
class EncodedTensor:
    """Codec-agnostic wrapper around one compressed tensor.

    ``blob`` is the codec-native object (``TcaTbeMatrix``, ``VecTbe``,
    ``CompressedBF16``, ...); ``None`` marks the empty-tensor fast path
    the registry handles itself.
    """

    codec: str
    shape: tuple[int, ...]
    blob: object
    nbytes: int

    @property
    def n_elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return int(n)

    @property
    def original_nbytes(self) -> int:
        """Uncompressed BF16 footprint."""
        return 2 * self.n_elements

    @property
    def ratio(self) -> float:
        """Measured compression ratio (original / compressed bytes).

        An empty tensor reports 1.0 — the identity, keeping the stack's
        ``ratio >= 1`` invariant rather than a nonsense 0.
        """
        if self.n_elements == 0:
            return 1.0
        return self.original_nbytes / max(self.nbytes, 1)


@dataclass(eq=False)
class Codec:
    """One registered compression scheme (see module docstring).

    ``encode_fn(flat) -> (blob, nbytes)`` and ``decode_fn(blob, shape) ->
    array`` operate on non-empty uint16 arrays; the registry normalises
    shape bookkeeping and the empty-tensor case around them.
    ``weight_bits_fn`` / ``kv_bits_fn`` map a Gaussian scale ``sigma`` to
    analytic bits/element (16 / bits = ratio).  ``wire`` pricing reuses
    the KV estimator: the wire carries KV blocks.
    """

    name: str
    lossless: bool = True
    #: Linear-layer execution when used as a weight codec:
    #: ``"cublas"`` (dense), ``"stage_aware"`` (fused decode, ZipGEMM
    #: family) or ``"decoupled"`` (decompress-then-GEMM baseline).
    linear_mode: str = "cublas"
    #: Baseline decompressor name for ``linear_mode="decoupled"``.
    baseline_codec: str | None = None
    #: Multiplier on the calibrated TBE decode cycles/element a fused
    #: streaming kernel pays (0.0 = free, i.e. raw loads).
    decode_cycles_factor: float = 0.0
    #: Streaming efficiency of a fused kernel gathering this format
    #: (fraction of the paged-attention gather's 0.80 DRAM fraction).
    stream_bw_frac: float = 1.0
    aliases: tuple[str, ...] = ()
    encode_fn: Callable | None = None
    decode_fn: Callable | None = None
    weight_bits_fn: Callable[[float], float] | None = None
    kv_bits_fn: Callable[[float], float] | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.linear_mode not in ("cublas", "stage_aware", "decoupled"):
            raise ConfigError(
                f"codec {self.name!r}: unknown linear mode"
                f" {self.linear_mode!r}"
            )
        if self.linear_mode == "decoupled" and not self.baseline_codec:
            raise ConfigError(
                f"codec {self.name!r}: decoupled mode needs baseline_codec"
            )

    # ------------------------------------------------------------------
    # Functional layer
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> EncodedTensor:
        """Compress a BF16 (uint16) array of any shape."""
        array = np.asarray(data)
        if array.dtype != np.uint16:
            raise CodecError(
                f"codec {self.name!r} expects BF16 bit patterns (uint16),"
                f" got {array.dtype}"
            )
        shape = tuple(array.shape)
        if array.size == 0:
            return EncodedTensor(codec=self.name, shape=shape, blob=None,
                                 nbytes=0)
        if self.encode_fn is None:
            raise CodecError(f"codec {self.name!r} has no encoder")
        blob, nbytes = self.encode_fn(np.ascontiguousarray(array))
        return EncodedTensor(codec=self.name, shape=shape, blob=blob,
                             nbytes=int(nbytes))

    def decode(self, enc: EncodedTensor) -> np.ndarray:
        """Recover the array (bit-exact when :attr:`lossless`)."""
        if enc.codec != self.name:
            raise CodecError(
                f"blob was produced by {enc.codec!r}, not {self.name!r}"
            )
        if enc.blob is None:
            return np.zeros(enc.shape, dtype=np.uint16)
        if self.decode_fn is None:
            raise CodecError(f"codec {self.name!r} has no decoder")
        out = np.asarray(self.decode_fn(enc.blob, enc.shape))
        if tuple(out.shape) != tuple(enc.shape):
            out = out.reshape(enc.shape)
        return out

    # ------------------------------------------------------------------
    # Analytic layer
    # ------------------------------------------------------------------
    def bits_per_element(self, placement: str, sigma: float) -> float:
        """Analytic storage bits/element at scale ``sigma``."""
        if placement not in PLACEMENTS:
            raise ConfigError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        fn = self.weight_bits_fn if placement == "weight" else self.kv_bits_fn
        if fn is None:
            return 16.0
        return float(fn(sigma))

    def ratio(self, placement: str, sigma: float | None = None) -> float:
        """Analytic compression ratio for one placement."""
        if sigma is None:
            sigma = WEIGHT_SIGMA if placement == "weight" else ACTIVATION_SIGMA
        return 16.0 / self.bits_per_element(placement, sigma)

    def weight_compression(self, sigma: float) -> WeightCompression:
        """Per-layer weight statistics as the kernel models consume them."""
        if self.weight_bits_fn is None:
            return WeightCompression.identity()
        comp = WeightCompression(
            scheme=self.name,
            ratio=16.0 / float(self.weight_bits_fn(sigma)),
            coverage=float(self.extra.get("coverage_fn", _zero)(sigma)),
        )
        return comp

    @property
    def identity(self) -> bool:
        """True for the raw (no-compression) codec."""
        return self.weight_bits_fn is None and self.kv_bits_fn is None


def _zero(_sigma: float) -> float:
    return 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_CODECS: dict[str, Codec] = {}
_ALIASES: dict[str, str] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its name and aliases (idempotent)."""
    key = codec.name.lower()
    _CODECS[key] = codec
    for alias in codec.aliases:
        _ALIASES[alias.lower()] = key
    return codec


def get_codec(name: str | Codec) -> Codec:
    """Resolve a codec by name or alias (case-insensitive).

    Canonical names win over aliases, so registering a codec under a
    name that happens to be another codec's alias is never silently
    shadowed by the alias table.
    """
    if isinstance(name, Codec):
        return name
    key = str(name).lower()
    if key not in _CODECS:
        key = _ALIASES.get(key, key)
    if key not in _CODECS:
        raise UnknownSpecError(
            "codec", str(name), list(_CODECS) + list(_ALIASES)
        )
    return _CODECS[key]


def list_codecs() -> list[str]:
    """Canonical registered codec names, sorted."""
    return sorted(_CODECS)


# ----------------------------------------------------------------------
# Measured-profile hook (see repro.compression.calibrate)
# ----------------------------------------------------------------------
#: Process-wide calibration profile consulted by :func:`resolve_spec`
#: when no explicit ``ratio``/``profile`` is given.  Duck-typed: anything
#: with ``ratio_for(codec, placement, cls) -> float | None``.
_ACTIVE_PROFILE = None


def set_measured_profile(profile) -> None:
    """Install (or, with ``None``, clear) the process-wide measured
    profile that :func:`resolve_spec` consults between the explicit
    ``ratio=`` override and the analytic estimator."""
    global _ACTIVE_PROFILE
    _ACTIVE_PROFILE = profile


def get_measured_profile():
    """The currently installed process-wide measured profile (or None)."""
    return _ACTIVE_PROFILE


class measured_profile:
    """Context manager scoping a measured profile to a ``with`` block::

        with measured_profile(profile):
            spec = resolve_spec("kvcomp", "kv")   # measured ratio
    """

    def __init__(self, profile):
        self.profile = profile
        self._saved = None

    def __enter__(self):
        self._saved = get_measured_profile()
        set_measured_profile(self.profile)
        return self.profile

    def __exit__(self, *exc):
        set_measured_profile(self._saved)
        return False


# ----------------------------------------------------------------------
# Resolved specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompressionSpec:
    """A codec pinned to a placement, with its ratio settled.

    This is what consumers hold after config-time resolution: the serving
    cores, the KV allocator and the transfer link all read ``ratio`` (and
    the codec's kernel hooks) without ever touching the registry again.
    ``source`` records which precedence level settled the ratio
    (``"explicit"`` / ``"measured"`` / ``"analytic"``) — provenance only,
    excluded from equality.
    """

    codec: str
    placement: str
    ratio: float
    sigma: float
    source: str = field(default="analytic", compare=False)

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"placement must be one of {PLACEMENTS},"
                f" got {self.placement!r}"
            )
        if self.ratio < 1.0:
            raise ConfigError(
                f"compression ratio must be >= 1, got {self.ratio}"
            )

    @property
    def identity(self) -> bool:
        """True when this spec applies no compression."""
        return self.ratio == 1.0 and get_codec(self.codec).identity

    def resolve(self) -> Codec:
        """The codec object behind this spec."""
        return get_codec(self.codec)


def resolve_spec(
    codec: str | Codec | CompressionSpec,
    placement: str,
    sigma: float | None = None,
    ratio: float | None = None,
    cls: str | None = None,
    profile=None,
) -> CompressionSpec:
    """Resolve a codec (by any name form) into a placement-pinned spec.

    Ratio precedence: an explicit ``ratio`` wins over everything — that
    is how legacy knobs (``kv_compression_ratio=1.4``,
    ``DisaggConfig.transfer_ratio``) keep their exact semantics — then a
    **measured** ratio from ``profile`` (or the process-wide profile
    installed with :func:`set_measured_profile`), then the codec's
    analytic estimator.  ``cls`` narrows the measured lookup to one
    tensor class (e.g. ``"weight:qkv_proj"``); without it the profile's
    placement-level aggregate is used.
    """
    if isinstance(codec, CompressionSpec):
        if codec.placement != placement:
            raise ConfigError(
                f"spec is pinned to {codec.placement!r}, wanted"
                f" {placement!r}"
            )
        return codec
    resolved = get_codec(codec)
    if sigma is None:
        sigma = WEIGHT_SIGMA if placement == "weight" else ACTIVATION_SIGMA
    source = "explicit"
    if ratio is None:
        prof = profile if profile is not None else _ACTIVE_PROFILE
        if prof is not None:
            ratio = prof.ratio_for(resolved.name, placement, cls)
            source = "measured"
    if ratio is None:
        ratio = resolved.ratio(placement, sigma)
        source = "analytic"
    return CompressionSpec(
        codec=resolved.name, placement=placement,
        ratio=float(ratio), sigma=float(sigma), source=source,
    )
