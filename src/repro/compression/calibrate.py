"""Measured codec calibration: run the real codecs, persist the ratios.

The registry's analytic estimators (:mod:`repro.compression.builtin`)
price every codec from a Gaussian model of the tensor — fast, but blind
to what ZipNN observes in practice: real compressibility varies per
model and per tensor class, and container overheads (tile offsets,
vector headers, frequency tables) bite differently at different shapes.
This module replaces assumption with measurement:

* a :class:`TensorClass` names one population of tensors — a weight
  matrix class at its layer's Glorot sigma (``weights by layer
  fan-in/out``), or a KV/wire block at activation scale;
* :func:`calibrate` samples each class, runs every candidate codec's
  **bit-exact encoder** over the same bits, and records the measured
  ratio next to the analytic estimate;
* the result is a persistable :class:`MeasuredRatioProfile` that
  :func:`~repro.compression.spec.resolve_spec` consults *between* the
  explicit ``ratio=`` override and the analytic estimator — measured
  wins over analytic, explicit wins over both (install one process-wide
  with :func:`~repro.compression.spec.set_measured_profile` or pass it
  as ``profile=`` / ``ServingConfig(calibration=...)``).

Calibration is deterministic: the same ``seed`` and classes produce the
same profile bit-for-bit (per-class sample seeds are derived with
``zlib.crc32``, never Python's randomised ``hash``), which is what lets
tests pin the measured-vs-analytic drift and lets a committed profile
stay meaningful.  The measured/analytic gap itself is bounded by
:data:`ANALYTIC_DRIFT_BOUND` (tested per builtin codec x placement in
``tests/test_calibration_policy.py``).
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..bf16 import gaussian_bf16_matrix
from ..errors import ConfigError
from .spec import (
    ACTIVATION_SIGMA,
    PLACEMENTS,
    get_codec,
    list_codecs,
)

#: Documented bound on |measured / analytic - 1| for every builtin codec
#: in every placement at the default calibration classes.  The analytic
#: estimators are first-order Gaussian models; the measured side adds
#: real container overheads, integer-codeword losses (Huffman-coded
#: exponent planes at ~1-2%) and the quant combo's entropy-coding slack
#: (~5%, the worst observed), so the gap is real but stays within this
#: band (enforced per codec x placement in
#: ``tests/test_calibration_policy.py``).
ANALYTIC_DRIFT_BOUND = 0.10

#: Default sample geometry: multiples of the 64x64 TCA-TBE tile so tile
#: container overheads amortise the way they do on real layers, yet
#: small enough that a full-registry calibration runs in seconds.
DEFAULT_SAMPLE_SHAPE = (128, 256)

PROFILE_FORMAT_VERSION = 1


def glorot_sigma(m: int, k: int) -> float:
    """Glorot-style weight sigma for an ``(m, k)`` layer:
    ``sqrt(2 / (fan_in + fan_out))`` (Appendix A's per-layer scale)."""
    if m <= 0 or k <= 0:
        raise ConfigError(f"layer dims must be positive, got {m}x{k}")
    return math.sqrt(2.0 / (m + k))


@dataclass(frozen=True)
class TensorClass:
    """One population of tensors to calibrate a codec against.

    ``name`` keys the measured record (convention:
    ``"<placement>:<what>"``, e.g. ``"weight:qkv_proj"``); ``sigma`` is
    the population's Gaussian scale; ``shape`` the sample drawn per
    calibration run.
    """

    name: str
    placement: str
    sigma: float
    shape: tuple[int, int] = DEFAULT_SAMPLE_SHAPE

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"placement must be one of {PLACEMENTS},"
                f" got {self.placement!r}"
            )
        if self.sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {self.sigma}")
        if min(self.shape) <= 0:
            raise ConfigError(f"sample shape must be positive: {self.shape}")

    def sample_seed(self, seed: int) -> int:
        """Deterministic per-class sample seed (no randomised hash())."""
        return (seed * 1000003 + zlib.crc32(self.name.encode())) % (2**31)


def default_tensor_classes() -> list[TensorClass]:
    """Model-agnostic calibration classes: one generic weight class per
    typical Glorot scale, plus the KV-block and wire-stream classes at
    activation scale (KV and wire carry the same bits; they are separate
    classes because the registry prices the placements separately)."""
    return [
        TensorClass("weight:generic", "weight", 0.02),
        TensorClass("kv:block", "kv", ACTIVATION_SIGMA),
        TensorClass("wire:kv", "wire", ACTIVATION_SIGMA),
        TensorClass("prefix:block", "prefix", ACTIVATION_SIGMA),
    ]


def tensor_classes_for_model(model, sample_shape=DEFAULT_SAMPLE_SHAPE):
    """Per-layer-class calibration classes for one model.

    ``model`` is duck-typed (anything with ``linear_layers()`` yielding
    objects with ``kind``/``m``/``k`` — :class:`repro.serving.models
    .ModelSpec` in practice; this module sits below the serving layer).
    Each linear-layer *kind* becomes one weight class at its own Glorot
    sigma — the per-tensor-class granularity ZipNN shows matters — and
    the KV/wire classes ride along at activation scale.
    """
    classes = []
    seen = set()
    for layer in model.linear_layers():
        if layer.kind in seen:
            continue
        seen.add(layer.kind)
        classes.append(TensorClass(
            name=f"weight:{layer.kind}",
            placement="weight",
            sigma=glorot_sigma(layer.m, layer.k),
            shape=sample_shape,
        ))
    classes.append(TensorClass("kv:block", "kv", ACTIVATION_SIGMA,
                               sample_shape))
    classes.append(TensorClass("wire:kv", "wire", ACTIVATION_SIGMA,
                               sample_shape))
    classes.append(TensorClass("prefix:block", "prefix", ACTIVATION_SIGMA,
                               sample_shape))
    return classes


@dataclass(frozen=True)
class MeasuredRatio:
    """One calibration record: a codec run over one tensor class."""

    codec: str
    placement: str
    cls: str
    sigma: float
    n_elements: int
    compressed_bytes: int
    analytic_ratio: float

    @property
    def raw_bytes(self) -> int:
        """Uncompressed BF16 footprint of the sample."""
        return 2 * self.n_elements

    @property
    def ratio(self) -> float:
        """Measured compression ratio (original / compressed bytes),
        floored at 1.0 to keep the stack's ``ratio >= 1`` invariant
        (a codec whose container inflates a tiny sample must not imply
        negative capacity)."""
        if self.n_elements == 0:
            return 1.0
        return max(1.0, self.raw_bytes / max(self.compressed_bytes, 1))

    @property
    def analytic_gap(self) -> float:
        """Relative measured-vs-analytic gap: ``measured/analytic - 1``."""
        return self.ratio / self.analytic_ratio - 1.0

    def to_dict(self) -> dict:
        return {
            "codec": self.codec,
            "placement": self.placement,
            "cls": self.cls,
            "sigma": self.sigma,
            "n_elements": self.n_elements,
            "compressed_bytes": self.compressed_bytes,
            "analytic_ratio": self.analytic_ratio,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MeasuredRatio":
        return cls(**d)


class MeasuredRatioProfile:
    """A persistable set of measured codec ratios, keyed by
    (codec, placement, tensor class).

    This is the object the registry's resolution consults
    (:func:`~repro.compression.spec.resolve_spec` calls
    :meth:`ratio_for`); it round-trips through JSON (:meth:`save` /
    :meth:`load`) so a calibration run on one machine can be committed
    and replayed anywhere.
    """

    def __init__(self, records=(), seed: int = 0):
        self.seed = seed
        self._records: dict[tuple[str, str, str], MeasuredRatio] = {}
        for rec in records:
            self.add(rec)

    # ------------------------------------------------------------------
    def add(self, rec: MeasuredRatio) -> None:
        self._records[(rec.codec, rec.placement, rec.cls)] = rec

    @property
    def records(self) -> list[MeasuredRatio]:
        """All records, in deterministic key order."""
        return [self._records[k] for k in sorted(self._records)]

    def __len__(self) -> int:
        return len(self._records)

    def record_for(
        self, codec: str, placement: str, cls: str | None = None
    ) -> MeasuredRatio | None:
        """One representative record for a codec x placement (or None).

        With ``cls`` given and calibrated, that exact record — the one
        backing :meth:`ratio_for`'s class-level answer.  Otherwise the
        first record in key order; note the placement-level
        :meth:`ratio_for` answer *pools bytes across all classes*, so
        no single record backs it — use :attr:`records` to audit the
        aggregate.
        """
        name = get_codec(codec).name
        if cls is not None:
            rec = self._records.get((name, placement, cls))
            if rec is not None:
                return rec
        rows = [
            r for (c, p, _), r in sorted(self._records.items())
            if c == name and p == placement
        ]
        return rows[0] if rows else None

    def ratio_for(
        self, codec: str, placement: str, cls: str | None = None
    ) -> float | None:
        """Measured ratio for a codec x placement (x optional class).

        With ``cls`` given, only that class's record answers (falling
        back to the placement aggregate when the class was never
        calibrated).  The placement aggregate is the element-weighted
        ratio — total raw bytes over total compressed bytes across the
        placement's classes — i.e. exactly what a heterogeneous tensor
        population would measure end to end.
        """
        name = get_codec(codec).name
        if cls is not None:
            rec = self._records.get((name, placement, cls))
            if rec is not None:
                return rec.ratio
        rows = [
            r for (c, p, _), r in self._records.items()
            if c == name and p == placement
        ]
        if not rows:
            return None
        raw = sum(r.raw_bytes for r in rows)
        compressed = sum(r.compressed_bytes for r in rows)
        return max(1.0, raw / max(compressed, 1))

    def classes(self, placement: str | None = None) -> list[str]:
        """Calibrated class names (optionally for one placement)."""
        return sorted({
            c for (_, p, c) in self._records
            if placement is None or p == placement
        })

    def codecs(self) -> list[str]:
        """Calibrated codec names, sorted."""
        return sorted({c for (c, _, _) in self._records})

    def max_analytic_gap(self) -> float:
        """Largest |measured/analytic - 1| across all records."""
        return max(
            (abs(r.analytic_gap) for r in self.records), default=0.0
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": PROFILE_FORMAT_VERSION,
            "seed": self.seed,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MeasuredRatioProfile":
        version = d.get("version")
        if version != PROFILE_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported calibration profile version {version!r}"
                f" (this build reads {PROFILE_FORMAT_VERSION})"
            )
        return cls(
            records=[MeasuredRatio.from_dict(r) for r in d["records"]],
            seed=int(d.get("seed", 0)),
        )

    def save(self, path) -> Path:
        """Write the profile as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "MeasuredRatioProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))


def calibrate(
    codecs=None,
    classes=None,
    seed: int = 0,
) -> MeasuredRatioProfile:
    """Run the real codecs over sampled tensors; return the profile.

    For every (class, codec) pair the class's sample — one Gaussian
    BF16 tensor at the class sigma, seeded deterministically per class —
    is pushed through the codec's bit-exact encoder and the achieved
    byte count recorded next to the analytic estimate.  Every codec of
    one class sees the *same* bits, so measured ratios are directly
    comparable.

    ``codecs`` defaults to every registered codec; ``classes`` to
    :func:`default_tensor_classes`.  Determinism contract: same
    arguments, same profile (tested).
    """
    if codecs is None:
        codecs = list_codecs()
    if classes is None:
        classes = default_tensor_classes()
    profile = MeasuredRatioProfile(seed=seed)
    for tcls in classes:
        rows, cols = tcls.shape
        sample = gaussian_bf16_matrix(
            rows, cols, sigma=tcls.sigma, seed=tcls.sample_seed(seed)
        )
        for name in codecs:
            codec = get_codec(name)
            enc = codec.encode(sample)
            profile.add(MeasuredRatio(
                codec=codec.name,
                placement=tcls.placement,
                cls=tcls.name,
                sigma=tcls.sigma,
                n_elements=sample.size,
                compressed_bytes=enc.nbytes,
                analytic_ratio=codec.ratio(tcls.placement, tcls.sigma),
            ))
    return profile
