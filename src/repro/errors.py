"""Exception hierarchy for the ZipServ reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FormatError(ReproError):
    """A compressed payload is malformed or inconsistent with its metadata."""


class CodecError(ReproError):
    """An entropy codec failed to encode or decode a payload."""


class ShapeError(ReproError):
    """An array shape is incompatible with the requested operation."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class UnknownSpecError(ConfigError):
    """A GPU, model, or backend name was not found in its registry."""

    def __init__(self, kind: str, name: str, known: list[str]):
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown {kind} {name!r}; known {kind}s: {', '.join(self.known)}"
        )


class CapacityError(ReproError):
    """A memory plan or KV-cache allocation does not fit on the device."""


class SchedulingError(ReproError):
    """The request scheduler was driven into an invalid state."""
