"""Exception hierarchy for the ZipServ reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FormatError(ReproError):
    """A compressed payload is malformed or inconsistent with its metadata."""


class CodecError(ReproError):
    """An entropy codec failed to encode or decode a payload."""


class ShapeError(ReproError):
    """An array shape is incompatible with the requested operation."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class UnknownSpecError(ConfigError, ValueError):
    """A GPU, model, backend, codec, ... name missing from its registry.

    Also a :class:`ValueError` so registry lookups fail the way plain
    Python mapping/validation code expects to catch them.  The message
    always lists every registered name and, when the miss looks like a
    typo, the nearest match.
    """

    def __init__(self, kind: str, name: str, known: list[str]):
        import difflib

        self.kind = kind
        self.name = name
        self.known = sorted(known)
        close = difflib.get_close_matches(
            str(name).lower(), self.known, n=1, cutoff=0.6
        )
        self.suggestion = close[0] if close else None
        hint = f" (did you mean {self.suggestion!r}?)" if close else ""
        super().__init__(
            f"unknown {kind} {name!r}{hint};"
            f" known {kind} names: {', '.join(self.known)}"
        )


class CapacityError(ReproError):
    """A memory plan or KV-cache allocation does not fit on the device."""


class SchedulingError(ReproError):
    """The request scheduler was driven into an invalid state."""
