"""Theoretical analysis (Appendix A) and model calibration constants."""

from .calibration import (
    BASELINE_DECODE_BW_FRAC,
    ISSUE_CONTENTION,
    PIPELINE_ISSUE_OVERHEAD,
    decode_cycles_per_element,
)
from .codec_efficiency import (
    CodecEfficiency,
    dfloat11_efficiency,
    dietgpu_efficiency,
    efficiency_report,
    tcatbe_efficiency,
)
from .theory import (
    exponent_pmf_gaussian,
    gaussian_exponent_entropy,
    pmf_is_unimodal,
    top_k_is_contiguous,
    window_coverage_gaussian,
)

__all__ = [
    "BASELINE_DECODE_BW_FRAC",
    "ISSUE_CONTENTION",
    "PIPELINE_ISSUE_OVERHEAD",
    "decode_cycles_per_element",
    "CodecEfficiency",
    "dfloat11_efficiency",
    "dietgpu_efficiency",
    "efficiency_report",
    "tcatbe_efficiency",
    "exponent_pmf_gaussian",
    "gaussian_exponent_entropy",
    "pmf_is_unimodal",
    "top_k_is_contiguous",
    "window_coverage_gaussian",
]
