"""Appendix A: why BF16 exponents of LLM weights are skewed and contiguous.

For weights ``w ~ N(0, sigma^2)``, the probability that a weight uses raw
exponent field ``E`` (actual exponent ``x = E - 127``) is the Gaussian mass
of the magnitude interval ``[2^x, 2^(x+1))``::

    P(X = x) = erf(2^(x+1) / (sigma sqrt(2))) - erf(2^x / (sigma sqrt(2)))

Appendix A proves this pmf is unimodal (single interior maximum at
``u0 = sqrt(ln 2 / 3)``), and that unimodality implies the top-K most
probable exponents always form a numerically contiguous run — the structural
property ("exponent contiguity") that lets TCA-TBE replace a codebook with
``base + code`` arithmetic.  This module evaluates the closed forms so tests
and experiments can check the claims numerically.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf

from ..bf16.dtype import EXPONENT_BIAS

#: Location of the continuous maximiser from Theorem A.1: u0 = sqrt(ln2 / 3),
#: where u = 2^x / (sigma sqrt(2)).
U_STAR = math.sqrt(math.log(2.0) / 3.0)


def exponent_pmf_gaussian(sigma: float) -> np.ndarray:
    """Pmf over the 256 raw exponent-field values for N(0, sigma^2) weights.

    Bin 0 aggregates zero and subnormal magnitudes (|w| < 2^-126); bin 255
    (inf/NaN) receives the negligible tail mass above 2^128.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    exps = np.arange(1, 255, dtype=np.float64)
    x = exps - EXPONENT_BIAS
    scale = sigma * math.sqrt(2.0)
    lo = np.exp2(x) / scale
    hi = np.exp2(x + 1.0) / scale
    pmf = np.zeros(256, dtype=np.float64)
    pmf[1:255] = erf(hi) - erf(lo)
    pmf[0] = erf(np.exp2(1.0 - EXPONENT_BIAS) / scale)  # |w| < 2^-126
    pmf[255] = max(0.0, 1.0 - pmf.sum())
    return pmf


def pmf_is_unimodal(pmf: np.ndarray, tol: float = 1e-15) -> bool:
    """Check that a pmf rises to a single peak then falls (Theorem A.1)."""
    pmf = np.asarray(pmf, dtype=np.float64)
    support = np.flatnonzero(pmf > tol)
    if support.size <= 2:
        return True
    values = pmf[support[0]: support[-1] + 1]
    diffs = np.diff(values)
    signs = np.sign(np.where(np.abs(diffs) <= tol, 0.0, diffs))
    signs = signs[signs != 0]
    # Once the sequence starts decreasing it must never increase again.
    decreasing = False
    for s in signs:
        if s < 0:
            decreasing = True
        elif decreasing:
            return False
    return True


def top_k_is_contiguous(pmf: np.ndarray, k: int) -> bool:
    """Check Theorem A.2: the k most probable values form a contiguous run."""
    pmf = np.asarray(pmf, dtype=np.float64)
    top = np.sort(np.argsort(-pmf, kind="stable")[:k])
    return bool(top[-1] - top[0] == k - 1)


def window_coverage_gaussian(sigma: float, k: int = 7) -> float:
    """Coverage of the best k-wide contiguous exponent window (analytic).

    §3.1 measures ~97.1% average coverage for k = 7 on real checkpoints;
    the Gaussian model predicts essentially the same value for any sigma in
    the LLM range because the pmf shape is scale-invariant up to a shift.
    """
    pmf = exponent_pmf_gaussian(sigma)
    window_sums = np.convolve(pmf, np.ones(k), "valid")
    return float(window_sums[1:].max())


def gaussian_exponent_entropy(sigma: float) -> float:
    """Entropy (bits) of the exponent pmf (paper: 2.57-2.74 for real LLMs)."""
    pmf = exponent_pmf_gaussian(sigma)
    p = pmf[pmf > 0]
    return float(-(p * np.log2(p)).sum())


def mode_exponent(sigma: float) -> int:
    """Raw exponent field value at the pmf mode.

    The continuous analysis puts the peak near ``2^x ≈ u0 sigma sqrt(2)``;
    this returns the exact discrete argmax.
    """
    return int(np.argmax(exponent_pmf_gaussian(sigma)))
