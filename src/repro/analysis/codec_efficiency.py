"""Deriving baseline decoder efficiencies from first principles (§3.2).

The performance model uses the paper's measured achieved-bandwidth fractions
for the baseline decompressors (DietGPU 43.7%, DFloat11 76.5%).  This module
*derives* comparable numbers from the implemented codecs and the GPU
simulators, so the calibration constants can be cross-checked rather than
trusted:

* **DFloat11 (Huffman)** — lockstep-divergence simulation over the *actual*
  per-symbol code lengths of an exponent stream, times a serial-dependency
  factor for the pointer-advance chain (§3.2 stage 3);
* **DietGPU (rANS)** — constant-time symbols, but every decode step gathers
  from the slot/alias tables: the bank-conflict replay factor over the
  measured table size gates throughput;
* **TCA-TBE** — fixed-length, conflict-free: efficiency ~1 relative to the
  coalesced-streaming ceiling.

The absolute ceiling (what fraction of DRAM peak a perfectly regular
decompressor reaches) is taken from the device spec; what this module
predicts is each codec's *penalty* below that ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bf16 import exponent_field, gaussian_bf16_sample
from ..codecs.huffman import HuffmanCodec
from ..codecs.rans import PROB_SCALE
from ..gpu.memory import lut_gather_addresses, simulate_bank_conflicts
from ..gpu.warp import huffman_divergence

#: Serial-dependency penalty of Huffman pointer advancement: the next peek
#: depends on the previous symbol's length (no ILP across symbols within a
#: lane).  One extra issue slot in a ~4-deep useful chain.
_POINTER_CHAIN_FACTOR = 0.85

#: Fraction of rANS decode time spent in table gathers (slot -> symbol and
#: frequency lookups) that bank conflicts serialise.
_RANS_GATHER_SHARE = 0.55


@dataclass(frozen=True)
class CodecEfficiency:
    """Predicted relative decoder efficiency (1.0 = regular streaming)."""

    codec: str
    simt_efficiency: float
    memory_penalty: float

    @property
    def relative_efficiency(self) -> float:
        """Combined fraction of the streaming ceiling."""
        return self.simt_efficiency * self.memory_penalty


def dfloat11_efficiency(n_symbols: int = 100_000, sigma: float = 0.015,
                        seed: int = 0) -> CodecEfficiency:
    """Huffman decoder efficiency from measured symbol-length divergence."""
    stream = exponent_field(gaussian_bf16_sample(n_symbols, sigma, seed))
    lengths = HuffmanCodec().symbol_lengths(stream)
    divergence = huffman_divergence(lengths)
    return CodecEfficiency(
        codec="dfloat11",
        simt_efficiency=divergence.efficiency * _POINTER_CHAIN_FACTOR,
        memory_penalty=1.0,
    )


def dietgpu_efficiency(n_requests: int = 2048, seed: int = 0) -> CodecEfficiency:
    """rANS decoder efficiency from table-gather bank conflicts."""
    report = simulate_bank_conflicts(
        lut_gather_addresses(n_requests, table_bytes=PROB_SCALE, seed=seed)
    )
    # Gather phase is slowed by the average replay degree; the rest of the
    # step (state update, renorm read) is regular.
    gather_slowdown = report.n_cycles / report.n_requests
    memory_penalty = 1.0 / (
        _RANS_GATHER_SHARE * gather_slowdown + (1.0 - _RANS_GATHER_SHARE)
    )
    return CodecEfficiency(
        codec="dietgpu",
        simt_efficiency=1.0,  # constant-time symbols: no length divergence
        memory_penalty=memory_penalty,
    )


def tcatbe_efficiency() -> CodecEfficiency:
    """Fixed-length decoding: uniform lanes, conflict-free accesses."""
    return CodecEfficiency(
        codec="tcatbe", simt_efficiency=1.0, memory_penalty=1.0
    )


def efficiency_report() -> dict[str, float]:
    """Predicted relative efficiencies for the §3.2 cross-check.

    Paper measurement (fractions of DRAM peak): TCA-TBE-class streaming
    ~0.88, DFloat11 0.765, DietGPU 0.437 — i.e. *relative* efficiencies of
    1.0, ~0.87 and ~0.50.  The derivations reproduce the ordering and the
    DietGPU spacing (~0.43 derived vs ~0.50); the first-order divergence
    model is more pessimistic about DFloat11 (~0.60 vs ~0.87) because it
    does not credit the hierarchical LUT and per-thread bit buffering that
    amortise long-code stalls.  The performance model therefore keeps the
    paper's measured constants and uses this module as a cross-check.
    """
    return {
        "tcatbe": tcatbe_efficiency().relative_efficiency,
        "dfloat11": dfloat11_efficiency().relative_efficiency,
        "dietgpu": dietgpu_efficiency().relative_efficiency,
    }
