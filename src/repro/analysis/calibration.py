"""Calibration constants for the GPU performance model, with provenance.

The reproduction substitutes real-GPU measurement with an analytical model
(DESIGN.md, "Substitutions").  Everything the model cannot derive from first
principles is collected *here*, each constant with a note on where it comes
from.  Derived quantities (compression ratios, instruction mixes, divergence
efficiencies) are computed from the functional implementations instead.
"""

from __future__ import annotations

from functools import lru_cache

from ..gpu.instructions import alu_cycles

#: Achieved fraction of peak DRAM bandwidth for the baseline decompressors.
#: Provenance: §3.2 of the paper measures DietGPU at 43.7% and DFloat11 at
#: 76.5% of peak on the L40S; nvCOMP's rANS sits between them (vendor rANS is
#: better engineered than DietGPU but still gather-bound).  The divergence
#: and bank-conflict simulations (tests/test_warp_sim.py) reproduce the
#: *ordering* of these numbers from the codecs' own symbol statistics.
BASELINE_DECODE_BW_FRAC: dict[str, float] = {
    "dfloat11": 0.765,
    "dietgpu": 0.437,
    "nvcomp": 0.50,
}

#: Multiplier on the warp-reference instruction count to account for pipeline
#: bookkeeping the per-element transcript does not include (double-buffer
#: pointer arithmetic, barrier participation, predicate setup).  Provenance:
#: chosen so the fused kernel's ALU-busy fraction lands near the 66% Nsight
#: Compute reading of Figure 12(b) on the RTX4090 shape.
PIPELINE_ISSUE_OVERHEAD = 1.18

#: Fraction of decode ALU time that steals issue slots from Tensor Core math
#: when both are active (they share the instruction issue stage).  Provenance:
#: fitted to Figure 15 — the fused kernel must stay ahead of cuBLAS up to
#: N ~ 128 and fall behind by ~25-30% at N = 8192.
ISSUE_CONTENTION = 0.35

#: Extra factor a CTA-underfilled kernel loses: how many CTAs (relative to SM
#: count) are needed to saturate DRAM.  cuBLAS CTAs are lean; the fused
#: kernel's higher register/shared-memory footprint lowers occupancy, so it
#: needs a full wave.  Provenance: Figure 11's small-layer slowdown (O_proj
#: of LLaMA3.1-8B at 0.79x on L40S).
SATURATION_CTAS_FRAC_DENSE = 0.75
SATURATION_CTAS_FRAC_FUSED = 1.0

#: Tensor-core efficiency of a well-tuned dense kernel on large tiles
#: (epilogue, pipeline fill, instruction overhead keep it below peak).
TC_EFFICIENCY = 0.80

#: End-to-end serving constants (per engine step), fitted to the Figure 17
#: breakdown.  vLLM and the ZipServ integration capture the decode step in
#: CUDA graphs (per-kernel replay gap of a few microseconds); HF Transformers
#: and the DFloat11 release dispatch eagerly from Python.  E2E_BW_DERATE is
#: the L2 cold-start derate of interleaved kernels relative to back-to-back
#: microbenchmark loops.
DISPATCH_OVERHEAD_S: dict[str, float] = {
    "vllm": 5e-6,
    "zipserv": 5e-6,
    "transformers": 80e-6,
    "dfloat11": 80e-6,
}
E2E_BW_DERATE = 0.90


@lru_cache(maxsize=1)
def decode_cycles_per_element() -> float:
    """SM-cycles of decode ALU work per weight element, *measured*.

    Runs the literal Algorithm-2 warp reference on a representative
    compressed tile set, converts the instruction mix to issue cycles with
    the per-category throughput table, and applies the pipeline-bookkeeping
    overhead factor.  This is the quantity Figure 12(a) visualises.
    """
    from ..bf16 import gaussian_bf16_matrix
    from ..tcatbe import compress
    from ..tcatbe.layout import FRAG_ELEMS
    from ..tcatbe.warp_ref import average_instruction_mix

    matrix = compress(gaussian_bf16_matrix(64, 64, sigma=0.02, seed=1234))
    mix = average_instruction_mix(matrix, max_tiles=64)
    n_elements = 64 * FRAG_ELEMS
    per_element = {op: c / n_elements for op, c in mix.counts.items()}
    return alu_cycles(per_element) * PIPELINE_ISSUE_OVERHEAD
