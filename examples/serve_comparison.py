"""Serving-system shoot-out: ZipServ vs vLLM vs Transformers vs DFloat11.

A compact version of the paper's Figure 16: fixed batches of identical
requests on LLaMA-3.1-8B / RTX4090, sweeping output lengths, reporting
latency and throughput per backend plus normalised speedups — then a
continuous-batching round through the event-driven serving core (chunked
prefill, FCFS) comparing TTFT/TPOT percentiles and SLO goodput.

Run: ``python examples/serve_comparison.py``
"""

from repro import ZipServ
from repro.core.report import compare_backends
from repro.serving.metrics import SLOTarget
from repro.serving.serve import ServingConfig
from repro.serving.trace import LengthDistribution, poisson_trace

MODEL, GPU = "llama3.1-8b", "rtx4090"
BATCH, PROMPT = 32, 128
OUTPUT_LENS = (128, 512, 1024, 2048)
BACKENDS = ("zipserv", "vllm", "transformers", "dfloat11")


def continuous_round(engines: dict) -> None:
    """Replay one chat trace through the two paged-KV backends."""
    print("\nContinuous batching (chunked prefill, 32-request chat trace):")
    print(f"{'backend':>10s} {'tput tok/s':>11s} {'ttft p95':>9s}"
          f" {'tpot p95':>9s} {'goodput':>8s}")
    config = ServingConfig(
        policy="fcfs",
        prefill_mode="chunked",
        slo=SLOTarget(ttft_s=0.5, tpot_s=0.05),
    )
    for name in ("zipserv", "vllm"):
        trace = poisson_trace(
            32, rate_rps=10.0, seed=7,
            prompts=LengthDistribution(256, 0.6, 32, 1024),
            outputs=LengthDistribution(128, 0.8, 16, 512),
        )
        result = engines[name].engine.serve(trace, config=config)
        m = result.metrics
        print(f"{name:>10s} {result.throughput_tok_s:11.1f}"
              f" {m.ttft.p95_s:8.3f}s {m.tpot.p95_s*1e3:7.2f}ms"
              f" {m.goodput_rps:5.2f}/s")


def main() -> None:
    engines = {
        name: ZipServ(MODEL, GPU, backend=name) for name in BACKENDS
    }
    print(f"== {MODEL} on {GPU}, batch {BATCH}, prompt {PROMPT} ==\n")
    header = f"{'out_len':>8s}" + "".join(f"{b:>14s}" for b in BACKENDS)
    print(header + "   (tokens/s)")
    for out_len in OUTPUT_LENS:
        results = {
            name: engine.generate(BATCH, PROMPT, out_len)
            for name, engine in engines.items()
        }
        row = f"{out_len:8d}"
        for name in BACKENDS:
            row += f"{results[name].throughput_tok_s:14.1f}"
        extras = ""
        if results["vllm"].n_waves > 1:
            extras = (f"   <- vLLM preempted to"
                      f" {results['vllm'].effective_batch} seqs (KV full)")
        print(row + extras)

    print("\nNormalised against vLLM at out_len=1024:")
    results = {
        name: engine.generate(BATCH, PROMPT, 1024)
        for name, engine in engines.items()
    }
    for row in compare_backends(results, reference="vllm"):
        print(
            f"  {row.backend:13s} latency {row.latency_s:7.2f}s "
            f"throughput {row.throughput_tok_s:8.1f} tok/s "
            f"({row.speedup_vs_reference:.2f}x vLLM)"
        )

    step = engines["zipserv"].decode_step_breakdown(BATCH, 1024)
    vstep = engines["vllm"].decode_step_breakdown(BATCH, 1024)
    print(
        f"\nDecode-step breakdown @ ctx 1024 (zipserv vs vllm, ms):\n"
        f"  linear    {step.linear_s * 1e3:6.2f} vs {vstep.linear_s * 1e3:6.2f}\n"
        f"  attention {step.attention_s * 1e3:6.2f} vs"
        f" {vstep.attention_s * 1e3:6.2f}\n"
        f"  other     {(step.other_s + step.dispatch_s) * 1e3:6.2f} vs"
        f" {(vstep.other_s + vstep.dispatch_s) * 1e3:6.2f}"
    )

    continuous_round(engines)


if __name__ == "__main__":
    main()
