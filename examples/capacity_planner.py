"""Capacity planner: which models fit on which GPUs, and what KV you get.

The §6.5 deployment question: weight compression both *fits larger models*
on constrained GPUs and *frees KV capacity* (longer contexts / bigger
batches) for models that already fit.  This tool sweeps the model zoo over
the GPU fleet and prints the feasible deployments with their KV budgets.

Run: ``python examples/capacity_planner.py``
"""

from repro import MODELS
from repro.core.api import plan_for
from repro.errors import CapacityError

GPUS = ("rtx4090", "rtx5090", "l40s", "a100", "h800")
TP_OPTIONS = (1, 2, 4)


def feasibility(model_name: str, gpu: str, backend: str) -> str:
    """Smallest TP degree that fits, with its KV budget, or '-'."""
    for tp in TP_OPTIONS:
        try:
            plan = plan_for(model_name, gpu, backend, tensor_parallel=tp)
        except CapacityError:
            continue
        tokens_k = plan.kv_tokens / 1000
        tag = f"x{tp}" if tp > 1 else "  "
        return f"{tag} {plan.kv_gib:5.1f}GiB/{tokens_k:5.0f}k"
    return "      does not fit"


def main() -> None:
    for backend in ("vllm", "zipserv"):
        print(f"\n== {backend} deployments "
              f"(per-GPU KV capacity / KV tokens) ==")
        header = f"{'model':14s}" + "".join(f"{g:>22s}" for g in GPUS)
        print(header)
        for model_name in MODELS:
            row = f"{model_name:14s}"
            for gpu in GPUS:
                row += f"{feasibility(model_name, gpu, backend):>22s}"
            print(row)

    print(
        "\nReading: ZipServ (TCA-TBE weights) fits models one TP class"
        " earlier and carries a larger KV budget at equal hardware —"
        " the static weight saving becomes dynamic serving capacity."
    )


if __name__ == "__main__":
    main()
