"""Tour of the §7 extensions: KV compression, snapshots, quant stacking.

The paper closes with three directions beyond weight serving; this script
exercises each one's implementation:

1. lossless KV-cache compression fused into paged attention;
2. compressed checkpoints and incremental (delta) training snapshots;
3. entropy coding stacked on INT8 quantisation.

Run: ``python examples/extensions_tour.py``
"""

import tempfile

import numpy as np

from repro.bf16 import gaussian_bf16_matrix
from repro.extensions import (
    compress_kv_block,
    compress_quantized,
    decompress_kv_block,
    delta_snapshot,
    kv_compression_ratio,
    load_checkpoint,
    quantize_int8,
    restore_snapshot,
    save_checkpoint,
    zipquant_gemm,
)
from repro.gpu import get_gpu
from repro.kernels import marlin_w8a16_gemm
from repro.serving import InferenceEngine, get_backend, get_model


def kv_cache_compression() -> None:
    print("== 1. lossless KV-cache compression ==")
    block = gaussian_bf16_matrix(16, 2048, sigma=0.05, seed=0)
    blob = compress_kv_block(block)
    assert np.array_equal(decompress_kv_block(blob, block.shape), block)
    print(f"  one 16-token block: {blob.ratio:.2f}x, bit-exact")

    model = get_model("llama3.1-8b")
    gpu = get_gpu("rtx4090")
    plain = InferenceEngine(model, gpu, get_backend("zipserv"))
    fused = InferenceEngine(model, gpu, get_backend("zipserv"),
                            kv_compression_ratio=kv_compression_ratio())
    p = plain.run(32, 128, 2048)
    f = fused.run(32, 128, 2048)
    print(f"  KV tokens: {plain.plan.kv_tokens} -> {fused.plan.kv_tokens}"
          f" (+{100 * (fused.plan.kv_tokens / plain.plan.kv_tokens - 1):.0f}%)")
    print(f"  long-context throughput: {p.throughput_tok_s:.0f} ->"
          f" {f.throughput_tok_s:.0f} tok/s\n")


def checkpoints_and_snapshots() -> None:
    print("== 2. compressed checkpoints + delta snapshots ==")
    tensors = {
        "qkv": gaussian_bf16_matrix(512, 256, sigma=0.015, seed=1),
        "mlp": gaussian_bf16_matrix(1024, 256, sigma=0.014, seed=2),
    }
    with tempfile.TemporaryDirectory() as tmp:
        receipt = save_checkpoint(tensors, tmp)
        loaded = load_checkpoint(tmp)
    assert all(np.array_equal(loaded[k], tensors[k]) for k in tensors)
    print(f"  checkpoint: {receipt.original_nbytes / 1e6:.2f} MB ->"
          f" {receipt.compressed_nbytes / 1e6:.2f} MB"
          f" ({receipt.ratio:.2f}x)")

    # One optimiser step later: a sparse, low-magnitude update.
    stepped = tensors["mlp"].copy()
    stepped.ravel()[::37] ^= np.uint16(1)
    snap = delta_snapshot("mlp", tensors["mlp"], stepped)
    assert np.array_equal(restore_snapshot(tensors["mlp"], snap), stepped)
    print(f"  incremental snapshot of the update: {snap.ratio:.1f}x\n")


def quantisation_stacking() -> None:
    print("== 3. entropy coding atop INT8 quantisation ==")
    weights = gaussian_bf16_matrix(1024, 1024, sigma=0.015, seed=3)
    blob = compress_quantized(quantize_int8(weights))
    print(f"  INT8 plane entropy-coded: 8.0 ->"
          f" {blob.bits_per_weight:.2f} bits/weight"
          f" ({blob.ratio_vs_int8:.3f}x residual gain, lossless at INT8)")

    gpu = get_gpu("rtx4090")
    marlin = marlin_w8a16_gemm(gpu, 28672, 4096, 32)
    combo = zipquant_gemm(gpu, 28672, 4096, 32, blob.bits_per_weight)
    print(f"  kernel: Marlin {marlin.time_s * 1e6:.0f} us ->"
          f" combo {combo.time_s * 1e6:.0f} us"
          f" ({marlin.time_s / combo.time_s:.2f}x)")


def main() -> None:
    kv_cache_compression()
    checkpoints_and_snapshots()
    quantisation_stacking()


if __name__ == "__main__":
    main()
