"""Quickstart: compress a layer losslessly, run fused inference, serve a model.

Walks the three levels of the library in ~40 lines:

1. **Format level** — TCA-TBE compression of one BF16 weight matrix, with a
   bit-exact round trip and fused (load-compressed, compute-decompressed)
   GEMM execution.
2. **Kernel level** — modelled ZipGEMM vs cuBLAS time on a real layer shape.
3. **Serving level** — end-to-end throughput of ZipServ vs vLLM.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import ZipServ, compress_weights, decompress_weights
from repro.bf16 import gaussian_bf16_matrix
from repro.kernels.functional import dense_gemm_tiled, zipgemm_execute
from repro.utils import human_time


def main() -> None:
    # --- 1. Lossless compression of one layer -------------------------
    weights = gaussian_bf16_matrix(512, 512, sigma=0.015, seed=0)
    matrix = compress_weights(weights)
    assert np.array_equal(decompress_weights(matrix), weights)
    print(
        f"TCA-TBE: {matrix.original_nbytes / 1e6:.2f} MB -> "
        f"{matrix.compressed_nbytes / 1e6:.2f} MB "
        f"({matrix.bits_per_element:.2f} bits/element, "
        f"{matrix.ratio:.2f}x, bit-exact)"
    )

    # Fused execution: decode tiles on the fly, outputs identical to dense.
    x = np.random.default_rng(1).normal(0, 1, (512, 8)).astype(np.float32)
    assert np.array_equal(zipgemm_execute(matrix, x),
                          dense_gemm_tiled(weights, x))
    print("fused ZipGEMM output == dense GEMM output (bit-exact)")

    # --- 2. Kernel-level speedup on a real shape -----------------------
    zs = ZipServ(model="llama3.1-8b", gpu="rtx4090")
    fused = zs.linear_layer_profile("gateup_proj", n_tokens=32)
    print(
        f"GateUp (28672x4096, N=32) on RTX4090: ZipGEMM "
        f"{human_time(fused.time_s)} via the {fused.details['path']} path"
    )

    # --- 3. End-to-end serving comparison ------------------------------
    print(f"\n{zs.compression_report().summary()}")
    plan = zs.memory_plan
    print(f"memory plan: weights {plan.weight_gib:.2f} GiB, "
          f"KV cache {plan.kv_gib:.2f} GiB")

    vllm = ZipServ(model="llama3.1-8b", gpu="rtx4090", backend="vllm")
    for engine, name in ((zs, "zipserv"), (vllm, "vllm")):
        result = engine.generate(batch_size=32, prompt_len=128,
                                 output_len=256)
        print(f"{name:8s}: {result.throughput_tok_s:7.1f} tok/s, "
              f"latency {result.latency_s:.2f} s")


if __name__ == "__main__":
    main()
