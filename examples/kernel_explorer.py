"""Kernel explorer: where does fused decompression win, and why?

Sweeps batch size N for one layer shape across GPUs and prints the modelled
resource bottleneck of every point — memory, decode ALU, or tensor cores —
making the paper's two regime boundaries visible:

* fused vs decoupled (Figure 15's stage-aware crossover around N ~ 128);
* consumer vs datacenter GPUs (Figure 18: on HBM parts the decode ALU work
  stops hiding behind memory).

Run: ``python examples/kernel_explorer.py [M] [K]``
"""

import sys

from repro import get_gpu
from repro.kernels import cublas_gemm, stage_aware_linear, zipgemm

NS = (1, 8, 32, 128, 512, 2048, 8192)
GPUS = ("rtx4090", "l40s", "a100", "h800")


def bottleneck(details: dict) -> str:
    terms = {
        "memory": details["mem_time_s"],
        "decode-alu": details["alu_time_s"],
        "tensor-core": details["compute_time_s"],
    }
    return max(terms, key=terms.get)


def main(m: int = 28672, k: int = 4096) -> None:
    print(f"== ZipGEMM regimes for W[{m}x{k}] ==\n")
    for gpu_name in GPUS:
        gpu = get_gpu(gpu_name)
        print(f"-- {gpu.marketing_name} ({gpu.dram_gbps:.0f} GB/s,"
              f" {gpu.sm_count} SMs @ {gpu.clock_ghz:.2f} GHz)")
        print(f"{'N':>6s} {'cublas':>10s} {'zipgemm':>10s} {'speedup':>8s}"
              f" {'bound-by':>12s} {'stage-aware':>12s}")
        for n in NS:
            cb = cublas_gemm(gpu, m, k, n)
            zg = zipgemm(gpu, m, k, n)
            auto = stage_aware_linear(gpu, m, k, n)
            print(
                f"{n:6d} {cb.time_s * 1e6:9.1f}u {zg.time_s * 1e6:9.1f}u"
                f" {cb.time_s / zg.time_s:7.2f}x"
                f" {bottleneck(zg.details):>12s}"
                f" {auto.details['path']:>12s}"
            )
        print()

    print(
        "Reading: on GDDR GPUs decode ALU hides under the memory roof and"
        " the fused kernel wins at decode N; on HBM GPUs (A100/H800) the"
        " ALU term surfaces and ZipGEMM loses its edge (§7).  At prefill N"
        " the engine switches to the decoupled path."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args) if args else main()
