"""Offline compressor walkthrough: profile, window-select, compress, report.

Reproduces the §3.1 compressibility study on a synthetic LLaMA-3.1-8B and
runs the Algorithm-1 offline compressor layer kind by layer kind, printing a
per-layer receipt like the one a deployment would store next to the model.

Run: ``python examples/compress_llm.py [model-name]``
"""

import sys

from repro import get_model
from repro.serving.weights import (
    layer_sigma,
    materialize_layer,
    model_compression_report,
)
from repro.tcatbe import (
    compress,
    exponent_entropy,
    exponent_histogram,
    select_window,
    top_k_contiguous,
)

#: Sampled rows per layer kind (full layers would take minutes in Python).
SAMPLE_SHAPE = (512, 1024)


def main(model_name: str = "llama3.1-8b") -> None:
    model = get_model(model_name)
    print(f"== offline compression of {model.name} "
          f"({model.param_count() / 1e9:.2f}B params) ==\n")

    print("Phase I: exponent profiling (per layer kind, sampled)")
    for layer in model.linear_layers():
        sigma = layer_sigma(layer.kind, layer.m, layer.k)
        sample = materialize_layer(*SAMPLE_SHAPE, sigma=sigma,
                                   seed=hash(layer.kind) % 1000)
        hist = exponent_histogram(sample)
        window = select_window(hist)
        print(
            f"  {layer.name:13s} ({layer.m:6d}x{layer.k:<6d}) "
            f"sigma={sigma:.4f} entropy={exponent_entropy(hist):.2f}b "
            f"window=[{window.start},{window.stop}) "
            f"coverage={window.coverage:.3f} "
            f"top7-contiguous={top_k_contiguous(hist, 7)}"
        )

    print("\nPhase II: tile encoding (one sampled matrix per kind)")
    for layer in model.linear_layers():
        sigma = layer_sigma(layer.kind, layer.m, layer.k)
        sample = materialize_layer(*SAMPLE_SHAPE, sigma=sigma,
                                   seed=hash(layer.kind) % 1000)
        matrix = compress(sample)
        report = matrix.size_report()
        print(
            f"  {layer.name:13s} base_exp={matrix.base_exp:3d} "
            f"bits/elem={matrix.bits_per_element:5.2f} "
            f"ratio={matrix.ratio:.3f} "
            f"(bitmaps {report.bitmaps_nbytes}B, "
            f"high {report.high_nbytes}B, low {report.low_nbytes}B)"
        )

    print("\nWhole-model footprint (analytic, §6.5 accounting):")
    report = model_compression_report(model)
    print(
        f"  {report['dense_gib']:.2f} GiB -> {report['compressed_gib']:.2f}"
        f" GiB ({100 * report['fraction']:.1f}% of dense)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama3.1-8b")
