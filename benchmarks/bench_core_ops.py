"""Throughput benchmarks of the functional building blocks.

These time the actual Python implementations (not the GPU model): the
TCA-TBE compressor/decompressor, the baseline entropy codecs, and the fused
functional GEMM.  They track regressions in the repository's own hot paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bf16 import exponent_field, gaussian_bf16_matrix
from repro.codecs import HuffmanCodec, RansCodec, get_bf16_codec
from repro.kernels.functional import dense_gemm_tiled, zipgemm_execute
from repro.tcatbe import compress, decompress

LAYER = gaussian_bf16_matrix(1024, 1024, sigma=0.015, seed=0)
SMALL = gaussian_bf16_matrix(256, 256, sigma=0.015, seed=1)
EXPONENTS = exponent_field(LAYER.ravel())


def test_tcatbe_compress(benchmark):
    matrix = benchmark(compress, LAYER)
    assert 1.35 < matrix.ratio < 1.5


def test_tcatbe_decompress(benchmark):
    matrix = compress(LAYER)
    out = benchmark(decompress, matrix)
    assert np.array_equal(out, LAYER)


def test_huffman_encode(benchmark):
    codec = HuffmanCodec()
    stream = benchmark(codec.encode, EXPONENTS)
    assert stream.ratio > 2.5


def test_huffman_decode(benchmark):
    codec = HuffmanCodec()
    stream = codec.encode(EXPONENTS)
    out = benchmark(codec.decode, stream)
    assert np.array_equal(out, EXPONENTS)


def test_rans_encode(benchmark):
    codec = RansCodec()
    stream = benchmark(codec.encode, EXPONENTS)
    assert stream.ratio > 2.5


def test_rans_decode(benchmark):
    codec = RansCodec()
    stream = codec.encode(EXPONENTS)
    out = benchmark(codec.decode, stream)
    assert np.array_equal(out, EXPONENTS)


@pytest.mark.parametrize("name", ["dfloat11", "dietgpu", "nvcomp"])
def test_bf16_codec_roundtrip(benchmark, name):
    codec = get_bf16_codec(name)

    def roundtrip():
        return codec.decompress(codec.compress(SMALL))

    out = benchmark(roundtrip)
    assert np.array_equal(out, SMALL)


def test_fused_functional_gemm(benchmark):
    matrix = compress(SMALL)
    x = np.random.default_rng(3).normal(0, 1, (256, 8)).astype(np.float32)
    fused = benchmark(zipgemm_execute, matrix, x)
    assert np.array_equal(fused, dense_gemm_tiled(SMALL, x))
