"""Fleet capacity benchmark: scale-out knees per routing policy.

The scale-out half of the capacity story: for each workload profile,
locate the open-loop knee (:func:`repro.serving.openloop.find_knee`) of
a single colocated replica and of a 4-replica colocated fleet
(:class:`~repro.serving.fleet.FleetCore`) under two routing policies —
``round_robin`` and ``least_kv_occupancy``.  The committed baseline
(``benchmarks/BENCH_fleet_baseline.json``) carries the two claims the
regression gate and ``tests/test_fleet_baseline.py`` pin:

* **scale-out** — the fleet knee is at least ``0.8 × N ×`` the
  single-replica knee on every profile (in practice it is superlinear:
  one replica is concurrency-capped long before its GPU is);
* **KV-aware routing** — ``least_kv_occupancy`` sustains a knee at
  least as high as ``round_robin`` on every profile, and strictly
  higher on the heterogeneous profiles (chat / RAG / code-generation),
  where balancing committed KV bytes beats balancing request counts.

Fleet measurement geometry deliberately differs from
``bench_capacity.py`` in two places, both forced by what is being
measured:

* ``max_num_seqs=64`` (vs 16): with interactive single-replica limits
  the fleet saturates on concurrency slots long before KV pressure
  differentiates the replicas, and every routing policy measures
  identically — the benchmark would be blind to the signal it exists
  to compare;
* a 30 s offered horizon (vs 15 s): fleet knees sit at 4×+ the rate,
  where the goodput-feasibility boundary is a cliff — the longer
  steady window keeps Poisson count noise from flipping probes at the
  knife edge.

Everything is simulated and seeded, so the numbers are
bit-deterministic for a given code state;
``tools/bench_regression.py --mode fleet`` gates the knees and the
sim-throughput (``events_per_s``) of every row.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py                # sweep + knees
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_capacity  # noqa: E402  (shared engine + measurement geometry)
from bench_capacity import (  # noqa: E402
    CTX_BUCKET,
    HIT_RATE_PROBE_RPS,
    LO_RPS,
    MAX_PROBES,
    PREFIX_CAPACITY_FRAC,
    PROFILE_SLOS,
    RATE_TOL_RPS,
    SEED,
    SESSION_PROFILE,
    _curve_row,
    _engine,
    _strip_wall,
)
from repro.serving import (  # noqa: E402
    FleetConfig,
    PrefixCacheConfig,
    SchedulerLimits,
    ServingConfig,
    find_knee,
    goodput_feasible,
    list_profiles,
    run_open_loop,
)

# ----------------------------------------------------------------------
# Fleet measurement geometry (see module docstring for why it differs)
# ----------------------------------------------------------------------
N_REPLICAS = 4
LIMITS = SchedulerLimits(max_num_seqs=64, max_batched_tokens=8192)
DURATION_S = 30.0
WARMUP_S = 5.0
COOLDOWN_S = 5.0

#: Knee-search brackets: a fleet knee can sit at N× the single-replica
#: one, so the fleet bracket top scales with the replica count.
SINGLE_HI_RPS = 64.0
FLEET_HI_RPS = 256.0

#: Curve sample points as fractions of the measured knee.
CURVE_FRACTIONS = (0.5, 0.75, 0.9, 1.0, 1.1)

#: --quick mode: no bisection, this fixed grid only (CI smoke).
QUICK_RATES = (8.0, 24.0)
QUICK_PROFILES = ("fixed_length", "chat")

DEFAULT_BASELINE = ROOT / "benchmarks" / "BENCH_fleet_baseline.json"
DEFAULT_OUTPUT = ROOT / "benchmarks" / "BENCH_fleet.json"


def _single_config() -> ServingConfig:
    return ServingConfig(
        prefill_mode="chunked", cost_bucket=CTX_BUCKET, limits=LIMITS
    )


def _fleet_config(routing: str) -> ServingConfig:
    return ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=CTX_BUCKET,
        limits=LIMITS,
        fleet=FleetConfig(
            n_replicas=N_REPLICAS, routing=routing,
            instance=_single_config(),
        ),
    )


#: Configurations under test: name -> (config factory, knee bracket top).
CONFIGS = {
    "single": (_single_config, SINGLE_HI_RPS),
    "fleet4_round_robin": (
        lambda: _fleet_config("round_robin"), FLEET_HI_RPS
    ),
    "fleet4_least_kv": (
        lambda: _fleet_config("least_kv_occupancy"), FLEET_HI_RPS
    ),
}


def _session_fleet_config(routing: str) -> ServingConfig:
    """4 replicas, each carving a hot+compressed prefix cache.

    ``prefix_cache`` sits on the outer config and propagates to every
    replica (each carves its own); the routing policy is the variable —
    per-replica caches only pay off if a session's turns keep landing
    on the same replica.
    """
    return ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=CTX_BUCKET,
        limits=LIMITS,
        prefix_cache=PrefixCacheConfig(
            capacity_frac=PREFIX_CAPACITY_FRAC, hot_frac=0.5,
            codec="kvcomp",
        ),
        fleet=FleetConfig(
            n_replicas=N_REPLICAS, routing=routing,
            instance=_single_config(),
        ),
    )


#: Extra configs swept on the session profile only: the same cached
#: fleet under session-sticky vs occupancy-balancing routing.
SESSION_CONFIGS = {
    "fleet4_session_affinity": (
        lambda: _session_fleet_config("session_affinity"), FLEET_HI_RPS
    ),
    "fleet4_session_least_kv": (
        lambda: _session_fleet_config("least_kv_occupancy"), FLEET_HI_RPS
    ),
}

#: The fleet's equal-load hit-rate probe offers N× the single-replica
#: probe rate, so each replica sees the same per-replica load.
FLEET_HIT_RATE_PROBE_RPS = N_REPLICAS * HIT_RATE_PROBE_RPS


def _serve_fn(config: ServingConfig):
    engine = _engine()
    return lambda requests, deadline_s: engine.serve(
        requests, config=config, deadline_s=deadline_s
    )


def _measure_at(serve, profile: str, rate_rps: float):
    return run_open_loop(
        serve, profile, rate_rps, DURATION_S,
        warmup_s=WARMUP_S, cooldown_s=COOLDOWN_S, seed=SEED,
        slo=PROFILE_SLOS.get(profile),
    )


def measure_config(
    profile: str, config: ServingConfig, hi_rps: float,
    curves: bool = True, hit_rate_probe_rps: float | None = None,
) -> dict:
    """Knee + (optionally) the rate curve for one profile × config.

    ``hit_rate_probe_rps`` (prefix-cache configs) adds one fixed-rate
    sample and commits its fleet-merged token hit rate as
    ``token_hit_rate`` — the equal-load column the routing-policy
    hit-rate claim is pinned on.
    """
    serve = _serve_fn(config)
    steps = 0

    def probe(rate: float) -> bool:
        nonlocal steps
        measurement = _measure_at(serve, profile, rate)
        steps += measurement.result.n_steps
        return goodput_feasible(measurement)

    knee = find_knee(
        probe, LO_RPS, hi_rps,
        rate_tol_rps=RATE_TOL_RPS, max_probes=MAX_PROBES,
    )
    row = {
        "knee_rps": round(knee.knee_rps, 4),
        "n_probes": knee.n_probes,
    }
    if curves and knee.knee_rps > 0:
        samples = [
            _measure_at(serve, profile, frac * knee.knee_rps)
            for frac in CURVE_FRACTIONS
        ]
        steps += sum(m.result.n_steps for m in samples)
        row["curve"] = [_curve_row(m) for m in samples]
    if hit_rate_probe_rps is not None:
        sample = _measure_at(serve, profile, hit_rate_probe_rps)
        steps += sample.result.n_steps
        cache = sample.result.prefix_cache
        row["hit_rate_probe_rps"] = hit_rate_probe_rps
        row["token_hit_rate"] = round(
            cache.token_hit_rate if cache is not None else 0.0, 4
        )
    row["n_steps"] = steps
    return row


def measure_fleet(quick: bool = False, curves: bool = True) -> dict:
    """The fleet surface: {profile: {config: {knee, curve, n_steps}}}."""
    profiles = QUICK_PROFILES if quick else tuple(list_profiles())
    surface: dict = {}
    for profile in profiles:
        surface[profile] = {}
        configs = dict(CONFIGS)
        if profile == SESSION_PROFILE and not quick:
            configs.update(SESSION_CONFIGS)
        for name, (config_fn, hi_rps) in configs.items():
            start = time.perf_counter()
            config = config_fn()
            session = name in SESSION_CONFIGS
            if quick:
                serve = _serve_fn(config)
                samples = [
                    _measure_at(serve, profile, rate)
                    for rate in QUICK_RATES
                ]
                row = {
                    "curve": [_curve_row(m) for m in samples],
                    "n_steps": sum(m.result.n_steps for m in samples),
                }
            else:
                row = measure_config(
                    profile, config, hi_rps, curves=curves,
                    hit_rate_probe_rps=(
                        FLEET_HIT_RATE_PROBE_RPS if session else None
                    ),
                )
            row["wall_s"] = round(time.perf_counter() - start, 3)
            row["events_per_s"] = round(row["n_steps"] / row["wall_s"], 1)
            surface[profile][name] = row
            knee = row.get("knee_rps")
            label = (
                f"knee={knee:8.3f} rps" if knee is not None
                else f"{len(row['curve'])} rates"
            )
            print(
                f"  {profile:18s} {name:18s} {label}"
                f"  wall={row['wall_s']:6.3f}s"
            )
    return {
        "config": {
            "n_replicas": N_REPLICAS,
            "max_num_seqs": LIMITS.max_num_seqs,
            "duration_s": DURATION_S,
            "warmup_s": WARMUP_S,
            "cooldown_s": COOLDOWN_S,
            "seed": SEED,
            "lo_rps": LO_RPS,
            "single_hi_rps": SINGLE_HI_RPS,
            "fleet_hi_rps": FLEET_HI_RPS,
            "rate_tol_rps": RATE_TOL_RPS,
            "profile_slos": {
                name: {"ttft_s": slo.ttft_s, "tpot_s": slo.tpot_s}
                for name, slo in sorted(PROFILE_SLOS.items())
            },
            "quick": quick,
        },
        "profiles": surface,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"no bisection: {QUICK_RATES} x {QUICK_PROFILES} only",
    )
    parser.add_argument(
        "--no-curves", action="store_true",
        help="knees only (what the regression gate compares)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-bless the committed fleet baseline",
    )
    args = parser.parse_args(argv)

    print("running fleet capacity sweep...")
    report = measure_fleet(quick=args.quick, curves=not args.no_curves)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.update_baseline:
        if args.quick:
            print(
                "FAIL: --quick runs measure no knees; refusing to bless"
                " a baseline from them", file=sys.stderr,
            )
            return 1
        DEFAULT_BASELINE.write_text(
            json.dumps(_strip_wall(report), indent=2) + "\n"
        )
        print(f"updated baseline {DEFAULT_BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
