"""Benchmark-suite configuration."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def paper_check():
    """Helper asserting a measured value sits in a band around the paper's."""

    def check(measured: float, low: float, high: float, label: str = ""):
        assert low <= measured <= high, (
            f"{label}: {measured} outside the accepted band [{low}, {high}]"
        )
        return measured

    return check
