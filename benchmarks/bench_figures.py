"""One benchmark per paper figure: regenerate its data, check its headline.

Each benchmark times the experiment driver that reproduces the figure and
asserts the headline numbers stay inside the accepted band around the
paper's values (bands documented in EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig01_pipeline_overhead(benchmark, paper_check):
    result = benchmark(run_experiment, "fig01")
    paper_check(result.summary["decomp_over_gemm_min"], 1.4, 2.4,
                "decomp/gemm min (paper 1.56)")
    paper_check(result.summary["decomp_over_gemm_max"], 2.6, 4.0,
                "decomp/gemm max (paper 3.44)")


def test_fig02_exponent_distribution(benchmark, paper_check):
    result = benchmark(run_experiment, "fig02", quick=True)
    paper_check(result.summary["min_top7_coverage"], 0.95, 1.0,
                "top-7 coverage (paper >= 0.95)")
    paper_check(result.summary["entropy_bits_max"], 2.3, 2.9,
                "exponent entropy (paper 2.57-2.74)")
    paper_check(result.summary["contiguity_rate"], 0.99, 1.0,
                "top-7 contiguity (paper 0.996)")


def test_fig05_roofline(benchmark, paper_check):
    result = benchmark(run_experiment, "fig05")
    paper_check(result.summary["ci_degradation_n8"], 0.61, 0.64,
                "CI degradation N=8 (paper 0.623)")
    paper_check(result.summary["ci_gain_avg"], 0.45, 0.55,
                "fused CI gain (paper ~0.50)")


def test_fig11_kernel_speedups(benchmark, paper_check):
    result = benchmark(run_experiment, "fig11", quick=True)
    paper_check(result.summary["zipgemm_avg_rtx4090"], 1.15, 1.5,
                "ZipGEMM avg RTX4090 (paper 1.31)")
    paper_check(result.summary["zipgemm_avg_l40s"], 1.15, 1.5,
                "ZipGEMM avg L40S (paper 1.36)")
    paper_check(result.summary["dietgpu_avg_l40s"], 0.1, 0.45,
                "DietGPU avg L40S (paper 0.20)")
    paper_check(result.summary["dfloat11_avg_l40s"], 0.2, 0.55,
                "DFloat11 avg L40S (paper 0.34)")


def test_fig12_micro_analysis(benchmark, paper_check):
    result = benchmark(run_experiment, "fig12", quick=True)
    paper_check(result.summary["dram_read_reduction"], 0.26, 0.32,
                "DRAM read reduction (paper 0.293)")
    paper_check(result.summary["tc_util_vs_cublas"], 0.5, 0.9,
                "TC utilisation vs cuBLAS (paper 0.716)")
    assert result.summary["lut_bank_conflicts"] > 100 * max(
        result.summary["zip_bank_conflicts"], 1.0
    )


def test_fig13_decompression(benchmark, paper_check):
    result = benchmark(run_experiment, "fig13")
    paper_check(result.summary["speedup_vs_dietgpu"], 1.7, 2.5,
                "vs DietGPU (paper 2.14)")
    paper_check(result.summary["speedup_vs_nvcomp"], 1.5, 2.3,
                "vs nvCOMP (paper 1.83)")
    paper_check(result.summary["speedup_vs_dfloat11"], 1.02, 1.3,
                "vs DFloat11 (paper 1.10)")


def test_fig14_cross_generation(benchmark, paper_check):
    result = benchmark(run_experiment, "fig14")
    paper_check(result.summary["rtx5090_speedup_llama3.1"], 1.25, 1.6,
                "RTX5090 speedup (paper 1.34)")
    assert (result.summary["rtx5090_deficit_zip_llama3.1"]
            < result.summary["rtx5090_deficit_std_llama3.1"])


def test_fig15_n_sweep(benchmark, paper_check):
    result = benchmark(run_experiment, "fig15")
    paper_check(result.summary["fused_speedup_n32"], 1.25, 1.55,
                "fused speedup N=32")
    paper_check(result.summary["prefill_overhead_n8192"], 0.0, 0.06,
                "prefill overhead N=8192 (paper ~0.04)")
    paper_check(result.summary["prefill_overhead_n16384"], 0.0, 0.04,
                "prefill overhead N=16384 (paper ~0.02)")


def test_fig16_end_to_end(benchmark, paper_check):
    result = benchmark(run_experiment, "fig16", quick=True)
    paper_check(result.summary["throughput_vs_vllm"], 1.1, 1.45,
                "throughput vs vLLM (paper 1.22)")
    paper_check(result.summary["throughput_vs_transformers"], 2.2, 4.5,
                "throughput vs Transformers (paper 3.18)")
    paper_check(result.summary["throughput_vs_dfloat11"], 5.0, 14.0,
                "throughput vs DFloat11 (paper 8.52)")


def test_fig17_breakdown(benchmark, paper_check):
    result = benchmark(run_experiment, "fig17", quick=True)
    paper_check(result.summary["linear_speedup"], 1.2, 1.75,
                "linear-layer speedup (paper 1.69)")
    paper_check(result.summary["kv_expansion"], 1.5, 2.1,
                "KV expansion (paper 1.70)")


def test_fig18_datacenter(benchmark, paper_check):
    result = benchmark(run_experiment, "fig18")
    assert result.summary["zipgemm_vs_cublas_min"] < 1.0
    paper_check(result.summary["marlin_gap"], 1.25, 1.55,
                "Marlin gap (paper 1.36)")


def test_tab_codeword(benchmark, paper_check):
    result = benchmark(run_experiment, "tab_codeword")
    paper_check(result.summary["avg_bits_3"], 10.8, 11.8,
                "AverageBits(3) (paper 11.3)")
    assert result.summary["avg_bits_3"] < result.summary["avg_bits_2"]
    assert result.summary["avg_bits_3"] < result.summary["avg_bits_4"]


def test_tab_memory(benchmark, paper_check):
    result = benchmark(run_experiment, "tab_memory")
    paper_check(result.summary["fraction_8b"], 0.70, 0.74,
                "8B footprint fraction (paper 0.724)")
    paper_check(result.summary["fraction_70b"], 0.69, 0.73,
                "70B footprint fraction (paper 0.711)")


def test_tab_offline_cost(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("tab_offline_cost",),
        kwargs={"quick": True}, iterations=1, rounds=3,
    )
    assert result.summary["extrapolated_8b_minutes"] < 30


def test_tab_theory(benchmark):
    result = benchmark(run_experiment, "tab_theory", quick=True)
    assert result.summary["all_unimodal"] == 1.0
    assert result.summary["all_top7_contiguous"] == 1.0
