"""Benchmarks for the §7 extension implementations."""

from __future__ import annotations

import numpy as np

from repro.bf16 import gaussian_bf16_matrix
from repro.experiments import run_experiment
from repro.extensions import (
    compress_kv_block,
    compress_quantized,
    decompress_kv_block,
    delta_snapshot,
    quantize_int8,
    restore_snapshot,
)

KV_BLOCK = gaussian_bf16_matrix(16, 2048, sigma=0.05, seed=0)
BASE = gaussian_bf16_matrix(512, 512, sigma=0.015, seed=1)


def test_ext_kvcomp_experiment(benchmark):
    result = benchmark(run_experiment, "ext_kvcomp", quick=True)
    assert result.summary["e2e_throughput_gain"] > 1.0
    assert 1.3 < result.summary["capacity_gain"] < 1.5


def test_ext_quant_experiment(benchmark):
    result = benchmark(run_experiment, "ext_quant", quick=True)
    assert result.summary["combo_speedup_vs_marlin"] > 1.0


def test_ext_continuous_experiment(benchmark):
    result = benchmark(run_experiment, "ext_continuous", quick=True)
    assert result.summary["throughput_gain"] > 1.05


def test_kv_block_compress(benchmark):
    blob = benchmark(compress_kv_block, KV_BLOCK)
    assert blob.ratio > 1.3


def test_kv_block_decompress(benchmark):
    blob = compress_kv_block(KV_BLOCK)
    out = benchmark(decompress_kv_block, blob, KV_BLOCK.shape)
    assert np.array_equal(out, KV_BLOCK)


def test_delta_snapshot_encode(benchmark):
    current = BASE.copy()
    current.ravel()[::97] ^= np.uint16(1)

    snap = benchmark(delta_snapshot, "layer", BASE, current)
    assert snap.ratio > 5.0


def test_delta_snapshot_restore(benchmark):
    current = BASE.copy()
    current.ravel()[::97] ^= np.uint16(1)
    snap = delta_snapshot("layer", BASE, current)
    out = benchmark(restore_snapshot, BASE, snap)
    assert np.array_equal(out, current)


def test_quantize_and_compress(benchmark):
    def pipeline():
        return compress_quantized(quantize_int8(BASE))

    blob = benchmark(pipeline)
    assert blob.ratio_vs_int8 > 1.02
