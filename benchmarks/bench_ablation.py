"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one design decision of ZipServ and quantifies the cost,
confirming the paper's §4 arguments from the implementation itself:

* codeword length (2/3/4 bits) — §4.2's AverageBits analysis;
* fused vs decoupled execution per phase — §4.4's stage-aware strategy;
* triple bit-plane layout vs packed 3-bit bitstream — bank conflicts;
* ZipGEMM's coarse split-K policy vs an oracle search — Figure 11(c)'s
  small-layer behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.bf16 import gaussian_bf16_matrix
from repro.gpu.memory import simulate_bank_conflicts, tcatbe_decode_addresses
from repro.gpu.specs import get_gpu
from repro.kernels import cublas_gemm, stage_aware_linear, zipgemm
from repro.tcatbe.analysis import (
    exponent_histogram,
    expected_bits_for_codeword,
)

GPU = get_gpu("l40s")
LAYER = gaussian_bf16_matrix(512, 1024, sigma=0.015, seed=7)


def test_ablation_codeword_length(benchmark):
    """3-bit codewords must beat 2- and 4-bit on expected storage."""
    hist = exponent_histogram(LAYER)

    def sweep():
        return {n: expected_bits_for_codeword(hist, n) for n in (2, 3, 4)}

    bits = benchmark(sweep)
    assert bits[3] == min(bits.values())


def test_ablation_stage_aware_vs_forced(benchmark):
    """Forcing either path everywhere must never beat the stage-aware mix."""

    def sweep():
        out = {}
        for n in (8, 32, 128, 1024, 8192):
            auto = stage_aware_linear(GPU, 28672, 4096, n, mode="auto")
            fused = stage_aware_linear(GPU, 28672, 4096, n, mode="fused")
            dec = stage_aware_linear(GPU, 28672, 4096, n, mode="decoupled")
            out[n] = (auto.time_s, fused.time_s, dec.time_s)
        return out

    results = benchmark(sweep)
    for n, (auto, fused, dec) in results.items():
        assert auto <= fused * 1.001, f"auto worse than fused at N={n}"
        assert auto <= dec * 1.001, f"auto worse than decoupled at N={n}"


def test_ablation_bitplane_vs_packed_bitstream(benchmark):
    """Decoupled bit-planes stay conflict-free; a packed 3-bit stream would
    put lanes on misaligned words (modelled as 3-byte strides)."""

    def conflicts():
        planes = simulate_bank_conflicts(tcatbe_decode_addresses(64))
        # Packed 3-bit codes: lane i reads a 32-bit window at bit 3*64*i/32
        # -> byte stride of 6 per lane pair, crossing words irregularly.
        packed_addrs = np.array([
            [(lane * 6) + tile * 24 for lane in range(32)]
            for tile in range(64)
        ])
        packed = simulate_bank_conflicts(packed_addrs)
        return planes, packed

    planes, packed = benchmark(conflicts)
    assert planes.n_conflict_cycles == 0
    assert packed.n_conflict_cycles > 0


def test_ablation_splitk_policy(benchmark):
    """The fixed split-K heuristic costs on small layers, not large ones."""

    def sweep():
        out = {}
        for m, k in ((4096, 4096), (28672, 4096), (4096, 14336)):
            cb = cublas_gemm(GPU, m, k, 32)
            zg = zipgemm(GPU, m, k, 32)
            out[(m, k)] = zg.speedup_over(cb)
        return out

    speedups = benchmark(sweep)
    assert speedups[(4096, 4096)] < 1.0       # small O_proj: paper 0.79x
    assert speedups[(28672, 4096)] > 1.3      # GateUp: paper 1.39x
    assert speedups[(4096, 14336)] > 1.3      # Down: paper 1.64x


def test_ablation_compression_ratio_sensitivity(benchmark):
    """Fused speedup tracks the compression ratio in the mem-bound regime."""
    from repro.kernels import WeightCompression

    def sweep():
        cb = cublas_gemm(GPU, 28672, 4096, 32)
        return {
            ratio: zipgemm(
                GPU, 28672, 4096, 32,
                WeightCompression("tcatbe", ratio=ratio),
            ).speedup_over(cb)
            for ratio in (1.1, 1.3, 1.41, 1.6)
        }

    speedups = benchmark(sweep)
    ordered = [speedups[r] for r in (1.1, 1.3, 1.41, 1.6)]
    assert ordered == sorted(ordered)
