"""Open-loop capacity benchmark: QPS vs latency/goodput, knee per config.

The capacity surface the roadmap's studies report against: for each
workload profile (:mod:`repro.serving.profiles`) × serving configuration
(colocated / disaggregated-on-a-starved-link / auto-codec on the same
link), drive the simulator **open loop** at a sweep of offered rates and
locate the **knee** — the highest rate whose steady-state SLO goodput
still tracks the offered rate (:func:`repro.serving.openloop.find_knee`).

The headline comparison is the ZipServ/SplitZip claim end to end: on the
0.125 GB/s interconnect, the auto-codec stack (policy-selected
compression on weights, KV and the wire) must sustain a strictly higher
knee than raw transfer — freed bytes become admissible request rate, not
just a smaller artifact.

Everything is simulated and seeded, so the numbers are bit-deterministic
for a given code state; ``tools/bench_regression.py --mode capacity``
gates the knees against the committed baseline
(``benchmarks/BENCH_capacity_baseline.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_capacity.py                # sweep + knees
    PYTHONPATH=src python benchmarks/bench_capacity.py --quick        # CI smoke (2 rates x 2 profiles)
    PYTHONPATH=src python benchmarks/bench_capacity.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.gpu.specs import get_gpu  # noqa: E402
from repro.serving import (  # noqa: E402
    DisaggConfig,
    InferenceEngine,
    PrefixCacheConfig,
    SchedulerLimits,
    ServingConfig,
    SLOTarget,
    find_knee,
    get_backend,
    get_model,
    goodput_feasible,
    list_profiles,
    run_open_loop,
)

# ----------------------------------------------------------------------
# Measurement geometry (mirrors bench_serving's engine parameters)
# ----------------------------------------------------------------------
LIMITS = SchedulerLimits(max_num_seqs=16, max_batched_tokens=8192)
CTX_BUCKET = 64
#: Starved interconnect: the SplitZip scenario's bottleneck.
DISAGG_LINK_GB_PER_S = 0.125

#: One open-loop measurement: offered horizon and exclusion windows
#: (simulated seconds).  The deadline is run_open_loop's default
#: (3x duration) — feasible runs drain long before it.
DURATION_S = 15.0
WARMUP_S = 2.5
COOLDOWN_S = 2.5
SEED = 0

#: Knee-search bracket.  The low edge must sit below the slowest knee
#: (rag raw transfer lands near 0.3 rps); the tolerance must resolve
#: knees that small, hence well under the serving-scale tolerances.
LO_RPS = 0.125
HI_RPS = 64.0
RATE_TOL_RPS = 0.0625
MAX_PROBES = 14

#: Per-profile SLOs.  Interactive profiles take the default budget
#: (TTFT 1 s / TPOT 100 ms); the long-prefill profiles get a looser
#: per-token budget — their short decodes amortize the prefill->decode
#: handoff over few tokens, so a chat-grade TPOT would declare *every*
#: disaggregated stack infeasible and hide the bandwidth knee the
#: benchmark exists to measure.
PROFILE_SLOS = {
    "code_generation": SLOTarget(ttft_s=2.0, tpot_s=0.25),
    "rag_long_context": SLOTarget(ttft_s=4.0, tpot_s=0.25),
}

#: Curve sample points as fractions of the measured knee.
CURVE_FRACTIONS = (0.5, 0.75, 0.9, 1.0, 1.1, 1.5)

#: --quick mode: no bisection, this fixed grid only (CI smoke).
QUICK_RATES = (2.0, 8.0)
QUICK_PROFILES = ("fixed_length", "chat")

DEFAULT_BASELINE = ROOT / "benchmarks" / "BENCH_capacity_baseline.json"
DEFAULT_OUTPUT = ROOT / "benchmarks" / "BENCH_capacity.json"

_MODEL = get_model("llama3.1-8b")
_GPU = get_gpu("rtx4090")
_BACKEND = get_backend("zipserv")

_ENGINE = None
_CALIBRATION_PROFILE = None


def _engine() -> InferenceEngine:
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = InferenceEngine(_MODEL, _GPU, _BACKEND, gpu_mem_util=0.9)
    return _ENGINE


def _calibration():
    """Measured ratio profile (lazy: calibration prices every codec)."""
    global _CALIBRATION_PROFILE
    if _CALIBRATION_PROFILE is None:
        from repro.compression import calibrate, tensor_classes_for_model

        _CALIBRATION_PROFILE = calibrate(
            classes=tensor_classes_for_model(_MODEL), seed=0
        )
    return _CALIBRATION_PROFILE


def _colocated_config() -> ServingConfig:
    return ServingConfig(
        prefill_mode="chunked", cost_bucket=CTX_BUCKET, limits=LIMITS
    )


def _disagg_config() -> ServingConfig:
    """Raw BF16 transfer over the starved link (the baseline stack)."""
    return ServingConfig(
        mode="disaggregated", cost_bucket=CTX_BUCKET, limits=LIMITS,
        disagg=DisaggConfig(
            link_gb_per_s=DISAGG_LINK_GB_PER_S, transfer_codec="none",
            prefill_mode="chunked",
        ),
    )


def _auto_codec_config() -> ServingConfig:
    """Policy-selected codecs everywhere, same starved link."""
    return ServingConfig(
        mode="disaggregated", cost_bucket=CTX_BUCKET, limits=LIMITS,
        disagg=DisaggConfig(
            link_gb_per_s=DISAGG_LINK_GB_PER_S, prefill_mode="chunked",
        ),
        weight_codec="auto", kv_codec="auto", transfer_codec="auto",
        codec_policy="best_ratio", calibration=_calibration(),
    )


#: Serving configurations under test: name -> zero-arg config factory
#: (factories, so --quick never pays the auto stack's calibration).
CONFIGS = {
    "colocated": _colocated_config,
    "disagg": _disagg_config,
    "auto_codec": _auto_codec_config,
}

# ----------------------------------------------------------------------
# Session-only configurations (the prefix-cache comparison)
# ----------------------------------------------------------------------
#: The profile whose turns actually share prefixes; on the other
#: profiles a prefix cache only costs KV capacity, so the session
#: configs are swept on this one only (the ``colocated`` row doubles as
#: their cache-off baseline).
SESSION_PROFILE = "chat_sessions"

#: Both cache variants carve the same fraction of KV — the comparison
#: is strictly how the carve is *organised* (all raw vs hot+compressed).
#: 0.1 puts the carve under genuine LRU pressure at the probe rate
#: (a larger carve holds every live session and the two variants
#: measure identically — nothing to compare).
PREFIX_CAPACITY_FRAC = 0.1

#: Fixed equal-load probe rate for the committed ``token_hit_rate``
#: column: hit rates compared at each config's own knee would be taken
#: at different offered loads, so the raw-vs-compressed tier claim is
#: pinned at one shared rate instead — chosen inside the contended
#: regime (evictions happening in both variants).
HIT_RATE_PROBE_RPS = 4.0


def _prefix_raw_config() -> ServingConfig:
    """Whole carve held as raw KV (hot tier only): hits are free but
    the carve holds the fewest prefixes."""
    return ServingConfig(
        prefill_mode="chunked", cost_bucket=CTX_BUCKET, limits=LIMITS,
        prefix_cache=PrefixCacheConfig(
            capacity_frac=PREFIX_CAPACITY_FRAC, hot_frac=1.0, codec=None,
        ),
    )


def _prefix_compressed_config() -> ServingConfig:
    """Half the carve hot (raw), half cold (Vector-TBE compressed):
    same memory, ratio x more prefixes resident, cold hits pay the
    modelled decompress delay."""
    return ServingConfig(
        prefill_mode="chunked", cost_bucket=CTX_BUCKET, limits=LIMITS,
        prefix_cache=PrefixCacheConfig(
            capacity_frac=PREFIX_CAPACITY_FRAC, hot_frac=0.5,
            codec="kvcomp",
        ),
    )


#: Extra configs swept on :data:`SESSION_PROFILE` only.
SESSION_CONFIGS = {
    "prefix_raw": _prefix_raw_config,
    "prefix_compressed": _prefix_compressed_config,
}


def _serve_fn(config: ServingConfig):
    engine = _engine()
    return lambda requests, deadline_s: engine.serve(
        requests, config=config, deadline_s=deadline_s
    )


def _measure_at(serve, profile: str, rate_rps: float):
    return run_open_loop(
        serve, profile, rate_rps, DURATION_S,
        warmup_s=WARMUP_S, cooldown_s=COOLDOWN_S, seed=SEED,
        slo=PROFILE_SLOS.get(profile),
    )


def _curve_row(measurement) -> dict:
    """One rate sample's emitted metrics (the QPS-vs-latency curve)."""
    steady = measurement.steady
    row = {
        "rate_rps": round(measurement.rate_rps, 4),
        "offered_rps": round(measurement.steady_offered_rps, 4),
        "goodput_rps": round(steady.goodput_rps, 4),
        "ttft_p95_s": round(steady.ttft.p95_s, 6),
        "itl_p95_s": round(steady.tpot.p95_s, 6),
        "slo_violation_rate": round(
            measurement.steady_slo_violation_rate, 4
        ),
        "unfinished_rate": round(measurement.result.unfinished_rate, 4),
    }
    cache = measurement.result.prefix_cache
    if cache is not None:
        row["prefix_hit_rate"] = round(cache.token_hit_rate, 4)
    return row


def measure_config(
    profile: str, config: ServingConfig, curves: bool = True,
    hit_rate_probe_rps: float | None = None,
) -> dict:
    """Knee + (optionally) the rate curve for one profile × config.

    ``n_steps`` totals the kernel events across *every* open-loop run
    the row required (probes + curve samples) — the numerator of the
    row's sim-throughput gate (``events_per_s``, filled in by the
    caller once it has the wall clock).

    ``hit_rate_probe_rps`` (prefix-cache configs) adds one fixed-rate
    sample and commits its steady token hit rate as ``token_hit_rate``
    — the equal-load column the raw-vs-compressed tier claim is pinned
    on (knee-rate samples sit at different offered loads per config).
    """
    serve = _serve_fn(config)
    steps = 0

    def probe(rate: float) -> bool:
        nonlocal steps
        measurement = _measure_at(serve, profile, rate)
        steps += measurement.result.n_steps
        return goodput_feasible(measurement)

    knee = find_knee(
        probe, LO_RPS, HI_RPS,
        rate_tol_rps=RATE_TOL_RPS, max_probes=MAX_PROBES,
    )
    row = {
        "knee_rps": round(knee.knee_rps, 4),
        "n_probes": knee.n_probes,
    }
    if curves and knee.knee_rps > 0:
        samples = [
            _measure_at(serve, profile, frac * knee.knee_rps)
            for frac in CURVE_FRACTIONS
        ]
        steps += sum(m.result.n_steps for m in samples)
        row["curve"] = [_curve_row(m) for m in samples]
    if hit_rate_probe_rps is not None:
        sample = _measure_at(serve, profile, hit_rate_probe_rps)
        steps += sample.result.n_steps
        cache = sample.result.prefix_cache
        row["hit_rate_probe_rps"] = hit_rate_probe_rps
        row["token_hit_rate"] = round(
            cache.token_hit_rate if cache is not None else 0.0, 4
        )
    row["n_steps"] = steps
    return row


def measure_capacity(quick: bool = False, curves: bool = True) -> dict:
    """The full capacity surface: {profile: {config: {knee, curve}}}.

    ``quick`` skips the bisection and sweeps the fixed
    :data:`QUICK_RATES` × :data:`QUICK_PROFILES` grid — the CI smoke
    run, exercising the whole pipeline in a few simulated minutes.
    """
    profiles = QUICK_PROFILES if quick else tuple(list_profiles())
    surface: dict = {}
    for profile in profiles:
        surface[profile] = {}
        configs = dict(CONFIGS)
        if profile == SESSION_PROFILE and not quick:
            configs.update(SESSION_CONFIGS)
        for name, config_fn in configs.items():
            start = time.perf_counter()
            config = config_fn()
            session = name in SESSION_CONFIGS
            if quick:
                serve = _serve_fn(config)
                samples = [
                    _measure_at(serve, profile, rate)
                    for rate in QUICK_RATES
                ]
                row = {
                    "curve": [_curve_row(m) for m in samples],
                    "n_steps": sum(m.result.n_steps for m in samples),
                }
            else:
                row = measure_config(
                    profile, config, curves=curves,
                    hit_rate_probe_rps=(
                        HIT_RATE_PROBE_RPS if session else None
                    ),
                )
            row["wall_s"] = round(time.perf_counter() - start, 3)
            row["events_per_s"] = round(row["n_steps"] / row["wall_s"], 1)
            surface[profile][name] = row
            knee = row.get("knee_rps")
            label = (
                f"knee={knee:7.3f} rps" if knee is not None
                else f"{len(row['curve'])} rates"
            )
            print(
                f"  {profile:18s} {name:12s} {label}"
                f"  wall={row['wall_s']:6.3f}s"
            )
    return {
        "config": {
            "duration_s": DURATION_S,
            "warmup_s": WARMUP_S,
            "cooldown_s": COOLDOWN_S,
            "seed": SEED,
            "lo_rps": LO_RPS,
            "hi_rps": HI_RPS,
            "rate_tol_rps": RATE_TOL_RPS,
            "link_gb_per_s": DISAGG_LINK_GB_PER_S,
            "profile_slos": {
                name: {"ttft_s": slo.ttft_s, "tpot_s": slo.tpot_s}
                for name, slo in sorted(PROFILE_SLOS.items())
            },
            "quick": quick,
        },
        "profiles": surface,
    }


def _strip_wall(report: dict) -> dict:
    """Drop ``wall_s`` from a report before committing it as baseline.

    ``events_per_s`` stays: like the serving baseline it is the
    sim-throughput gate's reference point, and machine-dependence is
    inherent to gating speed at all (the gate's wide tolerance absorbs
    host noise).
    """
    return {
        "config": report["config"],
        "profiles": {
            profile: {
                name: {k: v for k, v in row.items() if k != "wall_s"}
                for name, row in configs.items()
            }
            for profile, configs in report["profiles"].items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"no bisection: {QUICK_RATES} x {QUICK_PROFILES} only",
    )
    parser.add_argument(
        "--no-curves", action="store_true",
        help="knees only (what the regression gate compares)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-bless the committed capacity baseline",
    )
    args = parser.parse_args(argv)

    print("running open-loop capacity sweep...")
    report = measure_capacity(quick=args.quick, curves=not args.no_curves)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.update_baseline:
        if args.quick:
            print(
                "FAIL: --quick runs measure no knees; refusing to bless"
                " a baseline from them", file=sys.stderr,
            )
            return 1
        DEFAULT_BASELINE.write_text(
            json.dumps(_strip_wall(report), indent=2) + "\n"
        )
        print(f"updated baseline {DEFAULT_BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
