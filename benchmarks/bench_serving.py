"""Microbenchmarks of the event-driven serving loop.

Times the simulator itself (not the modelled GPU): a 500-request Poisson
trace replayed through :class:`~repro.serving.serve.ServingCore` with and
without context-bucketed cost memoization.  Bucketing makes consecutive
decode steps of a stable batch price identically, which both caches the
step math and lets the loop fast-forward whole windows of identical steps —
the sim-side speedup that makes long-trace studies cheap.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q``

The module doubles as a command-line harness over the named scenarios in
:data:`SCENARIOS` (the same registry ``tools/bench_regression.py``
gates)::

    PYTHONPATH=src python benchmarks/bench_serving.py large_trace_colocated
    PYTHONPATH=src python benchmarks/bench_serving.py colocated_memoized --profile

``--profile`` wraps the scenario in ``cProfile`` and prints the top
cumulative-time functions — how the simulator's hot loop is observed
before and after an optimisation.  Each run also reports sim-throughput
(kernel events per wall second, simulated seconds per wall second) and,
when the scenario's cost model memoizes, its per-kind cache statistics.

``--trace out.json`` re-runs the same scenario under ambient telemetry
(:func:`repro.serving.telemetry.recording`), exports the run as Chrome
trace JSON, and prints the latency phase-share table next to the cache
statistics.  Telemetry stays off (and zero-cost) unless the flag is
given; ``tools/trace_report.py`` is the richer consumer of the same
hook.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.costs import EngineCostModel
from repro.serving.disagg import DisaggregatedCore
from repro.serving.engine import InferenceEngine
from repro.serving.kvcache import KVCacheSpec
from repro.serving.memory_plan import plan_memory
from repro.serving.models import get_model
from repro.serving.scheduler import SchedulerLimits
from repro.serving.prefixcache import PrefixCacheConfig
from repro.serving.serve import (
    BackpressureConfig,
    DisaggConfig,
    ServingConfig,
    ServingCore,
)
from repro.serving import telemetry
from repro.serving.trace import (
    multi_tenant_trace,
    poisson_trace,
    session_trace,
)

N_REQUESTS = 500
RATE_RPS = 20.0
SEED = 42
#: One interactive replica's worth of concurrency; small enough that the
#: trace backs up and the loop spends its time in steady decode.
LIMITS = SchedulerLimits(max_num_seqs=16, max_batched_tokens=8192)
CTX_BUCKET = 64

_MODEL = get_model("llama3.1-8b")
_GPU = get_gpu("rtx4090")
_BACKEND = get_backend("zipserv")
_PLAN = plan_memory(_MODEL, _GPU, _BACKEND.weight_scheme, 1, 0.9)
_KV_SPEC = KVCacheSpec.for_model(_MODEL)


#: The serving core of the most recent scenario run — how the CLI
#: harness reaches the cost model for cache statistics after the
#: scenario function has returned only a result.
_LAST_CORE = None


def _record(core):
    global _LAST_CORE
    _LAST_CORE = core
    return core


def _serve_once(cost_bucket: int):
    core = _record(ServingCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND),
        _KV_SPEC,
        _PLAN.kv_bytes,
        ServingConfig(prefill_mode="chunked", cost_bucket=cost_bucket,
                      limits=LIMITS),
    ))
    return core.serve(poisson_trace(N_REQUESTS, RATE_RPS, seed=SEED))


def _best_wall(cost_bucket: int, reps: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = _serve_once(cost_bucket)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_serve_500_exact_costs(benchmark):
    result = benchmark(_serve_once, 0)
    assert result.n_requests == N_REQUESTS


def test_serve_500_memoized_costs(benchmark):
    result = benchmark(_serve_once, CTX_BUCKET)
    assert result.n_requests == N_REQUESTS


def test_memoization_speedup_at_least_2x():
    """Acceptance: bucketed memoization halves sim wall-time (or better)."""
    exact_wall, exact = _best_wall(0)
    memo_wall, memo = _best_wall(CTX_BUCKET)
    speedup = exact_wall / memo_wall
    # Same work was simulated either way.
    assert memo.n_requests == exact.n_requests == N_REQUESTS
    assert memo.tokens_generated == exact.tokens_generated
    # Bucketing rounds contexts up, so the clock drifts only slightly high.
    assert exact.makespan_s <= memo.makespan_s <= exact.makespan_s * 1.03
    assert speedup >= 2.0, (
        f"memoized serve only {speedup:.2f}x faster"
        f" ({exact_wall:.3f}s -> {memo_wall:.3f}s)"
    )


def test_memoized_metrics_stay_close():
    """The approximation knob must not distort serving metrics."""
    exact = _serve_once(0)
    memo = _serve_once(CTX_BUCKET)
    assert memo.metrics.latency.p95_s <= exact.metrics.latency.p95_s * 1.05
    assert memo.metrics.ttft.p95_s <= exact.metrics.ttft.p95_s * 1.10
    assert abs(memo.throughput_tok_s / exact.throughput_tok_s - 1.0) < 0.03


# ----------------------------------------------------------------------
# Disaggregated prefill/decode on the multi-tenant trace
# ----------------------------------------------------------------------
#: Starved interconnect so the KV-transfer stage is the bottleneck the
#: compressed codec relieves (the SplitZip scenario).
DISAGG_LINK_GB_PER_S = 0.125
DISAGG_SEED = 7


def _serve_mode(mode: str, codec: str = "none"):
    if mode == "colocated":
        config = ServingConfig(prefill_mode="chunked")
        core = ServingCore(
            EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
            _PLAN.kv_bytes, config,
        )
    else:
        config = ServingConfig(
            prefill_mode="chunked", mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=DISAGG_LINK_GB_PER_S,
                                transfer_codec=codec),
        )
        core = DisaggregatedCore(
            EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
            _PLAN.kv_bytes, config,
        )
    return _record(core).serve(multi_tenant_trace(seed=DISAGG_SEED))


def test_serve_disaggregated_compressed(benchmark):
    result = benchmark(_serve_mode, "disaggregated", "kvcomp")
    assert result.mode == "disaggregated"


def test_disagg_compressed_kv_beats_raw_on_constrained_link():
    """Acceptance: the SplitZip effect is visible end to end.

    On a bandwidth-constrained link, Vector-TBE-compressed KV transfer
    must move fewer bytes (by exactly the codec ratio), queue less, and
    finish the trace sooner than raw BF16 transfer; both must serve the
    whole trace.
    """
    raw = _serve_mode("disaggregated", "none")
    comp = _serve_mode("disaggregated", "kvcomp")
    n = len(multi_tenant_trace(seed=DISAGG_SEED))
    assert raw.n_requests == comp.n_requests == n
    assert raw.tokens_generated == comp.tokens_generated
    ratio = comp.transfer.compression_ratio
    assert ratio > 1.3
    assert abs(raw.transfer.total_bytes / comp.transfer.total_bytes
               - ratio) < 1e-9
    assert comp.transfer.queue.p95_s < raw.transfer.queue.p95_s
    assert comp.metrics.latency.p95_s < raw.metrics.latency.p95_s
    assert comp.makespan_s < raw.makespan_s


# ----------------------------------------------------------------------
# Decode→prefill backpressure on a deliberately small decode pool
# ----------------------------------------------------------------------
#: Shrink the decode pool's KV to this fraction of the plan so admission
#: pressure is real; the watermark then has something to bound.
BP_KV_SCALE = 0.04
BP_WATERMARK = 0.3
#: Decode-side token growth pushes occupancy slightly past the
#: admission-time bound; the boundedness assertion carries this margin.
BP_GROWTH_MARGIN = 0.12


def _serve_backpressure(enabled: bool):
    backpressure = (
        BackpressureConfig(min_free_kv_frac=BP_WATERMARK)
        if enabled else None
    )
    # The pool runs DisaggConfig.prefill_mode (default "group"); the
    # colocated-only ServingConfig.prefill_mode is deliberately left
    # alone so this scenario reads as what it is.
    config = ServingConfig(
        mode="disaggregated",
        disagg=DisaggConfig(backpressure=backpressure),
    )
    core = DisaggregatedCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
        _PLAN.kv_bytes * BP_KV_SCALE, config,
    )
    return _record(core).serve(multi_tenant_trace(seed=DISAGG_SEED))


def test_backpressure_bounds_decode_occupancy():
    """Acceptance: the watermark bounds decode KV; the baseline overshoots.

    On a decode pool squeezed to a twenty-fifth of the engine's KV, the
    feedback-free pipeline saturates decode occupancy and pays a
    preemption storm; with ``min_free_kv_frac=0.3`` the prefill pool
    stalls admission instead, peak occupancy stays near ``1 - 0.3``
    (plus in-flight decode growth), no preemption fires, and every
    request is still served — conservation under active backpressure.
    """
    baseline = _serve_backpressure(False)
    gated = _serve_backpressure(True)
    n = len(multi_tenant_trace(seed=DISAGG_SEED))
    assert baseline.n_requests == gated.n_requests == n
    assert baseline.tokens_generated == gated.tokens_generated
    assert gated.transfer.n_transfers == n
    # The feedback-free baseline overshoots the watermark's bound.
    assert baseline.pool("decode").peak_kv_frac > 1.0 - BP_WATERMARK
    assert baseline.n_preemptions > 0
    # Backpressure engages and bounds the peak.
    assert gated.pool("prefill").stall_s > 0.0
    assert gated.pool("decode").peak_kv_frac <= (
        1.0 - BP_WATERMARK + BP_GROWTH_MARGIN
    )
    assert gated.n_preemptions == 0


# ----------------------------------------------------------------------
# Multi-turn sessions through the compressed prefix cache
# ----------------------------------------------------------------------
#: Enough concurrent sessions that the carve thrashes a little (the
#: interesting regime), at a rate that backs the replica up like the
#: colocated scenarios do.
SESSION_N_SESSIONS = 150
SESSION_RATE_RPS = 6.0
SESSION_SEED = 3


def _session_requests():
    return session_trace(
        SESSION_N_SESSIONS, SESSION_RATE_RPS, seed=SESSION_SEED
    )


def _serve_sessions(cache: bool = True):
    """Session trace through the colocated core, prefix cache on/off."""
    config = ServingConfig(
        prefill_mode="chunked", cost_bucket=CTX_BUCKET, limits=LIMITS,
        prefix_cache=(
            PrefixCacheConfig(hot_frac=0.5, codec="kvcomp")
            if cache else None
        ),
    )
    core = _record(ServingCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
        _PLAN.kv_bytes, config,
    ))
    return core.serve(_session_requests())


def test_prefix_cache_speeds_session_trace():
    """Acceptance: skipping cached prefill beats recomputing it.

    Same session trace, same engine: with the prefix cache the run must
    hit (turns share their history), generate the identical output
    work, and finish no later than the cache-off run; without the cache
    the result must carry no cache stats at all (the off-path is the
    bit-compat baseline, not a zeroed cache).
    """
    off = _serve_sessions(cache=False)
    on = _serve_sessions(cache=True)
    assert off.prefix_cache is None
    stats = on.prefix_cache
    assert stats is not None and stats.n_hits > 0
    assert stats.hit_tokens <= stats.offered_prefix_tokens
    assert on.n_requests == off.n_requests == len(_session_requests())
    assert on.tokens_generated == off.tokens_generated
    assert on.makespan_s <= off.makespan_s


# ----------------------------------------------------------------------
# Auto codec selection (measured calibration + policy layer)
# ----------------------------------------------------------------------
_CALIBRATION_PROFILE = None


def _calibration_profile():
    """Measured ratio profile for the benchmark model (lazy, cached —
    the calibration run itself prices every registered codec)."""
    global _CALIBRATION_PROFILE
    if _CALIBRATION_PROFILE is None:
        from repro.compression import calibrate, tensor_classes_for_model

        _CALIBRATION_PROFILE = calibrate(
            classes=tensor_classes_for_model(_MODEL), seed=0
        )
    return _CALIBRATION_PROFILE


def _serve_auto(policy: str = "best_ratio"):
    """Disaggregated starved-link trace under policy-selected codecs."""
    engine = InferenceEngine(_MODEL, _GPU, _BACKEND, gpu_mem_util=0.9)
    config = ServingConfig(
        prefill_mode="chunked", mode="disaggregated",
        disagg=DisaggConfig(link_gb_per_s=DISAGG_LINK_GB_PER_S),
        weight_codec="auto", kv_codec="auto", transfer_codec="auto",
        codec_policy=policy, calibration=_calibration_profile(),
    )
    return engine.serve(multi_tenant_trace(seed=DISAGG_SEED), config=config)


def _serve_kvcomp_everywhere():
    """The fixed single-codec stack the auto policy has to beat."""
    engine = InferenceEngine(_MODEL, _GPU, _BACKEND, gpu_mem_util=0.9)
    config = ServingConfig(
        prefill_mode="chunked", mode="disaggregated",
        disagg=DisaggConfig(link_gb_per_s=DISAGG_LINK_GB_PER_S),
        weight_codec="kvcomp", kv_codec="kvcomp", transfer_codec="kvcomp",
    )
    return engine.serve(multi_tenant_trace(seed=DISAGG_SEED), config=config)


def test_auto_codecs_beat_fixed_kvcomp_stack():
    """Acceptance: measured best_ratio auto-selection strictly beats the
    kvcomp-everywhere configuration on makespan and SLO goodput, while
    serving the identical workload."""
    fixed = _serve_kvcomp_everywhere()
    auto = _serve_auto("best_ratio")
    n = len(multi_tenant_trace(seed=DISAGG_SEED))
    assert fixed.n_requests == auto.n_requests == n
    assert fixed.tokens_generated == auto.tokens_generated
    assert auto.makespan_s < fixed.makespan_s
    assert auto.metrics.goodput_rps > fixed.metrics.goodput_rps
    # The win comes from measured selection: more bytes cut on the wire
    # than the fixed Vector-TBE stack manages.
    assert auto.transfer.compression_ratio > fixed.transfer.compression_ratio


def test_colocated_mode_unchanged_by_disagg_surface():
    """``mode="colocated"`` stays bit-compatible with the plain core.

    The routed side goes through ``InferenceEngine.serve`` so the mode
    dispatch itself is under test, not just ``ServingCore``; the engine
    is built with the benchmark's memory-plan parameters so both sides
    price and bound KV identically.
    """
    plain = ServingCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC, _PLAN.kv_bytes,
        ServingConfig(prefill_mode="chunked"),
    ).serve(multi_tenant_trace(seed=DISAGG_SEED))
    engine = InferenceEngine(_MODEL, _GPU, _BACKEND, gpu_mem_util=0.9)
    routed = engine.serve(
        multi_tenant_trace(seed=DISAGG_SEED),
        config=ServingConfig(prefill_mode="chunked", mode="colocated"),
    )
    assert routed.makespan_s == plain.makespan_s
    assert routed.timings == plain.timings
    assert routed.mode == "colocated" and routed.transfer is None


# ----------------------------------------------------------------------
# Large traces: raw simulator speed (the sim-throughput scenarios)
# ----------------------------------------------------------------------
#: The colocated large trace doubles as the roadmap's 100k-request scale
#: check: it must finish inside the regression gate's wall budget.
LARGE_N_COLOCATED = 100_000
LARGE_N_DISAGG = 20_000


def _serve_large_colocated():
    """100k-request colocated trace under bucketed costs."""
    core = _record(ServingCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC, _PLAN.kv_bytes,
        ServingConfig(prefill_mode="chunked", cost_bucket=CTX_BUCKET,
                      limits=LIMITS),
    ))
    return core.serve(poisson_trace(LARGE_N_COLOCATED, RATE_RPS, seed=SEED))


def _serve_large_disagg():
    """20k-request disaggregated trace under bucketed costs."""
    config = ServingConfig(
        prefill_mode="chunked", mode="disaggregated",
        cost_bucket=CTX_BUCKET, limits=LIMITS, disagg=DisaggConfig(),
    )
    core = _record(DisaggregatedCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
        _PLAN.kv_bytes, config,
    ))
    return core.serve(poisson_trace(LARGE_N_DISAGG, RATE_RPS, seed=SEED))


# ----------------------------------------------------------------------
# Fleet scenarios: router + N replicas on one kernel
# ----------------------------------------------------------------------
#: The fleet trace offers N_FLEET_REPLICAS × the single-replica rate, so
#: each replica sees the same load as the colocated scenarios.
N_FLEET_REPLICAS = 4
FLEET_RATE_RPS = N_FLEET_REPLICAS * RATE_RPS
LARGE_N_FLEET = 100_000


def _fleet_core():
    from repro.serving.fleet import FleetConfig, FleetCore

    config = ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=CTX_BUCKET,
        limits=LIMITS,
        fleet=FleetConfig(
            n_replicas=N_FLEET_REPLICAS, routing="least_kv_occupancy",
        ),
    )
    return _record(FleetCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
        _PLAN.kv_bytes, config,
    ))


def _serve_fleet():
    """500-request trace routed across a 4-replica colocated fleet."""
    return _fleet_core().serve(
        poisson_trace(N_REQUESTS, FLEET_RATE_RPS, seed=SEED)
    )


def _serve_large_fleet():
    """100k-request fleet trace: the scale-out sim-throughput gate.

    The router must wake only the replicas it delivers into
    (:meth:`~repro.serving.kernel.Stage.notify`); a router that
    invalidates the whole fleet per arrival puts the kernel back on the
    O(stages) re-poll path and this scenario blows its events/s and
    wall budgets.
    """
    return _fleet_core().serve(
        poisson_trace(LARGE_N_FLEET, FLEET_RATE_RPS, seed=SEED)
    )


def _serve_fleet_disagg_sessions():
    """Session trace through a fleet of chunked disagg cells.

    The observability acceptance scenario: session affinity keeps each
    tenant's turns on one replica's prefix cache, every request's KV
    crosses a transfer link (flow arrows in the exported trace), and
    the per-replica pools land on their own tracks.  CI validates the
    Chrome trace this scenario exports via ``tools/trace_report.py``.
    """
    from repro.serving.fleet import FleetConfig, FleetCore

    instance = ServingConfig(
        mode="disaggregated", prefill_mode="chunked",
        cost_bucket=CTX_BUCKET, limits=LIMITS,
        disagg=DisaggConfig(prefill_mode="chunked"),
    )
    config = ServingConfig(
        mode="fleet", prefill_mode="chunked", cost_bucket=CTX_BUCKET,
        limits=LIMITS,
        fleet=FleetConfig(
            n_replicas=2, routing="session_affinity", instance=instance,
        ),
        prefix_cache=PrefixCacheConfig(hot_frac=0.5, codec="kvcomp"),
    )
    core = _record(FleetCore(
        EngineCostModel(_MODEL, _GPU, _BACKEND), _KV_SPEC,
        _PLAN.kv_bytes, config,
    ))
    return core.serve(_session_requests())


# ----------------------------------------------------------------------
# The scenario registry (shared with tools/bench_regression.py)
# ----------------------------------------------------------------------
#: Deterministic serving scenarios: name -> zero-arg runner returning a
#: ContinuousResult.  ``tools/bench_regression.py`` gates every entry.
SCENARIOS = {
    "colocated_exact": lambda: _serve_once(0),
    "colocated_memoized": lambda: _serve_once(CTX_BUCKET),
    "disagg_raw": lambda: _serve_mode("disaggregated", "none"),
    "disagg_kvcomp": lambda: _serve_mode("disaggregated", "kvcomp"),
    "disagg_backpressure": lambda: _serve_backpressure(True),
    "auto_codec": lambda: _serve_auto("best_ratio"),
    "sessions_prefix_cache": lambda: _serve_sessions(True),
    "large_trace_colocated": _serve_large_colocated,
    "large_trace_disagg": _serve_large_disagg,
    "fleet_router": _serve_fleet,
    "large_trace_fleet": _serve_large_fleet,
    "fleet_disagg_sessions": _serve_fleet_disagg_sessions,
}


def _print_cache_info() -> None:
    """Per-kind cache statistics of the last scenario's cost model."""
    costs = getattr(_LAST_CORE, "costs", None)
    info_fn = getattr(costs, "cache_info", None)
    if info_fn is None:
        return
    print("  step-cost cache:")
    for kind, stats in info_fn().items():
        total = stats["hits"] + stats["misses"]
        rate = stats["hits"] / total if total else 0.0
        print(
            f"    {kind:8s} hits={stats['hits']:>9,d}"
            f" misses={stats['misses']:>6,d}"
            f" size={stats['size']:>6,d} hit-rate={rate:6.1%}"
        )


def _print_phase_shares(recorder) -> None:
    """Latency attribution of the traced run, next to the cache stats."""
    if recorder is None:
        return
    shares = recorder.phase_shares()
    cells = " ".join(
        f"{phase}={share:.1%}"
        for phase, share in shares.items() if share > 0.0
    )
    print(
        f"  phase shares ({len(recorder.attributions):,d} requests):"
        f" {cells}"
    )


def _print_prefix_cache_info(result) -> None:
    """Prefix-cache hit rates of the scenario result (if cache was on)."""
    stats = getattr(result, "prefix_cache", None)
    if stats is None:
        return
    print(
        f"  prefix cache: token hit-rate={stats.token_hit_rate:6.1%}"
        f" request hit-rate={stats.request_hit_rate:6.1%}"
        f" hits={stats.n_hits:,d}/{stats.n_lookups:,d}"
        f" demotions={stats.n_demotions:,d}"
        f" evictions={stats.n_evictions:,d}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run one serving scenario and report sim-throughput"
    )
    parser.add_argument(
        "scenario", nargs="?", default="colocated_memoized",
        choices=sorted(SCENARIOS),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top cumulative functions",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many profile rows to print (default 20)",
    )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="record telemetry and export the run as Chrome trace JSON",
    )
    args = parser.parse_args(argv)
    runner = SCENARIOS[args.scenario]

    profiler = cProfile.Profile() if args.profile else None
    recorder = None
    start = time.perf_counter()
    if args.trace is not None:
        with telemetry.recording() as handle:
            if profiler is not None:
                result = profiler.runcall(runner)
            else:
                result = runner()
        recorder = handle.recorder
    elif profiler is not None:
        result = profiler.runcall(runner)
    else:
        result = runner()
    wall = time.perf_counter() - start

    print(f"{args.scenario}: {result.n_requests} requests")
    print(
        f"  makespan={result.makespan_s:.3f}s"
        f" throughput={result.throughput_tok_s:.1f} tok/s"
        f" steps={result.n_steps:,d}"
    )
    print(
        f"  wall={wall:.3f}s"
        f" events/s={result.n_steps / wall:,.0f}"
        f" sim-s/wall-s={result.makespan_s / wall:,.1f}"
    )
    _print_cache_info()
    _print_phase_shares(recorder)
    _print_prefix_cache_info(result)
    if recorder is not None:
        recorder.write_chrome_trace(args.trace)
        print(f"  wrote Chrome trace to {args.trace}")
    if profiler is not None:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        stats.print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
