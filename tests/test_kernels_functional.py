"""Bit-exactness tests for the functional fused GEMM executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bf16 import gaussian_bf16_matrix
from repro.errors import ShapeError
from repro.kernels.functional import (
    dense_gemm_reference,
    dense_gemm_tiled,
    zipgemm_execute,
)
from repro.tcatbe import compress


class TestBitExactness:
    @pytest.mark.parametrize(
        "shape,n", [((64, 64), 1), ((64, 128), 8), ((100, 70), 5),
                    ((130, 200), 3), ((1, 1), 2)]
    )
    def test_fused_equals_dense_tiled(self, shape, n, rng):
        w = gaussian_bf16_matrix(*shape, sigma=0.02, seed=shape[0] + n)
        x = rng.normal(0, 1, (shape[1], n)).astype(np.float32)
        matrix = compress(w)
        fused = zipgemm_execute(matrix, x)
        dense = dense_gemm_tiled(w, x)
        assert np.array_equal(fused, dense)  # exact, not approx

    def test_close_to_library_gemm(self, rng):
        w = gaussian_bf16_matrix(96, 96, sigma=0.02, seed=61)
        x = rng.normal(0, 1, (96, 4)).astype(np.float32)
        fused = zipgemm_execute(compress(w), x)
        ref = dense_gemm_reference(w, x)
        assert np.allclose(fused, ref, rtol=1e-4, atol=1e-6)

    def test_random_bit_patterns_still_exact(self, rng):
        bits = rng.integers(0, 2**16, (64, 64)).astype(np.uint16)
        # Remove NaN/Inf exponents so float compare semantics stay simple.
        exp = ((bits >> 7) & 0xFF)
        bits[exp == 255] = 0
        x = rng.normal(0, 1, (64, 2)).astype(np.float32)
        with np.errstate(over="ignore"):  # huge exponents overflow to inf
            fused = zipgemm_execute(compress(bits), x)
            dense = dense_gemm_tiled(bits, x)
        assert np.array_equal(fused, dense)

    def test_output_shape_unpadded(self, rng):
        w = gaussian_bf16_matrix(65, 70, sigma=0.02, seed=62)
        x = rng.normal(0, 1, (70, 3)).astype(np.float32)
        out = zipgemm_execute(compress(w), x)
        assert out.shape == (65, 3)

    @settings(max_examples=10)
    @given(st.integers(1, 90), st.integers(1, 90), st.integers(1, 6))
    def test_property_fused_equals_dense(self, m, k, n):
        w = gaussian_bf16_matrix(m, k, sigma=0.02, seed=m * 91 + k)
        x = np.random.default_rng(n).normal(0, 1, (k, n)).astype(np.float32)
        assert np.array_equal(
            zipgemm_execute(compress(w), x), dense_gemm_tiled(w, x)
        )


class TestValidation:
    def test_k_mismatch(self, rng):
        w = gaussian_bf16_matrix(64, 64, seed=63)
        x = rng.normal(0, 1, (65, 2)).astype(np.float32)
        with pytest.raises(ShapeError):
            dense_gemm_tiled(w, x)
        with pytest.raises(ShapeError):
            zipgemm_execute(compress(w), x)

    def test_dtype_checks(self, rng):
        w = gaussian_bf16_matrix(64, 64, seed=64)
        with pytest.raises(ShapeError):
            dense_gemm_tiled(w.astype(np.int32), np.zeros((64, 2), np.float32))
        with pytest.raises(ShapeError):
            dense_gemm_tiled(w, np.zeros((64, 2), np.float64))

    def test_activations_must_be_2d(self):
        w = gaussian_bf16_matrix(64, 64, seed=65)
        with pytest.raises(ShapeError):
            dense_gemm_tiled(w, np.zeros(64, np.float32))
