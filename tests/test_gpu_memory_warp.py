"""Tests for the bank-conflict and SIMT divergence simulators."""

import numpy as np
import pytest

from repro.codecs.huffman import HuffmanCodec
from repro.gpu.instructions import InstructionCounter, alu_cycles
from repro.gpu.memory import (
    TrafficRecord,
    lut_gather_addresses,
    simulate_bank_conflicts,
    tcatbe_decode_addresses,
)
from repro.gpu.warp import DivergenceReport, huffman_divergence, simulate_lockstep


class TestTrafficRecord:
    def test_add(self):
        a = TrafficRecord(dram_read=10, dram_write=5)
        a.add(TrafficRecord(dram_read=1, dram_write=2, shared_read=3))
        assert a.dram_total == 18
        assert a.shared_read == 3

    def test_scaled(self):
        a = TrafficRecord(dram_read=10).scaled(2.0)
        assert a.dram_read == 20


class TestBankConflicts:
    def test_broadcast_free(self):
        # All lanes read the same word: one cycle, no conflict.
        addrs = np.full((1, 32), 128)
        report = simulate_bank_conflicts(addrs)
        assert report.n_cycles == 1
        assert report.n_conflict_cycles == 0

    def test_unit_stride_free(self):
        addrs = (np.arange(32) * 4).reshape(1, 32)
        report = simulate_bank_conflicts(addrs)
        assert report.n_conflict_cycles == 0

    def test_32_way_conflict(self):
        # Stride of 128 B: every lane hits bank 0 with a distinct word.
        addrs = (np.arange(32) * 128).reshape(1, 32)
        report = simulate_bank_conflicts(addrs)
        assert report.worst_degree == 32
        assert report.n_conflict_cycles == 31

    def test_two_way_conflict(self):
        addrs = (np.arange(32) * 8).reshape(1, 32)  # 64-bit stride
        report = simulate_bank_conflicts(addrs)
        assert report.worst_degree == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            simulate_bank_conflicts(np.zeros((4, 16)))

    def test_tcatbe_pattern_conflict_free(self):
        report = simulate_bank_conflicts(tcatbe_decode_addresses(32))
        assert report.n_conflict_cycles == 0

    def test_lut_gather_conflicts_heavily(self):
        report = simulate_bank_conflicts(
            lut_gather_addresses(200, table_bytes=4096)
        )
        # Random gathers over a table conflict on most requests.
        assert report.conflict_rate > 1.0
        assert report.worst_degree >= 3

    def test_merge(self):
        a = simulate_bank_conflicts(np.full((1, 32), 0))
        b = simulate_bank_conflicts((np.arange(32) * 128).reshape(1, 32))
        a.merge(b)
        assert a.n_requests == 2
        assert a.worst_degree == 32


class TestLockstep:
    def test_uniform_costs_full_efficiency(self):
        report = simulate_lockstep(np.ones(256))
        assert report.efficiency == pytest.approx(1.0)
        assert report.slowdown == pytest.approx(1.0)

    def test_one_slow_lane_stalls_warp(self):
        costs = np.ones(32)
        costs[7] = 10.0
        report = simulate_lockstep(costs)
        assert report.lockstep_time == 10.0
        assert report.efficiency == pytest.approx((31 + 10) / 320)

    def test_empty(self):
        report = simulate_lockstep(np.zeros(0))
        assert report.efficiency == 1.0
        assert report.n_iterations == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simulate_lockstep(np.array([-1.0]))

    def test_iterations(self):
        report = simulate_lockstep(np.ones(33))
        assert report.n_iterations == 2

    def test_huffman_divergence_below_one(self):
        data = (np.random.default_rng(0).geometric(0.4, 20_000)
                .clip(1, 30) + 100).astype(np.uint8)
        lengths = HuffmanCodec().symbol_lengths(data)
        report = huffman_divergence(lengths)
        # Variable-length codes must lose SIMT efficiency (§3.2)...
        assert report.efficiency < 0.95
        # ...but stay well above the worst case.
        assert report.efficiency > 0.4

    def test_divergence_orders_codecs(self):
        # More skewed length distributions diverge more.
        mild = huffman_divergence(np.random.default_rng(1).choice(
            [3, 4], size=10_000))
        harsh = huffman_divergence(np.random.default_rng(1).choice(
            [2, 16], size=10_000, p=[0.9, 0.1]))
        assert harsh.efficiency < mild.efficiency


class TestInstructionCounter:
    def test_add_and_total(self):
        c = InstructionCounter()
        c.add("LOP3", 5)
        c.add("POPC")
        assert c.total == 6
        assert c.as_dict()["LOP3"] == 5

    def test_merge_and_scale(self):
        a = InstructionCounter()
        a.add("IADD", 2)
        b = InstructionCounter()
        b.add("IADD", 3)
        a.merge(b)
        assert a.counts["IADD"] == 5
        assert a.scaled(2.0)["IADD"] == 10.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            InstructionCounter().add("LOP3", -1)

    def test_alu_cycles_weights_half_rate_ops(self):
        full = alu_cycles({"LOP3": 128.0})
        half = alu_cycles({"POPC": 128.0})
        assert half == pytest.approx(2 * full)

    def test_alu_cycles_unknown_op_defaults(self):
        assert alu_cycles({"XYZ": 128.0}) == pytest.approx(1.0)
