"""Tests for the workload trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.trace import (
    DEFAULT_OUTPUTS,
    DEFAULT_PROMPTS,
    LengthDistribution,
    closed_loop_trace,
    poisson_trace,
    total_tokens,
)


class TestLengthDistribution:
    def test_bounds_respected(self):
        dist = LengthDistribution(mean=100, cv=1.5, minimum=10, maximum=200)
        samples = dist.sample(5000, np.random.default_rng(0))
        assert samples.min() >= 10
        assert samples.max() <= 200

    def test_mean_roughly_matches(self):
        dist = LengthDistribution(mean=100, cv=0.5, minimum=1, maximum=10000)
        samples = dist.sample(20000, np.random.default_rng(1))
        assert samples.mean() == pytest.approx(100, rel=0.1)

    def test_zero_cv_deterministic(self):
        dist = LengthDistribution(mean=64, cv=0.0, minimum=1, maximum=128)
        samples = dist.sample(10, np.random.default_rng(2))
        assert np.all(samples == 64)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LengthDistribution(mean=0, cv=1, minimum=1, maximum=2)
        with pytest.raises(ConfigError):
            LengthDistribution(mean=10, cv=1, minimum=5, maximum=2)


class TestPoissonTrace:
    def test_shape(self):
        trace = poisson_trace(50, rate_rps=10.0, seed=3)
        assert len(trace) == 50
        assert trace[0].arrival_s == 0.0
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_rate_controls_span(self):
        slow = poisson_trace(100, rate_rps=1.0, seed=4)
        fast = poisson_trace(100, rate_rps=100.0, seed=4)
        assert fast[-1].arrival_s < slow[-1].arrival_s

    def test_deterministic(self):
        a = poisson_trace(20, 5.0, seed=7)
        b = poisson_trace(20, 5.0, seed=7)
        assert all(
            (x.arrival_s, x.prompt_len, x.max_new_tokens)
            == (y.arrival_s, y.prompt_len, y.max_new_tokens)
            for x, y in zip(a, b)
        )

    def test_lengths_in_default_bounds(self):
        trace = poisson_trace(200, 10.0, seed=8)
        assert all(
            DEFAULT_PROMPTS.minimum <= r.prompt_len <= DEFAULT_PROMPTS.maximum
            for r in trace
        )
        assert all(
            DEFAULT_OUTPUTS.minimum <= r.max_new_tokens
            <= DEFAULT_OUTPUTS.maximum for r in trace
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            poisson_trace(0, 1.0)
        with pytest.raises(ConfigError):
            poisson_trace(5, 0.0)


class TestClosedLoop:
    def test_all_at_time_zero(self):
        trace = closed_loop_trace(8, 64, 32)
        assert all(r.arrival_s == 0.0 for r in trace)
        assert total_tokens(trace) == 8 * 32

    def test_engine_serves_poisson_trace(self):
        from repro.gpu.specs import get_gpu
        from repro.serving.backends import get_backend
        from repro.serving.engine import InferenceEngine
        from repro.serving.models import get_model

        engine = InferenceEngine(
            get_model("llama3.1-8b"), get_gpu("rtx4090"),
            get_backend("zipserv"),
        )
        trace = poisson_trace(
            10, rate_rps=20.0,
            prompts=LengthDistribution(64, 0.3, 16, 128),
            outputs=LengthDistribution(24, 0.3, 8, 48),
            seed=9,
        )
        expected = total_tokens(trace)
        result = engine.run_continuous(trace)
        assert result.tokens_generated == expected
        assert result.n_requests == 10


class TestTimeOrigin:
    def test_default_anchors_at_zero(self):
        trace = poisson_trace(20, 5.0, seed=11)
        assert trace[0].arrival_s == 0.0

    def test_explicit_start_shifts_whole_stream(self):
        base = poisson_trace(20, 5.0, seed=11, start_at=0.0)
        moved = poisson_trace(20, 5.0, seed=11, start_at=3.5)
        assert moved[0].arrival_s == pytest.approx(3.5)
        # Gaps are preserved, not rewritten.
        for a, b in zip(base, moved):
            assert b.arrival_s - a.arrival_s == pytest.approx(3.5)

    def test_none_keeps_raw_process(self):
        raw = poisson_trace(20, 5.0, seed=11, start_at=None)
        assert raw[0].arrival_s > 0.0


class TestSeedDeterminism:
    """Every generator must replay bit-identically from its seed.

    The bench regression gate and the kernel goldens both assume traces
    are pure functions of their arguments — any RNG leak (global numpy
    state, dict ordering, time-based salt) would show up here first.
    """

    @staticmethod
    def _fields(trace):
        return [
            (r.request_id, r.arrival_s, r.prompt_len, r.max_new_tokens,
             r.tenant, r.priority)
            for r in trace
        ]

    def test_poisson_trace_replays_from_seed(self):
        a = self._fields(poisson_trace(200, 20.0, seed=42))
        b = self._fields(poisson_trace(200, 20.0, seed=42))
        assert a == b

    def test_poisson_trace_seed_changes_stream(self):
        a = self._fields(poisson_trace(200, 20.0, seed=42))
        b = self._fields(poisson_trace(200, 20.0, seed=43))
        assert a != b

    def test_multi_tenant_trace_replays_from_seed(self):
        from repro.serving.trace import multi_tenant_trace

        a = self._fields(multi_tenant_trace(seed=42))
        b = self._fields(multi_tenant_trace(seed=42))
        assert a == b
        c = self._fields(multi_tenant_trace(seed=1))
        assert a != c

    def test_closed_loop_trace_replays(self):
        # No RNG at all: identical across calls by construction.
        a = self._fields(closed_loop_trace(16, 64, 32))
        b = self._fields(closed_loop_trace(16, 64, 32))
        assert a == b


class TestMultiTenantTrace:
    def test_default_mix(self):
        from repro.serving.trace import DEFAULT_TENANTS, multi_tenant_trace

        trace = multi_tenant_trace(seed=3)
        expected = sum(t.n_requests for t in DEFAULT_TENANTS.values())
        assert len(trace) == expected
        tenants = {r.tenant for r in trace}
        assert tenants == set(DEFAULT_TENANTS)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == pytest.approx(0.0)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_priorities_tagged_per_tenant(self):
        from repro.serving.trace import (
            DEFAULT_TENANTS, TenantSpec, multi_tenant_trace,
        )

        trace = multi_tenant_trace(seed=3)
        for req in trace:
            assert req.priority == DEFAULT_TENANTS[req.tenant].priority

    def test_custom_tenants_and_lengths(self):
        from repro.serving.trace import TenantSpec, multi_tenant_trace

        tenants = {
            "short": TenantSpec(
                rate_rps=50.0, n_requests=20,
                prompts=LengthDistribution(32, 0.2, 16, 64),
                outputs=LengthDistribution(8, 0.0, 8, 8),
                priority=2,
            ),
            "long": TenantSpec(
                rate_rps=5.0, n_requests=5,
                prompts=LengthDistribution(512, 0.2, 256, 1024),
                outputs=LengthDistribution(64, 0.0, 64, 64),
            ),
        }
        trace = multi_tenant_trace(tenants, seed=4)
        shorts = [r for r in trace if r.tenant == "short"]
        longs = [r for r in trace if r.tenant == "long"]
        assert len(shorts) == 20 and len(longs) == 5
        assert max(r.prompt_len for r in shorts) <= 64
        assert min(r.prompt_len for r in longs) >= 256
        assert all(r.priority == 2 for r in shorts)
        assert all(r.max_new_tokens == 64 for r in longs)

    def test_deterministic(self):
        from repro.serving.trace import multi_tenant_trace

        a = multi_tenant_trace(seed=9)
        b = multi_tenant_trace(seed=9)
        assert all(
            (x.arrival_s, x.prompt_len, x.max_new_tokens, x.tenant)
            == (y.arrival_s, y.prompt_len, y.max_new_tokens, y.tenant)
            for x, y in zip(a, b)
        )

    def test_validation(self):
        from repro.serving.trace import TenantSpec, multi_tenant_trace

        with pytest.raises(ConfigError):
            multi_tenant_trace({}, seed=0)
        with pytest.raises(ConfigError):
            TenantSpec(rate_rps=0.0, n_requests=5)
        with pytest.raises(ConfigError):
            TenantSpec(rate_rps=1.0, n_requests=0)

    def test_start_at_anchors_merged_stream(self):
        from repro.serving.trace import multi_tenant_trace

        moved = multi_tenant_trace(seed=5, start_at=2.0)
        assert moved[0].arrival_s == pytest.approx(2.0)
        raw = multi_tenant_trace(seed=5, start_at=None)
        assert raw[0].arrival_s > 0.0
