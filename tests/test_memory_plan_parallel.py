"""Tests for the memory planner and tensor-parallel sharding."""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.gpu.specs import get_gpu
from repro.serving.memory_plan import plan_memory
from repro.serving.models import get_model
from repro.serving.parallel import (
    allreduce_time,
    shard_layer,
)

G4090 = get_gpu("rtx4090")
L40S = get_gpu("l40s")


class TestMemoryPlan:
    def test_paper_figure17_dense(self):
        plan = plan_memory(get_model("llama3.1-8b"), G4090, "dense")
        assert plan.weight_gib == pytest.approx(14.96, abs=0.02)
        assert plan.kv_gib == pytest.approx(5.07, abs=0.35)

    def test_paper_figure17_compressed(self):
        plan = plan_memory(get_model("llama3.1-8b"), G4090, "tcatbe")
        assert plan.weight_gib == pytest.approx(10.83, abs=0.3)
        assert plan.kv_gib > 8.0  # paper: 8.60 GiB (1.70x)

    def test_kv_expansion_factor(self):
        dense = plan_memory(get_model("llama3.1-8b"), G4090, "dense")
        zipped = plan_memory(get_model("llama3.1-8b"), G4090, "tcatbe")
        assert 1.5 < zipped.kv_bytes / dense.kv_bytes < 2.1  # paper 1.70x

    def test_70b_needs_four_l40s(self):
        model = get_model("llama3.1-70b")
        with pytest.raises(CapacityError):
            plan_memory(model, L40S, "dense", tensor_parallel=2)
        plan = plan_memory(model, L40S, "dense", tensor_parallel=4)
        assert plan.kv_gib > 0

    def test_compression_enables_fit(self):
        # Mistral-24B dense does not fit one L40S with vLLM's reserve; the
        # compressed model does — §6.5's "deploy larger models" claim.
        model = get_model("mistral-24b")
        with pytest.raises(CapacityError):
            plan_memory(model, L40S, "dense", gpu_mem_util=0.95)
        plan = plan_memory(model, L40S, "tcatbe", gpu_mem_util=0.95)
        assert plan.kv_gib > 1.0

    def test_max_batch(self):
        plan = plan_memory(get_model("llama3.1-8b"), G4090, "dense")
        assert plan.max_batch(1024) == plan.kv_tokens // 1024
        with pytest.raises(CapacityError):
            plan.max_batch(0)

    def test_pipeline_parallel_divides_weights(self):
        model = get_model("llama3.1-70b")
        plan = plan_memory(model, L40S, "dfloat11", pipeline_parallel=4)
        assert plan.weight_gib < 30

    def test_validation(self):
        with pytest.raises(CapacityError):
            plan_memory(get_model("llama3.1-8b"), G4090, "dense",
                        tensor_parallel=0)
        with pytest.raises(CapacityError):
            plan_memory(get_model("llama3.1-8b"), G4090, "dense",
                        gpu_mem_util=1.5)


class TestSharding:
    def test_column_parallel(self):
        model = get_model("llama3.1-70b")
        layers = {l.kind: l for l in model.linear_layers()}
        layout = shard_layer(layers["gateup_proj"], 4)
        assert layout.m == layers["gateup_proj"].m // 4
        assert layout.k == layers["gateup_proj"].k
        assert not layout.needs_allreduce

    def test_row_parallel(self):
        model = get_model("llama3.1-70b")
        layers = {l.kind: l for l in model.linear_layers()}
        layout = shard_layer(layers["down_proj"], 4)
        assert layout.k == layers["down_proj"].k // 4
        assert layout.needs_allreduce

    def test_tp1_identity(self):
        layer = get_model("llama3.1-8b").linear_layers()[0]
        layout = shard_layer(layer, 1)
        assert (layout.m, layout.k) == (layer.m, layer.k)
        assert not layout.needs_allreduce

    def test_indivisible_rejected(self):
        layer = get_model("llama3.1-8b").linear_layers()[0]  # m = 6144
        with pytest.raises(ConfigError):
            shard_layer(layer, 5)


class TestAllReduce:
    def test_zero_at_tp1(self):
        assert allreduce_time(L40S, 1e6, 1) == 0.0

    def test_ring_scaling(self):
        t2 = allreduce_time(L40S, 1e8, 2)
        t4 = allreduce_time(L40S, 1e8, 4)
        # 2(tp-1)/tp factor: 1.0 vs 1.5 of the buffer.
        assert t4 / t2 == pytest.approx(1.5, rel=0.05)

    def test_faster_interconnect(self):
        a100 = get_gpu("a100")
        assert allreduce_time(a100, 1e8, 4) < allreduce_time(L40S, 1e8, 4)

    def test_validation(self):
        with pytest.raises(ConfigError):
            allreduce_time(L40S, -1.0, 2)
        with pytest.raises(ConfigError):
            allreduce_time(L40S, 1.0, 0)
