"""Property-based tests on serving-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.engine import InferenceEngine
from repro.serving.memory_plan import plan_memory
from repro.serving.models import get_model

G4090 = get_gpu("rtx4090")
M8B = get_model("llama3.1-8b")


def _engine(backend="zipserv"):
    return InferenceEngine(M8B, G4090, get_backend(backend))


class TestEngineMonotonicity:
    @settings(max_examples=10)
    @given(st.integers(8, 128), st.integers(8, 256))
    def test_more_output_takes_longer(self, out_a, extra):
        eng = _engine()
        t_short = eng.run(4, 32, out_a).total_s
        t_long = eng.run(4, 32, out_a + extra).total_s
        assert t_long > t_short

    @settings(max_examples=10)
    @given(st.integers(1, 16))
    def test_batch_raises_throughput_when_fitting(self, batch):
        eng = _engine()
        small = eng.run(batch, 64, 32)
        large = eng.run(batch * 2, 64, 32)
        assert large.throughput_tok_s > small.throughput_tok_s

    @settings(max_examples=8)
    @given(st.integers(16, 512))
    def test_decode_step_monotone_in_context(self, ctx):
        eng = _engine()
        assert (eng.decode_step(8, ctx + 64).total_s
                >= eng.decode_step(8, ctx).total_s)

    @settings(max_examples=8)
    @given(st.integers(8, 64), st.integers(16, 256))
    def test_latency_throughput_duality(self, batch, out_len):
        eng = _engine()
        res = eng.run(batch, 32, out_len)
        assert res.throughput_tok_s == pytest.approx(
            batch * out_len / res.latency_s
        )


class TestMemoryPlanProperties:
    @settings(max_examples=10)
    @given(st.sampled_from(["dense", "tcatbe"]), st.integers(1, 4))
    def test_budget_conservation(self, scheme, tp):
        model = get_model("llama3.1-70b")
        gpu = get_gpu("l40s")
        try:
            plan = plan_memory(model, gpu, scheme, tensor_parallel=tp)
        except Exception:
            return  # does not fit at this tp — covered elsewhere
        assert plan.weight_bytes + plan.reserve_bytes + plan.kv_bytes \
            == pytest.approx(plan.usable_bytes)
        assert plan.kv_bytes > 0

    @settings(max_examples=10)
    @given(st.floats(0.80, 0.97))
    def test_utilisation_scales_kv(self, util):
        lo = plan_memory(M8B, G4090, "tcatbe", gpu_mem_util=util)
        hi = plan_memory(M8B, G4090, "tcatbe", gpu_mem_util=min(util + 0.01, 0.99))
        assert hi.kv_bytes > lo.kv_bytes

    @settings(max_examples=10)
    @given(st.integers(3, 8))
    def test_tp_divides_weights_exactly(self, tp):
        model = get_model("llama3.1-70b")
        h800 = get_gpu("h800")
        plan = plan_memory(model, h800, "dense", tensor_parallel=tp)
        full = plan_memory(model, h800, "dense",
                           tensor_parallel=8).weight_bytes * 8
        assert plan.weight_bytes * tp == pytest.approx(full)


class TestCrossBackendInvariants:
    def test_zipserv_never_slower_anywhere(self):
        """Across a grid of feasible configs, ZipServ >= vLLM throughput."""
        for batch in (4, 16, 32):
            for out_len in (64, 512):
                z = _engine("zipserv").run(batch, 64, out_len)
                v = _engine("vllm").run(batch, 64, out_len)
                assert z.throughput_tok_s >= v.throughput_tok_s, (
                    batch, out_len
                )

    def test_attention_identical_across_weight_schemes(self):
        z = _engine("zipserv").decode_step(16, 512)
        v = _engine("vllm").decode_step(16, 512)
        assert z.attention_s == pytest.approx(v.attention_s)
        assert z.other_s == pytest.approx(v.other_s)
