"""Measured calibration + codec-policy subsystem contracts.

Four groups:

* **calibration** — running the real codecs is deterministic under a
  fixed seed, persists through JSON bit-for-bit, and lands within the
  documented drift bound of the analytic estimators for every builtin
  codec x placement;
* **resolution precedence** — explicit ``ratio=`` beats measured beats
  analytic, in ``resolve_spec`` and in every consumer that fronts it
  (cost model, KV spec, transfer link);
* **policies** — feasibility gating, deterministic selection, the three
  shipped objectives and the ``balanced(alpha)`` parser;
* **end-to-end** — ``ServingConfig`` auto slots resolve at config time
  on both topologies, non-auto configs stay bit-compatible, and the
  registry's unknown-name error is a helpful ``ValueError``.
"""

import json

import pytest

from repro.compression import (
    ANALYTIC_DRIFT_BOUND,
    MAX_HOT_PATH_SLOWDOWN,
    BalancedPolicy,
    MeasuredRatioProfile,
    TensorClass,
    calibrate,
    default_candidates,
    default_tensor_classes,
    get_codec,
    get_codec_policy,
    glorot_sigma,
    hot_path_time,
    list_codec_policies,
    list_codecs,
    measured_profile,
    resolve_spec,
    set_measured_profile,
    tensor_classes_for_model,
)
from repro.errors import ConfigError, UnknownSpecError
from repro.gpu.specs import get_gpu
from repro.serving.backends import get_backend
from repro.serving.costs import EngineCostModel
from repro.serving.engine import InferenceEngine
from repro.serving.kvcache import CompressedKVCacheSpec, KVCacheSpec
from repro.serving.models import get_model
from repro.serving.serve import DisaggConfig, ServingConfig
from repro.serving.trace import multi_tenant_trace

MODEL = get_model("llama3.1-8b")
GPU = get_gpu("rtx4090")
BACKEND = get_backend("zipserv")


@pytest.fixture(scope="module")
def profile():
    return calibrate(classes=tensor_classes_for_model(MODEL), seed=0)


class FakeProfile:
    """Minimal duck-typed profile pinning one measured ratio."""

    def __init__(self, ratio, codec=None, placement=None):
        self.fixed = ratio
        self.codec = codec
        self.placement = placement

    def ratio_for(self, codec, placement, cls=None):
        if self.codec is not None and codec != self.codec:
            return None
        if self.placement is not None and placement != self.placement:
            return None
        return self.fixed


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_deterministic_under_fixed_seed(self):
        a = calibrate(seed=11)
        b = calibrate(seed=11)
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_samples_not_structure(self):
        a = calibrate(seed=1)
        b = calibrate(seed=2)
        assert a.codecs() == b.codecs()
        assert a.classes() == b.classes()
        assert a.to_dict() != b.to_dict()

    def test_covers_every_codec_and_placement(self, profile):
        assert set(profile.codecs()) == set(list_codecs())
        for codec in list_codecs():
            for placement in ("weight", "kv", "wire"):
                assert profile.ratio_for(codec, placement) is not None

    @pytest.mark.parametrize("placement", ["weight", "kv", "wire"])
    @pytest.mark.parametrize("codec", list_codecs())
    def test_measured_within_documented_bound_of_analytic(
        self, profile, codec, placement
    ):
        """The drift satellite: every builtin codec x placement lands
        within ANALYTIC_DRIFT_BOUND of its analytic estimator."""
        for rec in profile.records:
            if rec.codec != codec or rec.placement != placement:
                continue
            assert abs(rec.analytic_gap) <= ANALYTIC_DRIFT_BOUND, (
                f"{codec}/{placement}/{rec.cls}: measured {rec.ratio:.4f}"
                f" vs analytic {rec.analytic_ratio:.4f}"
            )

    def test_identity_codec_measures_exactly_one(self, profile):
        for rec in profile.records:
            if rec.codec == "none":
                assert rec.ratio == 1.0

    def test_roundtrip_json(self, profile, tmp_path):
        path = profile.save(tmp_path / "profile.json")
        loaded = MeasuredRatioProfile.load(path)
        assert loaded.to_dict() == profile.to_dict()
        assert json.loads(path.read_text())["version"] == 1

    def test_version_gate(self):
        with pytest.raises(ConfigError):
            MeasuredRatioProfile.from_dict({"version": 99, "records": []})

    def test_aggregate_is_element_weighted(self):
        profile = MeasuredRatioProfile()
        from repro.compression import MeasuredRatio

        profile.add(MeasuredRatio("tcatbe", "weight", "weight:a", 0.02,
                                  1000, 1000, 1.4))
        profile.add(MeasuredRatio("tcatbe", "weight", "weight:b", 0.02,
                                  3000, 3000, 1.4))
        # (2*4000) / 4000 = 2.0 — bytes pooled, not ratios averaged.
        assert profile.ratio_for("tcatbe", "weight") == 2.0
        assert profile.ratio_for("tcatbe", "weight", "weight:a") == 2.0
        # Unknown class falls back to the aggregate.
        assert profile.ratio_for("tcatbe", "weight", "weight:zzz") == 2.0

    def test_model_classes_cover_layer_kinds(self):
        names = {c.name for c in tensor_classes_for_model(MODEL)}
        for kind in ("qkv_proj", "o_proj", "gateup_proj", "down_proj",
                     "lm_head"):
            assert f"weight:{kind}" in names
        assert {"kv:block", "wire:kv"} <= names

    def test_tensor_class_validation(self):
        with pytest.raises(ConfigError):
            TensorClass("x", "hbm", 0.02)
        with pytest.raises(ConfigError):
            TensorClass("x", "kv", -1.0)
        with pytest.raises(ConfigError):
            glorot_sigma(0, 4)


# ----------------------------------------------------------------------
# Resolution precedence
# ----------------------------------------------------------------------
class TestPrecedence:
    def test_explicit_ratio_beats_measured(self):
        spec = resolve_spec("kvcomp", "kv", ratio=2.5,
                            profile=FakeProfile(1.9))
        assert spec.ratio == 2.5
        assert spec.source == "explicit"

    def test_measured_beats_analytic(self):
        spec = resolve_spec("kvcomp", "kv", profile=FakeProfile(1.9))
        assert spec.ratio == 1.9
        assert spec.source == "measured"

    def test_analytic_without_profile(self):
        spec = resolve_spec("kvcomp", "kv")
        assert spec.source == "analytic"
        assert spec.ratio == get_codec("kvcomp").ratio("kv")

    def test_process_wide_profile_and_context_manager(self):
        try:
            set_measured_profile(FakeProfile(1.7))
            assert resolve_spec("kvcomp", "kv").ratio == 1.7
        finally:
            set_measured_profile(None)
        assert resolve_spec("kvcomp", "kv").source == "analytic"
        with measured_profile(FakeProfile(1.8)):
            assert resolve_spec("kvcomp", "kv").ratio == 1.8
        assert resolve_spec("kvcomp", "kv").source == "analytic"

    def test_profile_miss_falls_back_to_analytic(self):
        spec = resolve_spec(
            "tcatbe", "kv", profile=FakeProfile(1.9, codec="dietgpu")
        )
        assert spec.source == "analytic"

    def test_kv_spec_from_codec_reads_measured(self):
        inner = KVCacheSpec.for_model(MODEL)
        measured = CompressedKVCacheSpec.from_codec(
            inner, "kvcomp", profile=FakeProfile(2.0)
        )
        assert measured.ratio == 2.0
        explicit = CompressedKVCacheSpec.from_codec(
            inner, "kvcomp", ratio=3.0, profile=FakeProfile(2.0)
        )
        assert explicit.ratio == 3.0

    def test_transfer_link_reads_measured_wire_ratio(self):
        from repro.serving.disagg import resolve_transfer_ratio

        config = ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(transfer_codec="kvcomp"),
            calibration=FakeProfile(1.95),
        )
        assert resolve_transfer_ratio(config) == 1.95
        # Explicit transfer_ratio still wins over the profile.
        config = ServingConfig(
            mode="disaggregated",
            disagg=DisaggConfig(transfer_codec="kvcomp",
                                transfer_ratio=1.25),
            calibration=FakeProfile(1.95),
        )
        assert resolve_transfer_ratio(config) == 1.25

    def test_transfer_auto_requires_engine_resolution(self):
        from repro.serving.disagg import resolve_transfer_ratio

        config = ServingConfig(
            mode="disaggregated", transfer_codec="auto",
        )
        with pytest.raises(ConfigError):
            resolve_transfer_ratio(config)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestPolicies:
    def test_registry_names(self):
        assert set(list_codec_policies()) == {
            "best_ratio", "best_throughput", "balanced",
        }

    def test_balanced_alpha_parsing(self):
        assert get_codec_policy("balanced(0.25)").alpha == 0.25
        assert get_codec_policy("balanced").alpha == 0.5
        assert isinstance(get_codec_policy("BALANCED(1)"), BalancedPolicy)
        with pytest.raises(ConfigError):
            get_codec_policy("balanced(1.5)")

    def test_unknown_policy_lists_names(self):
        with pytest.raises(UnknownSpecError) as exc:
            get_codec_policy("fastest")
        assert "best_ratio" in str(exc.value)

    def test_instance_passthrough(self):
        policy = BalancedPolicy(alpha=0.3)
        assert get_codec_policy(policy) is policy

    def test_lossy_codecs_excluded_by_default(self):
        assert "zipquant" not in default_candidates()
        assert set(default_candidates()) == {
            n for n in list_codecs() if get_codec(n).lossless
        }

    def test_feasibility_gate_rejects_decoupled_weights(self, profile):
        """Decompress-per-use baselines exceed the hot-path slowdown cap
        on the weight placement, whatever their ratio."""
        t_none = hot_path_time("none", "weight", 1.0, GPU)
        for name in ("dfloat11", "dietgpu", "nvcomp"):
            ratio = profile.ratio_for(name, "weight")
            assert hot_path_time(name, "weight", ratio, GPU) > (
                MAX_HOT_PATH_SLOWDOWN * t_none
            )
        for policy in ("best_ratio", "balanced", "best_throughput"):
            spec = get_codec_policy(policy).select(
                "weight", GPU, profile=profile
            )
            assert get_codec(spec.codec).linear_mode != "decoupled"

    def test_best_ratio_maximises_measured_ratio(self, profile):
        spec = get_codec_policy("best_ratio").select(
            "wire", GPU, profile=profile
        )
        best = max(
            default_candidates(),
            key=lambda n: profile.ratio_for(n, "wire"),
        )
        assert spec.codec == get_codec(best).name
        assert spec.source == "measured"

    def test_best_throughput_minimises_time_proxy(self, profile):
        spec = get_codec_policy("best_throughput").select(
            "kv", GPU, profile=profile
        )
        times = {
            n: hot_path_time(
                n, "kv", profile.ratio_for(n, "kv"), GPU
            )
            for n in default_candidates()
        }
        assert times[spec.codec] == min(times.values())

    def test_balanced_interpolates(self, profile):
        ratio_pick = get_codec_policy("balanced(1)").select(
            "kv", GPU, profile=profile
        )
        tput_pick = get_codec_policy("balanced(0)").select(
            "kv", GPU, profile=profile
        )
        assert ratio_pick.codec == get_codec_policy("best_ratio").select(
            "kv", GPU, profile=profile
        ).codec
        assert tput_pick.codec == get_codec_policy(
            "best_throughput"
        ).select("kv", GPU, profile=profile).codec

    def test_selection_deterministic(self, profile):
        picks = {
            get_codec_policy("balanced").select(
                "kv", GPU, profile=profile
            ).codec
            for _ in range(5)
        }
        assert len(picks) == 1

    def test_identity_fallback_when_everything_gated(self):
        policy = get_codec_policy("best_ratio")
        spec = policy.select(
            "weight", GPU, candidates=["dfloat11", "dietgpu"]
        )
        assert spec.codec == "none"

    def test_select_for_classes(self, profile):
        classes = [
            c for c in tensor_classes_for_model(MODEL)
            if c.placement == "weight"
        ]
        picks = get_codec_policy("best_ratio").select_for_classes(
            classes, GPU, profile=profile
        )
        assert set(picks) == {c.name for c in classes}
        for spec in picks.values():
            assert spec.placement == "weight"
            assert spec.source == "measured"


# ----------------------------------------------------------------------
# Cost model: per-layer resolved specs
# ----------------------------------------------------------------------
class TestPerLayerSpecs:
    def test_mapping_accepted_and_priced_per_layer(self):
        costs = EngineCostModel(
            MODEL, GPU, BACKEND,
            weight_codec={
                "qkv_proj": "tcatbe", "o_proj": "tcatbe",
                "gateup_proj": "none", "down_proj": "tcatbe",
                "lm_head": "none",
            },
        )
        assert set(costs.layer_specs) == {
            "qkv_proj", "o_proj", "gateup_proj", "down_proj", "lm_head"
        }
        assert costs.layer_specs["gateup_proj"].identity
        assert not costs.layer_specs["qkv_proj"].identity
        ratios = costs.layer_ratios()
        assert ratios["lm_head"] == 1.0 and ratios["down_proj"] > 1.0

    def test_default_key_fills_missing_kinds(self):
        costs = EngineCostModel(
            MODEL, GPU, BACKEND,
            weight_codec={"lm_head": "none", "default": "tcatbe"},
        )
        assert costs.layer_specs["qkv_proj"].codec == "tcatbe"
        assert costs.layer_specs["lm_head"].identity

    def test_missing_kind_without_default_raises(self):
        with pytest.raises(ConfigError) as exc:
            EngineCostModel(
                MODEL, GPU, BACKEND, weight_codec={"qkv_proj": "tcatbe"}
            )
        assert "o_proj" in str(exc.value)

    def test_uniform_mapping_prices_close_to_scalar(self):
        """Per-layer specs at analytic ratios stay within a whisker of
        the scalar analytic path (same codec, same sigmas; only the
        ratio plumbing differs)."""
        scalar = EngineCostModel(MODEL, GPU, BACKEND)
        mapped = EngineCostModel(
            MODEL, GPU, BACKEND, weight_codec={"default": "tcatbe"}
        )
        a = scalar.linear_time(16)[0]
        b = mapped.linear_time(16)[0]
        assert abs(a / b - 1.0) < 1e-3

    def test_calibration_changes_weight_pricing(self, profile):
        analytic = EngineCostModel(MODEL, GPU, BACKEND)
        measured = EngineCostModel(
            MODEL, GPU, BACKEND, calibration=profile
        )
        assert measured.layer_specs is not None
        for spec in measured.layer_specs.values():
            assert spec.source == "measured"
        # Measured ratios differ from analytic, so pricing moves (just
        # slightly — the drift bound caps how far).
        assert analytic.linear_time(16)[0] != measured.linear_time(16)[0]

    def test_calibration_feeds_kv_spec(self, profile):
        costs = EngineCostModel(
            MODEL, GPU, BACKEND, kv_codec="kvcomp", calibration=profile
        )
        assert costs.kv_spec_c.source == "measured"
        assert costs.kv_ratio == profile.ratio_for("kvcomp", "kv")

    def test_explicit_kv_ratio_still_wins(self, profile):
        costs = EngineCostModel(
            MODEL, GPU, BACKEND, kv_codec="kvcomp",
            kv_compression_ratio=1.4, calibration=profile,
        )
        assert costs.kv_ratio == 1.4
        assert costs.kv_spec_c.source == "explicit"


# ----------------------------------------------------------------------
# End to end: auto slots + bit-compatibility
# ----------------------------------------------------------------------
class TestAutoServing:
    @pytest.fixture(scope="class")
    def engine(self):
        return InferenceEngine(MODEL, GPU, BACKEND, gpu_mem_util=0.9)

    def test_auto_slots_validate_policy_at_config_time(self):
        with pytest.raises(UnknownSpecError):
            ServingConfig(weight_codec="auto", codec_policy="fastest")
        config = ServingConfig(
            weight_codec="auto", kv_codec="auto", transfer_codec="auto"
        )
        assert config.auto_slots == ("weight", "kv", "transfer")
        assert ServingConfig().auto_slots == ()

    def test_resolve_codecs_inspection(self, engine, profile):
        config = ServingConfig(
            weight_codec="auto", kv_codec="auto", transfer_codec="auto",
            codec_policy="best_ratio", calibration=profile,
        )
        sel = engine.resolve_codecs(config)
        assert sel["policy"] == "best_ratio"
        assert set(sel["weight"]) == {
            "qkv_proj", "o_proj", "gateup_proj", "down_proj", "lm_head"
        }
        assert sel["kv"].placement == "kv"
        assert sel["transfer"].placement == "wire"
        for spec in sel["weight"].values():
            assert get_codec(spec.codec).linear_mode != "decoupled"

    def test_auto_serves_both_topologies(self, engine, profile):
        for mode in ("colocated", "disaggregated"):
            trace = multi_tenant_trace(seed=7)
            config = ServingConfig(
                prefill_mode="chunked", mode=mode,
                disagg=DisaggConfig(link_gb_per_s=0.5),
                weight_codec="auto", kv_codec="auto",
                transfer_codec="auto",
                codec_policy="balanced", calibration=profile,
            )
            result = engine.serve(trace, config=config)
            assert result.n_requests == len(trace)

    def test_auto_selection_matches_manual_config(self, engine, profile):
        """Serving with auto slots equals serving the explicitly named
        selection — resolution really happens at config time."""
        auto = ServingConfig(
            prefill_mode="chunked", mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=0.125),
            kv_codec="auto", transfer_codec="auto",
            codec_policy="best_ratio", calibration=profile,
        )
        sel = engine.resolve_codecs(auto)
        manual = ServingConfig(
            prefill_mode="chunked", mode="disaggregated",
            disagg=DisaggConfig(link_gb_per_s=0.125),
            kv_codec=sel["kv"].codec,
            transfer_codec=sel["transfer"].codec,
            calibration=profile,
        )
        trace = lambda: multi_tenant_trace(seed=7)  # noqa: E731
        a = engine.serve(trace(), config=auto)
        b = engine.serve(trace(), config=manual)
        assert a.makespan_s == b.makespan_s
        assert a.timings == b.timings

    def test_non_auto_configs_bit_compatible(self, engine):
        """No auto slot, no calibration: the new plumbing is inert."""
        trace = lambda: multi_tenant_trace(seed=7)  # noqa: E731
        plain = engine.serve(
            trace(), config=ServingConfig(prefill_mode="chunked")
        )
        again = engine.serve(
            trace(), config=ServingConfig(prefill_mode="chunked")
        )
        assert plain.makespan_s == again.makespan_s
        assert plain.timings == again.timings


class TestUnknownCodecError:
    """Satellite: get_codec misses are helpful ValueErrors."""

    def test_lists_names_and_nearest_match(self):
        with pytest.raises(UnknownSpecError) as exc:
            get_codec("kvcom")
        message = str(exc.value)
        assert "vector_tbe" in message or "kvcomp" in message
        assert "did you mean" in message
        assert exc.value.suggestion == "kvcomp"

    def test_is_value_error(self):
        with pytest.raises(ValueError):
            get_codec("zstd")
        with pytest.raises(ConfigError):
            get_codec("zstd")

    def test_no_suggestion_for_garbage(self):
        with pytest.raises(UnknownSpecError) as exc:
            get_codec("qqqqqqqq")
        assert exc.value.suggestion is None
        assert "known codec" in str(exc.value)
