"""Tests for repro.utils and the error hierarchy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.utils import (
    GIB,
    ceil_div,
    geometric_mean,
    human_bytes,
    human_time,
    popcount64,
    require_2d,
    require_dtype,
    round_up,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(64, 8) == 8

    def test_rounds_up(self):
        assert ceil_div(65, 8) == 9

    def test_zero_numerator(self):
        assert ceil_div(0, 8) == 0

    def test_one(self):
        assert ceil_div(1, 64) == 1

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == -(-a // b)


class TestRoundUp:
    def test_already_aligned(self):
        assert round_up(128, 64) == 128

    def test_rounds(self):
        assert round_up(130, 64) == 192

    @given(st.integers(0, 10**6), st.integers(1, 4096))
    def test_properties(self, v, m):
        r = round_up(v, m)
        assert r >= v
        assert r % m == 0
        assert r - v < m


class TestHumanFormats:
    def test_bytes_gib(self):
        assert human_bytes(GIB * 14.96).startswith("14.96")

    def test_bytes_small(self):
        assert human_bytes(10) == "10.00 B"

    def test_bytes_negative(self):
        with pytest.raises(ValueError):
            human_bytes(-1)

    def test_time_units(self):
        assert human_time(2.0).endswith(" s")
        assert human_time(2e-3).endswith(" ms")
        assert human_time(2e-6).endswith(" us")
        assert human_time(2e-9).endswith(" ns")

    def test_time_negative(self):
        with pytest.raises(ValueError):
            human_time(-0.1)


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPopcount64:
    def test_known_values(self):
        vals = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount64(vals).tolist() == [0, 1, 2, 64]

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50))
    def test_matches_python(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert popcount64(arr).tolist() == expected


class TestValidators:
    def test_require_2d_pass(self):
        require_2d(np.zeros((2, 3)))

    def test_require_2d_fail(self):
        with pytest.raises(errors.ShapeError):
            require_2d(np.zeros(3))

    def test_require_dtype(self):
        require_dtype(np.zeros(3, dtype=np.uint16), np.uint16)
        with pytest.raises(errors.ShapeError):
            require_dtype(np.zeros(3, dtype=np.uint8), np.uint16)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.FormatError, errors.CodecError, errors.ShapeError,
            errors.ConfigError, errors.CapacityError, errors.SchedulingError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_unknown_spec_message(self):
        err = errors.UnknownSpecError("gpu", "rtx9999", ["rtx4090", "l40s"])
        assert "rtx9999" in str(err)
        assert "l40s" in str(err)
        assert isinstance(err, errors.ConfigError)
